//===- import/ImportedCorpus.cpp ------------------------------------------===//

#include "import/ImportedCorpus.h"

#include "ir/Printer.h"

#include <algorithm>
#include <filesystem>

using namespace metaopt;

ImportedCorpus metaopt::loadImportedCorpus(const std::string &Dir) {
  ImportedCorpus Corpus;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec) {
    Diagnostic D;
    D.Id = idiag::IoError;
    D.Sev = Severity::Error;
    D.Message = "cannot read imported corpus directory '" + Dir +
                "': " + Ec.message();
    Corpus.Report.add(std::move(D));
    return Corpus;
  }
  for (const auto &Entry : It) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() != ".mloop")
      continue;
    Corpus.Files.push_back(Entry.path().string());
  }
  std::sort(Corpus.Files.begin(), Corpus.Files.end());
  if (Corpus.Files.empty()) {
    Diagnostic D;
    D.Id = idiag::IoError;
    D.Sev = Severity::Error;
    D.Message = "no .mloop files under '" + Dir + "'";
    Corpus.Report.add(std::move(D));
    return Corpus;
  }
  for (const std::string &File : Corpus.Files) {
    ImportResult Result = importFile(File);
    Corpus.Report.append(Result.Report);
    for (ImportedLoop &L : Result.Loops)
      Corpus.Loops.push_back(std::move(L));
  }
  return Corpus;
}

Benchmark metaopt::toBenchmark(const ImportedCorpus &Corpus,
                               std::string Name) {
  Benchmark Bench;
  Bench.Name = std::move(Name);
  Bench.Suite = "Imported";
  Bench.Lang = SourceLanguage::C;
  for (const ImportedLoop &L : Corpus.Loops) {
    if (L.TheLoop.language() != SourceLanguage::C)
      Bench.Lang = L.TheLoop.language();
    CorpusLoop Entry;
    Entry.TheLoop = L.TheLoop;
    Entry.Ctx = L.Ctx;
    Entry.Executions = L.Executions;
    Entry.Kind = LoopKind::Mixed;
    Bench.Loops.push_back(std::move(Entry));
  }
  // Real kernels carry both integer and FP bodies; mark the benchmark FP
  // if any loop touches floating point.
  for (const CorpusLoop &Entry : Bench.Loops)
    for (const Instruction &Instr : Entry.TheLoop.body())
      if (Instr.isFloat())
        Bench.FloatingPoint = true;
  return Bench;
}

Fingerprint
metaopt::importedCorpusFingerprint(const ImportedCorpus &Corpus) {
  FingerprintHasher H;
  H.str("metaopt-imported-corpus-fingerprint-v1");
  H.u64(Corpus.Loops.size());
  for (const ImportedLoop &L : Corpus.Loops) {
    H.str(printLoop(L.TheLoop));
    H.str(L.Prov.SourceFile);
    H.u64(L.Prov.SourceLine);
    H.str(L.Prov.Function);
    H.str(L.Prov.Extractor);
    H.i64(L.Ctx.EffectiveIcacheBytes);
    H.f64(L.Ctx.DcacheMissRate);
    H.i64(L.Ctx.DcacheMissCycles);
    H.f64(L.Ctx.DcacheVisibleFraction);
    H.i64(L.Ctx.IntRegBudget);
    H.i64(L.Ctx.FpRegBudget);
    H.i64(L.Executions);
  }
  return H.digest();
}
