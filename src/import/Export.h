//===- import/Export.h - Loop IR to mloop serialization ---------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverse of import/Import.h: serializes a verifier-clean Loop into
/// the mloop interchange format, such that re-importing the text yields a
/// loop whose canonical printLoop() output is byte-identical to the
/// original's. The fuzzer's importer-round-trip oracle rests on this
/// guarantee, so the exporter emits the loop-control tail explicitly
/// (rather than letting the importer synthesize it) and writes register
/// tokens using the printer's own collision-free naming.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IMPORT_EXPORT_H
#define METAOPT_IMPORT_EXPORT_H

#include "ir/Loop.h"

#include <string>

namespace metaopt {

/// Serializes \p L as a complete single-loop mloop file (header line
/// included). \p L must be verifier-clean; exporting a malformed loop is
/// undefined (the output may fail to re-import).
std::string exportLoop(const Loop &L);

} // namespace metaopt

#endif // METAOPT_IMPORT_EXPORT_H
