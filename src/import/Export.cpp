//===- import/Export.cpp --------------------------------------------------===//
//
// Serializes loops into the mloop format. Register tokens reproduce the
// canonical printer's naming exactly (class prefix + base name, with the
// same ".<id>" collision suffixes), so the importer — which strips the
// class prefix back off — recreates registers whose printed names match
// the originals byte for byte. See docs/IMPORT.md for the format.
//
//===----------------------------------------------------------------------===//

#include "import/Export.h"

#include <cassert>
#include <cstdio>
#include <map>
#include <set>

using namespace metaopt;

namespace {

/// Replica of the printer's NameTable: candidate "%<prefix>_<name>",
/// first collision wins a ".<id>" suffix. Kept in lockstep with
/// ir/Printer.cpp — the round-trip oracle fails loudly if they drift.
class ExportNames {
public:
  explicit ExportNames(const Loop &L) {
    std::set<std::string> Used;
    for (RegId Reg = 0; Reg < L.numRegs(); ++Reg) {
      std::string Candidate = std::string("%") +
                              regClassPrefix(L.regClass(Reg)) + "_" +
                              L.regName(Reg);
      if (!Used.insert(Candidate).second) {
        Candidate += "." + std::to_string(Reg);
        Used.insert(Candidate);
      }
      Names[Reg] = Candidate;
    }
  }

  /// The mloop value token for \p Reg (printer name, '%' included).
  const std::string &name(RegId Reg) const {
    auto It = Names.find(Reg);
    assert(It != Names.end() && "register has no name");
    return It->second;
  }

private:
  std::map<RegId, std::string> Names;
};

const char *typeToken(RegClass RC) {
  switch (RC) {
  case RegClass::Int:
    return "i64";
  case RegClass::Float:
    return "f64";
  case RegClass::Pred:
    return "i1";
  }
  return "i64";
}

std::string memRefText(const MemRef &Mem) {
  std::string Out = "@" + std::to_string(Mem.BaseSym) + "[";
  if (Mem.Indirect)
    Out += "indirect, ";
  Out += "stride=" + std::to_string(Mem.Stride);
  Out += ", offset=" + std::to_string(Mem.Offset);
  Out += ", size=" + std::to_string(Mem.SizeBytes);
  Out += "]";
  return Out;
}

/// Shortest decimal that parses back to exactly \p Value.
std::string exactDouble(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  return Buffer;
}

std::string instructionText(const Loop &L, const Instruction &Instr,
                            const ExportNames &Names) {
  std::string Out;
  auto Dest = [&]() { Out += Names.name(Instr.Dest) + " = "; };
  auto Op = [&](size_t I) { return Names.name(Instr.Operands[I]); };

  switch (Instr.Op) {
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor: {
    static const std::map<Opcode, const char *> Mn = {
        {Opcode::IAdd, "add"},  {Opcode::ISub, "sub"},
        {Opcode::IMul, "mul"},  {Opcode::IDiv, "sdiv"},
        {Opcode::IRem, "srem"}, {Opcode::Shl, "shl"},
        {Opcode::Shr, "ashr"},  {Opcode::And, "and"},
        {Opcode::Or, "or"},     {Opcode::Xor, "xor"}};
    Dest();
    Out += std::string(Mn.at(Instr.Op)) + " i64 " + Op(0) + ", " + Op(1);
    break;
  }
  case Opcode::ICmp:
    Dest();
    Out += "icmp slt i64 " + Op(0) + ", " + Op(1);
    break;
  case Opcode::FCmp:
    Dest();
    Out += "fcmp olt f64 " + Op(0) + ", " + Op(1);
    break;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv: {
    static const std::map<Opcode, const char *> Mn = {
        {Opcode::FAdd, "fadd"},
        {Opcode::FSub, "fsub"},
        {Opcode::FMul, "fmul"},
        {Opcode::FDiv, "fdiv"}};
    Dest();
    Out += std::string(Mn.at(Instr.Op)) + " f64 " + Op(0) + ", " + Op(1);
    break;
  }
  case Opcode::FMA:
    Dest();
    Out += "fma f64 " + Op(0) + ", " + Op(1) + ", " + Op(2);
    break;
  case Opcode::FSqrt:
    Dest();
    Out += "sqrt f64 " + Op(0);
    break;
  case Opcode::FCvt:
    Dest();
    Out += "sitofp f64 " + Op(0);
    break;
  case Opcode::IConst:
    Dest();
    Out += "const i64 " + std::to_string(Instr.Imm);
    break;
  case Opcode::FConst:
    Dest();
    Out += "const f64 " + std::to_string(Instr.Imm);
    break;
  case Opcode::Copy:
    Dest();
    Out += std::string("copy ") +
           typeToken(L.regClass(Instr.Operands[0])) + " " + Op(0);
    break;
  case Opcode::Select:
    Dest();
    Out += std::string("select ") + typeToken(L.regClass(Instr.Dest)) +
           " " + Op(0) + ", " + Op(1) + ", " + Op(2);
    break;
  case Opcode::AddrGen:
    Dest();
    Out += "gep i64 " + Op(0);
    if (Instr.Operands.size() > 1)
      Out += ", " + Op(1);
    break;
  case Opcode::PredSet:
    Dest();
    Out += "and i1 " + Op(0);
    if (Instr.Operands.size() > 1)
      Out += ", " + Op(1);
    break;
  case Opcode::Load:
    Dest();
    Out += std::string("load ") + typeToken(L.regClass(Instr.Dest)) +
           " " + memRefText(Instr.Mem);
    if (Instr.Mem.Indirect)
      Out += " ind(" + Op(0) + ")";
    if (Instr.Paired)
      Out += " paired";
    break;
  case Opcode::Store:
    Out += std::string("store ") +
           typeToken(L.regClass(Instr.Operands[0])) + " " + Op(0) + ", " +
           memRefText(Instr.Mem);
    if (Instr.Mem.Indirect)
      Out += " ind(" + Op(1) + ")";
    break;
  case Opcode::ExitIf:
    Out += "exit " + Op(0) + " prob=" + exactDouble(Instr.TakenProb);
    break;
  case Opcode::Call: {
    // The IR keeps no callee identity; "extern" marks an opaque call.
    Out += "call @extern(";
    for (size_t I = 0; I < Instr.Operands.size(); ++I) {
      if (I > 0)
        Out += ", ";
      Out += std::string(typeToken(L.regClass(Instr.Operands[I]))) + " " +
             Op(I);
    }
    Out += ")";
    break;
  }
  case Opcode::IvAdd:
    Dest();
    Out += "iv_add i64 " + Op(0);
    break;
  case Opcode::IvCmp:
    Dest();
    Out += "iv_cmp i64 " + Op(0);
    break;
  case Opcode::BackBr:
    Out += "back_br i1 " + Op(0);
    break;
  }
  if (Instr.Pred != NoReg)
    Out += " when(" + Names.name(Instr.Pred) + ")";
  return Out;
}

} // namespace

std::string metaopt::exportLoop(const Loop &L) {
  ExportNames Names(L);
  std::string Out = "mloop 1\n";
  Out += "loop \"" + L.name() + "\"";
  Out += " lang=" + std::string(sourceLanguageName(L.language()));
  Out += " depth=" + std::to_string(L.nestLevel());
  if (L.hasKnownTripCount()) {
    Out += " trip=" + std::to_string(L.tripCount());
  } else {
    Out += " trip=?";
    Out += " rtrip=" + std::to_string(L.runtimeTripCount());
  }
  Out += " {\n";
  for (const PhiNode &Phi : L.phis())
    Out += "  " + Names.name(Phi.Dest) + " = phi " +
           typeToken(L.regClass(Phi.Dest)) + " [" + Names.name(Phi.Init) +
           ", " + Names.name(Phi.Recur) + "]\n";
  for (const Instruction &Instr : L.body())
    Out += "  " + instructionText(L, Instr, Names) + "\n";
  Out += "}\n";
  return Out;
}
