//===- import/ImportedCorpus.h - Committed imported kernels -----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads a directory of .mloop files (normally the committed
/// corpus/imported/ kernels) into the same Benchmark shape the synthetic
/// corpus uses, so the labeling harness, the lint sweep, and the bench
/// drivers consume imported real-code loops through the exact paths they
/// already exercise. The loader is deterministic (files sorted by name)
/// and fingerprints the result — loop text, provenance, and simulation
/// context — so experiment rows pin which real code they measured, the
/// same way model bundles pin the synthetic corpus.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IMPORT_IMPORTEDCORPUS_H
#define METAOPT_IMPORT_IMPORTEDCORPUS_H

#include "support/Fingerprint.h"
#include "corpus/BenchmarkSuite.h"
#include "import/Import.h"

#include <string>
#include <vector>

namespace metaopt {

/// The imported kernel corpus: every loop accepted from a directory of
/// .mloop files, with per-loop provenance kept alongside.
struct ImportedCorpus {
  std::vector<ImportedLoop> Loops;
  /// One diagnostic stream for the whole directory, file order.
  DiagnosticReport Report;
  /// Files that were read, sorted, relative order stable.
  std::vector<std::string> Files;

  bool succeeded() const { return !Report.hasErrors(); }
};

/// Imports every *.mloop file under \p Dir (non-recursive, sorted by file
/// name, strict mode). Missing or empty directories yield an
/// I000-io-error so a misconfigured corpus path cannot silently pass as
/// an empty-but-clean corpus.
ImportedCorpus loadImportedCorpus(const std::string &Dir);

/// Wraps the imported loops as one pseudo-Benchmark (Suite "Imported")
/// so corpus-shaped consumers — labeling, lint, fingerprints — apply
/// unchanged. Per-loop SimContext and Executions carry over; kernels are
/// real code, so Kind is a nominal Mixed.
Benchmark toBenchmark(const ImportedCorpus &Corpus,
                      std::string Name = "imported");

/// Fingerprint over loop text, provenance, context, and weights.
/// Deliberately distinct from corpusFingerprint() (different domain
/// string) so a synthetic-corpus print can never collide semantically
/// with an imported-corpus print.
Fingerprint importedCorpusFingerprint(const ImportedCorpus &Corpus);

} // namespace metaopt

#endif // METAOPT_IMPORT_IMPORTEDCORPUS_H
