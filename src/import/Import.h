//===- import/Import.h - Real-code loop ingestion front door ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The importer for the "mloop" interchange format: an LLVM-IR-shaped
/// serialization of innermost loops, covering the subset a real
/// feature-extraction pass emits — per-instruction opcodes and operand
/// shape, memory references with symbolic strides, trip counts, and the
/// FP/int mix. importLoops() parses the format with stable I-prefixed
/// diagnostics (the same Diagnostic model the verifier and lint engine
/// use) and lowers each loop into the repo's own IR: opcodes are mapped,
/// def-use is reconstructed into phis and predication, memory references
/// are synthesized, trip counts are bound, and the canonical loop-control
/// tail is appended when the input does not carry one. Every accepted
/// loop is verifier-clean (V001-V018) and interpreter-executable, so the
/// whole oracle stack in src/fuzz applies to imported loops unchanged.
///
/// The grammar, the diagnostic catalog, and the provenance semantics are
/// documented in docs/IMPORT.md. The inverse direction (exporting a Loop
/// into the format, used by the fuzzer's importer-round-trip oracle)
/// lives in import/Export.h.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IMPORT_IMPORT_H
#define METAOPT_IMPORT_IMPORT_H

#include "ir/Diagnostics.h"
#include "ir/Loop.h"
#include "ir/SymbolContext.h"
#include "sim/Simulator.h"

#include <string>
#include <string_view>
#include <vector>

namespace metaopt {

/// Stable IDs of the importer's diagnostics ("I" for import). One ID per
/// rejection path; docs/IMPORT.md carries the full catalog and
/// tests/import_test.cpp pins one negative test per ID.
namespace idiag {
constexpr const char *IoError = "I000-io-error";
constexpr const char *MissingHeader = "I001-missing-header";
constexpr const char *BadVersion = "I002-bad-version";
constexpr const char *Syntax = "I003-syntax";
constexpr const char *UnknownDirective = "I004-unknown-directive";
constexpr const char *UnknownOpcode = "I005-unknown-opcode";
constexpr const char *BadType = "I006-bad-type";
constexpr const char *DuplicateValue = "I007-duplicate-value";
constexpr const char *PhiRecurUndefined = "I008-phi-recur-undefined";
constexpr const char *DefUseCycle = "I009-def-use-cycle";
constexpr const char *TripOutOfRange = "I010-trip-out-of-range";
constexpr const char *BadMemRef = "I011-bad-memref";
constexpr const char *BadProbability = "I012-bad-probability";
constexpr const char *OperandCount = "I013-operand-count";
constexpr const char *ClassMismatch = "I014-class-mismatch";
constexpr const char *Truncated = "I015-truncated";
constexpr const char *EmptyLoop = "I016-empty-loop";
constexpr const char *BadGuard = "I017-bad-guard";
constexpr const char *BadIndex = "I018-bad-index";
constexpr const char *PhiInitDefined = "I019-phi-init-defined";
constexpr const char *BadDirectiveArg = "I020-bad-directive-arg";
} // namespace idiag

/// Where an imported loop came from, as recorded by the extractor's
/// "source" directive plus the import file itself. Folded into the
/// imported-corpus fingerprint so downstream artifacts (bench JSON rows,
/// experiment tables) pin exactly which real code they measured.
struct ImportProvenance {
  std::string SourceFile; ///< Original source file ("" when unstated).
  unsigned SourceLine = 0; ///< 1-based line in SourceFile, 0 unknown.
  std::string Function;   ///< Enclosing function name.
  std::string Extractor;  ///< Tool/pass that produced the serialization.
  std::string ImportFile; ///< The .mloop file the loop was read from.

  bool empty() const {
    return SourceFile.empty() && SourceLine == 0 && Function.empty() &&
           Extractor.empty();
  }
};

/// One successfully imported loop: the lowered IR plus the program
/// context the extractor measured around it.
struct ImportedLoop {
  Loop TheLoop;
  ImportProvenance Prov;
  /// Simulation context from the "context" directive (defaults match the
  /// corpus-wide SimContext defaults when the directive is absent).
  SimContext Ctx;
  /// Times the program enters the loop per run ("context execs=");
  /// weights whole-program speedup like CorpusLoop::Executions.
  int64_t Executions = 1;
  /// Array extents/strides declared by "array" directives, resolved to
  /// the lowered loop's interned symbol ids. Declarations naming symbols
  /// the loop never touches are dropped. The A-series lint passes check
  /// the loop against these claims.
  LoopSymbolContext Symbols;
};

/// Import configuration.
struct ImportOptions {
  /// Strict (default): any error rejects the whole file — Loops is
  /// cleared. Lenient: loops with loop-scoped errors are skipped (their
  /// diagnostics stay in the report) and the clean remainder is kept;
  /// file-scoped errors (missing/bad header, truncation, I/O) still
  /// reject everything.
  bool Lenient = false;
};

/// Result of importing one mloop file.
struct ImportResult {
  std::vector<ImportedLoop> Loops;
  /// All diagnostics, in source order. Every entry of Loops is clean.
  DiagnosticReport Report;
  /// Loop headers seen in the input (accepted + rejected).
  size_t ParsedLoops = 0;

  /// True when no error-severity diagnostics were produced.
  bool succeeded() const { return !Report.hasErrors(); }
};

/// Imports every loop in \p Text. \p FileName (recorded as provenance and
/// used in diagnostics) may be empty for in-memory input.
ImportResult importLoops(std::string_view Text, std::string FileName = "",
                         const ImportOptions &Options = {});

/// Reads \p Path and imports it; unreadable files yield I000-io-error.
ImportResult importFile(const std::string &Path,
                        const ImportOptions &Options = {});

} // namespace metaopt

#endif // METAOPT_IMPORT_IMPORT_H
