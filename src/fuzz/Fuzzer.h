//===- fuzz/Fuzzer.h - Differential fuzzing campaigns -----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver behind the `metaopt-fuzz` tool and the `fuzz` test
/// tier: generate N loops from a seed, run every oracle on each (in
/// parallel on the deterministic pool), shrink whatever fails, and render
/// a log plus minimized `.loop` reproducers. A campaign is a pure
/// function of its options — same seed, same results, same log bytes, at
/// any thread count — so CI failures reproduce locally by copying one
/// command line.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_FUZZ_FUZZER_H
#define METAOPT_FUZZ_FUZZER_H

#include "fuzz/FuzzLoopGen.h"
#include "fuzz/Oracles.h"

#include <cstdint>
#include <string>
#include <vector>

namespace metaopt {

/// Campaign configuration.
struct FuzzCampaignOptions {
  /// Master seed: drives generation (FuzzGenOptions::Seed) and the
  /// interpreter (OracleOptions::Seed).
  uint64_t Seed = 1;
  /// Loops to generate and check.
  uint64_t Iterations = 500;
  /// Generation shape knobs; Seed inside is overwritten with the master
  /// seed above.
  FuzzGenOptions Gen;
  /// Oracle selection; Seed inside is overwritten with the master seed.
  OracleOptions Oracle;
  /// Minimize failing loops before reporting (on for campaigns, off for
  /// replay, where the input is already minimal).
  bool Shrink = true;
};

/// One failing case, fully described.
struct FuzzCaseReport {
  uint64_t Index = 0;
  /// Violations on the generated (unshrunk) loop.
  std::vector<OracleFailure> Failures;
  /// printLoop of the minimized reproducer (the generated loop itself
  /// when shrinking is disabled or no smaller loop still failed).
  std::string MinimizedText;
  /// Oracle names the minimized loop still violates.
  std::vector<std::string> MinimizedOracles;
};

/// Campaign outcome.
struct FuzzCampaignResult {
  uint64_t CasesRun = 0;
  uint64_t CasesFailed = 0;
  /// Failing cases ordered by index.
  std::vector<FuzzCaseReport> Reports;
  /// Deterministic human-readable log (one line per failure + summary);
  /// byte-identical across runs and thread counts.
  std::string Log;
};

/// Runs a campaign on the global thread pool.
FuzzCampaignResult runFuzzCampaign(const FuzzCampaignOptions &Options);

/// Runs the oracles on every loop in \p Text (a .loop file, typically a
/// saved reproducer); returns the per-loop failures flattened, prefixed
/// with the loop name. A parse error is reported as a single failure of
/// oracle "parse".
std::vector<OracleFailure> replayLoops(const std::string &Text,
                                       const std::string &FileName,
                                       const OracleOptions &Options = {});

/// File name for a minimized reproducer: fuzz-<seed>-<index>-<oracle>.loop.
std::string reproFileName(uint64_t Seed, const FuzzCaseReport &Report);

} // namespace metaopt

#endif // METAOPT_FUZZ_FUZZER_H
