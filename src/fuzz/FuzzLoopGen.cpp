//===- fuzz/FuzzLoopGen.cpp - Seeded random loop generation ---------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzLoopGen.h"

#include "ir/LoopBuilder.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <cassert>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

/// All references to one base symbol share an element class and size, so
/// overlapping accesses stay order-independent under the interpreter's
/// first-touch synthesis (exec/MemoryImage.h): any two accesses of a cell
/// either coincide exactly or are disjoint.
struct SymInfo {
  int32_t Sym = 0;
  RegClass Class = RegClass::Float;
  int32_t SizeBytes = 8;
  int64_t Stride = 8; ///< Bytes per iteration; every ref uses this stride.
};

class Generator {
public:
  Generator(const FuzzGenOptions &Options, uint64_t Index)
      : Options(Options),
        R(Rng::splitStream(Options.Seed ^ 0xf022a11ULL, Index)),
        B(makeBuilder(Options, Index, R)) {}

  Loop run() {
    makeSymbols();
    seedLiveIns();

    unsigned Fragments =
        1 + static_cast<unsigned>(R.nextBelow(
                Options.MaxFragments > 0 ? Options.MaxFragments : 1));
    for (unsigned F = 0; F < Fragments; ++F)
      emitFragment();

    // Every loop stores something: the memory image is the most sensitive
    // half of the differential digest, so don't let a loop's observable
    // state collapse to phi values only.
    storeFragment();

    Loop L = B.finalize();
    assert(isWellFormed(L) && "fuzz generator emitted a malformed loop");
    return L;
  }

private:
  static LoopBuilder makeBuilder(const FuzzGenOptions &Options,
                                 uint64_t Index, Rng &R) {
    SourceLanguage Lang = static_cast<SourceLanguage>(R.nextBelow(3));
    int Nest = 1 + static_cast<int>(R.nextBelow(3));
    int64_t MaxTrip = Options.MaxTripCount > 0 ? Options.MaxTripCount : 1;
    int64_t Trip;
    if (R.nextBool(0.35)) {
      // Known trip count, weighted toward the edge cases around the
      // unroll factors (0, 1, U-1, U, U+1 for U up to 8).
      static const int64_t Edges[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17};
      Trip = Edges[R.nextBelow(sizeof(Edges) / sizeof(Edges[0]))];
      if (Trip > MaxTrip)
        Trip = MaxTrip;
    } else {
      Trip = Loop::UnknownTripCount;
    }
    LoopBuilder Builder("fuzz" + std::to_string(Index), Lang, Nest, Trip);
    if (Trip == Loop::UnknownTripCount)
      Builder.loop().setRuntimeTripCount(1 + R.nextInRange(0, MaxTrip - 1));
    return Builder;
  }

  void makeSymbols() {
    unsigned NumSyms = 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned S = 0; S < NumSyms; ++S) {
      SymInfo Info;
      Info.Sym = static_cast<int32_t>(S);
      Info.Class = R.nextBool(0.6) ? RegClass::Float : RegClass::Int;
      Info.SizeBytes = R.nextBool(0.25) ? 4 : 8;
      // Stride in elements: 0 (loop-invariant address), +-1 (dense,
      // overlapping reuse across iterations), 2..3 (gaps).
      static const int64_t Elems[] = {-2, -1, 0, 1, 1, 1, 2, 3};
      Info.Stride =
          Elems[R.nextBelow(sizeof(Elems) / sizeof(Elems[0]))] *
          Info.SizeBytes;
      Syms.push_back(Info);
    }
  }

  void seedLiveIns() {
    unsigned NumInt = 1 + static_cast<unsigned>(R.nextBelow(2));
    unsigned NumFloat = 1 + static_cast<unsigned>(R.nextBelow(2));
    for (unsigned I = 0; I < NumInt; ++I)
      IntVals.push_back(B.liveIn(RegClass::Int, "n" + std::to_string(I)));
    for (unsigned I = 0; I < NumFloat; ++I)
      FloatVals.push_back(B.liveIn(RegClass::Float, "a" + std::to_string(I)));
  }

  const SymInfo &pickSym() { return Syms[R.nextBelow(Syms.size())]; }

  MemRef makeRef(const SymInfo &Info) {
    MemRef Ref;
    Ref.BaseSym = Info.Sym;
    Ref.Stride = Info.Stride;
    Ref.Offset = R.nextInRange(-3, 6) * Info.SizeBytes;
    Ref.SizeBytes = Info.SizeBytes;
    return Ref;
  }

  RegId pickInt() { return IntVals[R.nextBelow(IntVals.size())]; }
  RegId pickFloat() { return FloatVals[R.nextBelow(FloatVals.size())]; }

  RegId pickValue(RegClass RC) {
    return RC == RegClass::Float ? pickFloat() : pickInt();
  }

  void pushValue(RegClass RC, RegId Reg) {
    (RC == RegClass::Float ? FloatVals : IntVals).push_back(Reg);
  }

  /// A bounded index register for indirect references.
  RegId maskedIndex() {
    return B.bitAnd(pickInt(), B.iconst(static_cast<int64_t>(
                                   R.nextBelow(4) * 8 + 7)));
  }

  RegId emitIntOp() {
    RegId A = pickInt(), C = pickInt();
    switch (R.nextBelow(8)) {
    case 0:
      return B.iadd(A, C);
    case 1:
      return B.isub(A, C);
    case 2:
      return B.imul(A, C);
    case 3:
      return B.bitAnd(A, C);
    case 4:
      return B.bitXor(A, C);
    case 5:
      return B.shl(A, B.iconst(R.nextInRange(0, 3)));
    case 6:
      return B.idiv(A, B.iconst(R.nextInRange(1, 5)));
    default:
      return B.iadd(A, B.iconst(R.nextInRange(-8, 63)));
    }
  }

  RegId emitFloatOp() {
    RegId A = pickFloat(), C = pickFloat();
    switch (R.nextBelow(8)) {
    case 0:
      return B.fadd(A, C);
    case 1:
      return B.fsub(A, C);
    case 2:
      return B.fmul(A, C);
    case 3:
      return B.fma(A, C, pickFloat());
    case 4:
      return B.fdiv(A, C);
    case 5:
      return B.fsqrt(A);
    case 6:
      return B.fcvt(pickInt());
    default:
      return B.fadd(A, B.fconst(R.nextInRange(-4, 9)));
    }
  }

  void emitFragment() {
    switch (R.nextBelow(10)) {
    case 0:
    case 1:
      loadArithFragment();
      break;
    case 2:
      storeFragment();
      break;
    case 3:
      forwardingFragment();
      break;
    case 4:
      reductionFragment();
      break;
    case 5:
      rotationFragment();
      break;
    case 6:
      diamondFragment();
      break;
    case 7:
      if (Options.AllowExits) {
        exitFragment();
        break;
      }
      loadArithFragment();
      break;
    case 8:
      indirectFragment();
      break;
    default:
      if (Options.AllowCalls && R.nextBool(0.4)) {
        callFragment();
        break;
      }
      loadArithFragment();
      break;
    }
  }

  void loadArithFragment() {
    const SymInfo &Info = pickSym();
    RegId V = B.load(Info.Class, makeRef(Info));
    pushValue(Info.Class, V);
    unsigned Ops = 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I < Ops; ++I) {
      if (R.nextBool(0.55))
        FloatVals.push_back(emitFloatOp());
      else
        IntVals.push_back(emitIntOp());
    }
  }

  void storeFragment() {
    const SymInfo &Info = pickSym();
    B.store(pickValue(Info.Class), makeRef(Info));
  }

  /// Store then load the same address key: the exact shape
  /// transform/MemoryOpt.h forwards, including 4-byte references whose
  /// stored value is narrowed on the memory path.
  void forwardingFragment() {
    const SymInfo &Info = pickSym();
    MemRef Ref = makeRef(Info);
    B.store(pickValue(Info.Class), Ref);
    RegId V = B.load(Info.Class, Ref);
    pushValue(Info.Class, V);
    if (R.nextBool(0.5)) {
      // A second load of the same key: redundant-load elimination.
      RegId W = B.load(Info.Class, Ref);
      pushValue(Info.Class, W);
    }
  }

  void reductionFragment() {
    bool Float = R.nextBool(0.65);
    RegClass RC = Float ? RegClass::Float : RegClass::Int;
    RegId Acc = B.phi(RC, Float ? "facc" : "iacc");
    bool Predicated = PredVals.size() && R.nextBool(0.2);
    if (Predicated)
      B.setPredicate(PredVals[R.nextBelow(PredVals.size())]);
    RegId Next;
    if (Float) {
      switch (R.nextBelow(3)) {
      case 0:
        Next = B.fadd(Acc, pickFloat());
        break;
      case 1:
        Next = B.fmul(Acc, pickFloat());
        break;
      default:
        Next = B.fma(pickFloat(), pickFloat(), Acc);
        break;
      }
    } else {
      Next = R.nextBool(0.7) ? B.iadd(Acc, pickInt())
                             : B.imul(Acc, pickInt());
    }
    if (Predicated)
      B.clearPredicate();
    B.setPhiRecur(Acc, Next);
    // Occasionally observe the running value, which must veto splitting.
    if (R.nextBool(0.3))
      pushValue(RC, Acc);
  }

  /// Two-phi rotation a <- b <- t. With probability ~1/2, b's update is
  /// accumulator-shaped (t = b + x), making b *look* splittable while its
  /// running value is observed through a's recurrence — a trap for the
  /// unroller's reassociation legality check.
  void rotationFragment() {
    bool Float = R.nextBool(0.6);
    RegClass RC = Float ? RegClass::Float : RegClass::Int;
    RegId A = B.phi(RC, Float ? "frot" : "irot");
    RegId Bp = B.phi(RC, Float ? "frotb" : "irotb");
    RegId T;
    if (R.nextBool(0.5))
      T = Float ? B.fadd(Bp, pickFloat()) : B.iadd(Bp, pickInt());
    else
      T = Float ? B.fmul(A, pickFloat()) : B.bitXor(A, pickInt());
    B.setPhiRecur(A, Bp);
    B.setPhiRecur(Bp, T);
    if (R.nextBool(0.4))
      pushValue(RC, A);
  }

  void diamondFragment() {
    RegId P = R.nextBool(0.5) ? B.fcmp(pickFloat(), pickFloat())
                              : B.icmp(pickInt(), pickInt());
    PredVals.push_back(P);
    if (R.nextBool(0.5)) {
      // Select diamond: both arms computed, select picks one.
      RegId T1 = emitFloatOp();
      RegId T2 = emitFloatOp();
      FloatVals.push_back(B.select(P, T1, T2));
    } else {
      // True predication: the guarded def is consumed unguarded later,
      // exercising the defined predicated-off-writes-default semantics
      // across unroll renaming.
      B.setPredicate(P);
      RegId T = R.nextBool(0.5) ? emitFloatOp() : emitIntOp();
      B.clearPredicate();
      bool WasFloat = B.loop().regClass(T) == RegClass::Float;
      pushValue(WasFloat ? RegClass::Float : RegClass::Int, T);
    }
  }

  void exitFragment() {
    // A counted exit: c starts at a synthesized live-in and increments;
    // the exit fires iff bound < c happens within the trip count —
    // deterministically, possibly never.
    RegId C = B.phi(RegClass::Int, "ectr");
    RegId Next = B.iadd(C, B.iconst(1 + R.nextInRange(0, 2)));
    B.setPhiRecur(C, Next);
    RegId Bound = B.liveIn(RegClass::Int, "ebound");
    RegId P = B.icmp(Bound, C);
    B.exitIf(P, 0.02);
  }

  void indirectFragment() {
    const SymInfo &Info = pickSym();
    MemRef Ref = makeRef(Info);
    Ref.Indirect = true;
    RegId Index = maskedIndex();
    if (R.nextBool(0.85)) {
      RegId V = B.load(Info.Class, Ref, Index);
      pushValue(Info.Class, V);
    } else {
      B.store(pickValue(Info.Class), Ref, Index);
    }
  }

  void callFragment() {
    std::vector<RegId> Args;
    unsigned N = static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I < N; ++I)
      Args.push_back(R.nextBool(0.5) ? pickInt() : pickFloat());
    B.call(std::move(Args));
  }

  const FuzzGenOptions &Options;
  Rng R;
  LoopBuilder B;
  std::vector<SymInfo> Syms;
  std::vector<RegId> IntVals;
  std::vector<RegId> FloatVals;
  std::vector<RegId> PredVals;
};

} // namespace

Loop metaopt::generateFuzzLoop(const FuzzGenOptions &Options,
                               uint64_t Index) {
  return Generator(Options, Index).run();
}
