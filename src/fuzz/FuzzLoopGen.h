//===- fuzz/FuzzLoopGen.h - Seeded random loop generation -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random generator of verifier-clean loops for the differential
/// fuzzer. Unlike the corpus generators (corpus/LoopGenerators.h), which
/// aim for *realistic* loop populations, this one aims for *adversarial
/// coverage* of the transformation stack: overlapping strides, negative
/// strides, 4-byte accesses, store-to-load forwarding chains, reductions
/// of every splittable shape, phi rotations, true-predication consumed by
/// later iterations, rare exits, indirect accesses, and calls — composed
/// randomly so unlikely interactions (a predicated reduction feeding a
/// rotation next to an aliasing store) come up within a few hundred
/// iterations.
///
/// Determinism: a loop is a pure function of (options, index) via
/// Rng::splitStream, so campaigns reproduce bit-for-bit at any thread
/// count and a failing index can be regenerated in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_FUZZ_FUZZLOOPGEN_H
#define METAOPT_FUZZ_FUZZLOOPGEN_H

#include "ir/Loop.h"

#include <cstdint>

namespace metaopt {

/// Generation knobs.
struct FuzzGenOptions {
  uint64_t Seed = 1;
  /// Most fragments composed into one body (>= 1).
  unsigned MaxFragments = 5;
  /// Largest runtime trip count assigned (kept small: the reference
  /// interpreter executes every iteration at up to 8 unroll factors).
  int64_t MaxTripCount = 48;
  /// Emit early-exit fragments (off when a client needs SWP-eligible
  /// loops only).
  bool AllowExits = true;
  /// Emit opaque call fragments.
  bool AllowCalls = true;
};

/// Generates loop number \p Index of the campaign described by \p Options.
/// The result always passes verifyLoop (asserted in debug builds and
/// enforced by tests/fuzz_test.cpp).
Loop generateFuzzLoop(const FuzzGenOptions &Options, uint64_t Index);

} // namespace metaopt

#endif // METAOPT_FUZZ_FUZZLOOPGEN_H
