//===- fuzz/Shrinker.cpp --------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "ir/Verifier.h"

using namespace metaopt;

namespace {

void setTrip(Loop &L, int64_t Trip) {
  if (L.hasKnownTripCount())
    L.setTripCount(Trip);
  else
    L.setRuntimeTripCount(Trip);
}

} // namespace

Loop metaopt::shrinkLoop(const Loop &L, const StillFailsFn &StillFails) {
  Loop Current = L;
  // Every candidate must remain legal IR before the failure predicate is
  // consulted: the seeds this produces feed the same front door
  // (parseLoops + verifyLoop) as any other loop.
  auto Accept = [&](const Loop &Candidate) {
    return isWellFormed(Candidate) && StillFails(Candidate);
  };

  // Budget on predicate evaluations; each one may replay several oracles.
  unsigned Budget = 2000;
  bool Progress = true;
  while (Progress && Budget > 0) {
    Progress = false;

    // Smaller trip counts first: they shrink every later replay too.
    while (Budget > 0) {
      int64_t Trip = Current.runtimeTripCount();
      if (Trip <= 0)
        break;
      Loop Halved = Current;
      setTrip(Halved, Trip / 2);
      --Budget;
      if (Accept(Halved)) {
        Current = std::move(Halved);
        Progress = true;
        continue;
      }
      Loop Decremented = Current;
      setTrip(Decremented, Trip - 1);
      --Budget;
      if (Accept(Decremented)) {
        Current = std::move(Decremented);
        Progress = true;
        continue;
      }
      break;
    }

    // Drop body instructions, latest first (later instructions are more
    // likely to be pure consumers whose removal keeps the loop legal).
    // The canonical three-instruction control tail stays.
    size_t Removable =
        Current.body().size() >= 3 ? Current.body().size() - 3 : 0;
    for (size_t Index = Removable; Index-- > 0 && Budget > 0;) {
      Loop Candidate = Current;
      Candidate.body().erase(Candidate.body().begin() +
                             static_cast<long>(Index));
      --Budget;
      if (Accept(Candidate)) {
        Current = std::move(Candidate);
        Progress = true;
      }
    }

    // Drop phis whose consumers went away with the instructions above.
    for (size_t Index = Current.phis().size(); Index-- > 0 && Budget > 0;) {
      Loop Candidate = Current;
      Candidate.phis().erase(Candidate.phis().begin() +
                             static_cast<long>(Index));
      --Budget;
      if (Accept(Candidate)) {
        Current = std::move(Candidate);
        Progress = true;
      }
    }

    // Un-predicate instructions: guards are a frequent red herring.
    for (size_t Index = 0; Index < Current.body().size() && Budget > 0;
         ++Index) {
      if (Current.body()[Index].Pred == NoReg)
        continue;
      Loop Candidate = Current;
      Candidate.body()[Index].Pred = NoReg;
      --Budget;
      if (Accept(Candidate)) {
        Current = std::move(Candidate);
        Progress = true;
      }
    }
  }
  return Current;
}
