//===- fuzz/Oracles.h - Differential correctness oracles --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-loop correctness oracles the fuzzer runs against every
/// generated loop. Each oracle states an invariant the rest of the system
/// promises and checks it with an independent mechanism — the reference
/// interpreter (exec/Interpreter.h) for semantic equivalence, the
/// standalone schedule validators for scheduler legality, byte comparison
/// for serialization round-trips:
///
///  - round-trip: printLoop -> parseLoops -> printLoop is byte-identical;
///  - import-round-trip: exportLoop -> importLoops -> printLoop matches
///    the original printLoop byte for byte, hammering the src/import
///    front door (parser, lowering, diagnostics) with generated loops;
///  - unroll-equivalence: unrollLoop(L, U) computes the same final state
///    as U iterations of L, for U = 1..MaxUnrollFactor, including split
///    accumulator lanes, early-exit mapping, and (for integer reductions)
///    full main-loop + epilogue composition against a straight run;
///  - memory-opt: optimizeMemory preserves final state;
///  - list-schedule / modulo-schedule: every schedule passes its
///    validator, and the modulo II respects the resource lower bound;
///  - sim-cache: the content key is stable under reparse and cached
///    results are byte-identical to fresh simulation;
///  - bundle: a serialized + reparsed model bundle predicts identically
///    to the original on the loop's feature vector;
///  - static-claims: every claim the symbolic analysis
///    (analysis/symbolic/StrideInterval.h) is prepared to defend —
///    guard verdicts, value ranges, cross-iteration disjointness — holds
///    on a traced reference execution, and the canonical simulation form
///    (analysis/symbolic/Canonical.h) receives the same SimResult as the
///    original loop, validating the labeling pruner's certificate.
///
/// Oracles never abort: every violation becomes an OracleFailure so the
/// campaign can count, minimize, and report them.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_FUZZ_ORACLES_H
#define METAOPT_FUZZ_ORACLES_H

#include "analysis/symbolic/StrideInterval.h"
#include "ir/Loop.h"

#include <cstdint>
#include <string>
#include <vector>

namespace metaopt {

/// One oracle violation on one loop.
struct OracleFailure {
  /// Stable oracle identifier ("unroll-equivalence", "sim-cache", ...).
  std::string Oracle;
  /// Human-readable description of the violated invariant.
  std::string Detail;
};

/// Which oracles to run; all on by default. The shrinker narrows to the
/// single failing oracle while minimizing.
struct OracleOptions {
  /// Interpreter seed (live-in synthesis, first-touch memory).
  uint64_t Seed = 1;
  bool CheckRoundTrip = true;
  bool CheckImportRoundTrip = true;
  bool CheckUnroll = true;
  bool CheckMemoryOpt = true;
  bool CheckSchedulers = true;
  bool CheckSimCache = true;
  bool CheckBundle = true;
  bool CheckStaticClaims = true;
};

/// Individual oracles; append violations to \p Out.
void oracleRoundTrip(const Loop &L, std::vector<OracleFailure> &Out);
void oracleImportRoundTrip(const Loop &L, std::vector<OracleFailure> &Out);
void oracleUnrollEquivalence(const Loop &L, uint64_t Seed,
                             std::vector<OracleFailure> &Out);
void oracleMemoryOpt(const Loop &L, uint64_t Seed,
                     std::vector<OracleFailure> &Out);
void oracleSchedulers(const Loop &L, std::vector<OracleFailure> &Out);
void oracleSimCache(const Loop &L, std::vector<OracleFailure> &Out);
void oracleBundle(const Loop &L, std::vector<OracleFailure> &Out);
void oracleStaticClaims(const Loop &L, uint64_t Seed,
                        std::vector<OracleFailure> &Out);

/// The static-claims oracle's checking core: replays \p Claims (in the
/// shape SymbolicAnalysis::claims() produces) against a traced reference
/// execution of \p L and reports every refuted claim. Exposed separately
/// so tests can confirm the oracle refutes a deliberately unsound claim
/// set; oracleStaticClaims feeds it the real analysis and additionally
/// validates the canonical-form simulation certificate.
void checkClaimsAgainstExecution(const Loop &L,
                                 const std::vector<StaticClaim> &Claims,
                                 uint64_t Seed,
                                 std::vector<OracleFailure> &Out);

/// Runs the oracles selected by \p Options on \p L. The loop must be
/// verifier-clean (checked: a malformed input is itself reported as a
/// failure of oracle "well-formed" and nothing else runs).
std::vector<OracleFailure> runOracles(const Loop &L,
                                      const OracleOptions &Options = {});

} // namespace metaopt

#endif // METAOPT_FUZZ_ORACLES_H
