//===- fuzz/Oracles.cpp ---------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "analysis/DependenceGraph.h"
#include "analysis/symbolic/Canonical.h"
#include "analysis/symbolic/StrideInterval.h"
#include "cache/SimCache.h"
#include "core/features/FeatureExtractor.h"
#include "core/ml/Dataset.h"
#include "core/ml/Forest.h"
#include "core/ml/Mlp.h"
#include "core/ml/NearNeighbor.h"
#include "exec/Interpreter.h"
#include "import/Export.h"
#include "import/Import.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "machine/Machine.h"
#include "sched/IterativeModulo.h"
#include "sched/ListScheduler.h"
#include "sched/ModuloScheduler.h"
#include "sched/ScheduleValidate.h"
#include "serve/ModelBundle.h"
#include "sim/Simulator.h"
#include "support/Rng.h"
#include "transform/MemoryOpt.h"
#include "transform/Unroller.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace metaopt;

namespace {

void fail(std::vector<OracleFailure> &Out, const char *Oracle,
          std::string Detail) {
  Out.push_back({Oracle, std::move(Detail)});
}

std::string describeValue(RegClass RC, const ExecValue &V) {
  switch (RC) {
  case RegClass::Int:
    return std::to_string(V.I);
  case RegClass::Float:
    return std::to_string(V.F);
  case RegClass::Pred:
    return V.P ? "true" : "false";
  }
  return "?";
}

int64_t wrapAdd64(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

int64_t wrapMul64(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

/// Body instruction defining \p Reg, or nullptr.
const Instruction *definingInstr(const Loop &L, RegId Reg) {
  for (const Instruction &Instr : L.body())
    if (Instr.Dest == Reg)
      return &Instr;
  return nullptr;
}

bool hasExit(const Loop &L) {
  for (const Instruction &Instr : L.body())
    if (Instr.Op == Opcode::ExitIf)
      return true;
  return false;
}

bool hasCall(const Loop &L) {
  for (const Instruction &Instr : L.body())
    if (Instr.isCall())
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// round-trip
//===----------------------------------------------------------------------===//

void metaopt::oracleRoundTrip(const Loop &L, std::vector<OracleFailure> &Out) {
  std::string First = printLoop(L);
  ParseResult Parsed = parseLoops(First, L.sourceFile());
  if (!Parsed.Error.empty()) {
    fail(Out, "round-trip", "printLoop output rejected by parser: " +
                                Parsed.Error);
    return;
  }
  if (Parsed.Loops.size() != 1) {
    fail(Out, "round-trip",
         "printLoop output parsed into " +
             std::to_string(Parsed.Loops.size()) + " loops");
    return;
  }
  if (!isWellFormed(Parsed.Loops[0])) {
    fail(Out, "round-trip", "reparsed loop is not verifier-clean");
    return;
  }
  std::string Second = printLoop(Parsed.Loops[0]);
  if (First != Second)
    fail(Out, "round-trip",
         "print -> parse -> print changed the text (" +
             std::to_string(First.size()) + " vs " +
             std::to_string(Second.size()) + " bytes)");
}

//===----------------------------------------------------------------------===//
// import-round-trip
//===----------------------------------------------------------------------===//

void metaopt::oracleImportRoundTrip(const Loop &L,
                                    std::vector<OracleFailure> &Out) {
  std::string Exported = exportLoop(L);
  ImportResult Imported = importLoops(Exported, L.sourceFile());
  if (!Imported.succeeded()) {
    std::string Detail = "exportLoop output rejected by importer";
    if (!Imported.Report.diagnostics().empty())
      Detail += ": " + Imported.Report.diagnostics().front().Message;
    fail(Out, "import-round-trip", Detail);
    return;
  }
  if (Imported.Loops.size() != 1) {
    fail(Out, "import-round-trip",
         "exportLoop output imported as " +
             std::to_string(Imported.Loops.size()) + " loops");
    return;
  }
  std::string First = printLoop(L);
  std::string Second = printLoop(Imported.Loops[0].TheLoop);
  if (First != Second)
    fail(Out, "import-round-trip",
         "export -> import -> print changed the text (" +
             std::to_string(First.size()) + " vs " +
             std::to_string(Second.size()) + " bytes)");
}

//===----------------------------------------------------------------------===//
// unroll-equivalence
//===----------------------------------------------------------------------===//

void metaopt::oracleUnrollEquivalence(const Loop &L, uint64_t Seed,
                                      std::vector<OracleFailure> &Out) {
  const int64_t N = L.runtimeTripCount();
  if (N < 0)
    return; // No concrete execution to compare against.
  const size_t BodyNoCtl = L.body().size() >= 3 ? L.body().size() - 3 : 0;

  // Composition (main unrolled run + original-body epilogue vs one
  // straight run) is bit-exact only when reassociation cannot change
  // values: integer reductions whose accumulation is unconditional, in a
  // loop with no early exit.
  bool CompositionOk = !hasExit(L);
  for (const PhiNode &Phi : L.phis()) {
    if (!isSplittableReduction(L, Phi))
      continue;
    const Instruction *Acc = definingInstr(L, Phi.Recur);
    if (!Acc || L.regClass(Phi.Dest) != RegClass::Int ||
        Acc->Pred != NoReg) {
      CompositionOk = false;
      break;
    }
  }

  ExecResult Straight; // interp(L, N); computed lazily for composition.
  bool HaveStraight = false;

  for (unsigned U = 1; U <= MaxUnrollFactor; ++U) {
    Loop Unrolled = unrollLoop(L, U);
    std::vector<std::string> Errors = verifyLoop(Unrolled);
    if (!Errors.empty()) {
      fail(Out, "unroll-equivalence",
           "unrollLoop(U=" + std::to_string(U) +
               ") produced malformed IR: " + Errors.front());
      continue;
    }

    const int64_t M = N / U;
    const int64_t E = N % U;

    // Serial reference over the main portion, with split reductions
    // carried as U lanes so per-copy accumulators compare bit-for-bit.
    ExecOptions BaseOpts;
    BaseOpts.Seed = Seed;
    BaseOpts.Iterations = M * U;
    BaseOpts.SplitLanes = U;
    ExecResult Base = interpretLoop(L, BaseOpts);

    // The unrolled loop runs M iterations; split copies beyond the first
    // start from the reduction identity (their fresh ".k" live-ins).
    ExecOptions TargetOpts;
    TargetOpts.Seed = Seed;
    TargetOpts.Iterations = M;
    size_t Off = 0;
    std::vector<size_t> PhiOffset(L.phis().size(), 0);
    std::vector<bool> PhiSplit(L.phis().size(), false);
    for (size_t P = 0; P < L.phis().size(); ++P) {
      PhiOffset[P] = Off;
      bool Split = U > 1 && isSplittableReduction(L, L.phis()[P]);
      PhiSplit[P] = Split;
      if (Split) {
        ExecValue Identity;
        if (!reductionIdentity(L, L.phis()[P], Identity)) {
          fail(Out, "unroll-equivalence",
               "phi #" + std::to_string(P) +
                   " is splittable but has no reduction identity");
          Split = false;
          PhiSplit[P] = false;
          Off += 1;
          continue;
        }
        for (unsigned K = 1; K < U; ++K)
          TargetOpts.LiveInOverrides[Unrolled.phis()[Off + K].Init] =
              Identity;
        Off += U;
      } else {
        Off += 1;
      }
    }
    if (Off != Unrolled.phis().size()) {
      fail(Out, "unroll-equivalence",
           "U=" + std::to_string(U) + ": expected " + std::to_string(Off) +
               " unrolled phis, found " +
               std::to_string(Unrolled.phis().size()));
      continue;
    }
    ExecResult Target = interpretLoop(Unrolled, TargetOpts);

    auto Tag = [&](const std::string &What) {
      return "U=" + std::to_string(U) + ": " + What;
    };

    if (Base.Exited != Target.Exited) {
      fail(Out, "unroll-equivalence",
           Tag("exit divergence: reference ") +
               (Base.Exited ? "exited" : "ran to completion") +
               ", unrolled " + (Target.Exited ? "exited" : "completed"));
      continue;
    }
    if (!(Base.Memory == Target.Memory)) {
      fail(Out, "unroll-equivalence", Tag("stored memory differs"));
      continue;
    }
    if (Base.Exited) {
      // Reference exit at original iteration n, body index b maps to
      // unrolled iteration n/U at body index (n%U)*|body| + b.
      int64_t WantIter = Base.ExitIteration / U;
      int64_t WantBody =
          (Base.ExitIteration % U) * static_cast<int64_t>(BodyNoCtl) +
          Base.ExitBodyIndex;
      if (Target.ExitIteration != WantIter ||
          Target.ExitBodyIndex != WantBody)
        fail(Out, "unroll-equivalence",
             Tag("exit mapped to iteration " +
                 std::to_string(Target.ExitIteration) + " body index " +
                 std::to_string(Target.ExitBodyIndex) + ", expected " +
                 std::to_string(WantIter) + "/" +
                 std::to_string(WantBody)));
      continue; // Post-exit phi values are stale by design; stop here.
    }

    bool PhiMismatch = false;
    for (size_t P = 0; P < L.phis().size() && !PhiMismatch; ++P) {
      RegClass RC = L.regClass(L.phis()[P].Dest);
      if (!PhiSplit[P]) {
        if (!execValueEquals(RC, Base.PhiFinal[P],
                             Target.PhiFinal[PhiOffset[P]])) {
          fail(Out, "unroll-equivalence",
               Tag("phi #" + std::to_string(P) + " (" +
                   L.regName(L.phis()[P].Dest) + "): reference " +
                   describeValue(RC, Base.PhiFinal[P]) + ", unrolled " +
                   describeValue(RC, Target.PhiFinal[PhiOffset[P]])));
          PhiMismatch = true;
        }
        continue;
      }
      for (unsigned K = 0; K < U && !PhiMismatch; ++K) {
        if (!execValueEquals(RC, Base.SplitLanes[P][K],
                             Target.PhiFinal[PhiOffset[P] + K])) {
          fail(Out, "unroll-equivalence",
               Tag("split phi #" + std::to_string(P) + " lane " +
                   std::to_string(K) + ": reference " +
                   describeValue(RC, Base.SplitLanes[P][K]) +
                   ", unrolled copy " +
                   describeValue(RC,
                                 Target.PhiFinal[PhiOffset[P] + K])));
          PhiMismatch = true;
        }
      }
    }
    if (PhiMismatch)
      continue;

    // Full composition: M unrolled iterations, fold the split
    // accumulators, run the E-iteration epilogue on the original body,
    // and compare against one straight N-iteration run.
    if (!CompositionOk || U == 1)
      continue;
    if (!HaveStraight) {
      ExecOptions SOpts;
      SOpts.Seed = Seed;
      SOpts.Iterations = N;
      Straight = interpretLoop(L, SOpts);
      HaveStraight = true;
    }
    ExecOptions EpiOpts;
    EpiOpts.Seed = Seed;
    EpiOpts.Iterations = E;
    EpiOpts.StartIteration = M * U;
    for (size_t P = 0; P < L.phis().size(); ++P) {
      ExecValue Start = Target.PhiFinal[PhiOffset[P]];
      if (PhiSplit[P]) {
        const Instruction *Acc = definingInstr(L, L.phis()[P].Recur);
        for (unsigned K = 1; K < U; ++K) {
          int64_t Lane = Target.PhiFinal[PhiOffset[P] + K].I;
          Start.I = Acc->Op == Opcode::IMul ? wrapMul64(Start.I, Lane)
                                            : wrapAdd64(Start.I, Lane);
        }
      }
      EpiOpts.LiveInOverrides[L.phis()[P].Init] = Start;
    }
    ExecResult Epilogue =
        interpretLoop(L, EpiOpts, std::move(Target.Memory));
    if (!(Straight.Memory == Epilogue.Memory)) {
      fail(Out, "unroll-equivalence",
           Tag("composition: epilogue memory differs from straight run"));
      continue;
    }
    for (size_t P = 0; P < L.phis().size(); ++P) {
      RegClass RC = L.regClass(L.phis()[P].Dest);
      if (!execValueEquals(RC, Straight.PhiFinal[P],
                           Epilogue.PhiFinal[P])) {
        fail(Out, "unroll-equivalence",
             Tag("composition: phi #" + std::to_string(P) + " (" +
                 L.regName(L.phis()[P].Dest) + "): straight " +
                 describeValue(RC, Straight.PhiFinal[P]) +
                 ", main+epilogue " +
                 describeValue(RC, Epilogue.PhiFinal[P])));
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// memory-opt
//===----------------------------------------------------------------------===//

void metaopt::oracleMemoryOpt(const Loop &L, uint64_t Seed,
                              std::vector<OracleFailure> &Out) {
  Loop Optimized = L;
  // Run the symbolically-refined path: any unsound guard promotion or
  // disjointness proof the pass acts on shows up as a state divergence.
  SymbolicAnalysis Symbolic(Optimized);
  optimizeMemory(Optimized, &Symbolic);
  std::vector<std::string> Errors = verifyLoop(Optimized);
  if (!Errors.empty()) {
    fail(Out, "memory-opt",
         "optimizeMemory produced malformed IR: " + Errors.front());
    return;
  }
  if (L.runtimeTripCount() < 0)
    return;

  ExecOptions Opts;
  Opts.Seed = Seed;
  Opts.Iterations = L.runtimeTripCount();
  ExecResult Before = interpretLoop(L, Opts);
  ExecResult After = interpretLoop(Optimized, Opts);

  if (Before.Exited != After.Exited ||
      Before.ExitIteration != After.ExitIteration) {
    fail(Out, "memory-opt",
         "exit divergence: original " +
             (Before.Exited
                  ? "exited at " + std::to_string(Before.ExitIteration)
                  : std::string("completed")) +
             ", optimized " +
             (After.Exited
                  ? "exited at " + std::to_string(After.ExitIteration)
                  : std::string("completed")));
    return;
  }
  if (!(Before.Memory == After.Memory)) {
    fail(Out, "memory-opt", "stored memory differs after optimizeMemory");
    return;
  }
  if (Before.Exited)
    return; // Phi values at an exit are stale by design.
  for (size_t P = 0; P < L.phis().size(); ++P) {
    RegClass RC = L.regClass(L.phis()[P].Dest);
    if (!execValueEquals(RC, Before.PhiFinal[P], After.PhiFinal[P])) {
      fail(Out, "memory-opt",
           "phi #" + std::to_string(P) + " (" +
               L.regName(L.phis()[P].Dest) + "): original " +
               describeValue(RC, Before.PhiFinal[P]) + ", optimized " +
               describeValue(RC, After.PhiFinal[P]));
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// list-schedule / modulo-schedule
//===----------------------------------------------------------------------===//

namespace {

void checkSchedulesOn(const Loop &L, const MachineModel &Machine,
                      std::vector<OracleFailure> &Out) {
  DependenceGraph DG(L);
  Schedule Sched = listSchedule(L, DG, Machine);
  for (const std::string &Error :
       validateListSchedule(L, DG, Machine, Sched))
    fail(Out, "list-schedule", Machine.name() + ": " + Error);

  if (hasExit(L) || hasCall(L))
    return; // IMS rejects these; nothing to validate.
  ModuloScheduleResult Ims = iterativeModuloSchedule(L, DG, Machine);
  if (!Ims.Succeeded)
    return; // Giving up is allowed; a wrong schedule is not.
  for (const std::string &Error :
       validateModuloSchedule(L, DG, Machine, Ims))
    fail(Out, "modulo-schedule", Machine.name() + ": " + Error);
  int ResMii = static_cast<int>(
      std::ceil(resourceMIIForLoop(L, Machine) - 1e-9));
  if (Ims.II < ResMii)
    fail(Out, "modulo-schedule",
         Machine.name() + ": II " + std::to_string(Ims.II) +
             " below resource lower bound " + std::to_string(ResMii));
}

} // namespace

void metaopt::oracleSchedulers(const Loop &L,
                               std::vector<OracleFailure> &Out) {
  static const MachineModel Itanium2{itanium2Config()};
  static const MachineModel AltVliw{altVliwConfig()};
  checkSchedulesOn(L, Itanium2, Out);
  checkSchedulesOn(L, AltVliw, Out);
  // Unrolled bodies stress resource overflow and the folded-control
  // paths; one mid-range factor keeps the oracle cheap.
  checkSchedulesOn(unrollLoop(L, 4), Itanium2, Out);
}

//===----------------------------------------------------------------------===//
// sim-cache
//===----------------------------------------------------------------------===//

void metaopt::oracleSimCache(const Loop &L, std::vector<OracleFailure> &Out) {
  static const MachineModel Itanium2{itanium2Config()};
  SimContext Ctx;

  std::string Text = printLoop(L);
  ParseResult Parsed = parseLoops(Text, L.sourceFile());
  const Loop *Reparsed = nullptr;
  if (Parsed.Error.empty() && Parsed.Loops.size() == 1)
    Reparsed = &Parsed.Loops[0]; // round-trip oracle reports the failure.

  SimCache Cache;
  for (unsigned Factor : {1u, 4u}) {
    for (bool EnableSwp : {false, true}) {
      SimKey Key = simCacheKey(L, Factor, Itanium2, Ctx, EnableSwp);
      if (Reparsed) {
        SimKey Again = simCacheKey(*Reparsed, Factor, Itanium2, Ctx,
                                   EnableSwp);
        if (!(Key == Again))
          fail(Out, "sim-cache",
               "key unstable under reparse (factor " +
                   std::to_string(Factor) +
                   (EnableSwp ? ", swp)" : ", no swp)"));
      }
      SimResult Fresh = simulateLoop(L, Factor, Itanium2, Ctx, EnableSwp);
      SimResult Miss = Cache.simulate(L, Factor, Itanium2, Ctx, EnableSwp);
      SimResult Hit = Cache.simulate(L, Factor, Itanium2, Ctx, EnableSwp);
      if (!(Miss == Fresh) || !(Hit == Fresh))
        fail(Out, "sim-cache",
             "cached result differs from fresh simulateLoop (factor " +
                 std::to_string(Factor) +
                 (EnableSwp ? ", swp)" : ", no swp)"));
    }
  }
  SimCacheStats Stats = Cache.stats();
  if (Stats.Hits < 4 || Stats.Misses != 4)
    fail(Out, "sim-cache",
         "unexpected hit/miss pattern: " + std::to_string(Stats.Hits) +
             " hits, " + std::to_string(Stats.Misses) + " misses");
}

//===----------------------------------------------------------------------===//
// bundle
//===----------------------------------------------------------------------===//

namespace {

/// One trained model per zoo family (NN, MLP, random forest), each
/// serialized through the bundle container and restored — built once per
/// process, shared by every loop. Every family must survive the
/// round-trip bit-exactly, so a new classifier added to the registry
/// gets fuzz coverage by being listed here.
struct BundleFixture {
  struct Family {
    std::string Name;
    std::unique_ptr<Classifier> Original;
    std::unique_ptr<Classifier> Restored;
  };
  std::vector<Family> Families;
  std::string Error;

  BundleFixture() {
    FeatureSet Features = {static_cast<FeatureId>(0),
                           static_cast<FeatureId>(1),
                           static_cast<FeatureId>(2)};
    Dataset Train;
    Rng R(0xb17b0d1eULL);
    for (unsigned I = 0; I < 64; ++I) {
      Example Ex;
      Ex.Label = 1 + I % MaxUnrollFactor;
      for (unsigned F = 0; F < 3; ++F)
        Ex.Features[F] =
            static_cast<double>(Ex.Label) * 2.0 + R.nextGaussian(0.0, 0.4);
      Ex.LoopName = "fuzz_train_" + std::to_string(I);
      Ex.BenchmarkName = "fuzz";
      Train.add(Ex);
    }
    std::vector<std::unique_ptr<Classifier>> Models;
    Models.push_back(std::make_unique<NearNeighborClassifier>(Features));
    Models.push_back(std::make_unique<MlpClassifier>(Features));
    Models.push_back(std::make_unique<RandomForestClassifier>(Features));
    for (std::unique_ptr<Classifier> &Model : Models) {
      Model->train(Train);

      ModelBundle Bundle;
      Bundle.Provenance.ClassifierName = Model->name();
      Bundle.Provenance.CreatedBy = "metaopt-fuzz";
      Bundle.Provenance.MachineName = "itanium2";
      Bundle.Provenance.TrainingExamples = Train.size();
      Bundle.Provenance.CvMethod = "none";
      Bundle.Features = Features;
      Bundle.ClassifierBlob = Model->serialize();

      std::string Text = serializeBundle(Bundle);
      std::string ParseError;
      auto Back = parseBundle(Text, &ParseError);
      if (!Back) {
        Error = Model->name() +
                ": serializeBundle output rejected: " + ParseError;
        return;
      }
      Family F;
      F.Name = Model->name();
      F.Restored = Back->instantiate();
      if (!F.Restored) {
        Error = F.Name + ": round-tripped bundle failed to instantiate";
        return;
      }
      F.Original = std::move(Model);
      Families.push_back(std::move(F));
    }
  }
};

} // namespace

void metaopt::oracleBundle(const Loop &L, std::vector<OracleFailure> &Out) {
  static const BundleFixture Fixture;
  if (!Fixture.Error.empty()) {
    fail(Out, "bundle", Fixture.Error);
    return;
  }
  FeatureVector Features = extractFeatures(L);
  for (const BundleFixture::Family &Fam : Fixture.Families) {
    unsigned Want = Fam.Original->predict(Features);
    unsigned Got = Fam.Restored->predict(Features);
    if (Want != Got) {
      fail(Out, "bundle",
           Fam.Name + ": round-tripped classifier predicts " +
               std::to_string(Got) + ", original predicts " +
               std::to_string(Want));
      return;
    }
    auto WantScores = Fam.Original->scores(Features);
    auto GotScores = Fam.Restored->scores(Features);
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      if (WantScores[F] != GotScores[F]) {
        fail(Out, "bundle",
             Fam.Name + ": score for factor " + std::to_string(F + 1) +
                 " differs after round-trip");
        return;
      }
  }
}

//===----------------------------------------------------------------------===//
// static-claims
//===----------------------------------------------------------------------===//

namespace {

/// Observations of one body instruction in one iteration.
struct ClaimObs {
  int8_t Guard = -1;    ///< -1 never stepped, 0 predicated off, 1 on.
  bool Accessed = false; ///< Memory op that executed; Addr is valid.
  bool HasInt = false;   ///< Integer destination; Int is valid.
  int64_t Addr = 0;
  int64_t Int = 0;
};

} // namespace

void metaopt::checkClaimsAgainstExecution(
    const Loop &L, const std::vector<StaticClaim> &Claims, uint64_t Seed,
    std::vector<OracleFailure> &Out) {
  if (Claims.empty())
    return;

  // A known trip count runs in full (capped so a pathological declared
  // trip cannot stall the campaign); claims over an unknown trip hold for
  // every i >= 0, so a fixed-length probe is a valid refutation attempt.
  int64_t Trip = L.runtimeTripCount();
  int64_t Iters = Trip >= 0 ? std::min<int64_t>(Trip, 4096) : 64;
  if (Iters <= 0)
    return; // Every per-iteration claim is vacuous.

  ExecTrace Trace;
  ExecOptions Opts;
  Opts.Seed = Seed;
  Opts.Iterations = Iters;
  Opts.Trace = &Trace;
  interpretLoop(L, Opts);

  const size_t BodySize = L.body().size();
  std::vector<std::vector<ClaimObs>> Table(
      BodySize, std::vector<ClaimObs>(static_cast<size_t>(Iters)));
  for (const ExecTraceStep &S : Trace.Steps) {
    if (S.BodyIndex >= BodySize || S.Iteration < 0 || S.Iteration >= Iters)
      continue;
    ClaimObs &O = Table[S.BodyIndex][static_cast<size_t>(S.Iteration)];
    O.Guard = S.GuardOn ? 1 : 0;
    O.Accessed = S.IsMemory;
    O.Addr = S.Address;
    O.HasInt = S.HasIntDest;
    O.Int = S.IntDest;
  }

  auto Refute = [&](const StaticClaim &C, const std::string &Detail) {
    fail(Out, "static-claims", describeClaim(C, L) + " refuted: " + Detail);
  };

  for (const StaticClaim &C : Claims) {
    switch (C.K) {
    case StaticClaim::Kind::GuardAlwaysTrue:
    case StaticClaim::Kind::GuardAlwaysFalse: {
      if (C.A >= BodySize) {
        Refute(C, "body index out of range");
        break;
      }
      bool WantOn = C.K == StaticClaim::Kind::GuardAlwaysTrue;
      for (int64_t I = 0; I < Iters; ++I) {
        const ClaimObs &O = Table[C.A][static_cast<size_t>(I)];
        if (O.Guard < 0)
          continue; // Iteration cut short before this instruction.
        if ((O.Guard == 1) != WantOn) {
          Refute(C, std::string("guard was ") +
                        (O.Guard == 1 ? "on" : "off") + " at iteration " +
                        std::to_string(I));
          break;
        }
      }
      break;
    }
    case StaticClaim::Kind::RangeBound: {
      // Claimed registers are body-defined (the analysis never claims
      // live-ins, and phi values always carry their init as a symbolic
      // base); check the value every defining instruction left behind.
      bool Defined = false, Done = false;
      for (uint32_t B = 0; B < BodySize && !Done; ++B) {
        const Instruction &Def = L.body()[B];
        if (!Def.hasDest() || Def.Dest != C.Reg)
          continue;
        Defined = true;
        for (int64_t I = 0; I < Iters && !Done; ++I) {
          const ClaimObs &O = Table[B][static_cast<size_t>(I)];
          if (!O.HasInt)
            continue;
          if (O.Int < C.Lo || O.Int > C.Hi) {
            Refute(C, "value " + std::to_string(O.Int) + " at iteration " +
                          std::to_string(I));
            Done = true;
          }
        }
      }
      if (!Defined)
        Refute(C, "register is never defined in the body");
      break;
    }
    case StaticClaim::Kind::Disjoint: {
      if (C.A >= BodySize || C.B >= BodySize) {
        Refute(C, "body index out of range");
        break;
      }
      const Instruction &IA = L.body()[C.A];
      const Instruction &IB = L.body()[C.B];
      if (!IA.isMemory() || !IB.isMemory()) {
        Refute(C, "claim names a non-memory instruction");
        break;
      }
      if (IA.Mem.BaseSym != IB.Mem.BaseSym)
        break; // Distinct base symbols are distinct address spaces.
      int64_t SizeA = IA.Mem.SizeBytes, SizeB = IB.Mem.SizeBytes;
      for (int64_t I = 0; I + static_cast<int64_t>(C.Lag) < Iters; ++I) {
        const ClaimObs &OA = Table[C.A][static_cast<size_t>(I)];
        const ClaimObs &OB =
            Table[C.B][static_cast<size_t>(I + static_cast<int64_t>(C.Lag))];
        if (!OA.Accessed || !OB.Accessed)
          continue; // A predicated-off access touches nothing.
        if (OA.Addr < OB.Addr + SizeB && OB.Addr < OA.Addr + SizeA) {
          Refute(C, "bytes [" + std::to_string(OA.Addr) + ", " +
                        std::to_string(OA.Addr + SizeA) + ") and [" +
                        std::to_string(OB.Addr) + ", " +
                        std::to_string(OB.Addr + SizeB) +
                        ") overlap at iterations " + std::to_string(I) +
                        " and " + std::to_string(I + C.Lag));
          break;
        }
      }
      break;
    }
    }
  }
}

void metaopt::oracleStaticClaims(const Loop &L, uint64_t Seed,
                                 std::vector<OracleFailure> &Out) {
  SymbolicAnalysis Symbolic(L);
  checkClaimsAgainstExecution(L, Symbolic.claims(), Seed, Out);

  // The labeling pruner's certificate (core/driver/LabelCollector.h):
  // the canonical simulation form must receive the original loop's exact
  // SimResult. Two plain factors plus one SWP probe keep the oracle cheap
  // while still crossing every normalized dimension.
  static const MachineModel Itanium2{itanium2Config()};
  SimContext Ctx;
  Loop Canon = canonicalSimForm(L);
  if (!isWellFormed(Canon)) {
    fail(Out, "static-claims", "canonicalSimForm produced malformed IR");
    return;
  }
  struct Probe {
    unsigned Factor;
    bool EnableSwp;
  };
  const Probe Probes[] = {{1, false}, {MaxUnrollFactor, false}, {3, true}};
  for (const Probe &P : Probes) {
    SimResult Want = simulateLoop(L, P.Factor, Itanium2, Ctx, P.EnableSwp);
    SimResult Got =
        simulateLoop(Canon, P.Factor, Itanium2, Ctx, P.EnableSwp);
    if (!(Want == Got))
      fail(Out, "static-claims",
           "canonical form diverges from the original in the simulator "
           "(factor " +
               std::to_string(P.Factor) +
               (P.EnableSwp ? ", swp)" : ", no swp)"));
  }
}

//===----------------------------------------------------------------------===//
// driver
//===----------------------------------------------------------------------===//

std::vector<OracleFailure>
metaopt::runOracles(const Loop &L, const OracleOptions &Options) {
  std::vector<OracleFailure> Out;
  std::vector<std::string> Errors = verifyLoop(L);
  if (!Errors.empty()) {
    fail(Out, "well-formed", "input loop malformed: " + Errors.front());
    return Out;
  }
  if (Options.CheckRoundTrip)
    oracleRoundTrip(L, Out);
  if (Options.CheckImportRoundTrip)
    oracleImportRoundTrip(L, Out);
  if (Options.CheckUnroll)
    oracleUnrollEquivalence(L, Options.Seed, Out);
  if (Options.CheckMemoryOpt)
    oracleMemoryOpt(L, Options.Seed, Out);
  if (Options.CheckSchedulers)
    oracleSchedulers(L, Out);
  if (Options.CheckSimCache)
    oracleSimCache(L, Out);
  if (Options.CheckBundle)
    oracleBundle(L, Out);
  if (Options.CheckStaticClaims)
    oracleStaticClaims(L, Options.Seed, Out);
  return Out;
}
