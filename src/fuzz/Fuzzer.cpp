//===- fuzz/Fuzzer.cpp ----------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "concurrency/Parallel.h"
#include "fuzz/Shrinker.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <algorithm>
#include <set>

using namespace metaopt;

namespace {

/// Result slot of one campaign case; empty Failures means the case
/// passed. Computed on worker threads, reduced serially in index order.
struct CaseOutcome {
  std::vector<OracleFailure> Failures;
  std::string MinimizedText;
  std::vector<std::string> MinimizedOracles;
};

CaseOutcome runCase(const FuzzCampaignOptions &Options, uint64_t Index) {
  CaseOutcome Outcome;
  FuzzGenOptions Gen = Options.Gen;
  Gen.Seed = Options.Seed;
  OracleOptions Oracle = Options.Oracle;
  Oracle.Seed = Options.Seed;

  Loop L = generateFuzzLoop(Gen, Index);
  Outcome.Failures = runOracles(L, Oracle);
  if (Outcome.Failures.empty())
    return Outcome;

  Loop Minimized = L;
  if (Options.Shrink) {
    // Shrink against the oracles that actually fired — rerunning the
    // passing ones thousands of times would dominate the campaign.
    std::set<std::string> Failing;
    for (const OracleFailure &Failure : Outcome.Failures)
      Failing.insert(Failure.Oracle);
    OracleOptions Narrow = Oracle;
    Narrow.CheckRoundTrip = Failing.count("round-trip") != 0;
    Narrow.CheckImportRoundTrip = Failing.count("import-round-trip") != 0;
    Narrow.CheckUnroll = Failing.count("unroll-equivalence") != 0;
    Narrow.CheckMemoryOpt = Failing.count("memory-opt") != 0;
    Narrow.CheckSchedulers = Failing.count("list-schedule") != 0 ||
                             Failing.count("modulo-schedule") != 0;
    Narrow.CheckSimCache = Failing.count("sim-cache") != 0;
    Narrow.CheckBundle = Failing.count("bundle") != 0;
    Narrow.CheckStaticClaims = Failing.count("static-claims") != 0;
    Minimized = shrinkLoop(L, [&](const Loop &Candidate) {
      return !runOracles(Candidate, Narrow).empty();
    });
  }
  std::set<std::string> StillFailing;
  for (const OracleFailure &Failure : runOracles(Minimized, Oracle))
    StillFailing.insert(Failure.Oracle);
  Outcome.MinimizedText = printLoop(Minimized);
  Outcome.MinimizedOracles.assign(StillFailing.begin(), StillFailing.end());
  return Outcome;
}

} // namespace

FuzzCampaignResult
metaopt::runFuzzCampaign(const FuzzCampaignOptions &Options) {
  size_t N = static_cast<size_t>(Options.Iterations);
  std::vector<CaseOutcome> Outcomes = parallelMap<CaseOutcome>(
      N, [&](size_t Index) {
        return runCase(Options, static_cast<uint64_t>(Index));
      });

  // Serial, index-ordered reduction: the log is byte-identical whatever
  // interleaving the workers ran in.
  FuzzCampaignResult Result;
  Result.CasesRun = Options.Iterations;
  for (size_t Index = 0; Index < N; ++Index) {
    CaseOutcome &Outcome = Outcomes[Index];
    if (Outcome.Failures.empty())
      continue;
    ++Result.CasesFailed;
    FuzzCaseReport Report;
    Report.Index = static_cast<uint64_t>(Index);
    Report.Failures = std::move(Outcome.Failures);
    Report.MinimizedText = std::move(Outcome.MinimizedText);
    Report.MinimizedOracles = std::move(Outcome.MinimizedOracles);
    for (const OracleFailure &Failure : Report.Failures)
      Result.Log += "FAIL case " + std::to_string(Index) + " [" +
                    Failure.Oracle + "] " + Failure.Detail + "\n";
    Result.Reports.push_back(std::move(Report));
  }
  Result.Log += "fuzz: seed " + std::to_string(Options.Seed) + ", " +
                std::to_string(Result.CasesRun) + " cases, " +
                std::to_string(Result.CasesFailed) + " failed\n";
  return Result;
}

std::vector<OracleFailure>
metaopt::replayLoops(const std::string &Text, const std::string &FileName,
                     const OracleOptions &Options) {
  std::vector<OracleFailure> Out;
  ParseResult Parsed = parseLoops(Text, FileName);
  if (!Parsed.Error.empty()) {
    Out.push_back({"parse", FileName + ": " + Parsed.Error});
    return Out;
  }
  for (const Loop &L : Parsed.Loops)
    for (OracleFailure Failure : runOracles(L, Options)) {
      Failure.Detail = L.name() + ": " + Failure.Detail;
      Out.push_back(std::move(Failure));
    }
  return Out;
}

std::string metaopt::reproFileName(uint64_t Seed,
                                   const FuzzCaseReport &Report) {
  std::string Oracle =
      Report.MinimizedOracles.empty() ? "unknown"
                                      : Report.MinimizedOracles.front();
  std::replace(Oracle.begin(), Oracle.end(), ' ', '-');
  return "fuzz-" + std::to_string(Seed) + "-" +
         std::to_string(Report.Index) + "-" + Oracle + ".loop";
}
