//===- fuzz/Shrinker.h - Failing-loop minimization --------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging for loops that trip an oracle: repeatedly try a
/// smaller candidate (fewer body instructions, fewer phis, smaller trip
/// count, fewer predicates), keep it when it is still verifier-clean and
/// still fails, and stop at a fixpoint. The result is what gets written
/// into tests/fuzz_seeds/ and replayed by ctest, so smaller is directly
/// better for debugging and regression-suite latency.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_FUZZ_SHRINKER_H
#define METAOPT_FUZZ_SHRINKER_H

#include "ir/Loop.h"

#include <functional>

namespace metaopt {

/// Returns true when a candidate loop still reproduces the failure being
/// minimized. Candidates are always verifier-clean before the predicate
/// runs; the predicate must be pure (it is called many times).
using StillFailsFn = std::function<bool(const Loop &)>;

/// Minimizes \p L under \p StillFails; \p L itself must satisfy the
/// predicate. Returns the smallest loop found (possibly \p L unchanged).
Loop shrinkLoop(const Loop &L, const StillFailsFn &StillFails);

} // namespace metaopt

#endif // METAOPT_FUZZ_SHRINKER_H
