//===- machine/Machine.cpp ------------------------------------------------===//

#include "machine/Machine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace metaopt;

MachineModel::MachineModel(MachineConfig C) : Config(std::move(C)) {
  for (unsigned I = 0; I < NumOpcodes; ++I)
    assert(Config.Latency[I] >= 1 && "every opcode needs a latency");
  assert(Config.IssueWidth >= 1 && "machine must issue something");
}

UnitKind MachineModel::unitFor(Opcode Op) const {
  switch (Op) {
  case Opcode::Load:
  case Opcode::Store:
    return UnitKind::Mem;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FMA:
  case Opcode::FDiv:
  case Opcode::FSqrt:
  case Opcode::FCmp:
  case Opcode::FConst:
  case Opcode::FCvt:
  case Opcode::IMul: // Integer multiply executes on the FP unit (Itanium).
  case Opcode::IDiv:
  case Opcode::IRem:
    return UnitKind::Fp;
  case Opcode::ExitIf:
  case Opcode::Call:
  case Opcode::BackBr:
    return UnitKind::Br;
  default:
    return UnitKind::Int;
  }
}

bool MachineModel::canUseMemUnit(Opcode Op) const {
  switch (Op) {
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Copy:
  case Opcode::IConst:
  case Opcode::AddrGen:
  case Opcode::IvAdd:
    return true;
  default:
    return false;
  }
}

int MachineModel::codeBytes(int NumInstructions) const {
  int Bundles = (NumInstructions + Config.SlotsPerBundle - 1) /
                Config.SlotsPerBundle;
  return Bundles * Config.BundleBytes;
}

double MachineModel::resourceMII(
    const std::array<int, NumUnitKinds> &OpsPerKind, int TotalOps) const {
  double MII = static_cast<double>(TotalOps) / Config.IssueWidth;
  for (unsigned Kind = 0; Kind < NumUnitKinds; ++Kind) {
    int Units = Config.UnitCount[Kind];
    if (Units <= 0)
      continue;
    MII = std::max(MII, static_cast<double>(OpsPerKind[Kind]) / Units);
  }
  return std::max(MII, 1.0);
}

bool metaopt::occupiesIssueSlot(const Instruction &Instr) {
  if (Instr.Op == Opcode::IvAdd || Instr.Op == Opcode::IvCmp)
    return false;
  if (Instr.isLoad() && Instr.Paired)
    return false;
  return true;
}

/// Fills a latency table with Itanium-2-flavored values.
static std::array<int, NumOpcodes> baseLatencies() {
  std::array<int, NumOpcodes> Latency;
  Latency.fill(1);
  auto Set = [&](Opcode Op, int Cycles) {
    Latency[static_cast<unsigned>(Op)] = Cycles;
  };
  Set(Opcode::IMul, 4);
  // Divides and square roots expand into pipelined software sequences
  // (frcpa/frsqrta plus Newton steps) rather than monolithic stalls, so
  // their effective latencies are moderate.
  Set(Opcode::IDiv, 16);
  Set(Opcode::IRem, 16);
  Set(Opcode::FAdd, 4);
  Set(Opcode::FSub, 4);
  Set(Opcode::FMul, 4);
  Set(Opcode::FMA, 4);
  Set(Opcode::FDiv, 12);
  Set(Opcode::FSqrt, 14);
  Set(Opcode::FCmp, 2);
  Set(Opcode::FConst, 1);
  Set(Opcode::FCvt, 4);
  Set(Opcode::Load, 3); // L1D hit to integer side; FP side adds a cycle.
  Set(Opcode::Store, 1);
  Set(Opcode::Call, 40);
  return Latency;
}

MachineConfig metaopt::itanium2Config() {
  MachineConfig Config;
  Config.Name = "itanium2";
  Config.IssueWidth = 6;
  Config.UnitCount = {4, 2, 2, 3};
  Config.IntRegs = 64;
  Config.FloatRegs = 64;
  Config.PredRegs = 32;
  Config.Latency = baseLatencies();
  Config.L1ICapacityBytes = 16 * 1024;
  Config.L1IMissCycles = 4; // Amortized by next-line prefetch.
  Config.MispredictPenalty = 6;
  Config.SpillCycles = 3;
  return Config;
}

MachineConfig metaopt::altVliwConfig() {
  MachineConfig Config;
  Config.Name = "altvliw";
  Config.IssueWidth = 4;
  Config.UnitCount = {2, 2, 1, 1};
  Config.IntRegs = 32;
  Config.FloatRegs = 32;
  Config.PredRegs = 16;
  Config.Latency = baseLatencies();
  auto Set = [&](Opcode Op, int Cycles) {
    Config.Latency[static_cast<unsigned>(Op)] = Cycles;
  };
  Set(Opcode::Load, 5);   // Slower cache.
  Set(Opcode::FAdd, 3);   // Shorter FP pipeline.
  Set(Opcode::FSub, 3);
  Set(Opcode::FMul, 5);
  Set(Opcode::FMA, 5);
  Config.L1ICapacityBytes = 8 * 1024;
  Config.L1IMissCycles = 6;
  Config.MispredictPenalty = 8;
  Config.SpillCycles = 4;
  return Config;
}
