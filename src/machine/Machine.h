//===- machine/Machine.h - In-order VLIW machine model ----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model the schedulers and the loop simulator target. The
/// default configuration approximates a 6-issue Itanium 2: M/I/F/B unit
/// pools, per-opcode latencies, large rotating register files, a 16KB L1I.
/// A second "alternate VLIW" configuration exists so the paper's claim
/// that retuning the heuristic to an architectural change is automatic can
/// be demonstrated (bench/ablation_retune).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_MACHINE_MACHINE_H
#define METAOPT_MACHINE_MACHINE_H

#include "ir/Instruction.h"

#include <array>
#include <string>

namespace metaopt {

/// Functional unit pools of the EPIC-style machine.
enum class UnitKind { Mem, Int, Fp, Br };
constexpr unsigned NumUnitKinds = 4;

/// Tunable description of a machine. Plain data so experiments can derive
/// variants by copying and editing fields.
struct MachineConfig {
  std::string Name = "machine";
  int IssueWidth = 6;
  /// Units per pool, indexed by UnitKind.
  std::array<int, NumUnitKinds> UnitCount = {4, 2, 2, 3};
  /// Registers a single loop may occupy before spilling (the rest of the
  /// file is reserved for the surrounding function and the RSE).
  int IntRegs = 64;
  int FloatRegs = 64;
  int PredRegs = 32;
  /// Latency (cycles) per opcode.
  std::array<int, NumOpcodes> Latency = {};
  /// Instruction bytes: EPIC bundles hold 3 slots in 16 bytes.
  int BundleBytes = 16;
  int SlotsPerBundle = 3;
  /// L1 instruction cache capacity and per-line refill cost.
  int L1ICapacityBytes = 16 * 1024;
  int L1ILineBytes = 64;
  int L1IMissCycles = 7;
  /// Cycles lost when the loop exit is mispredicted (pipeline flush).
  int MispredictPenalty = 6;
  /// Extra cycles per dynamic spill (store+reload pair around the loop
  /// body once live values exceed the register budget).
  int SpillCycles = 2;
};

/// A machine model: unit bindings, latencies, code-size arithmetic.
class MachineModel {
public:
  explicit MachineModel(MachineConfig Config);

  const std::string &name() const { return Config.Name; }
  const MachineConfig &config() const { return Config; }

  int issueWidth() const { return Config.IssueWidth; }
  int unitCount(UnitKind Kind) const {
    return Config.UnitCount[static_cast<unsigned>(Kind)];
  }

  /// Latency of \p Op in cycles (>= 1 for anything that defines a value).
  int latency(Opcode Op) const {
    return Config.Latency[static_cast<unsigned>(Op)];
  }

  /// Primary functional unit pool for \p Op.
  UnitKind unitFor(Opcode Op) const;

  /// True when \p Op is an "A-type" simple ALU operation that may issue on
  /// either an I or an M slot (as on Itanium).
  bool canUseMemUnit(Opcode Op) const;

  /// Code bytes occupied by \p NumInstructions instructions after
  /// bundling.
  int codeBytes(int NumInstructions) const;

  /// Resource-constrained minimum initiation interval for a body with the
  /// given per-pool operation counts (fractional; ceil for an integral
  /// schedule).
  double resourceMII(const std::array<int, NumUnitKinds> &OpsPerKind,
                     int TotalOps) const;

private:
  MachineConfig Config;
};

/// True when \p Instr competes for issue slots and unit pools. The
/// induction update and trip test fold into post-increment addressing and
/// the counted branch; the second load of a merged wide access rides
/// along with its partner.
bool occupiesIssueSlot(const Instruction &Instr);

/// Returns the default Itanium-2-like configuration.
MachineConfig itanium2Config();

/// Returns a deliberately different machine (narrower issue, slower cache
/// hierarchy, fewer registers) used by the retuning ablation.
MachineConfig altVliwConfig();

} // namespace metaopt

#endif // METAOPT_MACHINE_MACHINE_H
