//===- sim/SimCompile.h - Compiled simulation fast path ---------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled fast path for the labeling hot loop: simulateLoop() split
/// into a context-independent *compile* step and a cheap per-context
/// *evaluate* step.
///
/// simulateLoop(L, F, Machine, Ctx, Swp) runs, per call: unroll ->
/// symbolic analysis -> memory optimization -> dependence graph -> list
/// schedule -> liveness -> cost model. Of those, only the final cost
/// arithmetic reads the SimContext (cache shares, d-cache rates, register
/// budgets); everything upstream depends on the loop structure, the
/// factor, and the machine alone. The labeling sweep exploits that twice:
///
///  1. compileLoopSim() runs the structure-dependent pipeline ONCE per
///     (loop, machine, swp) for all eight factors and bakes the results
///     into a LoopSimPlan of plain numbers. evaluatePlan() then reproduces
///     simulateLoop's result for any SimContext with a handful of
///     floating-point operations — so one sim-equivalence class
///     (analysis/symbolic/Canonical.h) compiles one plan and evaluates it
///     under every member's own context, byte-identically to simulating
///     each member from scratch.
///
///  2. Different classes (and different factors of one class) frequently
///     unroll to structurally identical post-memopt bodies — the unrolled
///     body of a loop is independent of its trip metadata. The
///     SimBodyStatsCache shares the schedule/liveness work across them,
///     keyed by the trip-stripped canonical structure
///     (hashCanonicalSimStructure), which is sound because nothing
///     downstream of the memory optimizer reads trip counts.
///
/// The exception is software pipelining: moduloSchedule() reads the
/// context's register budgets while scheduling, so SWP attempts run at
/// compile time under the provided context and the resulting plan is only
/// valid for contexts with the same (IntRegBudget, FpRegBudget) pair. The
/// labeling pruner folds the budgets into the class key when SWP is
/// enabled (core/driver/LabelCollector.cpp).
///
/// simulateLoop() itself is untouched and stays the semantics anchor: the
/// perf suite asserts compile+evaluate == simulateLoop over the whole
/// synthetic corpus and the fuzz seed corpus (tests/perf_test.cpp), and
/// the fast path reuses the reference's own latency/delay/enforcement
/// model (sched/ScheduleValidate.h) rather than re-deriving it.
///
/// See docs/PERF.md for the design rationale and measurements.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SIM_SIMCOMPILE_H
#define METAOPT_SIM_SIMCOMPILE_H

#include "ir/Loop.h"
#include "sim/Simulator.h"
#include "support/Fingerprint.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace metaopt {

/// Everything the cost model reads about one scheduled body that does not
/// depend on the SimContext. Captured once per unique post-memopt body
/// structure; the Ctx-dependent terms (spills against the budget, i-cache
/// overflow against the effective share, d-cache stall rates) are applied
/// at evaluate time.
struct SimBodyStats {
  /// Steady-state cycles per body execution before Ctx terms: the
  /// recurrence-constrained iteration interval of the list schedule.
  double Interval = 0.0;
  /// Schedule length in cycles (SimResult::ScheduleLength).
  uint32_t Length = 0;
  /// Peak register pressure per class over the scheduled order.
  unsigned MaxLiveInt = 0;
  unsigned MaxLiveFloat = 0;
  /// Body size feeding codeBytes(); size_t to mirror body().size().
  size_t BodyOps = 0;
  /// Loads that pay their own d-cache access (unpaired).
  unsigned UnpairedLoads = 0;
  /// Sum of ExitIf taken-probabilities in body order (FP addition order
  /// matters for bit-identity with the reference) and their count.
  double ExitProbSum = 0.0;
  unsigned ExitCount = 0;
};

/// Compiled form of one unroll factor of one loop.
struct CompiledFactor {
  /// Stats of the unrolled, memory-optimized main body. When Pipelined,
  /// only BodyOps and UnpairedLoads are meaningful (the SWP cost model
  /// replaces the list schedule and ignores allocatable pressure).
  SimBodyStats Main;
  bool Pipelined = false;
  int II = 0;
  int StageCount = 0;
  unsigned SwpSpills = 0;
};

/// Context-independent compilation of one loop at every unroll factor —
/// everything evaluatePlan() needs to reproduce simulateLoop() for an
/// arbitrary SimContext (same register budgets required when Swp).
struct LoopSimPlan {
  /// For diagnostics: evaluatePlan throws the same exceptions, with the
  /// same loop name, as simulateLoop would.
  std::string LoopName;
  int64_t Trip = 0;
  bool HasKnownTrip = false;
  /// Whether SWP was attempted at compile time; evaluate must be queried
  /// with the same flag the plan was compiled with.
  bool Swp = false;
  std::array<CompiledFactor, MaxUnrollFactor> Factors;
  /// Epilogue body stats, shared by every factor with Trip % F > 0. The
  /// reference recompiles the epilogue per factor; it is the same
  /// memopt(L) body each time, so the plan computes it once.
  bool HasEpilogue = false;
  SimBodyStats Epilogue;
};

/// Thread-safe structural cache of SimBodyStats, keyed by the
/// trip-stripped canonical body structure. Shared across loops, classes,
/// and factors within one process; one machine model per instance (the
/// key deliberately excludes the machine — callers own that contract,
/// mirroring SimCache's one-global-config usage).
class SimBodyStatsCache {
public:
  std::optional<SimBodyStats> lookup(const Fingerprint &Key) const;
  /// First writer wins (all writers of one key carry identical stats).
  void insert(const Fingerprint &Key, const SimBodyStats &Stats);

  size_t size() const;
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  struct Hash {
    size_t operator()(const Fingerprint &Key) const {
      return static_cast<size_t>(Key.Lo);
    }
  };
  mutable std::mutex Mutex;
  std::unordered_map<Fingerprint, SimBodyStats, Hash> Map;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
};

/// Runs the structure-dependent half of simulateLoop for every factor in
/// [1, MaxUnrollFactor]: unroll, memory-optimize, schedule (modulo when
/// \p EnableSwp, against \p Ctx's register budgets), measure liveness.
/// \p Cache, when non-null, shares body stats across structurally
/// identical post-memopt bodies. Throws std::domain_error exactly as
/// simulateLoop does when the loop has no concrete runtime trip count.
LoopSimPlan compileLoopSim(const Loop &L, const MachineModel &Machine,
                           const SimContext &Ctx, bool EnableSwp,
                           SimBodyStatsCache *Cache = nullptr);

/// Replays the cost model over a compiled plan: byte-identical to
/// simulateLoop(L, Factor, Machine, Ctx, EnableSwp) for the loop the plan
/// was compiled from, any \p Ctx (same register budgets when the plan was
/// compiled with SWP), and the same \p Machine. Throws
/// std::invalid_argument on an out-of-range factor, as the reference does.
SimResult evaluatePlan(const LoopSimPlan &Plan, unsigned Factor,
                       const MachineModel &Machine, const SimContext &Ctx);

} // namespace metaopt

#endif // METAOPT_SIM_SIMCOMPILE_H
