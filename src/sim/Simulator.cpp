//===- sim/Simulator.cpp --------------------------------------------------===//

#include "sim/Simulator.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Liveness.h"
#include "analysis/symbolic/StrideInterval.h"
#include "sched/ListScheduler.h"
#include "sched/ModuloScheduler.h"
#include "transform/MemoryOpt.h"
#include "transform/Unroller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

using namespace metaopt;

namespace {

/// Code-layout tax of non-power-of-two unroll factors: bundle padding,
/// modulo-variable-expansion copies, and remainder-loop structure all tile
/// evenly only for power-of-two bodies (the paper observes that "non-power
/// of two unroll factors are rarely optimal"). Charged per unrolled
/// iteration; bench/ablation_align_tax quantifies its effect.
double alignmentTax(unsigned Factor) {
  bool PowerOfTwo = (Factor & (Factor - 1)) == 0;
  return PowerOfTwo ? 0.0 : 1.4;
}

/// Cost of one steady-state execution of a list-scheduled body, including
/// cross-iteration recurrence stalls: consecutive iterations issue
/// back-to-back, but a loop-carried dependence u -> v (distance d) forces
/// iteration spacing of at least (cycle(u) + latency(u) - cycle(v)) / d.
double listScheduledIterationCycles(const Loop &L, const DependenceGraph &DG,
                                    const Schedule &Sched,
                                    const MachineModel &Machine) {
  double Interval = Sched.Length;
  for (const DepEdge &Edge : DG.edges()) {
    if (Edge.Distance == 0)
      continue;
    int Delay = 0;
    switch (Edge.Kind) {
    case DepKind::Data:
      Delay = Machine.latency(L.body()[Edge.Src].Op);
      break;
    case DepKind::Memory:
      Delay = 1;
      break;
    case DepKind::Control:
      // Serialization across iterations (calls) waits out the operation.
      Delay = Machine.latency(L.body()[Edge.Src].Op);
      break;
    }
    double Needed =
        (static_cast<double>(Sched.CycleOf[Edge.Src]) + Delay -
         Sched.CycleOf[Edge.Dst]) /
        Edge.Distance;
    Interval = std::max(Interval, Needed);
  }
  return Interval;
}

/// Per-iteration penalty for a body whose code no longer fits in the
/// loop's effective share of the instruction cache.
double icachePenaltyPerIteration(int CodeBytes, const MachineModel &Machine,
                                 const SimContext &Ctx) {
  int Effective = std::min(Ctx.EffectiveIcacheBytes,
                           Machine.config().L1ICapacityBytes);
  if (CodeBytes <= Effective)
    return 0.0;
  int OverflowLines = (CodeBytes - Effective +
                       Machine.config().L1ILineBytes - 1) /
                      Machine.config().L1ILineBytes;
  return static_cast<double>(OverflowLines) *
         Machine.config().L1IMissCycles;
}

/// Expected visible d-cache stall cycles per body execution. The second
/// half of a merged wide load shares its partner's cache access.
double dcacheStallPerIteration(const Loop &L, const SimContext &Ctx) {
  unsigned Loads = 0;
  for (const Instruction &Instr : L.body())
    if (Instr.isLoad() && !Instr.Paired)
      ++Loads;
  return Loads * Ctx.DcacheMissRate * Ctx.DcacheMissCycles *
         Ctx.DcacheVisibleFraction;
}

/// Expected mispredict cost per body execution from replicated early
/// exits: the rare taken exit flushes the pipe, and every replicated
/// side-exit branch also occupies branch-predictor capacity that the rest
/// of the program wants (a fixed per-branch tax).
double exitPenaltyPerIteration(const Loop &L, const MachineModel &Machine) {
  double Probability = 0.0;
  unsigned Exits = 0;
  for (const Instruction &Instr : L.body()) {
    if (Instr.Op == Opcode::ExitIf) {
      Probability += Instr.TakenProb;
      ++Exits;
    }
  }
  return Probability * Machine.config().MispredictPenalty + 0.15 * Exits;
}

/// Spill pairs needed once the scheduled body's live values exceed the
/// register budget (machine file capped by the loop's program context).
unsigned spillPairs(const Loop &L, const Schedule &Sched,
                    const MachineModel &Machine, const SimContext &Ctx) {
  LivenessInfo Live = analyzeLiveness(L, Sched.Order);
  unsigned IntBudget = static_cast<unsigned>(
      std::min(Machine.config().IntRegs, Ctx.IntRegBudget));
  unsigned FpBudget = static_cast<unsigned>(
      std::min(Machine.config().FloatRegs, Ctx.FpRegBudget));
  unsigned Spills = 0;
  if (Live.MaxLiveInt > IntBudget)
    Spills += Live.MaxLiveInt - IntBudget;
  if (Live.MaxLiveFloat > FpBudget)
    Spills += Live.MaxLiveFloat - FpBudget;
  return Spills;
}

/// Full cost of executing \p Iterations repetitions of \p L's body with the
/// list-scheduling pipeline (no SWP). Returns per-iteration cycles too.
struct BodyCost {
  double PerIteration = 0.0;
  unsigned Spills = 0;
  uint32_t Length = 0;
  int CodeBytes = 0;
};

BodyCost listScheduledBodyCost(const Loop &L, const MachineModel &Machine,
                               const SimContext &Ctx) {
  DependenceGraph DG(L);
  Schedule Sched = listSchedule(L, DG, Machine);
  BodyCost Cost;
  Cost.Length = Sched.Length;
  Cost.Spills = spillPairs(L, Sched, Machine, Ctx);
  Cost.CodeBytes = Machine.codeBytes(
      static_cast<int>(L.body().size() + 2 * Cost.Spills));
  Cost.PerIteration =
      listScheduledIterationCycles(L, DG, Sched, Machine) +
      Cost.Spills * Machine.config().SpillCycles +
      icachePenaltyPerIteration(Cost.CodeBytes, Machine, Ctx) +
      dcacheStallPerIteration(L, Ctx) +
      exitPenaltyPerIteration(L, Machine);
  return Cost;
}

} // namespace

SimResult metaopt::simulateLoop(const Loop &L, unsigned Factor,
                                const MachineModel &Machine,
                                const SimContext &Ctx, bool EnableSwp) {
  // Real diagnostics, not asserts: callers feed policy outputs and corpus
  // data straight into this function, and the default build is Release
  // (NDEBUG), where an assert would compile out and let a bad factor
  // corrupt the unroller or a negative trip count poison every cycle
  // count downstream.
  if (Factor < 1 || Factor > MaxUnrollFactor)
    throw std::invalid_argument(
        "simulateLoop: unroll factor " + std::to_string(Factor) +
        " for loop '" + L.name() + "' is outside [1, " +
        std::to_string(MaxUnrollFactor) + "]");
  int64_t Trip = L.runtimeTripCount();
  if (Trip < 0)
    throw std::domain_error("simulateLoop: loop '" + L.name() +
                            "' has no concrete runtime trip count");

  UnrolledTripInfo TripInfo = unrolledTripInfo(Trip, Factor);
  Loop Unrolled = unrollLoop(L, Factor);
  // The memory cleanups unrolling enables (Section 3 of the paper):
  // store-to-load forwarding, redundant load elimination, wide-load
  // pairing across the copies. The symbolic analysis lets the pass act on
  // proven guard facts and same-iteration disjointness instead of its
  // conservative bail-outs (analysis/symbolic).
  {
    SymbolicAnalysis Symbolic(Unrolled);
    optimizeMemory(Unrolled, &Symbolic);
  }

  SimResult Result;
  double MainCycles = 0.0;

  bool Pipelined = false;
  if (EnableSwp) {
    DependenceGraph DG(Unrolled);
    RegBudget Budget{Ctx.IntRegBudget, Ctx.FpRegBudget};
    SwpResult Swp = moduloSchedule(Unrolled, DG, Machine, Budget);
    if (Swp.Pipelined) {
      Pipelined = true;
      Result.UsedSwp = true;
      Result.II = Swp.II;
      Result.SpillPairs = Swp.SpillsPerIteration;
      Result.CodeBytes = Machine.codeBytes(static_cast<int>(
          Unrolled.body().size() + 2 * Swp.SpillsPerIteration));
      double PerIteration =
          Swp.II + Swp.SpillsPerIteration * Machine.config().SpillCycles +
          icachePenaltyPerIteration(Result.CodeBytes, Machine, Ctx) +
          dcacheStallPerIteration(Unrolled, Ctx) + alignmentTax(Factor);
      MainCycles = PerIteration * TripInfo.MainIterations +
                   static_cast<double>(Swp.StageCount - 1) * Swp.II * 2.0;
      Result.CyclesPerIteration = PerIteration / Factor;
    }
  }

  if (!Pipelined) {
    BodyCost Cost = listScheduledBodyCost(Unrolled, Machine, Ctx);
    Result.SpillPairs = Cost.Spills;
    Result.ScheduleLength = Cost.Length;
    Result.CodeBytes = Cost.CodeBytes;
    double PerIteration = Cost.PerIteration + alignmentTax(Factor);
    MainCycles = PerIteration * TripInfo.MainIterations;
    Result.CyclesPerIteration = PerIteration / Factor;
  }

  // Epilogue: the N mod U leftover iterations run the original body (never
  // software pipelined - it is short by construction). Entering it costs a
  // mispredicted backedge plus setup, which is what makes factors that
  // divide the trip count preferable.
  double EpilogueCycles = 0.0;
  if (TripInfo.EpilogueIterations > 0) {
    Loop EpilogueLoop = L;
    {
      SymbolicAnalysis Symbolic(EpilogueLoop);
      optimizeMemory(EpilogueLoop, &Symbolic);
    }
    BodyCost Epilogue = listScheduledBodyCost(EpilogueLoop, Machine, Ctx);
    EpilogueCycles = Epilogue.PerIteration * TripInfo.EpilogueIterations +
                     Machine.config().MispredictPenalty + 2.0;
  }

  // Fixed overheads: loop setup, plus a trip-count check and a mispredict
  // risk when unrolling a loop whose trip count is unknown at compile time
  // (the runtime must select between the unrolled and rolled versions).
  double Overhead = 10.0;
  if (Factor > 1 && !L.hasKnownTripCount())
    Overhead += 10.0 + Machine.config().MispredictPenalty;
  // Final exit mispredicts once per execution.
  Overhead += Machine.config().MispredictPenalty;
  // Cold-entry refill: each entry touches the loop's code, and part of it
  // was evicted since the last entry (more of it the smaller this loop's
  // effective cache share). Code expansion multiplies this cost, which is
  // what makes unrolling short-trip, frequently re-entered loops a loss.
  double ColdFraction = std::clamp(
      64.0 / std::max(1, Ctx.EffectiveIcacheBytes), 0.01, 0.5);
  Overhead += static_cast<double>(Result.CodeBytes) /
              Machine.config().L1ILineBytes *
              Machine.config().L1IMissCycles * ColdFraction;

  Result.Cycles = MainCycles + EpilogueCycles + Overhead;
  return Result;
}
