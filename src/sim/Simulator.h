//===- sim/Simulator.h - Loop execution cost model ---------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate that stands in for the paper's 1.3 GHz Itanium 2:
/// given a loop and an unroll factor it "compiles" (unroll + schedule) and
/// computes a cycle count for the whole loop execution, modeling the
/// effects that make unroll-factor selection nontrivial:
///
///  - ILP extraction by the list scheduler / software pipeliner,
///  - cross-iteration stalls from loop-carried recurrences,
///  - register pressure -> spill code,
///  - i-cache pressure from code expansion (each loop owns only an
///    effective share of L1I, provided by the per-loop SimContext),
///  - replicated early-exit branches and their speculation limits,
///  - epilogue (remainder) iterations and unknown-trip-count overhead.
///
/// The result is deterministic; measurement noise is layered on top by
/// sim/Measurement.h exactly as the paper's instrumentation protocol does.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SIM_SIMULATOR_H
#define METAOPT_SIM_SIMULATOR_H

#include "ir/Loop.h"
#include "machine/Machine.h"
#include "sched/Schedule.h"

namespace metaopt {

/// Program-context parameters attached to each loop by the corpus: how the
/// surrounding program shares the machine with this loop.
struct SimContext {
  /// Effective L1I bytes this loop can occupy before it starts missing
  /// (the rest of the cache serves the surrounding program).
  int EffectiveIcacheBytes = 8 * 1024;
  /// L1D miss probability per memory operation and the visible fraction of
  /// the miss latency (the rest overlaps with execution).
  double DcacheMissRate = 0.02;
  int DcacheMissCycles = 12;
  double DcacheVisibleFraction = 0.5;
  /// Registers actually available to this loop: the enclosing function's
  /// live values and the register stack engine consume the rest of the
  /// files. Capped by the machine's own budget.
  int IntRegBudget = 48;
  int FpRegBudget = 48;
};

/// Outcome of one "compile and run" of a loop at a given unroll factor.
struct SimResult {
  double Cycles = 0.0;        ///< Total cycles for the whole execution.
  double CyclesPerIteration = 0.0; ///< Per *original* iteration, steady state.
  bool UsedSwp = false;       ///< Software pipelining succeeded.
  int II = 0;                 ///< Steady-state II when UsedSwp.
  unsigned SpillPairs = 0;    ///< Spill store+reload pairs per body.
  uint32_t ScheduleLength = 0; ///< List-schedule length (SWP off path).
  int CodeBytes = 0;          ///< Unrolled body code size.

  /// Field-wise (bit-exact for the doubles) equality; the simulation
  /// cache's correctness tests compare cached against fresh results.
  friend bool operator==(const SimResult &, const SimResult &) = default;
};

/// Compiles \p L at unroll factor \p Factor for \p Machine and returns the
/// modeled execution cost over the loop's runtime trip count.
SimResult simulateLoop(const Loop &L, unsigned Factor,
                       const MachineModel &Machine, const SimContext &Ctx,
                       bool EnableSwp);

} // namespace metaopt

#endif // METAOPT_SIM_SIMULATOR_H
