//===- sim/Measurement.cpp ------------------------------------------------===//

#include "sim/Measurement.h"

#include "support/Statistics.h"

#include <algorithm>

using namespace metaopt;

double metaopt::measureOnce(double TrueCycles,
                            const MeasurementProtocol &Protocol,
                            Rng &Generator) {
  double Measured = TrueCycles + Protocol.InstrumentationCycles;
  Measured *= 1.0 + Generator.nextGaussian(0.0, Protocol.NoiseStdDev);
  if (Generator.nextBool(Protocol.OutlierProb)) {
    // A code or data placement hiccup (e.g. the loop straddling an i-cache
    // line boundary this run) inflates the measurement.
    Measured *= 1.0 + Generator.nextDouble() * Protocol.OutlierScale;
  }
  return std::max(Measured, 0.0);
}

double metaopt::measureMedian(double TrueCycles,
                              const MeasurementProtocol &Protocol,
                              Rng &Generator) {
  std::vector<double> Trials;
  Trials.reserve(Protocol.Trials);
  for (int Trial = 0; Trial < Protocol.Trials; ++Trial)
    Trials.push_back(measureOnce(TrueCycles, Protocol, Generator));
  return median(std::move(Trials));
}

bool metaopt::isReliablyMeasurable(double Cycles,
                                   const MeasurementProtocol &Protocol) {
  return Cycles >= Protocol.MinReliableCycles;
}
