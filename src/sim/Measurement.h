//===- sim/Measurement.h - Instrumented measurement protocol ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's loop instrumentation protocol (Section 4.4): the
/// cycle counter is read around each loop execution, the measurement is
/// noisy (multiplicative jitter plus occasional cache-boundary outliers),
/// each configuration is "run" 30 times, and the median is kept. Loops
/// that run for fewer than 50,000 cycles are considered too noisy to label.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SIM_MEASUREMENT_H
#define METAOPT_SIM_MEASUREMENT_H

#include "support/Rng.h"

#include <vector>

namespace metaopt {

/// Knobs of the measurement protocol.
struct MeasurementProtocol {
  int Trials = 30;            ///< Paper: "We run each benchmark 30 times".
  double NoiseStdDev = 0.008; ///< Multiplicative Gaussian measurement noise.
  double OutlierProb = 0.02;  ///< Chance of a cache-boundary outlier trial.
  double OutlierScale = 0.08; ///< Outlier magnitude (fraction of runtime).
  double InstrumentationCycles = 8.0; ///< Fixed per-measurement overhead of
                                      ///< the inserted timer instructions.
  double MinReliableCycles = 50000.0; ///< Paper's 50k-cycle noise floor.
};

/// Draws one noisy measurement of a loop whose true cost is \p TrueCycles.
double measureOnce(double TrueCycles, const MeasurementProtocol &Protocol,
                   Rng &Generator);

/// Runs the protocol: Trials noisy measurements, median kept.
double measureMedian(double TrueCycles, const MeasurementProtocol &Protocol,
                     Rng &Generator);

/// True when the measured runtime clears the paper's 50k-cycle floor.
bool isReliablyMeasurable(double Cycles,
                          const MeasurementProtocol &Protocol);

} // namespace metaopt

#endif // METAOPT_SIM_MEASUREMENT_H
