//===- sim/SimCompile.cpp -------------------------------------------------===//
//
// The compiled simulation fast path. Every function here mirrors a piece
// of sim/Simulator.cpp, sched/ListScheduler.cpp, or analysis/Liveness.cpp
// and must stay bit-identical to it; tests/perf_test.cpp asserts
// compile+evaluate == simulateLoop over the synthetic corpus and the fuzz
// seed corpus. Floating-point expression order and integer promotions are
// copied literally from the reference — do not "clean them up".
//
//===----------------------------------------------------------------------===//

#include "sim/SimCompile.h"

#include "analysis/DependenceGraph.h"
#include "analysis/symbolic/Canonical.h"
#include "analysis/symbolic/StrideInterval.h"
#include "sched/ModuloScheduler.h"
#include "sched/ScheduleValidate.h"
#include "transform/MemoryOpt.h"
#include "transform/Unroller.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

using namespace metaopt;

namespace {

//===----------------------------------------------------------------------===//
// Cost-model terms, replicated from the file-local helpers in
// sim/Simulator.cpp (they are deliberately not exported: the reference
// stays self-contained so it can anchor the identity tests).
//===----------------------------------------------------------------------===//

double alignmentTax(unsigned Factor) {
  bool PowerOfTwo = (Factor & (Factor - 1)) == 0;
  return PowerOfTwo ? 0.0 : 1.4;
}

double icachePenaltyPerIteration(int CodeBytes, const MachineModel &Machine,
                                 const SimContext &Ctx) {
  int Effective = std::min(Ctx.EffectiveIcacheBytes,
                           Machine.config().L1ICapacityBytes);
  if (CodeBytes <= Effective)
    return 0.0;
  int OverflowLines = (CodeBytes - Effective +
                       Machine.config().L1ILineBytes - 1) /
                      Machine.config().L1ILineBytes;
  return static_cast<double>(OverflowLines) *
         Machine.config().L1IMissCycles;
}

double dcacheStallPerIteration(unsigned UnpairedLoads,
                               const SimContext &Ctx) {
  return UnpairedLoads * Ctx.DcacheMissRate * Ctx.DcacheMissCycles *
         Ctx.DcacheVisibleFraction;
}

double exitPenaltyPerIteration(double Probability, unsigned Exits,
                               const MachineModel &Machine) {
  return Probability * Machine.config().MispredictPenalty + 0.15 * Exits;
}

/// Per-cycle resource bookkeeping; replica of the file-local ResourceTable
/// in sched/ListScheduler.cpp.
class ResourceTable {
public:
  explicit ResourceTable(const MachineModel &Machine) : Machine(Machine) {}

  bool tryIssue(const Instruction &Instr) {
    if (!occupiesIssueSlot(Instr))
      return true;
    Opcode Op = Instr.Op;
    if (Issued >= Machine.issueWidth())
      return false;
    UnitKind Primary = Machine.unitFor(Op);
    if (take(Primary)) {
      ++Issued;
      return true;
    }
    if (Primary == UnitKind::Int && Machine.canUseMemUnit(Op) &&
        take(UnitKind::Mem)) {
      ++Issued;
      return true;
    }
    return false;
  }

  void nextCycle() {
    Used.fill(0);
    Issued = 0;
  }

private:
  bool take(UnitKind Kind) {
    unsigned Index = static_cast<unsigned>(Kind);
    if (Used[Index] >= Machine.unitCount(Kind))
      return false;
    ++Used[Index];
    return true;
  }

  const MachineModel &Machine;
  std::array<int, NumUnitKinds> Used = {};
  int Issued = 0;
};

/// Reusable buffers for one compileLoopSim call: eight factors plus the
/// epilogue schedule through the same arena, so the inner scheduler and
/// liveness passes allocate only on the first body and high-water-mark
/// growth afterwards.
struct Scratch {
  // Scheduler.
  std::vector<int> Height;
  std::vector<uint32_t> Prio;
  std::vector<int> PredsLeft;
  std::vector<uint32_t> EarliestCycle;
  std::vector<uint32_t> ReadyFrom;
  std::vector<char> Done;
  std::vector<uint32_t> CycleOf;
  std::vector<uint32_t> Order;
  uint32_t Length = 0;
  // Liveness.
  std::vector<uint32_t> Position;
  std::vector<uint8_t> RegFlags;
  std::vector<uint32_t> DefPos;
  std::vector<uint32_t> LastUse;
  std::vector<int> DeltaInt;
  std::vector<int> DeltaFloat;
};

constexpr uint32_t NoPos = std::numeric_limits<uint32_t>::max();

constexpr uint8_t RegControl = 1;    ///< Dest/operand of loop control.
constexpr uint8_t RegPhiDest = 2;    ///< Loop::isPhiDest.
constexpr uint8_t RegDefined = 4;    ///< !Loop::isLiveIn.
constexpr uint8_t RegAcrossBack = 8; ///< Phi recurrence source.

//===----------------------------------------------------------------------===//
// Fast list scheduler. Produces the identical Schedule to
// sched/ListScheduler.cpp's listSchedule() without rebuilding and
// re-sorting a Candidates vector every cycle: the tie-break (Height
// descending, index ascending) is a strict total order, so one static
// priority-sorted order scanned per cycle visits each cycle's candidate
// set in exactly the reference's issue order. Two invariants carry the
// equivalence proof:
//
//  - Cycle-start snapshot: the reference only considers nodes whose
//    PredsLeft hit zero *before* the current cycle (Candidates is built
//    from the Ready list at cycle start). ReadyFrom[Dst] = Cycle + 1,
//    stamped when the count reaches zero mid-cycle, defers such nodes
//    exactly one scan — without it, a delay-0 enforced edge would let the
//    successor issue a cycle early.
//
//  - No mid-cycle constraint changes for eligible nodes: if a node is
//    eligible this cycle, all its enforced predecessors were Done before
//    the cycle began, so no issue during the scan can raise its
//    EarliestCycle. Checking eligibility at visit time is therefore the
//    same as checking at cycle start.
//===----------------------------------------------------------------------===//

void fastListSchedule(const Loop &L, const DependenceGraph &DG,
                      const MachineModel &Machine, Scratch &S) {
  size_t N = DG.numNodes();
  S.CycleOf.assign(N, 0);
  S.Order.clear();
  S.Length = 0;
  if (N == 0)
    return;

  std::vector<int> EffectiveLatency =
      schedEffectiveLatencies(L, DG, Machine);

  S.Height.assign(N, 0);
  for (uint32_t Node = static_cast<uint32_t>(N); Node-- > 0;) {
    S.Height[Node] = EffectiveLatency[Node];
    for (uint32_t EdgeIdx : DG.successors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (!schedEdgeEnforced(L, Edge))
        continue;
      int Delay = schedEdgeDelay(Edge, L, EffectiveLatency);
      S.Height[Node] = std::max(S.Height[Node], Delay + S.Height[Edge.Dst]);
    }
  }

  // The static priority order: every per-cycle Candidates sort in the
  // reference is a filtered copy of this one permutation.
  S.Prio.resize(N);
  std::iota(S.Prio.begin(), S.Prio.end(), 0);
  std::sort(S.Prio.begin(), S.Prio.end(), [&](uint32_t A, uint32_t B) {
    if (S.Height[A] != S.Height[B])
      return S.Height[A] > S.Height[B];
    return A < B;
  });

  S.PredsLeft.assign(N, 0);
  for (const DepEdge &Edge : DG.edges())
    if (schedEdgeEnforced(L, Edge))
      ++S.PredsLeft[Edge.Dst];

  S.EarliestCycle.assign(N, 0);
  S.ReadyFrom.assign(N, 0);
  S.Done.assign(N, 0);

  ResourceTable Resources(Machine);
  size_t Scheduled = 0;
  uint32_t Cycle = 0;
  uint32_t CycleCap = static_cast<uint32_t>(64 * N + 1024);

  // Two scan reductions on top of the reference-equivalent loop, neither
  // of which can change an issue decision:
  //  - Issued nodes are stably compacted out of the priority order; the
  //    surviving nodes are visited in exactly the same relative order.
  //  - A cycle in which no node passed the dependence/readiness checks
  //    changed no state (tryIssue was never reached), so Cycle can jump
  //    straight to the earliest ReadyFrom/EarliestCycle constraint among
  //    dependence-free nodes instead of re-scanning every empty cycle.
  size_t Active = N;
  while (Scheduled < N && Cycle < CycleCap) {
    bool AnyEligible = false;
    bool AnyIssued = false;
    uint32_t NextReady = std::numeric_limits<uint32_t>::max();
    for (size_t PI = 0; PI < Active; ++PI) {
      uint32_t Node = S.Prio[PI];
      if (S.Done[Node] || S.PredsLeft[Node] != 0)
        continue;
      uint32_t ReadyAt = std::max(S.ReadyFrom[Node], S.EarliestCycle[Node]);
      if (ReadyAt > Cycle) {
        NextReady = std::min(NextReady, ReadyAt);
        continue;
      }
      AnyEligible = true;
      if (!Resources.tryIssue(L.body()[Node]))
        continue;
      S.Done[Node] = 1;
      S.CycleOf[Node] = Cycle;
      AnyIssued = true;
      ++Scheduled;
      for (uint32_t EdgeIdx : DG.successors(Node)) {
        const DepEdge &Edge = DG.edge(EdgeIdx);
        if (!schedEdgeEnforced(L, Edge))
          continue;
        uint32_t SuccReady =
            Cycle +
            static_cast<uint32_t>(schedEdgeDelay(Edge, L, EffectiveLatency));
        S.EarliestCycle[Edge.Dst] =
            std::max(S.EarliestCycle[Edge.Dst], SuccReady);
        if (--S.PredsLeft[Edge.Dst] == 0)
          S.ReadyFrom[Edge.Dst] = Cycle + 1;
      }
    }
    if (AnyIssued) {
      size_t W = 0;
      for (size_t PI = 0; PI < Active; ++PI)
        if (!S.Done[S.Prio[PI]])
          S.Prio[W++] = S.Prio[PI];
      Active = W;
    }
    Resources.nextCycle();
    if (!AnyEligible && NextReady != std::numeric_limits<uint32_t>::max() &&
        NextReady > Cycle + 1)
      Cycle = NextReady;
    else
      ++Cycle;
  }
  assert(Scheduled == N && "fast list scheduler failed to place all ops");

  S.Order.resize(N);
  std::iota(S.Order.begin(), S.Order.end(), 0);
  std::sort(S.Order.begin(), S.Order.end(), [&](uint32_t A, uint32_t B) {
    if (S.CycleOf[A] != S.CycleOf[B])
      return S.CycleOf[A] < S.CycleOf[B];
    return A < B;
  });
  uint32_t LastCycle = 0;
  for (uint32_t Node = 0; Node < N; ++Node)
    LastCycle = std::max(LastCycle, S.CycleOf[Node]);
  S.Length = LastCycle + 1;
}

/// Mirror of Simulator.cpp's listScheduledIterationCycles over the
/// scratch schedule.
double iterationInterval(const Loop &L, const DependenceGraph &DG,
                         const MachineModel &Machine, const Scratch &S) {
  double Interval = S.Length;
  for (const DepEdge &Edge : DG.edges()) {
    if (Edge.Distance == 0)
      continue;
    int Delay = 0;
    switch (Edge.Kind) {
    case DepKind::Data:
      Delay = Machine.latency(L.body()[Edge.Src].Op);
      break;
    case DepKind::Memory:
      Delay = 1;
      break;
    case DepKind::Control:
      Delay = Machine.latency(L.body()[Edge.Src].Op);
      break;
    }
    double Needed =
        (static_cast<double>(S.CycleOf[Edge.Src]) + Delay -
         S.CycleOf[Edge.Dst]) /
        Edge.Distance;
    Interval = std::max(Interval, Needed);
  }
  return Interval;
}

//===----------------------------------------------------------------------===//
// Fast liveness: the per-class maxima of analyzeLiveness
// (analysis/Liveness.cpp) via delta arrays instead of an O(positions x
// intervals) sweep. Interval construction copies the reference case by
// case: control registers excluded, live-ins skipped, phi destinations
// live from 0, recurrence sources extended to N, unused ids skipped,
// inclusive [Begin, End] with positions swept in [0, N).
//===----------------------------------------------------------------------===//

void fastLiveness(const Loop &L, Scratch &S, unsigned &MaxLiveInt,
                  unsigned &MaxLiveFloat) {
  const std::vector<Instruction> &Body = L.body();
  size_t N = Body.size();
  unsigned R = L.numRegs();
  MaxLiveInt = 0;
  MaxLiveFloat = 0;

  S.Position.assign(N, 0);
  if (S.Order.empty()) {
    for (uint32_t Pos = 0; Pos < N; ++Pos)
      S.Position[Pos] = Pos;
  } else {
    for (uint32_t Pos = 0; Pos < S.Order.size(); ++Pos)
      S.Position[S.Order[Pos]] = Pos;
  }

  S.RegFlags.assign(R, 0);
  S.DefPos.assign(R, NoPos);
  S.LastUse.assign(R, NoPos);

  for (const PhiNode &Phi : L.phis()) {
    if (Phi.Recur != NoReg)
      S.RegFlags[Phi.Recur] |= RegAcrossBack;
    if (Phi.Dest != NoReg)
      S.RegFlags[Phi.Dest] |= RegPhiDest | RegDefined;
  }

  for (uint32_t I = 0; I < N; ++I) {
    const Instruction &Instr = Body[I];
    if (Instr.hasDest()) {
      S.RegFlags[Instr.Dest] |= RegDefined;
      if (!Instr.isLoopControl())
        S.DefPos[Instr.Dest] = S.Position[I];
    }
    if (Instr.isLoopControl()) {
      if (Instr.hasDest())
        S.RegFlags[Instr.Dest] |= RegControl;
      for (RegId Operand : Instr.Operands)
        S.RegFlags[Operand] |= RegControl;
      continue;
    }
    uint32_t Pos = S.Position[I];
    auto NoteUse = [&](RegId Reg) {
      if (S.LastUse[Reg] == NoPos || S.LastUse[Reg] < Pos)
        S.LastUse[Reg] = Pos;
    };
    for (RegId Operand : Instr.Operands)
      NoteUse(Operand);
    if (Instr.Pred != NoReg)
      NoteUse(Instr.Pred);
  }

  uint32_t EndPos = static_cast<uint32_t>(N);
  S.DeltaInt.assign(N + 2, 0);
  S.DeltaFloat.assign(N + 2, 0);

  for (RegId Reg = 0; Reg < R; ++Reg) {
    uint8_t Flags = S.RegFlags[Reg];
    if (Flags & RegControl)
      continue;
    if (!(Flags & RegDefined))
      continue; // Live-in: whole-loop pressure is counted separately by
                // the reference and never feeds the spill model.
    uint32_t Begin = 0, End = 0;
    if (Flags & RegPhiDest) {
      Begin = 0;
      End = S.LastUse[Reg] == NoPos ? 0 : S.LastUse[Reg];
    } else {
      if (S.DefPos[Reg] == NoPos)
        continue; // Defined only by loop control: excluded via RegControl,
                  // or an unused id the reference also skips.
      Begin = S.DefPos[Reg];
      End = S.LastUse[Reg] == NoPos ? Begin
                                    : std::max(Begin, S.LastUse[Reg]);
    }
    if (Flags & RegAcrossBack)
      End = EndPos;
    switch (L.regClass(Reg)) {
    case RegClass::Int:
      ++S.DeltaInt[Begin];
      --S.DeltaInt[End + 1];
      break;
    case RegClass::Float:
      ++S.DeltaFloat[Begin];
      --S.DeltaFloat[End + 1];
      break;
    case RegClass::Pred:
      break; // The spill model only consumes the int/float maxima.
    }
  }

  int LiveInt = 0, LiveFloat = 0;
  for (uint32_t Pos = 0; Pos < EndPos; ++Pos) {
    LiveInt += S.DeltaInt[Pos];
    LiveFloat += S.DeltaFloat[Pos];
    MaxLiveInt = std::max(MaxLiveInt, static_cast<unsigned>(LiveInt));
    MaxLiveFloat = std::max(MaxLiveFloat, static_cast<unsigned>(LiveFloat));
  }
}

//===----------------------------------------------------------------------===//
// Body stats: schedule + liveness + static body counts, cached across
// structurally identical bodies.
//===----------------------------------------------------------------------===//

SimBodyStats computeBodyStatsUncached(const Loop &L,
                                      const MachineModel &Machine,
                                      Scratch &S) {
  SimBodyStats Stats;
  Stats.BodyOps = L.body().size();
  for (const Instruction &Instr : L.body()) {
    if (Instr.isLoad() && !Instr.Paired)
      ++Stats.UnpairedLoads;
    if (Instr.Op == Opcode::ExitIf) {
      Stats.ExitProbSum += Instr.TakenProb;
      ++Stats.ExitCount;
    }
  }
  DependenceGraph DG(L);
  fastListSchedule(L, DG, Machine, S);
  Stats.Length = S.Length;
  Stats.Interval = iterationInterval(L, DG, Machine, S);
  fastLiveness(L, S, Stats.MaxLiveInt, Stats.MaxLiveFloat);
  return Stats;
}

SimBodyStats computeBodyStats(const Loop &L, const MachineModel &Machine,
                              SimBodyStatsCache *Cache, Scratch &S) {
  if (!Cache)
    return computeBodyStatsUncached(L, Machine, S);
  FingerprintHasher H;
  H.str("metaopt-simbody-stats-key-v1");
  hashCanonicalSimStructure(H, L);
  Fingerprint Key = H.digest();
  if (std::optional<SimBodyStats> Found = Cache->lookup(Key))
    return *Found;
  SimBodyStats Stats = computeBodyStatsUncached(L, Machine, S);
  Cache->insert(Key, Stats);
  return Stats;
}

/// The Ctx-dependent half of Simulator.cpp's listScheduledBodyCost,
/// replayed over captured stats.
struct EvaluatedBody {
  double PerIteration = 0.0;
  unsigned Spills = 0;
  int CodeBytes = 0;
};

EvaluatedBody evaluateBodyCost(const SimBodyStats &Stats,
                               const MachineModel &Machine,
                               const SimContext &Ctx) {
  unsigned IntBudget = static_cast<unsigned>(
      std::min(Machine.config().IntRegs, Ctx.IntRegBudget));
  unsigned FpBudget = static_cast<unsigned>(
      std::min(Machine.config().FloatRegs, Ctx.FpRegBudget));
  EvaluatedBody Cost;
  if (Stats.MaxLiveInt > IntBudget)
    Cost.Spills += Stats.MaxLiveInt - IntBudget;
  if (Stats.MaxLiveFloat > FpBudget)
    Cost.Spills += Stats.MaxLiveFloat - FpBudget;
  Cost.CodeBytes = Machine.codeBytes(
      static_cast<int>(Stats.BodyOps + 2 * Cost.Spills));
  Cost.PerIteration =
      Stats.Interval +
      Cost.Spills * Machine.config().SpillCycles +
      icachePenaltyPerIteration(Cost.CodeBytes, Machine, Ctx) +
      dcacheStallPerIteration(Stats.UnpairedLoads, Ctx) +
      exitPenaltyPerIteration(Stats.ExitProbSum, Stats.ExitCount, Machine);
  return Cost;
}

} // namespace

//===----------------------------------------------------------------------===//
// SimBodyStatsCache
//===----------------------------------------------------------------------===//

std::optional<SimBodyStats>
SimBodyStatsCache::lookup(const Fingerprint &Key) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return It->second;
}

void SimBodyStatsCache::insert(const Fingerprint &Key,
                               const SimBodyStats &Stats) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Map.emplace(Key, Stats);
}

size_t SimBodyStatsCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Map.size();
}

//===----------------------------------------------------------------------===//
// compileLoopSim / evaluatePlan
//===----------------------------------------------------------------------===//

LoopSimPlan metaopt::compileLoopSim(const Loop &L,
                                    const MachineModel &Machine,
                                    const SimContext &Ctx, bool EnableSwp,
                                    SimBodyStatsCache *Cache) {
  int64_t Trip = L.runtimeTripCount();
  // Same diagnostic (and same wording) the reference raises on the first
  // simulateLoop call for this loop.
  if (Trip < 0)
    throw std::domain_error("simulateLoop: loop '" + L.name() +
                            "' has no concrete runtime trip count");

  LoopSimPlan Plan;
  Plan.LoopName = L.name();
  Plan.Trip = Trip;
  Plan.HasKnownTrip = L.hasKnownTripCount();
  Plan.Swp = EnableSwp;

  Scratch S;
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    Loop Unrolled = unrollLoop(L, Factor);
    {
      SymbolicAnalysis Symbolic(Unrolled);
      optimizeMemory(Unrolled, &Symbolic);
    }
    CompiledFactor &CF = Plan.Factors[Factor - 1];
    if (EnableSwp) {
      DependenceGraph DG(Unrolled);
      RegBudget Budget{Ctx.IntRegBudget, Ctx.FpRegBudget};
      SwpResult Swp = moduloSchedule(Unrolled, DG, Machine, Budget);
      if (Swp.Pipelined) {
        CF.Pipelined = true;
        CF.II = Swp.II;
        CF.StageCount = Swp.StageCount;
        CF.SwpSpills = Swp.SpillsPerIteration;
        CF.Main.BodyOps = Unrolled.body().size();
        for (const Instruction &Instr : Unrolled.body())
          if (Instr.isLoad() && !Instr.Paired)
            ++CF.Main.UnpairedLoads;
      }
    }
    if (!CF.Pipelined)
      CF.Main = computeBodyStats(Unrolled, Machine, Cache, S);
  }

  // One epilogue body serves every factor: unrolledTripInfo(Trip, F)
  // leaves Trip % F leftover iterations of the *original* body, so the
  // reference's per-factor memopt(L) recompute always lands on the same
  // loop. Factor 1 never has an epilogue (Trip % 1 == 0).
  for (unsigned Factor = 2; Factor <= MaxUnrollFactor; ++Factor) {
    if (unrolledTripInfo(Trip, Factor).EpilogueIterations <= 0)
      continue;
    Loop EpilogueLoop = L;
    {
      SymbolicAnalysis Symbolic(EpilogueLoop);
      optimizeMemory(EpilogueLoop, &Symbolic);
    }
    Plan.HasEpilogue = true;
    Plan.Epilogue = computeBodyStats(EpilogueLoop, Machine, Cache, S);
    break;
  }
  return Plan;
}

SimResult metaopt::evaluatePlan(const LoopSimPlan &Plan, unsigned Factor,
                                const MachineModel &Machine,
                                const SimContext &Ctx) {
  if (Factor < 1 || Factor > MaxUnrollFactor)
    throw std::invalid_argument(
        "simulateLoop: unroll factor " + std::to_string(Factor) +
        " for loop '" + Plan.LoopName + "' is outside [1, " +
        std::to_string(MaxUnrollFactor) + "]");

  UnrolledTripInfo TripInfo = unrolledTripInfo(Plan.Trip, Factor);
  const CompiledFactor &CF = Plan.Factors[Factor - 1];

  SimResult Result;
  double MainCycles = 0.0;

  if (CF.Pipelined) {
    Result.UsedSwp = true;
    Result.II = CF.II;
    Result.SpillPairs = CF.SwpSpills;
    Result.CodeBytes = Machine.codeBytes(
        static_cast<int>(CF.Main.BodyOps + 2 * CF.SwpSpills));
    double PerIteration =
        CF.II + CF.SwpSpills * Machine.config().SpillCycles +
        icachePenaltyPerIteration(Result.CodeBytes, Machine, Ctx) +
        dcacheStallPerIteration(CF.Main.UnpairedLoads, Ctx) +
        alignmentTax(Factor);
    MainCycles = PerIteration * TripInfo.MainIterations +
                 static_cast<double>(CF.StageCount - 1) * CF.II * 2.0;
    Result.CyclesPerIteration = PerIteration / Factor;
  } else {
    EvaluatedBody Cost = evaluateBodyCost(CF.Main, Machine, Ctx);
    Result.SpillPairs = Cost.Spills;
    Result.ScheduleLength = CF.Main.Length;
    Result.CodeBytes = Cost.CodeBytes;
    double PerIteration = Cost.PerIteration + alignmentTax(Factor);
    MainCycles = PerIteration * TripInfo.MainIterations;
    Result.CyclesPerIteration = PerIteration / Factor;
  }

  double EpilogueCycles = 0.0;
  if (TripInfo.EpilogueIterations > 0) {
    assert(Plan.HasEpilogue && "plan compiled without its epilogue");
    EvaluatedBody Epilogue = evaluateBodyCost(Plan.Epilogue, Machine, Ctx);
    EpilogueCycles = Epilogue.PerIteration * TripInfo.EpilogueIterations +
                     Machine.config().MispredictPenalty + 2.0;
  }

  double Overhead = 10.0;
  if (Factor > 1 && !Plan.HasKnownTrip)
    Overhead += 10.0 + Machine.config().MispredictPenalty;
  Overhead += Machine.config().MispredictPenalty;
  double ColdFraction = std::clamp(
      64.0 / std::max(1, Ctx.EffectiveIcacheBytes), 0.01, 0.5);
  Overhead += static_cast<double>(Result.CodeBytes) /
              Machine.config().L1ILineBytes *
              Machine.config().L1IMissCycles * ColdFraction;

  Result.Cycles = MainCycles + EpilogueCycles + Overhead;
  return Result;
}
