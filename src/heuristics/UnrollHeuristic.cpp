//===- heuristics/UnrollHeuristic.cpp -------------------------------------===//

#include "heuristics/UnrollHeuristic.h"

#include <cassert>

using namespace metaopt;

UnrollHeuristic::~UnrollHeuristic() = default;

FixedFactorHeuristic::FixedFactorHeuristic(unsigned Factor)
    : Factor(Factor) {
  assert(Factor >= 1 && Factor <= MaxUnrollFactor &&
         "fixed factor out of range");
}

std::string FixedFactorHeuristic::name() const {
  return "fixed-" + std::to_string(Factor);
}

unsigned FixedFactorHeuristic::chooseFactor(const Loop &) const {
  return Factor;
}
