//===- heuristics/OrcLikeHeuristic.h - Hand-written baseline ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written unroll heuristic in the spirit of ORC v2.1's, the
/// baseline the paper's learned classifiers are compared against. ORC ships
/// two separate policies - one used when software pipelining is disabled
/// and one tuned for the pipeliner (the paper notes the latter was ~205
/// lines of C++ after years of tuning) - so this class has two modes.
///
/// The SWP-off policy reasons about body size, trip counts, early exits,
/// calls, recurrences and code growth. The SWP-on policy additionally
/// chases fractional initiation intervals: it unrolls until U * ResMII is
/// close to an integer so no resource slots are wasted, while watching
/// register pressure.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_HEURISTICS_ORCLIKEHEURISTIC_H
#define METAOPT_HEURISTICS_ORCLIKEHEURISTIC_H

#include "heuristics/UnrollHeuristic.h"
#include "machine/Machine.h"

namespace metaopt {

/// The hand-written production-style baseline.
class OrcLikeHeuristic : public UnrollHeuristic {
public:
  /// \p SwpMode selects the software-pipelining-aware variant.
  OrcLikeHeuristic(const MachineModel &Machine, bool SwpMode);

  std::string name() const override;
  unsigned chooseFactor(const Loop &L) const override;

private:
  unsigned chooseNoSwp(const Loop &L) const;
  unsigned chooseSwp(const Loop &L) const;

  const MachineModel &Machine;
  bool SwpMode;
};

} // namespace metaopt

#endif // METAOPT_HEURISTICS_ORCLIKEHEURISTIC_H
