//===- heuristics/OrcLikeHeuristic.cpp ------------------------------------===//

#include "heuristics/OrcLikeHeuristic.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Latency.h"
#include "analysis/Liveness.h"
#include "analysis/Recurrence.h"
#include "sched/ModuloScheduler.h"
#include "transform/Unroller.h"

#include <algorithm>
#include <cmath>

using namespace metaopt;

OrcLikeHeuristic::OrcLikeHeuristic(const MachineModel &Machine, bool SwpMode)
    : Machine(Machine), SwpMode(SwpMode) {}

std::string OrcLikeHeuristic::name() const {
  return SwpMode ? "orc-swp" : "orc";
}

unsigned OrcLikeHeuristic::chooseFactor(const Loop &L) const {
  return SwpMode ? chooseSwp(L) : chooseNoSwp(L);
}

namespace {

/// Structural facts both policies look at.
struct LoopShape {
  unsigned BodyOps = 0; // Without the loop-control tail.
  unsigned MemOps = 0;
  unsigned FpOps = 0;
  unsigned Exits = 0;
  unsigned Calls = 0;
  unsigned LongLatencyOps = 0; // Divides, square roots.
  bool HasRecurrence = false;
};

LoopShape shapeOf(const Loop &L) {
  LoopShape Shape;
  for (const Instruction &Instr : L.body()) {
    if (Instr.isLoopControl())
      continue;
    ++Shape.BodyOps;
    if (Instr.isMemory())
      ++Shape.MemOps;
    if (Instr.isFloat())
      ++Shape.FpOps;
    if (Instr.Op == Opcode::ExitIf)
      ++Shape.Exits;
    if (Instr.isCall())
      ++Shape.Calls;
    if (Instr.Op == Opcode::FDiv || Instr.Op == Opcode::FSqrt ||
        Instr.Op == Opcode::IDiv || Instr.Op == Opcode::IRem)
      ++Shape.LongLatencyOps;
  }
  Shape.HasRecurrence = !L.phis().empty();
  return Shape;
}

/// Rounds down to a power of two in [1, MaxUnrollFactor].
unsigned floorPowerOfTwo(unsigned Value) {
  unsigned Power = 1;
  while (Power * 2 <= std::min(Value, MaxUnrollFactor))
    Power *= 2;
  return Power;
}

} // namespace

unsigned OrcLikeHeuristic::chooseNoSwp(const Loop &L) const {
  LoopShape Shape = shapeOf(L);

  // Rule 1: never unroll around calls; the call dominates anyway and the
  // register pressure across the call is already painful.
  if (Shape.Calls > 0)
    return 1;

  // Rule 2: big bodies do not unroll - the classic code-size guard.
  // (The threshold is generous because the post-unroll memory optimizer
  // shrinks and pairs references, so big bodies often still profit.)
  if (Shape.BodyOps > 80)
    return 1;

  // Rule 3: fully unroll tiny known trip counts (the remainder loop would
  // otherwise dominate).
  if (L.hasKnownTripCount() && L.tripCount() >= 1 &&
      L.tripCount() <= static_cast<int64_t>(MaxUnrollFactor))
    return static_cast<unsigned>(L.tripCount());

  // Rule 4: aim to fill the machine. The target is enough operations to
  // keep the issue slots busy for a handful of cycles; small bodies get
  // large factors, large bodies small ones.
  unsigned TargetOps =
      static_cast<unsigned>(Machine.issueWidth()) * 8; // ~8 full cycles.
  unsigned Factor = 1;
  if (Shape.BodyOps > 0)
    Factor = std::max(1u, TargetOps / Shape.BodyOps);

  // Rule 5: loops with early exits replicate their exit branches when
  // unrolled; keep the copy count low.
  if (Shape.Exits > 0)
    Factor = std::min(Factor, 2u);

  // Rule 6: long-latency serial math caps the benefit of more copies
  // unless there is independent work.
  if (Shape.LongLatencyOps * 2 >= Shape.BodyOps)
    Factor = std::min(Factor, 4u);

  // Rule 7: memory-bound bodies saturate the M units quickly.
  if (Shape.MemOps * 3 > Shape.BodyOps * 2)
    Factor = std::min(Factor, 4u);

  // Rule 8: respect the trip count - no point unrolling past it.
  if (L.hasKnownTripCount() && L.tripCount() > 0)
    Factor = std::min<unsigned>(
        Factor, static_cast<unsigned>(
                    std::min<int64_t>(L.tripCount(), MaxUnrollFactor)));

  // Rule 9: keep the unrolled body inside a comfortable code budget.
  while (Factor > 1 &&
         Machine.codeBytes(static_cast<int>(Shape.BodyOps * Factor)) >
             Machine.config().L1ICapacityBytes / 4)
    Factor /= 2;

  // ORC-style heuristics round to powers of two: remainder handling is
  // cheapest and the schedule shapes tile evenly.
  return floorPowerOfTwo(std::clamp(Factor, 1u, MaxUnrollFactor));
}

unsigned OrcLikeHeuristic::chooseSwp(const Loop &L) const {
  LoopShape Shape = shapeOf(L);

  // The pipeliner will reject these; use the plain policy.
  if (Shape.Calls > 0 || Shape.Exits > 0)
    return chooseNoSwp(L);

  if (Shape.BodyOps == 0 || Shape.BodyOps > 64)
    return 1;

  DependenceGraph DG(L);
  double ResMII = resourceMIIForLoop(L, Machine);
  double RecMII = recurrenceMII(
      L, DG, [this](Opcode Op) { return Machine.latency(Op); });

  // A recurrence only constrains unrolling when the unroller cannot break
  // it: splittable reductions get one accumulator per copy, so their II
  // does not grow with the factor; memory-carried recurrences and
  // non-associative chains do scale with it.
  bool Breakable = DG.minCarriedMemoryDistance() == 0;
  for (const PhiNode &Phi : L.phis())
    Breakable &= isSplittableReduction(L, Phi);

  // Unbreakably recurrence-bound loops gain nothing from unrolling: the
  // cycle grows as fast as the work does.
  if (!Breakable && RecMII >= ResMII * 1.5)
    return 1;

  // Chase a fractional II: find the factor whose integral II wastes the
  // fewest issue slots per original iteration. The useful work is
  // ResMII * U cycles; an unbreakable recurrence scales with the factor,
  // while a breakable one leaves only the trivial II >= 1 floor.
  bool HasRecurrence = RecMII > 1.0 + 1e-9 && !Breakable;
  unsigned BestFactor = 1;
  double BestWaste = 1e9;
  LivenessInfo Live = analyzeLiveness(L);
  for (unsigned Factor : {1u, 2u, 4u, 8u}) { // Remainder handling and
                                             // code layout favor powers
                                             // of two.
    if (L.hasKnownTripCount() &&
        static_cast<int64_t>(Factor) > L.tripCount())
      break;
    // Unknown trip counts risk paying the version check and remainder for
    // nothing; stay conservative.
    if (!L.hasKnownTripCount() && Factor > 2)
      break;
    // Keep the pipelined body inside a comfortable code budget.
    if (Machine.codeBytes(static_cast<int>(Shape.BodyOps * Factor)) >
        Machine.config().L1ICapacityBytes / 8)
      break;
    double Work = ResMII * Factor;
    double Floor = HasRecurrence ? RecMII * Factor : 1.0;
    double II = std::ceil(std::max({Work, Floor, 1.0}) - 1e-9);
    double Waste = (II - Work) / Factor;
    // Estimate pressure growth: each copy adds its temporaries.
    double PressureEstimate =
        static_cast<double>(Live.MaxLiveTotal) * Factor;
    if (PressureEstimate >
        0.8 * (Machine.config().IntRegs + Machine.config().FloatRegs))
      break;
    if (Waste + 1e-9 < BestWaste) {
      BestWaste = Waste;
      BestFactor = Factor;
    }
  }
  return BestFactor;
}
