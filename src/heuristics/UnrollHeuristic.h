//===- heuristics/UnrollHeuristic.h - Heuristic interface -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every unroll-factor policy implements — the hand-written
/// ORC-like baseline, fixed factors, and (in src/core) the learned
/// classifiers — so the evaluation harness can compare them uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_HEURISTICS_UNROLLHEURISTIC_H
#define METAOPT_HEURISTICS_UNROLLHEURISTIC_H

#include "ir/Loop.h"

#include <string>

namespace metaopt {

/// A policy that picks an unroll factor (1..MaxUnrollFactor) for a loop.
class UnrollHeuristic {
public:
  virtual ~UnrollHeuristic();

  /// Human-readable policy name for tables.
  virtual std::string name() const = 0;

  /// Chooses the unroll factor for \p L.
  virtual unsigned chooseFactor(const Loop &L) const = 0;
};

/// Always answers the same factor. Factor 1 is the "never unroll"
/// baseline; factor 8 approximates "always unroll as much as allowed".
class FixedFactorHeuristic : public UnrollHeuristic {
public:
  explicit FixedFactorHeuristic(unsigned Factor);
  std::string name() const override;
  unsigned chooseFactor(const Loop &L) const override;

private:
  unsigned Factor;
};

} // namespace metaopt

#endif // METAOPT_HEURISTICS_UNROLLHEURISTIC_H
