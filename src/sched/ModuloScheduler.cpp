//===- sched/ModuloScheduler.cpp ------------------------------------------===//

#include "sched/ModuloScheduler.h"

#include "analysis/Recurrence.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace metaopt;

double metaopt::resourceMIIForLoop(const Loop &L,
                                   const MachineModel &Machine) {
  int Total = 0;
  std::array<int, NumUnitKinds> Count = {};
  int FlexibleInt = 0; // A-type ops that can also use a memory slot.
  for (const Instruction &Instr : L.body()) {
    // Folded loop control and paired wide-load halves are free.
    if (!occupiesIssueSlot(Instr))
      continue;
    ++Total;
    UnitKind Kind = Machine.unitFor(Instr.Op);
    ++Count[static_cast<unsigned>(Kind)];
    if (Kind == UnitKind::Int && Machine.canUseMemUnit(Instr.Op))
      ++FlexibleInt;
  }

  double MII = static_cast<double>(Total) / Machine.issueWidth();
  auto Bound = [&](double Ops, int Units) {
    if (Units > 0)
      MII = std::max(MII, Ops / Units);
  };
  Bound(Count[static_cast<unsigned>(UnitKind::Fp)],
        Machine.unitCount(UnitKind::Fp));
  Bound(Count[static_cast<unsigned>(UnitKind::Br)],
        Machine.unitCount(UnitKind::Br));
  Bound(Count[static_cast<unsigned>(UnitKind::Mem)],
        Machine.unitCount(UnitKind::Mem));
  // Inflexible integer ops need I slots; the flexible ones share I+M with
  // the memory operations.
  int IntOps = Count[static_cast<unsigned>(UnitKind::Int)];
  Bound(IntOps - FlexibleInt, Machine.unitCount(UnitKind::Int));
  Bound(IntOps + Count[static_cast<unsigned>(UnitKind::Mem)],
        Machine.unitCount(UnitKind::Int) + Machine.unitCount(UnitKind::Mem));
  // Deliberately unclamped: fractional values below 1.0 carry the "wasted
  // issue slots" signal the unroll heuristics act on; schedulers take the
  // ceiling themselves.
  return MII;
}

SwpResult metaopt::moduloSchedule(const Loop &L, const DependenceGraph &DG,
                                  const MachineModel &Machine,
                                  const RegBudget &Budget) {
  SwpResult Result;

  // Production pipeliners reject loops with internal control transfers.
  for (const Instruction &Instr : L.body()) {
    if (Instr.Op == Opcode::ExitIf || Instr.isCall()) {
      Result.Pipelined = false;
      return Result;
    }
  }

  Result.ResMII = static_cast<int>(
      std::ceil(resourceMIIForLoop(L, Machine) - 1e-9));
  Result.RecMII = recurrenceMII(
      L, DG, [&Machine](Opcode Op) { return Machine.latency(Op); });
  int MinII = std::max(Result.ResMII,
                       static_cast<int>(std::ceil(Result.RecMII - 1e-9)));
  MinII = std::max(MinII, 1);

  // ASAP start times over intra-iteration dependences (machine latencies);
  // body order is a topological order of the distance-0 subgraph.
  size_t N = DG.numNodes();
  std::vector<int> Start(N, 0);
  int Makespan = 1;
  for (uint32_t Node = 0; Node < N; ++Node) {
    for (uint32_t EdgeIdx : DG.predecessors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (Edge.Distance != 0)
        continue;
      int Delay = 0;
      switch (Edge.Kind) {
      case DepKind::Data:
        Delay = Machine.latency(L.body()[Edge.Src].Op);
        break;
      case DepKind::Memory:
        Delay = 1;
        break;
      case DepKind::Control:
        Delay = 0;
        break;
      }
      Start[Node] = std::max(Start[Node], Start[Edge.Src] + Delay);
    }
    Makespan = std::max(Makespan,
                        Start[Node] + Machine.latency(L.body()[Node].Op));
  }

  // Value lifetimes: from definition to last intra-iteration use (at least
  // the producer latency); recurrence sources stay live into the next
  // iteration, adding II cycles, which is accounted inside the pressure
  // loop below since it depends on II.
  std::map<RegId, bool> Recurs;
  for (const PhiNode &Phi : L.phis())
    Recurs[Phi.Recur] = true;

  struct Lifetime {
    int Cycles = 0;
    bool CrossesIteration = false;
    RegClass RC = RegClass::Int;
  };
  std::vector<Lifetime> Lifetimes;
  for (uint32_t Node = 0; Node < N; ++Node) {
    const Instruction &Instr = L.body()[Node];
    if (!Instr.hasDest())
      continue;
    int DefStart = Start[Node];
    int LastUse = DefStart + Machine.latency(Instr.Op);
    for (uint32_t EdgeIdx : DG.successors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (Edge.Kind != DepKind::Data || Edge.Distance != 0)
        continue;
      LastUse = std::max(LastUse, Start[Edge.Dst]);
    }
    Lifetime Life;
    Life.Cycles = LastUse - DefStart;
    Life.CrossesIteration = Recurs.count(Instr.Dest) != 0;
    Life.RC = L.regClass(Instr.Dest);
    Lifetimes.push_back(Life);
  }

  // Register-pressure-driven II selection: in a modulo schedule the mean
  // number of live values of a class is (sum of lifetimes) / II. Bump II
  // until the pressure fits or the bump budget (2x) is exhausted; any
  // residue spills.
  int II = MinII;
  int MaxII = std::max(MinII * 2, MinII + 4);
  unsigned Spills = 0;
  for (;; ++II) {
    double IntPressure = 0.0, FloatPressure = 0.0;
    for (const Lifetime &Life : Lifetimes) {
      double Cycles = Life.Cycles + (Life.CrossesIteration ? II : 0);
      double Pressure = Cycles / II;
      if (Life.RC == RegClass::Int)
        IntPressure += Pressure;
      else if (Life.RC == RegClass::Float)
        FloatPressure += Pressure;
    }
    double IntOver =
        IntPressure - std::min(Machine.config().IntRegs, Budget.IntRegs);
    double FloatOver =
        FloatPressure - std::min(Machine.config().FloatRegs, Budget.FpRegs);
    if ((IntOver <= 0.0 && FloatOver <= 0.0) || II >= MaxII) {
      Spills = static_cast<unsigned>(std::ceil(std::max(0.0, IntOver)) +
                                     std::ceil(std::max(0.0, FloatOver)));
      break;
    }
  }

  Result.Pipelined = true;
  Result.II = II;
  Result.StageCount = std::max(1, (Makespan + II - 1) / II);
  Result.SpillsPerIteration = Spills;
  return Result;
}
