//===- sched/ScheduleValidate.h - Schedule legality checking ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent legality checking for acyclic (list) schedules, plus the
/// shared latency/delay model the list scheduler plans with. Factoring the
/// model out of ListScheduler.cpp lets a validator re-derive every timing
/// constraint from the dependence graph and check a Schedule against it
/// without trusting the scheduler's own bookkeeping — which is what the
/// differential fuzzer (fuzz/Oracles.h) and sched_test lean on. The
/// modulo-schedule counterpart is validateModuloSchedule
/// (sched/IterativeModulo.h).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SCHED_SCHEDULEVALIDATE_H
#define METAOPT_SCHED_SCHEDULEVALIDATE_H

#include "analysis/DependenceGraph.h"
#include "ir/Loop.h"
#include "machine/Machine.h"
#include "sched/Schedule.h"

#include <string>
#include <vector>

namespace metaopt {

/// Per-node latencies as the code generator sees them: direct loads not
/// behind an exit and not fed by a carried store are rotated (latency 1),
/// everything else keeps its machine latency.
std::vector<int> schedEffectiveLatencies(const Loop &L,
                                         const DependenceGraph &DG,
                                         const MachineModel &Machine);

/// Scheduling delay of \p Edge: data dependences wait out the producer's
/// effective latency (one cycle into a store's data operand), memory
/// ordering needs one cycle, control ordering allows same-cycle issue.
int schedEdgeDelay(const DepEdge &Edge, const Loop &L,
                   const std::vector<int> &EffectiveLatency);

/// True when the list scheduler must honor \p Edge: every distance-0 edge
/// except speculatable control edges, which are re-enforced only into the
/// backedge branch (the loop cannot branch back before its work issued).
bool schedEdgeEnforced(const Loop &L, const DepEdge &Edge);

/// Checks \p Sched against every constraint listSchedule promises:
/// complete placement, deterministic issue order, enforced-edge timing,
/// per-cycle issue width and unit-pool feasibility (including the
/// Int-to-Mem overflow for A-type operations), folded instructions issuing
/// for free, the backedge branch issuing last, and Length consistency.
/// Returns human-readable violations; empty means legal.
std::vector<std::string> validateListSchedule(const Loop &L,
                                              const DependenceGraph &DG,
                                              const MachineModel &Machine,
                                              const Schedule &Sched);

} // namespace metaopt

#endif // METAOPT_SCHED_SCHEDULEVALIDATE_H
