//===- sched/Schedule.cpp -------------------------------------------------===//
// Schedule and SwpResult are plain aggregates; this file anchors the
// translation unit.

#include "sched/Schedule.h"
