//===- sched/IterativeModulo.cpp ------------------------------------------===//

#include "sched/IterativeModulo.h"

#include "analysis/Recurrence.h"
#include "sched/ModuloScheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace metaopt;

namespace {

/// Dependence delay under machine latencies (the schedule-time rule:
/// time(dst) >= time(src) + delay - II * distance).
int edgeDelay(const DepEdge &Edge, const Loop &L,
              const MachineModel &Machine) {
  switch (Edge.Kind) {
  case DepKind::Data:
    return Machine.latency(L.body()[Edge.Src].Op);
  case DepKind::Memory:
    return 1;
  case DepKind::Control:
    return Edge.Distance ? Machine.latency(L.body()[Edge.Src].Op) : 0;
  }
  return 0;
}


/// The modulo reservation table: per (cycle mod II) slot, which nodes
/// hold which unit, so eviction can identify victims.
class ReservationTable {
public:
  ReservationTable(const MachineModel &Machine, int II)
      : Machine(Machine), II(II),
        SlotNodes(static_cast<size_t>(II)) {}

  /// Nodes that must be evicted for \p Node (with \p Op) to issue in the
  /// modulo slot of \p Cycle. Empty if it fits without eviction.
  /// Simplification: when the unit pool or the issue width is full, the
  /// eviction victim is the youngest-placed holder of the same slot.
  std::vector<uint32_t> conflictsAt(const Instruction &Instr,
                                    int Cycle) const {
    if (!occupiesIssueSlot(Instr))
      return {};
    Opcode Op = Instr.Op;
    const std::vector<Placed> &Here =
        SlotNodes[static_cast<size_t>(Cycle % II)];
    int Width = 0;
    int UnitUse = 0;
    UnitKind Kind = Machine.unitFor(Op);
    for (const Placed &P : Here) {
      ++Width;
      if (P.Kind == Kind)
        ++UnitUse;
    }
    bool WidthFull = Width >= Machine.issueWidth();
    bool UnitFull = UnitUse >= Machine.unitCount(Kind) &&
                    !(Kind == UnitKind::Int && Machine.canUseMemUnit(Op) &&
                      memSlack(Here) > 0);
    if (!WidthFull && !UnitFull)
      return {};
    // Evict the most recently placed conflicting occupant.
    for (auto It = Here.rbegin(); It != Here.rend(); ++It)
      if (WidthFull || It->Kind == Kind)
        return {It->Node};
    return {Here.back().Node};
  }

  void place(uint32_t Node, const Instruction &Instr, int Cycle) {
    if (!occupiesIssueSlot(Instr))
      return;
    Opcode Op = Instr.Op;
    UnitKind Kind = Machine.unitFor(Op);
    // A-type ops take a spare M slot when the I pool is full.
    const std::vector<Placed> &Here =
        SlotNodes[static_cast<size_t>(Cycle % II)];
    if (Kind == UnitKind::Int && Machine.canUseMemUnit(Op)) {
      int IntUse = 0;
      for (const Placed &P : Here)
        IntUse += P.Kind == UnitKind::Int;
      if (IntUse >= Machine.unitCount(UnitKind::Int))
        Kind = UnitKind::Mem;
    }
    SlotNodes[static_cast<size_t>(Cycle % II)].push_back({Node, Kind});
  }

  void remove(uint32_t Node, int Cycle) {
    std::vector<Placed> &Here = SlotNodes[static_cast<size_t>(Cycle % II)];
    for (size_t I = 0; I < Here.size(); ++I) {
      if (Here[I].Node == Node) {
        Here.erase(Here.begin() + static_cast<long>(I));
        return;
      }
    }
  }

private:
  struct Placed {
    uint32_t Node;
    UnitKind Kind;
  };

  int memSlack(const std::vector<Placed> &Here) const {
    int MemUse = 0;
    for (const Placed &P : Here)
      MemUse += P.Kind == UnitKind::Mem;
    return Machine.unitCount(UnitKind::Mem) - MemUse;
  }

  const MachineModel &Machine;
  int II;
  std::vector<std::vector<Placed>> SlotNodes;
};

} // namespace

ModuloScheduleResult
metaopt::iterativeModuloSchedule(const Loop &L, const DependenceGraph &DG,
                                 const MachineModel &Machine,
                                 const ImsOptions &Options) {
  ModuloScheduleResult Result;
  for (const Instruction &Instr : L.body())
    if (Instr.Op == Opcode::ExitIf || Instr.isCall())
      return Result;

  size_t N = DG.numNodes();
  if (N == 0)
    return Result;

  int MinII = std::max(
      {1,
       static_cast<int>(std::ceil(resourceMIIForLoop(L, Machine) - 1e-9)),
       static_cast<int>(std::ceil(
           recurrenceMII(L, DG,
                         [&Machine](Opcode Op) {
                           return Machine.latency(Op);
                         }) -
           1e-9))});

  // Height priority over intra-iteration edges (machine latencies).
  std::vector<int> Height(N, 0);
  for (uint32_t Node = static_cast<uint32_t>(N); Node-- > 0;) {
    Height[Node] = Machine.latency(L.body()[Node].Op);
    for (uint32_t EdgeIdx : DG.successors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (Edge.Distance != 0)
        continue;
      Height[Node] = std::max(Height[Node],
                              edgeDelay(Edge, L, Machine) +
                                  Height[Edge.Dst]);
    }
  }
  std::vector<uint32_t> Priority(N);
  for (uint32_t Node = 0; Node < N; ++Node)
    Priority[Node] = Node;
  std::sort(Priority.begin(), Priority.end(), [&](uint32_t A, uint32_t B) {
    if (Height[A] != Height[B])
      return Height[A] > Height[B];
    return A < B;
  });

  for (int II = MinII; II <= MinII * Options.MaxIIFactor; ++II) {
    std::vector<int> Time(N, -1);
    std::vector<int> LastTried(N, -II); // Forces fresh placement windows.
    ReservationTable Table(Machine, II);
    unsigned Budget = Options.BudgetPerOp * static_cast<unsigned>(N);
    unsigned Attempts = 0;

    // Worklist seeded in priority order.
    std::vector<uint32_t> Worklist(Priority.begin(), Priority.end());
    bool Failed = false;
    while (!Worklist.empty()) {
      if (Attempts++ >= Budget) {
        Failed = true;
        break;
      }
      uint32_t Node = Worklist.front();
      Worklist.erase(Worklist.begin());

      // Earliest start from placed predecessors.
      int Earliest = 0;
      for (uint32_t EdgeIdx : DG.predecessors(Node)) {
        const DepEdge &Edge = DG.edge(EdgeIdx);
        if (Edge.Src == Node || Time[Edge.Src] < 0)
          continue;
        Earliest = std::max(Earliest,
                            Time[Edge.Src] + edgeDelay(Edge, L, Machine) -
                                II * static_cast<int>(Edge.Distance));
      }
      // Never retry the same cycle for the same node back to back.
      if (Earliest <= LastTried[Node])
        Earliest = LastTried[Node] + 1;

      // Find a resource-feasible cycle within one II window; otherwise
      // force the earliest and evict.
      int Chosen = -1;
      for (int Cycle = Earliest; Cycle < Earliest + II; ++Cycle) {
        if (Table.conflictsAt(L.body()[Node], Cycle).empty()) {
          Chosen = Cycle;
          break;
        }
      }
      bool Forced = Chosen < 0;
      if (Forced)
        Chosen = Earliest;

      if (Forced) {
        for (uint32_t Victim :
             Table.conflictsAt(L.body()[Node], Chosen)) {
          Table.remove(Victim, Time[Victim]);
          Time[Victim] = -1;
          Worklist.push_back(Victim);
        }
      }
      Table.place(Node, L.body()[Node], Chosen);
      Time[Node] = Chosen;
      LastTried[Node] = Chosen;

      // Evict placed successors whose dependence now fails.
      for (uint32_t EdgeIdx : DG.successors(Node)) {
        const DepEdge &Edge = DG.edge(EdgeIdx);
        uint32_t Succ = Edge.Dst;
        if (Succ == Node || Time[Succ] < 0)
          continue;
        int Needed = Chosen + edgeDelay(Edge, L, Machine) -
                     II * static_cast<int>(Edge.Distance);
        if (Time[Succ] < Needed) {
          Table.remove(Succ, Time[Succ]);
          Time[Succ] = -1;
          Worklist.push_back(Succ);
        }
      }
      // Self-edges (carried) must hold with the chosen II.
      for (uint32_t EdgeIdx : DG.successors(Node)) {
        const DepEdge &Edge = DG.edge(EdgeIdx);
        if (Edge.Src != Edge.Dst || Edge.Distance == 0)
          continue;
        if (edgeDelay(Edge, L, Machine) >
            II * static_cast<int>(Edge.Distance)) {
          Failed = true; // II too small for this self-recurrence.
          break;
        }
      }
      if (Failed)
        break;
    }

    if (Failed)
      continue;
    Result.Succeeded = true;
    Result.II = II;
    Result.CycleOf.assign(Time.begin(), Time.end());
    int Last = 0;
    for (int T : Time)
      Last = std::max(Last, T);
    Result.StageCount = Last / II + 1;
    Result.AttemptsUsed = Attempts;
    // The greedy eviction is heuristic; accept the II only if the final
    // placement actually validates.
    if (!validateModuloSchedule(L, DG, Machine, Result).empty()) {
      Result = ModuloScheduleResult();
      continue;
    }
    return Result;
  }
  return Result;
}

std::vector<std::string>
metaopt::validateModuloSchedule(const Loop &L, const DependenceGraph &DG,
                                const MachineModel &Machine,
                                const ModuloScheduleResult &Sched) {
  std::vector<std::string> Errors;
  if (!Sched.Succeeded) {
    Errors.push_back("schedule did not succeed");
    return Errors;
  }
  size_t N = DG.numNodes();
  if (Sched.CycleOf.size() != N) {
    Errors.push_back("cycle vector size mismatch");
    return Errors;
  }

  for (const DepEdge &Edge : DG.edges()) {
    int Needed = Sched.CycleOf[Edge.Src] + edgeDelay(Edge, L, Machine) -
                 Sched.II * static_cast<int>(Edge.Distance);
    if (Sched.CycleOf[Edge.Dst] < Needed)
      Errors.push_back("dependence " + std::to_string(Edge.Src) + "->" +
                       std::to_string(Edge.Dst) + " violated");
  }

  // Modulo resource usage.
  std::vector<int> SlotWidth(static_cast<size_t>(Sched.II), 0);
  std::vector<std::array<int, NumUnitKinds>> SlotUnits(
      static_cast<size_t>(Sched.II));
  for (auto &Units : SlotUnits)
    Units.fill(0);
  for (uint32_t Node = 0; Node < N; ++Node) {
    Opcode Op = L.body()[Node].Op;
    if (!occupiesIssueSlot(L.body()[Node]))
      continue;
    size_t Slot = static_cast<size_t>(Sched.CycleOf[Node] % Sched.II);
    ++SlotWidth[Slot];
    ++SlotUnits[Slot][static_cast<unsigned>(Machine.unitFor(Op))];
  }
  for (size_t Slot = 0; Slot < static_cast<size_t>(Sched.II); ++Slot) {
    if (SlotWidth[Slot] > Machine.issueWidth())
      Errors.push_back("issue width exceeded in slot " +
                       std::to_string(Slot));
    // A-type spill-over means Int can borrow Mem slots: check the pools
    // jointly where borrowing applies.
    auto &Units = SlotUnits[Slot];
    if (Units[static_cast<unsigned>(UnitKind::Fp)] >
        Machine.unitCount(UnitKind::Fp))
      Errors.push_back("FP pool exceeded in slot " + std::to_string(Slot));
    if (Units[static_cast<unsigned>(UnitKind::Br)] >
        Machine.unitCount(UnitKind::Br))
      Errors.push_back("BR pool exceeded in slot " + std::to_string(Slot));
    if (Units[static_cast<unsigned>(UnitKind::Mem)] +
            Units[static_cast<unsigned>(UnitKind::Int)] >
        Machine.unitCount(UnitKind::Mem) +
            Machine.unitCount(UnitKind::Int))
      Errors.push_back("M+I pools exceeded in slot " +
                       std::to_string(Slot));
  }
  return Errors;
}
