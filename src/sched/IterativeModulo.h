//===- sched/IterativeModulo.h - Slot-assigning modulo scheduler -*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A real iterative modulo scheduler (Rau's IMS, simplified): unlike the
/// analytic model in ModuloScheduler.h - which only derives the initiation
/// interval from the ResMII/RecMII bounds - this one produces an actual
/// cycle assignment for every operation, honoring cross-iteration
/// dependences (time(dst) >= time(src) + delay - II * distance) and the
/// modulo reservation table, with height-priority placement and eviction
/// on conflicts.
///
/// Its role in this reproduction is validation: property tests check that
/// the analytic II used by the simulator is actually achievable (the IMS
/// schedules at that II or within a cycle of it) across the corpus, which
/// grounds the Figure 5 experiments.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SCHED_ITERATIVEMODULO_H
#define METAOPT_SCHED_ITERATIVEMODULO_H

#include "analysis/DependenceGraph.h"
#include "ir/Loop.h"
#include "machine/Machine.h"

#include <vector>

namespace metaopt {

/// A concrete modulo schedule.
struct ModuloScheduleResult {
  bool Succeeded = false;
  int II = 0;
  /// Absolute issue time per body instruction; slot = CycleOf[i] % II.
  std::vector<int> CycleOf;
  int StageCount = 0;
  /// Placement attempts consumed (diagnostics).
  unsigned AttemptsUsed = 0;
};

/// IMS knobs.
struct ImsOptions {
  /// Give up at II > MaxIIFactor * MinII.
  int MaxIIFactor = 4;
  /// Placement budget per II try, in attempts per operation.
  unsigned BudgetPerOp = 16;
};

/// Runs iterative modulo scheduling on \p L. Loops containing early exits
/// or calls are rejected (Succeeded = false), as in the analytic model.
ModuloScheduleResult iterativeModuloSchedule(const Loop &L,
                                             const DependenceGraph &DG,
                                             const MachineModel &Machine,
                                             const ImsOptions &Options = {});

/// Checks every dependence and resource constraint of \p Sched against
/// \p DG and \p Machine; returns the violations (empty when valid). Used
/// by tests and asserts.
std::vector<std::string>
validateModuloSchedule(const Loop &L, const DependenceGraph &DG,
                       const MachineModel &Machine,
                       const ModuloScheduleResult &Sched);

} // namespace metaopt

#endif // METAOPT_SCHED_ITERATIVEMODULO_H
