//===- sched/SchedulePrinter.cpp ------------------------------------------===//

#include "sched/SchedulePrinter.h"

#include "ir/Printer.h"

#include <map>

using namespace metaopt;

namespace {

const char *unitName(UnitKind Kind) {
  switch (Kind) {
  case UnitKind::Mem:
    return "M";
  case UnitKind::Int:
    return "I";
  case UnitKind::Fp:
    return "F";
  case UnitKind::Br:
    return "B";
  }
  return "?";
}

std::string describe(const Loop &L, uint32_t Node,
                     const MachineModel &Machine) {
  const Instruction &Instr = L.body()[Node];
  std::string Text = "[";
  Text += occupiesIssueSlot(Instr) ? unitName(Machine.unitFor(Instr.Op))
                                   : "-";
  Text += "] ";
  Text += printInstruction(L, Instr);
  return Text;
}

} // namespace

std::string metaopt::printSchedule(const Loop &L, const Schedule &Sched,
                                   const MachineModel &Machine) {
  std::map<uint32_t, std::vector<uint32_t>> ByCycle;
  for (uint32_t Node = 0; Node < Sched.CycleOf.size(); ++Node)
    ByCycle[Sched.CycleOf[Node]].push_back(Node);

  std::string Out = "schedule, " + std::to_string(Sched.Length) +
                    " cycles:\n";
  for (uint32_t Cycle = 0; Cycle < Sched.Length; ++Cycle) {
    Out += "  c" + std::to_string(Cycle) + ":";
    auto It = ByCycle.find(Cycle);
    if (It == ByCycle.end()) {
      Out += "  (stall)\n";
      continue;
    }
    bool First = true;
    for (uint32_t Node : It->second) {
      Out += First ? "  " : "\n      ";
      Out += describe(L, Node, Machine);
      First = false;
    }
    Out += "\n";
  }
  return Out;
}

std::string
metaopt::printModuloSchedule(const Loop &L,
                             const ModuloScheduleResult &Sched,
                             const MachineModel &Machine) {
  if (!Sched.Succeeded)
    return "no modulo schedule\n";
  std::string Out = "modulo kernel, II=" + std::to_string(Sched.II) +
                    ", " + std::to_string(Sched.StageCount) + " stage(s):\n";
  std::map<int, std::vector<uint32_t>> BySlot;
  for (uint32_t Node = 0; Node < Sched.CycleOf.size(); ++Node)
    BySlot[Sched.CycleOf[Node] % Sched.II].push_back(Node);
  for (int Slot = 0; Slot < Sched.II; ++Slot) {
    Out += "  s" + std::to_string(Slot) + ":";
    auto It = BySlot.find(Slot);
    if (It == BySlot.end()) {
      Out += "  (empty)\n";
      continue;
    }
    bool First = true;
    for (uint32_t Node : It->second) {
      Out += First ? "  " : "\n      ";
      Out += "(stage " +
             std::to_string(Sched.CycleOf[Node] / Sched.II) + ") " +
             describe(L, Node, Machine);
      First = false;
    }
    Out += "\n";
  }
  return Out;
}
