//===- sched/ListScheduler.h - Cycle-driven list scheduling -----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic cycle-driven list scheduler for the acyclic (intra-iteration)
/// dependence graph, targeting the EPIC machine model: per-cycle unit
/// pools, issue-width limit, critical-path priority, and speculation of
/// pure operations above early exits (speculatable control edges are
/// ignored, mirroring an aggressively speculating compiler). This is the
/// code generator used when software pipelining is disabled.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SCHED_LISTSCHEDULER_H
#define METAOPT_SCHED_LISTSCHEDULER_H

#include "analysis/DependenceGraph.h"
#include "ir/Loop.h"
#include "machine/Machine.h"
#include "sched/Schedule.h"

namespace metaopt {

/// Schedules the body of \p L onto \p Machine. The dependence graph must
/// belong to \p L.
Schedule listSchedule(const Loop &L, const DependenceGraph &DG,
                      const MachineModel &Machine);

} // namespace metaopt

#endif // METAOPT_SCHED_LISTSCHEDULER_H
