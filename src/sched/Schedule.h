//===- sched/Schedule.h - Schedule representations --------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result types produced by the schedulers: an acyclic body schedule
/// from the list scheduler, and a steady-state initiation interval from
/// the modulo scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SCHED_SCHEDULE_H
#define METAOPT_SCHED_SCHEDULE_H

#include <cstdint>
#include <vector>

namespace metaopt {

/// An acyclic schedule of one loop body (produced by the list scheduler).
struct Schedule {
  /// Issue cycle of each body instruction (indexed by body position).
  std::vector<uint32_t> CycleOf;
  /// Body instruction indices in issue order (ties broken by cycle then
  /// original position, so the order is deterministic).
  std::vector<uint32_t> Order;
  /// Cycle of the backedge branch plus one: the iteration issue length.
  uint32_t Length = 0;

  bool valid() const { return !Order.empty(); }
};

/// Modulo-scheduling outcome (produced by the modulo scheduler).
struct SwpResult {
  /// False when the loop cannot be software pipelined (early exits or
  /// calls in the body) and the compiler falls back to the list schedule.
  bool Pipelined = false;
  /// Steady-state initiation interval in cycles per (unrolled) iteration.
  int II = 0;
  /// Pipeline depth in stages; prologue/epilogue cost ~ (StageCount-1)*II.
  int StageCount = 0;
  /// Spill pairs per iteration after the register-pressure-driven II
  /// bumps were exhausted.
  unsigned SpillsPerIteration = 0;
  /// Diagnostics: the two lower bounds.
  int ResMII = 0;
  double RecMII = 0.0;
};

} // namespace metaopt

#endif // METAOPT_SCHED_SCHEDULE_H
