//===- sched/ModuloScheduler.h - Software pipelining model ------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The software pipelining (modulo scheduling) model used for the paper's
/// "SWP enabled" experiments (Figure 5). The initiation interval is derived
/// analytically as II = max(ceil(ResMII), ceil(RecMII)) followed by
/// register-pressure-driven II bumps (the average number of simultaneously
/// live values in a modulo schedule is the sum of value lifetimes divided
/// by II); residual overflow becomes spill code. Loops containing early
/// exits or calls are rejected, as in production pipeliners, and fall back
/// to the list scheduler.
///
/// Unrolling interacts with this model exactly as the paper describes:
/// unrolling by U multiplies the resource work per (unrolled) iteration,
/// letting the pipeline reach a fractional II per original iteration,
/// while raising register pressure.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SCHED_MODULOSCHEDULER_H
#define METAOPT_SCHED_MODULOSCHEDULER_H

#include "analysis/DependenceGraph.h"
#include "ir/Loop.h"
#include "machine/Machine.h"
#include "sched/Schedule.h"

namespace metaopt {

/// Register budget a modulo schedule must fit into; defaults to the whole
/// machine file, but the program context usually grants a loop less.
struct RegBudget {
  int IntRegs = 1 << 30;
  int FpRegs = 1 << 30;
};

/// Attempts to software pipeline \p L on \p Machine.
SwpResult moduloSchedule(const Loop &L, const DependenceGraph &DG,
                         const MachineModel &Machine,
                         const RegBudget &Budget = {});

/// Returns the resource-constrained MII of \p L's body on \p Machine,
/// accounting for A-type operations' ability to use either I or M slots.
double resourceMIIForLoop(const Loop &L, const MachineModel &Machine);

} // namespace metaopt

#endif // METAOPT_SCHED_MODULOSCHEDULER_H
