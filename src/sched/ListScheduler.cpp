//===- sched/ListScheduler.cpp --------------------------------------------===//

#include "sched/ListScheduler.h"

#include "sched/ScheduleValidate.h"

#include <algorithm>
#include <cassert>

using namespace metaopt;

// The latency/delay/enforcement model lives in sched/ScheduleValidate.cpp
// (schedEffectiveLatencies, schedEdgeDelay, schedEdgeEnforced) so that
// validateListSchedule re-derives the same constraints independently of
// this scheduler's bookkeeping.

namespace {

/// Per-cycle resource bookkeeping.
class ResourceTable {
public:
  explicit ResourceTable(const MachineModel &Machine) : Machine(Machine) {}

  /// Tries to issue \p Instr in the current cycle; returns false when
  /// the required unit pool or the issue width is exhausted.
  bool tryIssue(const Instruction &Instr) {
    // Folded loop control and paired wide-load halves are free.
    if (!occupiesIssueSlot(Instr))
      return true;
    Opcode Op = Instr.Op;
    if (Issued >= Machine.issueWidth())
      return false;
    UnitKind Primary = Machine.unitFor(Op);
    if (take(Primary)) {
      ++Issued;
      return true;
    }
    // A-type integer operations may fall over to a free memory slot.
    if (Primary == UnitKind::Int && Machine.canUseMemUnit(Op) &&
        take(UnitKind::Mem)) {
      ++Issued;
      return true;
    }
    return false;
  }

  void nextCycle() {
    Used.fill(0);
    Issued = 0;
  }

private:
  bool take(UnitKind Kind) {
    unsigned Index = static_cast<unsigned>(Kind);
    if (Used[Index] >= Machine.unitCount(Kind))
      return false;
    ++Used[Index];
    return true;
  }

  const MachineModel &Machine;
  std::array<int, NumUnitKinds> Used = {};
  int Issued = 0;
};

} // namespace

Schedule metaopt::listSchedule(const Loop &L, const DependenceGraph &DG,
                               const MachineModel &Machine) {
  size_t N = DG.numNodes();
  Schedule Result;
  Result.CycleOf.assign(N, 0);
  if (N == 0)
    return Result;

  auto Enforced = [&](const DepEdge &Edge) {
    return schedEdgeEnforced(L, Edge);
  };

  std::vector<int> EffectiveLatency = schedEffectiveLatencies(L, DG, Machine);

  // Priority: longest latency-weighted path to any sink over enforced
  // edges ("height"). Computed backwards in body order (a reverse
  // topological order of the distance-0 subgraph).
  std::vector<int> Height(N, 0);
  for (uint32_t Node = static_cast<uint32_t>(N); Node-- > 0;) {
    Height[Node] = EffectiveLatency[Node];
    for (uint32_t EdgeIdx : DG.successors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (!Enforced(Edge))
        continue;
      int Delay = schedEdgeDelay(Edge, L, EffectiveLatency);
      Height[Node] = std::max(Height[Node], Delay + Height[Edge.Dst]);
    }
  }

  // Remaining enforced predecessor counts and earliest-issue constraints.
  std::vector<int> PredsLeft(N, 0);
  for (const DepEdge &Edge : DG.edges())
    if (Enforced(Edge))
      ++PredsLeft[Edge.Dst];

  std::vector<uint32_t> EarliestCycle(N, 0);
  std::vector<bool> Done(N, false);
  std::vector<uint32_t> Ready;
  for (uint32_t Node = 0; Node < N; ++Node)
    if (PredsLeft[Node] == 0)
      Ready.push_back(Node);

  ResourceTable Resources(Machine);
  size_t Scheduled = 0;
  uint32_t Cycle = 0;
  // Guard against livelock; any body schedules in far fewer cycles.
  uint32_t CycleCap = static_cast<uint32_t>(64 * N + 1024);

  while (Scheduled < N && Cycle < CycleCap) {
    // Candidates ready this cycle, highest priority first.
    std::vector<uint32_t> Candidates;
    for (uint32_t Node : Ready)
      if (!Done[Node] && EarliestCycle[Node] <= Cycle)
        Candidates.push_back(Node);
    std::sort(Candidates.begin(), Candidates.end(),
              [&](uint32_t A, uint32_t B) {
                if (Height[A] != Height[B])
                  return Height[A] > Height[B];
                return A < B;
              });

    for (uint32_t Node : Candidates) {
      if (!Resources.tryIssue(L.body()[Node]))
        continue;
      Done[Node] = true;
      Result.CycleOf[Node] = Cycle;
      ++Scheduled;
      for (uint32_t EdgeIdx : DG.successors(Node)) {
        const DepEdge &Edge = DG.edge(EdgeIdx);
        if (!Enforced(Edge))
          continue;
        uint32_t ReadyAt =
            Cycle +
            static_cast<uint32_t>(schedEdgeDelay(Edge, L, EffectiveLatency));
        EarliestCycle[Edge.Dst] =
            std::max(EarliestCycle[Edge.Dst], ReadyAt);
        if (--PredsLeft[Edge.Dst] == 0)
          Ready.push_back(Edge.Dst);
      }
    }
    Resources.nextCycle();
    ++Cycle;
  }
  assert(Scheduled == N && "list scheduler failed to place all operations");

  Result.Order.resize(N);
  for (uint32_t Node = 0; Node < N; ++Node)
    Result.Order[Node] = Node;
  std::sort(Result.Order.begin(), Result.Order.end(),
            [&](uint32_t A, uint32_t B) {
              if (Result.CycleOf[A] != Result.CycleOf[B])
                return Result.CycleOf[A] < Result.CycleOf[B];
              return A < B;
            });
  uint32_t LastCycle = 0;
  for (uint32_t Node = 0; Node < N; ++Node)
    LastCycle = std::max(LastCycle, Result.CycleOf[Node]);
  Result.Length = LastCycle + 1;
  return Result;
}
