//===- sched/ListScheduler.cpp --------------------------------------------===//

#include "sched/ListScheduler.h"

#include <algorithm>
#include <cassert>

using namespace metaopt;

namespace {

/// Per-node latencies as the code generator sees them. Two -O3 effects
/// soften raw latencies inside a steady-state loop iteration:
///  - direct (affine-address) loads are pipelined across the backedge by
///    loop rotation: the address of the next iteration's load is known,
///    so its latency is hidden and consumers see it as ready quickly;
///    indirect loads and loads fed by a carried store cannot be hoisted;
///  - a store's data operand drains through the store buffer, so the
///    store issues without waiting out the producer's full latency.
std::vector<int> effectiveLatencies(const Loop &L,
                                    const DependenceGraph &DG,
                                    const MachineModel &Machine) {
  size_t N = DG.numNodes();
  std::vector<int> Latency(N);
  bool SawExit = false;
  for (uint32_t Node = 0; Node < N; ++Node) {
    const Instruction &Instr = L.body()[Node];
    Latency[Node] = Machine.latency(Instr.Op);
    if (Instr.Op == Opcode::ExitIf)
      SawExit = true;
    if (!Instr.isLoad() || Instr.Mem.Indirect)
      continue;
    // Hoisting a load across an earlier (replicated) early exit would be
    // control speculation with recovery cost; the code generator declines,
    // so such loads keep their full latency. This is one of the paper's
    // listed drawbacks of unrolling loops with internal control flow.
    if (SawExit)
      continue;
    bool FedByCarriedStore = false;
    for (uint32_t EdgeIdx : DG.predecessors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (Edge.Kind == DepKind::Memory && Edge.Distance >= 1)
        FedByCarriedStore = true;
    }
    if (!FedByCarriedStore)
      Latency[Node] = 1; // Rotated/pipelined load.
  }
  return Latency;
}

/// Scheduling delay of an edge: data dependences wait out the producer's
/// effective latency (one cycle into a store's data operand — the store
/// buffer absorbs the rest), memory ordering needs one cycle
/// (store-to-load forwarding), control ordering allows same-cycle issue.
int machineDelay(const DepEdge &Edge, const Loop &L,
                 const std::vector<int> &EffectiveLatency) {
  switch (Edge.Kind) {
  case DepKind::Data: {
    const Instruction &Dst = L.body()[Edge.Dst];
    if (Dst.isStore() && !Dst.Operands.empty() &&
        L.body()[Edge.Src].Dest == Dst.Operands[0])
      return 1;
    return EffectiveLatency[Edge.Src];
  }
  case DepKind::Memory:
    return 1;
  case DepKind::Control:
    return 0;
  }
  return 0;
}

/// Per-cycle resource bookkeeping.
class ResourceTable {
public:
  explicit ResourceTable(const MachineModel &Machine) : Machine(Machine) {}

  /// Tries to issue \p Instr in the current cycle; returns false when
  /// the required unit pool or the issue width is exhausted.
  bool tryIssue(const Instruction &Instr) {
    // Folded loop control and paired wide-load halves are free.
    if (!occupiesIssueSlot(Instr))
      return true;
    Opcode Op = Instr.Op;
    if (Issued >= Machine.issueWidth())
      return false;
    UnitKind Primary = Machine.unitFor(Op);
    if (take(Primary)) {
      ++Issued;
      return true;
    }
    // A-type integer operations may fall over to a free memory slot.
    if (Primary == UnitKind::Int && Machine.canUseMemUnit(Op) &&
        take(UnitKind::Mem)) {
      ++Issued;
      return true;
    }
    return false;
  }

  void nextCycle() {
    Used.fill(0);
    Issued = 0;
  }

private:
  bool take(UnitKind Kind) {
    unsigned Index = static_cast<unsigned>(Kind);
    if (Used[Index] >= Machine.unitCount(Kind))
      return false;
    ++Used[Index];
    return true;
  }

  const MachineModel &Machine;
  std::array<int, NumUnitKinds> Used = {};
  int Issued = 0;
};

} // namespace

Schedule metaopt::listSchedule(const Loop &L, const DependenceGraph &DG,
                               const MachineModel &Machine) {
  size_t N = DG.numNodes();
  Schedule Result;
  Result.CycleOf.assign(N, 0);
  if (N == 0)
    return Result;

  // An edge is enforced unless it is a speculatable control edge (pure
  // computation hoisted above a potential early exit). The backedge branch
  // is nevertheless kept last via its incoming speculatable edges being
  // re-enforced: the loop cannot branch back before its work is issued.
  auto Enforced = [&](const DepEdge &Edge) {
    if (Edge.Distance != 0)
      return false; // Cross-iteration constraints are the simulator's job.
    if (!Edge.Speculatable)
      return true;
    return L.body()[Edge.Dst].Op == Opcode::BackBr;
  };

  std::vector<int> EffectiveLatency = effectiveLatencies(L, DG, Machine);

  // Priority: longest latency-weighted path to any sink over enforced
  // edges ("height"). Computed backwards in body order (a reverse
  // topological order of the distance-0 subgraph).
  std::vector<int> Height(N, 0);
  for (uint32_t Node = static_cast<uint32_t>(N); Node-- > 0;) {
    Height[Node] = EffectiveLatency[Node];
    for (uint32_t EdgeIdx : DG.successors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (!Enforced(Edge))
        continue;
      int Delay = machineDelay(Edge, L, EffectiveLatency);
      Height[Node] = std::max(Height[Node], Delay + Height[Edge.Dst]);
    }
  }

  // Remaining enforced predecessor counts and earliest-issue constraints.
  std::vector<int> PredsLeft(N, 0);
  for (const DepEdge &Edge : DG.edges())
    if (Enforced(Edge))
      ++PredsLeft[Edge.Dst];

  std::vector<uint32_t> EarliestCycle(N, 0);
  std::vector<bool> Done(N, false);
  std::vector<uint32_t> Ready;
  for (uint32_t Node = 0; Node < N; ++Node)
    if (PredsLeft[Node] == 0)
      Ready.push_back(Node);

  ResourceTable Resources(Machine);
  size_t Scheduled = 0;
  uint32_t Cycle = 0;
  // Guard against livelock; any body schedules in far fewer cycles.
  uint32_t CycleCap = static_cast<uint32_t>(64 * N + 1024);

  while (Scheduled < N && Cycle < CycleCap) {
    // Candidates ready this cycle, highest priority first.
    std::vector<uint32_t> Candidates;
    for (uint32_t Node : Ready)
      if (!Done[Node] && EarliestCycle[Node] <= Cycle)
        Candidates.push_back(Node);
    std::sort(Candidates.begin(), Candidates.end(),
              [&](uint32_t A, uint32_t B) {
                if (Height[A] != Height[B])
                  return Height[A] > Height[B];
                return A < B;
              });

    for (uint32_t Node : Candidates) {
      if (!Resources.tryIssue(L.body()[Node]))
        continue;
      Done[Node] = true;
      Result.CycleOf[Node] = Cycle;
      ++Scheduled;
      for (uint32_t EdgeIdx : DG.successors(Node)) {
        const DepEdge &Edge = DG.edge(EdgeIdx);
        if (!Enforced(Edge))
          continue;
        uint32_t ReadyAt =
            Cycle +
            static_cast<uint32_t>(machineDelay(Edge, L, EffectiveLatency));
        EarliestCycle[Edge.Dst] =
            std::max(EarliestCycle[Edge.Dst], ReadyAt);
        if (--PredsLeft[Edge.Dst] == 0)
          Ready.push_back(Edge.Dst);
      }
    }
    Resources.nextCycle();
    ++Cycle;
  }
  assert(Scheduled == N && "list scheduler failed to place all operations");

  Result.Order.resize(N);
  for (uint32_t Node = 0; Node < N; ++Node)
    Result.Order[Node] = Node;
  std::sort(Result.Order.begin(), Result.Order.end(),
            [&](uint32_t A, uint32_t B) {
              if (Result.CycleOf[A] != Result.CycleOf[B])
                return Result.CycleOf[A] < Result.CycleOf[B];
              return A < B;
            });
  uint32_t LastCycle = 0;
  for (uint32_t Node = 0; Node < N; ++Node)
    LastCycle = std::max(LastCycle, Result.CycleOf[Node]);
  Result.Length = LastCycle + 1;
  return Result;
}
