//===- sched/SchedulePrinter.h - Human-readable schedules -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders schedules as cycle-by-cycle issue tables — what a compiler
/// engineer reads when judging whether an unroll factor paid off. Used by
/// the compiler_driver example (--show-schedule) and by diagnostics in
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SCHED_SCHEDULEPRINTER_H
#define METAOPT_SCHED_SCHEDULEPRINTER_H

#include "ir/Loop.h"
#include "machine/Machine.h"
#include "sched/IterativeModulo.h"
#include "sched/Schedule.h"

#include <string>

namespace metaopt {

/// Renders a list schedule: one line per cycle, the instructions issued
/// in it, and their unit bindings.
std::string printSchedule(const Loop &L, const Schedule &Sched,
                          const MachineModel &Machine);

/// Renders a modulo schedule kernel: II lines (slots), each showing the
/// operations resident in that slot with their stage numbers.
std::string printModuloSchedule(const Loop &L,
                                const ModuloScheduleResult &Sched,
                                const MachineModel &Machine);

} // namespace metaopt

#endif // METAOPT_SCHED_SCHEDULEPRINTER_H
