//===- sched/ScheduleValidate.cpp -----------------------------------------===//

#include "sched/ScheduleValidate.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace metaopt;

std::vector<int> metaopt::schedEffectiveLatencies(const Loop &L,
                                                  const DependenceGraph &DG,
                                                  const MachineModel &Machine) {
  size_t N = DG.numNodes();
  std::vector<int> Latency(N);
  bool SawExit = false;
  for (uint32_t Node = 0; Node < N; ++Node) {
    const Instruction &Instr = L.body()[Node];
    Latency[Node] = Machine.latency(Instr.Op);
    if (Instr.Op == Opcode::ExitIf)
      SawExit = true;
    if (!Instr.isLoad() || Instr.Mem.Indirect)
      continue;
    // Hoisting a load across an earlier (replicated) early exit would be
    // control speculation with recovery cost; the code generator declines,
    // so such loads keep their full latency. This is one of the paper's
    // listed drawbacks of unrolling loops with internal control flow.
    if (SawExit)
      continue;
    bool FedByCarriedStore = false;
    for (uint32_t EdgeIdx : DG.predecessors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (Edge.Kind == DepKind::Memory && Edge.Distance >= 1)
        FedByCarriedStore = true;
    }
    if (!FedByCarriedStore)
      Latency[Node] = 1; // Rotated/pipelined load.
  }
  return Latency;
}

int metaopt::schedEdgeDelay(const DepEdge &Edge, const Loop &L,
                            const std::vector<int> &EffectiveLatency) {
  switch (Edge.Kind) {
  case DepKind::Data: {
    const Instruction &Dst = L.body()[Edge.Dst];
    if (Dst.isStore() && !Dst.Operands.empty() &&
        L.body()[Edge.Src].Dest == Dst.Operands[0])
      return 1; // Store buffer absorbs the producer's remaining latency.
    return EffectiveLatency[Edge.Src];
  }
  case DepKind::Memory:
    return 1;
  case DepKind::Control:
    return 0;
  }
  return 0;
}

bool metaopt::schedEdgeEnforced(const Loop &L, const DepEdge &Edge) {
  if (Edge.Distance != 0)
    return false; // Cross-iteration constraints are the simulator's job.
  if (!Edge.Speculatable)
    return true;
  return L.body()[Edge.Dst].Op == Opcode::BackBr;
}

namespace {

std::string fmt(const char *Format, long A, long B = 0, long C = 0,
                long D = 0) {
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer), Format, A, B, C, D);
  return Buffer;
}

} // namespace

std::vector<std::string>
metaopt::validateListSchedule(const Loop &L, const DependenceGraph &DG,
                              const MachineModel &Machine,
                              const Schedule &Sched) {
  std::vector<std::string> Errors;
  size_t N = DG.numNodes();

  if (Sched.CycleOf.size() != N || Sched.Order.size() != N) {
    Errors.push_back(fmt("schedule covers %ld/%ld body instructions",
                         static_cast<long>(Sched.Order.size()),
                         static_cast<long>(N)));
    return Errors; // Everything below indexes by body position.
  }
  if (N == 0)
    return Errors;

  // Order must be the identity permutation re-sorted by (cycle, index).
  std::vector<bool> Seen(N, false);
  for (uint32_t Node : Sched.Order) {
    if (Node >= N || Seen[Node]) {
      Errors.push_back(fmt("issue order is not a permutation (node %ld)",
                           static_cast<long>(Node)));
      return Errors;
    }
    Seen[Node] = true;
  }
  for (size_t Pos = 1; Pos < N; ++Pos) {
    uint32_t Prev = Sched.Order[Pos - 1], Cur = Sched.Order[Pos];
    bool Sorted = Sched.CycleOf[Prev] < Sched.CycleOf[Cur] ||
                  (Sched.CycleOf[Prev] == Sched.CycleOf[Cur] && Prev < Cur);
    if (!Sorted)
      Errors.push_back(fmt("issue order not sorted by (cycle, index) at "
                           "position %ld: node %ld then node %ld",
                           static_cast<long>(Pos), static_cast<long>(Prev),
                           static_cast<long>(Cur)));
  }

  // Dependence timing over every enforced edge.
  std::vector<int> EffectiveLatency = schedEffectiveLatencies(L, DG, Machine);
  for (const DepEdge &Edge : DG.edges()) {
    if (!schedEdgeEnforced(L, Edge))
      continue;
    uint32_t Earliest =
        Sched.CycleOf[Edge.Src] +
        static_cast<uint32_t>(schedEdgeDelay(Edge, L, EffectiveLatency));
    if (Sched.CycleOf[Edge.Dst] < Earliest)
      Errors.push_back(
          fmt("node %ld at cycle %ld violates edge from node %ld "
              "(earliest legal cycle %ld)",
              static_cast<long>(Edge.Dst),
              static_cast<long>(Sched.CycleOf[Edge.Dst]),
              static_cast<long>(Edge.Src), static_cast<long>(Earliest)));
  }

  // Per-cycle resource feasibility. The scheduler assigns units greedily,
  // but legality only needs *an* assignment to exist: the non-overflowable
  // integer operations must fit the I pool, whatever overflows the I pool
  // must fit in the M pool next to the memory operations, and each other
  // pool must hold its own. Folded instructions are free.
  std::map<uint32_t, std::vector<uint32_t>> ByCycle;
  for (uint32_t Node = 0; Node < N; ++Node)
    if (occupiesIssueSlot(L.body()[Node]))
      ByCycle[Sched.CycleOf[Node]].push_back(Node);

  for (const auto &[Cycle, Nodes] : ByCycle) {
    if (static_cast<int>(Nodes.size()) > Machine.issueWidth())
      Errors.push_back(fmt("cycle %ld issues %ld ops, issue width is %ld",
                           static_cast<long>(Cycle),
                           static_cast<long>(Nodes.size()),
                           static_cast<long>(Machine.issueWidth())));
    std::array<int, NumUnitKinds> Count = {};
    int IntOverflowable = 0;
    for (uint32_t Node : Nodes) {
      Opcode Op = L.body()[Node].Op;
      UnitKind Primary = Machine.unitFor(Op);
      ++Count[static_cast<unsigned>(Primary)];
      if (Primary == UnitKind::Int && Machine.canUseMemUnit(Op))
        ++IntOverflowable;
    }
    int IntOps = Count[static_cast<unsigned>(UnitKind::Int)];
    int MemOps = Count[static_cast<unsigned>(UnitKind::Mem)];
    int IntFixed = IntOps - IntOverflowable;
    int Spill = std::max(0, IntOps - Machine.unitCount(UnitKind::Int));
    if (IntFixed > Machine.unitCount(UnitKind::Int))
      Errors.push_back(fmt("cycle %ld needs %ld I-only slots, pool has %ld",
                           static_cast<long>(Cycle),
                           static_cast<long>(IntFixed),
                           static_cast<long>(Machine.unitCount(UnitKind::Int))));
    if (MemOps + Spill > Machine.unitCount(UnitKind::Mem))
      Errors.push_back(
          fmt("cycle %ld needs %ld M slots (%ld memory + %ld overflow), "
              "pool has %ld",
              static_cast<long>(Cycle), static_cast<long>(MemOps + Spill),
              static_cast<long>(MemOps), static_cast<long>(Spill)) +
          fmt(" (pool %ld)",
              static_cast<long>(Machine.unitCount(UnitKind::Mem))));
    for (UnitKind Kind : {UnitKind::Fp, UnitKind::Br}) {
      int Ops = Count[static_cast<unsigned>(Kind)];
      if (Ops > Machine.unitCount(Kind))
        Errors.push_back(fmt("cycle %ld needs %ld slots in pool %ld, has %ld",
                             static_cast<long>(Cycle), static_cast<long>(Ops),
                             static_cast<long>(Kind),
                             static_cast<long>(Machine.unitCount(Kind))));
    }
  }

  // The backedge branch closes the iteration: it issues in the final cycle
  // and Length counts through it.
  uint32_t LastCycle = 0;
  for (uint32_t Node = 0; Node < N; ++Node)
    LastCycle = std::max(LastCycle, Sched.CycleOf[Node]);
  uint32_t BackBrNode = static_cast<uint32_t>(N - 1);
  if (L.body()[BackBrNode].Op == Opcode::BackBr &&
      Sched.CycleOf[BackBrNode] != LastCycle)
    Errors.push_back(fmt("backedge branch at cycle %ld, last cycle is %ld",
                         static_cast<long>(Sched.CycleOf[BackBrNode]),
                         static_cast<long>(LastCycle)));
  if (Sched.Length != LastCycle + 1)
    Errors.push_back(fmt("Length is %ld, last cycle + 1 is %ld",
                         static_cast<long>(Sched.Length),
                         static_cast<long>(LastCycle + 1)));
  return Errors;
}
