//===- bench/ablation_nn_radius.cpp - NN radius sweep ---------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Section 5.1: "For all NN experiments we use a radius of 0.3, the value
// of which was determined experimentally." This ablation reruns that
// experiment: LOOCV accuracy as a function of the (RMS-normalized)
// radius, including the 1-NN limit (radius ~ 0).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: NN radius",
                   "LOOCV accuracy vs near-neighbor radius");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);
  FeatureSet Features = paperReducedFeatureSet();

  TablePrinter Table("Radius sweep");
  Table.addHeader({"radius", "LOOCV accuracy", "top-2 accuracy"});
  double Best = 0.0, BestRadius = 0.0, AtDefault = 0.0;
  for (double Radius :
       {1e-6, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.7, 1.0, 2.0}) {
    NearNeighborClassifier Nn(Features, Radius);
    std::vector<unsigned> Pred = loocvPredictions(Nn, Data);
    double Accuracy = predictionAccuracy(Data, Pred);
    RankDistribution Rank = rankDistribution(Data, Pred);
    Table.addRow({formatDouble(Radius, 2), formatPercent(Accuracy, 1),
                  formatPercent(Rank.topTwoAccuracy(), 1)});
    if (Accuracy > Best) {
      Best = Accuracy;
      BestRadius = Radius;
    }
    if (Radius == 0.3)
      AtDefault = Accuracy;
  }
  Table.print();

  std::printf("\nShape checks:\n");
  printComparison("paper's working point", "radius 0.3",
                  "best at " + formatDouble(BestRadius, 2));
  printComparison("0.3 close to the sweep's best", "yes",
                  Best - AtDefault < 0.03 ? "yes" : "no");
  return 0;
}
