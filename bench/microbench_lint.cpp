//===- bench/microbench_lint.cpp - Lint sweep scaling ---------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Wall-clock of the full-corpus lint sweep (analysis/lint via
// corpus/CorpusAudit) across the work-stealing pool, printed as JSON rows
// (one object per line) and rewritten into BENCH_lint.json for
// metaopt-benchcheck. Also re-checks the determinism contract: every
// thread count must produce the byte-identical findings the serial sweep
// produces, and the shipped corpus must stay error-free.
//
// Flags:
//   --threads=<csv>  comma-separated thread counts (default "1,2,4,8")
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "concurrency/ThreadPool.h"
#include "corpus/CorpusAudit.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::vector<unsigned> parseThreadList(const std::string &Csv) {
  std::vector<unsigned> Threads;
  for (const std::string &Part : split(Csv, ',')) {
    int Value = std::atoi(Part.c_str());
    if (Value >= 1)
      Threads.push_back(static_cast<unsigned>(Value));
  }
  if (Threads.empty())
    Threads = {1, 2, 4, 8};
  return Threads;
}

std::string renderFindings(const CorpusAuditResult &Result) {
  std::string Out;
  for (const AuditedLoop &Audited : Result.Findings) {
    Out += Audited.Benchmark;
    Out += '/';
    Out += Audited.LoopName;
    Out += '\n';
    Out += Audited.Report.renderText();
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  std::vector<unsigned> ThreadCounts =
      parseThreadList(Args.getString("threads", "1,2,4,8"));

  std::vector<Benchmark> Corpus = buildCorpus();

  BenchJsonWriter Writer("lint");
  double BaselineSeconds = 0.0;
  std::string BaselineFindings;
  bool SeenBaseline = false;
  for (unsigned Threads : ThreadCounts) {
    ThreadPool::setGlobalThreads(Threads);
    auto Start = std::chrono::steady_clock::now();
    CorpusAuditResult Result = auditBenchmarks(Corpus);
    double Seconds = secondsSince(Start);

    std::string Findings = renderFindings(Result);
    if (!SeenBaseline) {
      SeenBaseline = true;
      BaselineSeconds = Seconds;
      BaselineFindings = Findings;
    }
    bool Deterministic = Findings == BaselineFindings;
    double Speedup = BaselineSeconds > 0.0 ? BaselineSeconds / Seconds : 1.0;
    char Row[512];
    std::snprintf(Row, sizeof(Row),
                  "{\"experiment\": \"lint_sweep\", \"threads\": %u, "
                  "\"loops\": %zu, \"errors\": %zu, \"warnings\": %zu, "
                  "\"notes\": %zu, \"seconds\": %.3f, "
                  "\"speedup_vs_serial\": %.2f, "
                  "\"findings_match_serial\": %s}",
                  Threads, Result.LoopsAudited, Result.Errors,
                  Result.Warnings, Result.Notes, Seconds, Speedup,
                  Deterministic ? "true" : "false");
    std::printf("%s\n", Row);
    std::fflush(stdout);
    Writer.row(Row);
  }
  if (!Writer.flush()) {
    std::fprintf(stderr, "microbench_lint: cannot write %s\n",
                 Writer.path().c_str());
    return 1;
  }
  std::fprintf(stderr, "microbench_lint: %zu rows -> %s\n", Writer.size(),
               Writer.path().c_str());
  return 0;
}
