//===- bench/fig4_speedup_noswp.cpp - Regenerates Figure 4 ----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Figure 4: "Realized performance on the SPEC 2000 benchmarks with SWP
// disabled. Both NN and an SVM achieve speedups on 19 of the 24
// benchmarks. The SVM achieves a 5% speedup overall, and it boosts the
// performance of all SPECfp benchmarks, leading to a 9% overall
// improvement. Near neighbors performs slightly worse, boosting the
// performance by about 4%. The rightmost bar shows the speedup that an
// 'oracle' would attain (7.2% average)."
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/driver/SpeedupEvaluator.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Figure 4",
                   "SPEC 2000 speedups over the ORC heuristic "
                   "(SWP disabled, leave-one-benchmark-out training)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);

  SpeedupOptions Options;
  Options.Labeling = Pipe->labelingOptions(/*EnableSwp=*/false);
  SpeedupReport Report =
      evaluateSpeedups(Pipe->corpus(), spec2000BenchmarkNames(), Data,
                       paperReducedFeatureSet(), Options);

  TablePrinter Table("Speedup over ORC (SWP disabled)");
  Table.addHeader({"benchmark", "NN v. ORC", "SVM v. ORC",
                   "Oracle v. ORC"});
  for (const SpeedupRow &Row : Report.Rows)
    Table.addRow({Row.Benchmark + (Row.FloatingPoint ? " (fp)" : ""),
                  formatPercent(Row.NnVsOrc), formatPercent(Row.SvmVsOrc),
                  formatPercent(Row.OracleVsOrc)});
  Table.addRow({"MEAN (all 24)", formatPercent(Report.MeanNn),
                formatPercent(Report.MeanSvm),
                formatPercent(Report.MeanOracle)});
  Table.addRow({"MEAN (SPECfp)", formatPercent(Report.MeanNnFp),
                formatPercent(Report.MeanSvmFp),
                formatPercent(Report.MeanOracleFp)});
  Table.print();

  std::printf("\nHeadline comparisons:\n");
  printComparison("SVM overall speedup", "5%",
                  formatPercent(Report.MeanSvm, 1));
  printComparison("SVM SPECfp speedup", "9%",
                  formatPercent(Report.MeanSvmFp, 1));
  printComparison("NN overall speedup", "~4%",
                  formatPercent(Report.MeanNn, 1));
  printComparison("oracle overall speedup", "7.2%",
                  formatPercent(Report.MeanOracle, 1));
  printComparison("benchmarks where the SVM wins", "19 of 24",
                  std::to_string(Report.SvmWins) + " of " +
                      std::to_string(Report.Rows.size()));
  printComparison("benchmarks where NN wins", "19 of 24",
                  std::to_string(Report.NnWins) + " of " +
                      std::to_string(Report.Rows.size()));
  return 0;
}
