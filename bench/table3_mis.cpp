//===- bench/table3_mis.cpp - Regenerates Table 3 -------------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Table 3: "The best five features according to MIS" - the mutual
// information score between each (binned) feature and the optimal unroll
// factor. Paper's list: #floating point operations (0.19), #operands
// (0.186), instruction fan-in in DAG (0.175), live range size (0.16),
// #memory operations (0.148).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/FeatureSelection.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Table 3",
                   "top features by mutual information score (10 "
                   "equal-frequency bins)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);
  int Bins = static_cast<int>(Args.getInt("bins", 10));
  auto Ranked = rankByMutualInformation(Data, Bins);

  TablePrinter Table("Features by MIS");
  Table.addHeader({"Rank", "Feature", "MIS"});
  for (size_t R = 0; R < 10 && R < Ranked.size(); ++R)
    Table.addRow({std::to_string(R + 1), featureName(Ranked[R].first),
                  formatDouble(Ranked[R].second, 3)});
  Table.print();

  std::printf("\nPaper's top five: numFloatOps (0.19), numOperands "
              "(0.186),\n  instructionFanIn (0.175), liveRangeSize (0.16), "
              "numMemOps (0.148).\n");

  // Shape check: how many of the paper's five appear in our top ten?
  const FeatureId PaperTop[] = {
      FeatureId::NumFloatOps, FeatureId::NumOperands,
      FeatureId::InstructionFanIn, FeatureId::LiveRangeSize,
      FeatureId::NumMemOps};
  unsigned Hits = 0;
  for (FeatureId Paper : PaperTop)
    for (size_t R = 0; R < 10 && R < Ranked.size(); ++R)
      if (Ranked[R].first == Paper)
        ++Hits;
  std::printf("\nShape checks:\n");
  printComparison("paper's top-5 features in our top-10", "5 of 5",
                  std::to_string(Hits) + " of 5");
  printComparison("informative features separate from noise", "yes",
                  Ranked.front().second > 2 * Ranked.back().second
                      ? "yes"
                      : "no");
  return 0;
}
