//===- bench/fig5_speedup_swp.cpp - Regenerates Figure 5 ------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Figure 5: "Realized performance on the SPEC 2000 benchmarks with SWP
// enabled. We attain speedups on 16 of the 24 benchmarks in this graph,
// and a 1% speedup overall. The rightmost bar for each benchmark shows
// the speedup that a 'perfect' classifier would attain (4.4% overall)."
// ORC's SWP-aware heuristic is the product of years of tuning, so the
// margins here are much slimmer than in Figure 4.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/driver/SpeedupEvaluator.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Figure 5",
                   "SPEC 2000 speedups over the ORC heuristic "
                   "(SWP enabled, leave-one-benchmark-out training)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/true);

  SpeedupOptions Options;
  Options.Labeling = Pipe->labelingOptions(/*EnableSwp=*/true);
  SpeedupReport Report =
      evaluateSpeedups(Pipe->corpus(), spec2000BenchmarkNames(), Data,
                       paperReducedFeatureSet(), Options);

  TablePrinter Table("Speedup over ORC (SWP enabled)");
  Table.addHeader({"benchmark", "NN v. ORC", "SVM v. ORC",
                   "Oracle v. ORC"});
  for (const SpeedupRow &Row : Report.Rows)
    Table.addRow({Row.Benchmark + (Row.FloatingPoint ? " (fp)" : ""),
                  formatPercent(Row.NnVsOrc), formatPercent(Row.SvmVsOrc),
                  formatPercent(Row.OracleVsOrc)});
  Table.addRow({"MEAN (all 24)", formatPercent(Report.MeanNn),
                formatPercent(Report.MeanSvm),
                formatPercent(Report.MeanOracle)});
  Table.addRow({"MEAN (SPECfp)", formatPercent(Report.MeanNnFp),
                formatPercent(Report.MeanSvmFp),
                formatPercent(Report.MeanOracleFp)});
  Table.print();

  std::printf("\nHeadline comparisons:\n");
  printComparison("learned overall speedup", "~1%",
                  formatPercent(Report.MeanSvm, 1));
  printComparison("oracle overall speedup", "4.4%",
                  formatPercent(Report.MeanOracle, 1));
  printComparison("benchmarks where the learned policies win",
                  "16 of 24",
                  std::to_string(std::max(Report.NnWins, Report.SvmWins)) +
                      " of " + std::to_string(Report.Rows.size()));
  printComparison("margins slimmer than Figure 4 (SWP off)", "yes",
                  "compare with fig4_speedup_noswp");
  return 0;
}
