//===- bench/fig1_lda_projection.cpp - Regenerates Figures 1/2 data -------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Figures 1 and 2 visualize the loop dataset projected onto a 2-D plane
// found with linear discriminant analysis ("To find a 'good' plane onto
// which to project the data, we use the linear discriminant analysis
// algorithm described in [8]"), keeping only loops where the best factor
// beats the others by at least 30%, and only classes {1, 2, 4, 8}.
//
// This bench writes the projected points to out/fig1_lda_projection.csv
// (generated artifacts stay out of the repo root) and prints an ASCII
// scatter.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/Lda.h"
#include "support/Csv.h"

#include <algorithm>
#include <cmath>

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Figures 1/2",
                   "LDA projection of the loop dataset onto 2-D");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Full = Pipe->dataset(/*EnableSwp=*/false);

  // The figures' filter: classes {1,2,4,8} and a clear (>=30%) winner.
  Dataset Filtered;
  for (const Example &Ex : Full.examples()) {
    if (Ex.Label != 1 && Ex.Label != 2 && Ex.Label != 4 && Ex.Label != 8)
      continue;
    double Best = Ex.CyclesPerFactor[Ex.Label - 1];
    double SecondBest = 1e300;
    for (unsigned F : {1u, 2u, 4u, 8u}) {
      if (F == Ex.Label)
        continue;
      SecondBest = std::min(SecondBest, Ex.CyclesPerFactor[F - 1]);
    }
    if (SecondBest >= 1.3 * Best)
      Filtered.add(Ex);
  }
  std::printf("clear-winner loops (>=30%% margin, classes 1/2/4/8): %zu of "
              "%zu\n\n",
              Filtered.size(), Full.size());
  if (Filtered.size() < 8) {
    std::printf("not enough clear winners to fit a projection; rerun "
                "without --quick\n");
    return 0;
  }

  LdaProjection Lda = fitLda(Filtered, paperReducedFeatureSet(), 2);

  // Emit CSV and gather ranges for the ASCII plot.
  CsvWriter Csv;
  Csv.addRow({"x", "y", "bestFactor", "loop"});
  std::vector<std::array<double, 2>> Points;
  std::vector<unsigned> Labels;
  double MinX = 1e300, MaxX = -1e300, MinY = 1e300, MaxY = -1e300;
  for (const Example &Ex : Filtered.examples()) {
    std::vector<double> P = Lda.project(Ex.Features);
    Points.push_back({P[0], P[1]});
    Labels.push_back(Ex.Label);
    MinX = std::min(MinX, P[0]);
    MaxX = std::max(MaxX, P[0]);
    MinY = std::min(MinY, P[1]);
    MaxY = std::max(MaxY, P[1]);
    Csv.addRow({formatDouble(P[0], 4), formatDouble(P[1], 4),
                std::to_string(Ex.Label), Ex.LoopName});
  }
  std::string OutPath = benchOutPath("fig1_lda_projection.csv");
  bool Wrote = Csv.writeToFile(OutPath);
  std::printf("%s %s (%zu points)\n\n",
              Wrote ? "wrote" : "FAILED to write", OutPath.c_str(),
              Points.size());

  // ASCII scatter: '+' u1, 'o' u2, '*' u4, '.' u8 (figure 1's markers).
  constexpr int Width = 72, Height = 24;
  std::vector<std::string> Grid(Height, std::string(Width, ' '));
  auto MarkOf = [](unsigned Label) {
    switch (Label) {
    case 1:
      return '+';
    case 2:
      return 'o';
    case 4:
      return '*';
    default:
      return '.';
    }
  };
  for (size_t I = 0; I < Points.size(); ++I) {
    int Col = static_cast<int>((Points[I][0] - MinX) /
                               std::max(1e-9, MaxX - MinX) * (Width - 1));
    int Row = static_cast<int>((Points[I][1] - MinY) /
                               std::max(1e-9, MaxY - MinY) * (Height - 1));
    Grid[Height - 1 - Row][Col] = MarkOf(Labels[I]);
  }
  std::printf("legend: '+' u=1   'o' u=2   '*' u=4   '.' u=8\n");
  for (const std::string &Line : Grid)
    std::printf("|%s|\n", Line.c_str());

  std::printf("\nShape checks:\n");
  printComparison("discriminative directions found",
                  "classes form visible clusters",
                  "eigenvalues " + formatDouble(Lda.Eigenvalues[0], 2) +
                      ", " + formatDouble(Lda.Eigenvalues[1], 2));
  return 0;
}
