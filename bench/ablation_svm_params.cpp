//===- bench/ablation_svm_params.cpp - LS-SVM hyperparameter sweep --------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// The paper tuned its SVM with the LS-SVMlab toolkit's defaults ("almost
// no time went into tweaking the machine learning algorithms"). This
// ablation sweeps the two LS-SVM hyperparameters - the regularization
// gamma and the RBF width sigma^2 (per normalized dimension) - to show
// the working point sits on a broad plateau, i.e. the result does not
// hinge on careful tuning.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: LS-SVM hyperparameters",
                   "LOOCV accuracy over (gamma, sigma^2/dim)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  Rng Subsampler(5);
  Dataset Data = Pipe->dataset(/*EnableSwp=*/false)
                     .subsample(static_cast<size_t>(
                                    Args.getInt("svm-cap", 1000)),
                                Subsampler);
  std::printf("evaluating on %zu loops\n\n", Data.size());
  FeatureSet Features = paperReducedFeatureSet();

  const double Gammas[] = {1.0, 10.0, 100.0};
  const double Sigmas[] = {0.3, 1.0, 3.0};

  TablePrinter Table("Accuracy over the hyperparameter grid");
  Table.addHeader({"gamma \\ sigma^2/dim", "0.3", "1.0", "3.0"});
  double Best = 0.0, Worst = 1.0, AtDefault = 0.0;
  for (double Gamma : Gammas) {
    std::vector<std::string> Row = {formatDouble(Gamma, 0)};
    for (double Sigma : Sigmas) {
      SvmOptions Options;
      Options.Gamma = Gamma;
      Options.SigmaSquaredPerDim = Sigma;
      SvmClassifier Svm(Features, Options);
      double Accuracy =
          predictionAccuracy(Data, loocvPredictions(Svm, Data));
      Row.push_back(formatPercent(Accuracy, 1));
      Best = std::max(Best, Accuracy);
      Worst = std::min(Worst, Accuracy);
      if (Gamma == 10.0 && Sigma == 1.0)
        AtDefault = Accuracy;
    }
    Table.addRow(Row);
  }
  Table.print();

  std::printf("\nShape checks:\n");
  printComparison("defaults (gamma=10, sigma^2/dim=1) near the best",
                  "\"almost no tweaking\"",
                  Best - AtDefault < 0.04 ? "yes" : "no");
  printComparison("plateau width (best - worst on grid)", "small",
                  formatPercent(Best - Worst, 1));
  return 0;
}
