//===- bench/ablation_classifiers.cpp - Learning algorithm shoot-out ------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// "There are many different classification techniques that one could
// choose to employ" (Section 4.6). This ablation runs the full menu on
// the same data: the paper's NN and LS-SVM, the decision tree its related
// work favors (Monsifrot et al., Calder et al.), kernel ridge regression
// (the Section 8 future-work extension), LSH-approximate NN (the Section
// 5.1 scalability route), the model zoo's MLP and random forest, and two
// trivial baselines for calibration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

#include "core/ml/CrossValidation.h"
#include "core/ml/DecisionTree.h"
#include "core/ml/Evaluation.h"
#include "core/ml/Forest.h"
#include "core/ml/Lsh.h"
#include "core/ml/Mlp.h"
#include "core/ml/Regression.h"

#include <algorithm>
#include <cmath>

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: learning algorithms",
                   "NN vs SVM vs decision tree vs regression vs LSH "
                   "(same data, same features)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Full = Pipe->dataset(/*EnableSwp=*/false);
  Rng Subsampler(17);
  Dataset Data = Full.subsample(
      static_cast<size_t>(Args.getInt("cap", 1000)), Subsampler);
  std::printf("evaluating on %zu loops (LOOCV)\n\n", Data.size());
  FeatureSet Features = paperReducedFeatureSet();

  TablePrinter Table("Classifier comparison (LOOCV)");
  Table.addHeader({"classifier", "optimal", "top-2", "mean cost"});
  std::vector<std::pair<std::string, double>> Accuracies;
  auto AddRow = [&](const std::string &Name,
                    const std::vector<unsigned> &Pred) {
    RankDistribution Rank = rankDistribution(Data, Pred);
    Table.addRow({Name, formatPercent(Rank.accuracy(), 1),
                  formatPercent(Rank.topTwoAccuracy(), 1),
                  formatDouble(meanCostOfPredictions(Data, Pred), 3) +
                      "x"});
    Accuracies.emplace_back(Name, Rank.accuracy());
  };

  // The paper's two learners (fast exact LOOCV paths).
  NearNeighborClassifier Nn(Features, 0.3);
  AddRow("near-neighbor (paper)", loocvPredictions(Nn, Data));
  SvmClassifier Svm(Features);
  AddRow("LS-SVM output codes (paper)", loocvPredictions(Svm, Data));

  // Decision tree and LSH: training is cheap, so brute-force LOOCV.
  AddRow("decision tree (CART)",
         bruteForceLoocv(
             [](const FeatureSet &F) {
               return std::make_unique<DecisionTreeClassifier>(F);
             },
             Features, Data));
  AddRow("LSH approximate NN",
         bruteForceLoocv(
             [](const FeatureSet &F) {
               return std::make_unique<LshNearNeighborClassifier>(F);
             },
             Features, Data));

  // Kernel ridge regression: exact LOO values, rounded to factors.
  {
    KrrUnrollRegressor Krr(Features);
    Krr.train(Data);
    std::vector<double> Loo = Krr.looValues();
    std::vector<unsigned> Pred;
    Pred.reserve(Loo.size());
    for (double Value : Loo)
      Pred.push_back(static_cast<unsigned>(
          std::clamp<long>(std::lround(Value), 1, MaxUnrollFactor)));
    AddRow("kernel ridge regression (Sec. 8)", Pred);
  }

  // The model zoo (retrained per held-out example, like the tree).
  AddRow("MLP (model zoo)",
         bruteForceLoocv(
             [](const FeatureSet &F) {
               return std::make_unique<MlpClassifier>(F);
             },
             Features, Data));
  AddRow("random forest (model zoo)",
         bruteForceLoocv(
             [](const FeatureSet &F) {
               return std::make_unique<RandomForestClassifier>(F);
             },
             Features, Data));

  // Trivial baselines for calibration.
  auto Histogram = Data.labelHistogram();
  unsigned Majority = 1 + static_cast<unsigned>(argMax(
      std::vector<double>(Histogram.begin(), Histogram.end())));
  AddRow("always-" + std::to_string(Majority) + " (majority class)",
         std::vector<unsigned>(Data.size(), Majority));
  AddRow("always-1 (never unroll)",
         std::vector<unsigned>(Data.size(), 1));
  Table.print();

  std::printf("\nShape checks:\n");
  double PaperBest =
      std::max(Accuracies[0].second, Accuracies[1].second);
  double Tree = Accuracies[2].second;
  double Lsh = Accuracies[3].second;
  printComparison("paper's learners competitive with the tree",
                  "NN/SVM chosen for a reason",
                  PaperBest + 0.03 >= Tree ? "yes" : "no");
  printComparison("LSH close to exact NN",
                  "approximate lookup works (Sec. 5.1)",
                  std::abs(Lsh - Accuracies[0].second) < 0.05 ? "yes"
                                                              : "no");
  double MajorityAccuracy = Accuracies[Accuracies.size() - 2].second;
  printComparison("every learner beats the majority baseline", "yes",
                  std::min({Accuracies[0].second, Accuracies[1].second,
                            Tree, Lsh, Accuracies[5].second,
                            Accuracies[6].second}) > MajorityAccuracy
                      ? "yes"
                      : "no");
  return 0;
}
