//===- bench/ablation_validation.cpp - Methodology cross-checks -----------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Section 4.2 picks LOOCV because "there are other methods available for
// estimating a classifier's accuracy, but LOOCV is particularly appealing
// when the size of the training set is small". This bench runs the other
// method (10-fold CV) and shows the estimates agree; it also breaks the
// accuracy down by source suite and language (the corpus spans three
// languages and six suites, Section 4.6) and prints the confusion matrix
// behind Table 2's rank buckets.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"

#include <map>

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: validation methodology",
                   "LOOCV vs 10-fold, per-suite breakdown, confusion "
                   "matrix");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);
  FeatureSet Features = paperReducedFeatureSet();

  // LOOCV vs 10-fold on the same NN classifier.
  NearNeighborClassifier Nn(Features, 0.3);
  std::vector<unsigned> Loocv = loocvPredictions(Nn, Data);
  ClassifierFactory Factory = [](const FeatureSet &F) {
    return std::make_unique<NearNeighborClassifier>(F, 0.3);
  };
  std::vector<unsigned> KFold =
      kFoldPredictions(Factory, Features, Data, 10);

  double LoocvAccuracy = predictionAccuracy(Data, Loocv);
  double KFoldAccuracy = predictionAccuracy(Data, KFold);
  std::printf("NN accuracy: LOOCV %.1f%%   10-fold %.1f%%\n\n",
              LoocvAccuracy * 100.0, KFoldAccuracy * 100.0);

  // Per-suite and per-language breakdown.
  std::map<std::string, std::pair<size_t, size_t>> BySuite; // correct/total
  std::map<std::string, std::pair<size_t, size_t>> ByLang;
  std::map<std::string, const Benchmark *> BenchByName;
  for (const Benchmark &Bench : Pipe->corpus())
    BenchByName[Bench.Name] = &Bench;
  for (size_t I = 0; I < Data.size(); ++I) {
    const Benchmark *Bench = BenchByName.at(Data[I].BenchmarkName);
    bool Correct = Loocv[I] == Data[I].Label;
    auto &Suite = BySuite[Bench->Suite];
    ++Suite.second;
    Suite.first += Correct;
    auto &Lang = ByLang[sourceLanguageName(Bench->Lang)];
    ++Lang.second;
    Lang.first += Correct;
  }

  TablePrinter Suites("NN LOOCV accuracy by source suite");
  Suites.addHeader({"suite", "loops", "accuracy"});
  for (const auto &[Suite, Counts] : BySuite)
    Suites.addRow({Suite, std::to_string(Counts.second),
                   formatPercent(static_cast<double>(Counts.first) /
                                     Counts.second,
                                 1)});
  Suites.print();
  std::printf("\n");

  TablePrinter Langs("NN LOOCV accuracy by language");
  Langs.addHeader({"language", "loops", "accuracy"});
  for (const auto &[Lang, Counts] : ByLang)
    Langs.addRow({Lang, std::to_string(Counts.second),
                  formatPercent(static_cast<double>(Counts.first) /
                                    Counts.second,
                                1)});
  Langs.print();
  std::printf("\n");

  std::printf("%s\n",
              renderConfusionMatrix(confusionMatrix(Data, Loocv)).c_str());

  std::printf("Shape checks:\n");
  printComparison("LOOCV and 10-fold estimates agree",
                  "\"other methods available\" (Sec. 4.2)",
                  std::abs(LoocvAccuracy - KFoldAccuracy) < 0.03 ? "yes"
                                                                 : "no");
  printComparison("every suite contributes usable loops", "72 benchmarks",
                  std::to_string(BySuite.size()) + " suites");
  return 0;
}
