//===- bench/table2_accuracy.cpp - Regenerates Table 2 --------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Table 2: "Accuracy of predictions for the nearest neighbors algorithm,
// an SVM, and ORC's heuristic", with the mispredict-cost column. Software
// pipelining disabled; leave-one-out cross-validation over the full
// labeled corpus.
//
// Paper values (SWP off):
//   rank        NN    SVM   ORC   Cost
//   optimal     0.62  0.65  0.16  1x
//   2nd best    0.13  0.14  0.21  1.07x
//   3rd         0.09  0.06  0.21  1.15x
//   4th         0.06  0.06  0.13  1.20x
//   5th         0.03  0.02  0.16  1.31x
//   6th         0.03  0.03  0.04  1.34x
//   7th         0.02  0.02  0.05  1.65x
//   worst       0.02  0.02  0.04  1.77x
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Table 2",
                   "prediction accuracy: NN vs SVM vs ORC heuristic "
                   "(LOOCV, SWP disabled)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);
  std::printf("labeled loops: %zu\n\n", Data.size());

  FeatureSet Features = paperReducedFeatureSet();

  NearNeighborClassifier Nn(Features, Args.getDouble("radius", 0.3));
  std::vector<unsigned> NnPred = loocvPredictions(Nn, Data);

  // Full-dataset SVM LOOCV via the exact closed-form shortcut; one O(n^3)
  // factorization total (~40s at n~2700). --svm-cap subsamples.
  Rng Subsampler(1);
  size_t Cap = static_cast<size_t>(
      Args.getInt("svm-cap", static_cast<int64_t>(Data.size())));
  Dataset SvmData = Data.subsample(Cap, Subsampler);
  SvmClassifier Svm(Features);
  std::vector<unsigned> SvmPred = loocvPredictions(Svm, SvmData);

  MachineModel Machine(Pipe->options().Machine);
  OrcLikeHeuristic Orc(Machine, /*SwpMode=*/false);
  auto Index = indexCorpusLoops(Pipe->corpus());
  std::vector<unsigned> OrcPred = orcPredictions(Data, Index, Orc);

  RankDistribution NnRank = rankDistribution(Data, NnPred);
  RankDistribution SvmRank = rankDistribution(SvmData, SvmPred);
  RankDistribution OrcRank = rankDistribution(Data, OrcPred);
  auto Cost = costByRank(Data);

  static const char *RankNames[] = {
      "Optimal unroll factor",      "Second-best unroll factor",
      "Third-best unroll factor",   "Fourth-best unroll factor",
      "Fifth-best unroll factor",   "Sixth-best unroll factor",
      "Seventh-best unroll factor", "Worst unroll factor"};

  TablePrinter Table("Prediction Correctness");
  Table.addHeader({"Prediction", "NN", "SVM", "ORC", "Cost"});
  for (unsigned R = 0; R < MaxUnrollFactor; ++R)
    Table.addRow({RankNames[R], formatDouble(NnRank.Fraction[R], 2),
                  formatDouble(SvmRank.Fraction[R], 2),
                  formatDouble(OrcRank.Fraction[R], 2),
                  formatDouble(Cost[R], 2) + "x"});
  Table.print();

  std::printf("\nHeadline comparisons:\n");
  printComparison("SVM predicts the optimal factor", "65%",
                  formatPercent(SvmRank.accuracy(), 0));
  printComparison("SVM optimal-or-second-best", "79%",
                  formatPercent(SvmRank.topTwoAccuracy(), 0));
  printComparison("NN predicts the optimal factor", "62%",
                  formatPercent(NnRank.accuracy(), 0));
  printComparison("ORC heuristic optimal", "16%",
                  formatPercent(OrcRank.accuracy(), 0));
  printComparison("cost of the worst factor", "1.77x",
                  formatDouble(Cost[MaxUnrollFactor - 1], 2) + "x");
  printComparison("mean cost: SVM choices", "~1.07x within 7% (top-2)",
                  formatDouble(meanCostOfPredictions(SvmData, SvmPred), 3) +
                      "x");
  printComparison("mean cost: ORC choices", "(not reported)",
                  formatDouble(meanCostOfPredictions(Data, OrcPred), 3) +
                      "x");

  std::printf("\n%s",
              renderConfusionMatrix(confusionMatrix(SvmData, SvmPred))
                  .c_str());
  return 0;
}
