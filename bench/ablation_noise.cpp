//===- bench/ablation_noise.cpp - Measurement noise ablation --------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Section 8: "noise presents a challenge to automatically learning
// compiler heuristics. The finer the granularity at which execution is
// measured, the noisier the measurements become." This ablation relabels
// the corpus under increasing instrumentation noise and shows (a) labels
// churn and (b) LOOCV accuracy decays - the paper's motivation for the
// median-of-30 protocol and the 50k-cycle floor.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: instrumentation noise",
                   "label churn and accuracy vs measurement noise");

  PipelineOptions Base;
  Base.CacheDir = ""; // Each noise level relabels; caching wrong here.
  if (Args.has("quick")) {
    Base.Corpus.MinLoopsPerBenchmark = 6;
    Base.Corpus.MaxLoopsPerBenchmark = 10;
  } else {
    Base.Corpus.MinLoopsPerBenchmark = 12;
    Base.Corpus.MaxLoopsPerBenchmark = 18;
  }

  // Reference labels: the default protocol.
  Pipeline Reference(Base);
  const Dataset &Clean = Reference.dataset(false);
  std::map<std::string, unsigned> CleanLabel;
  for (const Example &Ex : Clean.examples())
    CleanLabel[Ex.LoopName] = Ex.Label;
  FeatureSet Features = paperReducedFeatureSet();

  TablePrinter Table("Noise sweep");
  Table.addHeader({"noise stddev", "usable loops", "labels changed",
                   "NN LOOCV accuracy"});
  for (double Noise : {0.008, 0.03, 0.08, 0.2}) {
    PipelineOptions Options = Base;
    Options.Protocol.NoiseStdDev = Noise;
    Options.Protocol.OutlierProb = 0.02 + Noise;
    Pipeline Pipe(Options);
    const Dataset &Data = Pipe.dataset(false);

    size_t Changed = 0, Matched = 0;
    for (const Example &Ex : Data.examples()) {
      auto It = CleanLabel.find(Ex.LoopName);
      if (It == CleanLabel.end())
        continue;
      ++Matched;
      Changed += Ex.Label != It->second;
    }
    NearNeighborClassifier Nn(Features, 0.3);
    double Accuracy = predictionAccuracy(Data, loocvPredictions(Nn, Data));
    Table.addRow({formatPercent(Noise, 1), std::to_string(Data.size()),
                  Matched ? formatPercent(
                                static_cast<double>(Changed) / Matched, 1)
                          : "-",
                  formatPercent(Accuracy, 1)});
  }
  Table.print();

  std::printf("\nShape checks:\n");
  printComparison("rising noise churns labels and hurts accuracy",
                  "\"noise presents a challenge\" (Section 8)",
                  "see monotone trend above");
  return 0;
}
