//===- bench/table4_greedy.cpp - Regenerates Table 4 ----------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Table 4: "The top five features chosen by greedy feature selection for
// two different classifiers." Paper's NN column: #operands (0.48), live
// range size (0.06), critical path length (0.03), #operations (0.02),
// known tripcount (0.02). SVM column: #floating point ops (0.59), loop
// nest level (0.49), #operands (0.34), #branches (0.20), #memory ops
// (0.13). "Notice that the choice of classifier affects the list."
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/FeatureSelection.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Table 4",
                   "greedy forward feature selection: NN, SVM, MLP, and "
                   "random-forest training error");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);
  unsigned Steps = static_cast<unsigned>(Args.getInt("steps", 5));

  // NN greedy runs on the full dataset (leave-self-out 1-NN); the SVM,
  // MLP, and forest columns retrain a model per candidate feature, so
  // they use a subsample to stay tractable (38 features x 5 steps
  // retrains each).
  Rng Subsampler(11);
  Dataset SvmData = Data.subsample(
      static_cast<size_t>(Args.getInt("svm-cap", 500)), Subsampler);

  auto NnSteps = greedyFeatureSelection(Data, nearNeighborTrainError,
                                        Steps);
  auto SvmSteps = greedyFeatureSelection(SvmData, svmTrainError, Steps);
  auto MlpSteps = greedyFeatureSelection(SvmData, mlpTrainError, Steps);
  auto ForestSteps =
      greedyFeatureSelection(SvmData, forestTrainError, Steps);

  TablePrinter Table("Greedy feature selection");
  Table.addHeader({"Rank", "NN", "Error", "SVM", "Error", "MLP", "Error",
                   "Forest", "Error"});
  for (unsigned R = 0; R < Steps; ++R)
    Table.addRow({std::to_string(R + 1), featureName(NnSteps[R].Feature),
                  formatDouble(NnSteps[R].TrainError, 2),
                  featureName(SvmSteps[R].Feature),
                  formatDouble(SvmSteps[R].TrainError, 2),
                  featureName(MlpSteps[R].Feature),
                  formatDouble(MlpSteps[R].TrainError, 2),
                  featureName(ForestSteps[R].Feature),
                  formatDouble(ForestSteps[R].TrainError, 2)});
  Table.print();

  std::printf("\nShape checks:\n");
  bool ErrorsDecrease = true;
  for (unsigned R = 1; R < Steps; ++R)
    ErrorsDecrease &= NnSteps[R].TrainError <=
                      NnSteps[R - 1].TrainError + 1e-9;
  printComparison("training error non-increasing along steps", "yes",
                  ErrorsDecrease ? "yes" : "no");
  bool ListsDiffer = false;
  for (unsigned R = 0; R < Steps; ++R)
    ListsDiffer |= NnSteps[R].Feature != SvmSteps[R].Feature ||
                   NnSteps[R].Feature != MlpSteps[R].Feature ||
                   NnSteps[R].Feature != ForestSteps[R].Feature;
  printComparison("classifier choice affects the selected list", "yes",
                  ListsDiffer ? "yes" : "no");
  printComparison("paper's observation: numOps ranks below the top",
                  "\"only once, far down the list\"",
                  "inspect the table above");
  return 0;
}
