//===- bench/ablation_retune.cpp - Architecture retuning ablation ---------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Section 4.5: "quickly retuning the unrolling heuristic to match
// architectural changes will be trivial. We will simply have to collect a
// new labeled dataset ... and then we can apply the learning algorithm of
// our choice. Contrast this with the tedious, manual retuning efforts
// currently employed today."
//
// This ablation swaps the Itanium-2-like machine for a deliberately
// different VLIW (narrower issue, slower cache, fewer registers),
// relabels, retrains - and shows the retrained classifier beats both the
// stale classifier (trained for the old machine) and the hand-written
// heuristic, which nobody retuned.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: retuning to a new architecture",
                   "relabel + retrain vs stale model vs untouched "
                   "hand-written heuristic");

  PipelineOptions OldOptions;
  PipelineOptions NewOptions;
  NewOptions.Machine = altVliwConfig();
  if (Args.has("quick")) {
    for (PipelineOptions *O : {&OldOptions, &NewOptions}) {
      O->Corpus.MinLoopsPerBenchmark = 6;
      O->Corpus.MaxLoopsPerBenchmark = 10;
      O->CacheDir = "";
    }
  }
  Pipeline OldPipe(OldOptions);
  Pipeline NewPipe(NewOptions);

  const Dataset &OldData = OldPipe.dataset(false);
  const Dataset &NewData = NewPipe.dataset(false);
  std::printf("itanium2 labels: %zu loops; altvliw labels: %zu loops\n",
              OldData.size(), NewData.size());

  // Label drift: the same loop often wants a different factor on the new
  // machine - the reason retuning matters at all.
  std::map<std::string, unsigned> OldLabel;
  for (const Example &Ex : OldData.examples())
    OldLabel[Ex.LoopName] = Ex.Label;
  size_t Matched = 0, Drifted = 0;
  for (const Example &Ex : NewData.examples()) {
    auto It = OldLabel.find(Ex.LoopName);
    if (It == OldLabel.end())
      continue;
    ++Matched;
    Drifted += Ex.Label != It->second;
  }
  std::printf("label drift across machines: %.1f%% of %zu shared loops\n\n",
              Matched ? 100.0 * Drifted / Matched : 0.0, Matched);

  FeatureSet Features = paperReducedFeatureSet();

  // Retrained: NN trained and LOOCV-evaluated on the new machine's labels.
  NearNeighborClassifier Retrained(Features, 0.3);
  std::vector<unsigned> RetrainedPred =
      loocvPredictions(Retrained, NewData);

  // Stale: trained on the old machine's labels, asked about the new ones.
  NearNeighborClassifier Stale(Features, 0.3);
  Stale.train(OldData);
  std::vector<unsigned> StalePred;
  for (const Example &Ex : NewData.examples())
    StalePred.push_back(Stale.predict(Ex.Features));

  // The hand-written heuristic, which nobody rewrote for the new machine
  // (its code still reasons like an Itanium 2 compiler would).
  MachineModel NewMachine(NewOptions.Machine);
  OrcLikeHeuristic Orc(NewMachine, false);
  auto Index = indexCorpusLoops(NewPipe.corpus());
  std::vector<unsigned> OrcPred = orcPredictions(NewData, Index, Orc);

  TablePrinter Table("Accuracy on the new machine's labels");
  Table.addHeader({"policy", "optimal", "top-2", "mean cost"});
  auto AddRow = [&](const char *Name, const std::vector<unsigned> &Pred) {
    RankDistribution Rank = rankDistribution(NewData, Pred);
    Table.addRow({Name, formatPercent(Rank.accuracy(), 1),
                  formatPercent(Rank.topTwoAccuracy(), 1),
                  formatDouble(meanCostOfPredictions(NewData, Pred), 3) +
                      "x"});
    return Rank.accuracy();
  };
  double RetrainedAccuracy = AddRow("NN retrained (relabel + train)",
                                    RetrainedPred);
  double StaleAccuracy = AddRow("NN stale (itanium2 training)", StalePred);
  double OrcAccuracy = AddRow("orc-like heuristic (untouched)", OrcPred);
  Table.print();

  std::printf("\nShape checks:\n");
  printComparison("retrained beats the stale model",
                  "\"retuning will be trivial\"",
                  RetrainedAccuracy > StaleAccuracy ? "yes" : "no");
  printComparison("retrained beats the untouched hand heuristic", "yes",
                  RetrainedAccuracy > OrcAccuracy ? "yes" : "no");
  return 0;
}
