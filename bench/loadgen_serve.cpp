//===- bench/loadgen_serve.cpp - Closed-loop serving load generator -------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Drives a running metaopt-serve daemon (or a metaopt-gateway fronting a
// fleet) with concurrent closed-loop clients and reports throughput and
// client-observed latency percentiles as one JSON row — the serving
// counterpart of the microbench_* harnesses.
//
// The generator also enforces the serving correctness contract while it
// measures: every response to the same request text must be byte-identical
// across clients, iterations, and batch compositions. Any divergence makes
// the run fail (exit 1), so a throughput number from this harness is also
// a determinism certificate.
//
// Two modes:
//
//  * Legacy (default): N clients x M requests each, byte-identity against
//    a serial reference pass over the same endpoint. One "bench" row on
//    stdout; used by tests/serve_smoke.sh.
//
//  * Soak (--soak): run for a wall-clock duration with a mixed workload —
//    steady closed-loop clients, reconnecting clients, slow readers that
//    dribble their reads, stallers that park a partial frame (expecting
//    the server's read deadline to close them), and oversized senders
//    (expecting bad-request + close). Optionally hot-swaps the served
//    bundle mid-run (--swap-bundle/--swap-target) and confirms the fleet
//    picked it up via health checksums. Emits one "serve_soak" experiment
//    row (p50/p99/p999) on stdout and, with --bench=<name>, into
//    BENCH_<name>.json for metaopt-benchcheck.
//
// Usage:
//   loadgen_serve --socket=<addr> [--clients=32] [--requests=50]
//                 [--scores] [--deadline-ms=<ms>] [<file.loop> ...]
//   loadgen_serve --socket=<addr> --soak --duration-s=10 --label=steady
//                 [--reference=<addr>] [--reconnectors=2] [--slow-readers=1]
//                 [--stallers=1] [--oversized=1] [--oversized-bytes=<n>]
//                 [--swap-bundle=<file> --swap-target=<live-path>]
//                 [--bench=serve] [--bench-append]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "serve/Client.h"
#include "serve/Json.h"
#include "serve/ModelBundle.h"
#include "support/CommandLine.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <vector>

using namespace metaopt;

namespace {

// Distinct loop shapes so batches mix cheap and expensive requests.
const char *BuiltinLoops[] = {
    R"(loop "loadgen.dot" lang=C nest=1 trip=2048 rtrip=2048 {
  phi %f_acc = [%f_acc.init, %f_acc.next]
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_acc.next = fma %f_x, %f_y, %f_acc
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
    R"(loop "loadgen.scan" lang=C nest=1 trip=-1 rtrip=777 {
  %i_v = load @0[stride=4, offset=0, size=4]
  %p_hit = icmp %i_v, %i_needle
  exit_if %p_hit prob=0.002
  %i_t = iadd %i_v, %i_bias
  store %i_t, @1[stride=4, offset=0, size=4]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
    R"(loop "loadgen.saxpy" lang=Fortran nest=1 trip=512 rtrip=512 {
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_ax = fmul %f_x, %f_a
  %f_s = fadd %f_ax, %f_y
  store %f_s, @1[stride=8, offset=0, size=8]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
    R"(loop "loadgen.copy" lang=C nest=2 trip=64 rtrip=64 {
  %i_v = load @0[stride=4, offset=0, size=4]
  store %i_v, @1[stride=4, offset=0, size=4]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
};

struct ClientResult {
  std::vector<double> LatenciesMs;
  /// First response seen per request index; compared across clients.
  std::vector<std::string> Responses;
  size_t Errors = 0;
  std::string FirstError;
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

//===----------------------------------------------------------------------===//
// Soak mode
//===----------------------------------------------------------------------===//

using Clock = std::chrono::steady_clock;

struct SoakConfig {
  std::string Address;
  std::string Reference;  ///< Direct worker for byte-identity (optional).
  std::vector<std::string> LoopTexts;
  bool WantScores = false;
  int64_t DeadlineMs = 0;
  int64_t DurationS = 10;
  int64_t Steady = 4;
  int64_t Reconnectors = 0;
  int64_t SlowReaders = 0;
  int64_t Stallers = 0;
  int64_t Oversized = 0;
  int64_t OversizedBytes = (1 << 20) + 1024;
  std::string SwapBundle;  ///< Bundle file to promote mid-run.
  std::string SwapTarget;  ///< Live path the worker fleet watches.
  std::string Label = "steady";
  Clock::time_point End;
};

/// Counters shared by every soak client thread.
struct SoakState {
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> Reconnects{0};
  std::atomic<uint64_t> ExpectedCloses{0};
  std::atomic<uint64_t> OversizedRejects{0};
  std::atomic<uint64_t> Mismatches{0};
  std::atomic<uint64_t> BundleSwaps{0};

  std::mutex Mutex;
  std::vector<double> LatenciesMs;
  std::string FirstError;

  void recordLatency(double Ms) {
    std::lock_guard<std::mutex> Lock(Mutex);
    LatenciesMs.push_back(Ms);
  }
  void recordError(const std::string &Why) {
    Errors.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(Mutex);
    if (FirstError.empty())
      FirstError = Why;
  }
};

bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Checks one response against the reference (byte identity) or, without
/// a reference, against the protocol (parses, status ok).
void checkResponse(const SoakConfig &Config, SoakState &State,
                   size_t LoopIndex, const std::string &Line,
                   const std::vector<std::string> &Reference) {
  if (!Reference.empty()) {
    if (Line != Reference[LoopIndex]) {
      State.Mismatches.fetch_add(1, std::memory_order_relaxed);
      State.recordError("response diverged from the reference: " + Line);
    }
    return;
  }
  std::optional<JsonValue> Doc = parseJson(Line);
  if (!Doc || Doc->getString("status") != "ok") {
    State.Mismatches.fetch_add(1, std::memory_order_relaxed);
    State.recordError("non-ok response under soak: " + Line);
  }
  (void)Config;
}

/// A steady closed-loop client; with \p ReconnectEvery > 0 it drops and
/// re-establishes its connection every that-many requests.
void steadyClient(const SoakConfig &Config, SoakState &State,
                  const std::vector<std::string> &Reference, size_t Seed,
                  int64_t ReconnectEvery) {
  ServeClient Client;
  std::string Error;
  if (!Client.connectWithRetry(Config.Address, 2000, &Error)) {
    State.recordError("connect: " + Error);
    return;
  }
  size_t Sent = 0;
  for (size_t R = Seed; Clock::now() < Config.End; ++R) {
    if (ReconnectEvery > 0 &&
        Sent == static_cast<size_t>(ReconnectEvery)) {
      Client.close();
      if (!Client.connectWithRetry(Config.Address, 2000, &Error)) {
        State.recordError("reconnect: " + Error);
        return;
      }
      State.Reconnects.fetch_add(1, std::memory_order_relaxed);
      Sent = 0;
    }
    size_t LoopIndex = R % Config.LoopTexts.size();
    WireRequest Request;
    Request.TheOp = WireRequest::Op::Predict;
    Request.LoopText = Config.LoopTexts[LoopIndex];
    Request.WantScores = Config.WantScores;
    Request.DeadlineMs = Config.DeadlineMs;
    auto T0 = Clock::now();
    std::optional<std::string> Line = Client.request(Request, &Error);
    auto T1 = Clock::now();
    if (!Line) {
      State.recordError("request: " + Error);
      return;
    }
    ++Sent;
    State.Completed.fetch_add(1, std::memory_order_relaxed);
    State.recordLatency(
        std::chrono::duration<double, std::milli>(T1 - T0).count());
    checkResponse(Config, State, LoopIndex, *Line, Reference);
  }
}

/// A well-behaved but slow client: sends health requests and reads the
/// response a few bytes at a time, exercising the server's partial-write
/// path without tripping its write deadline.
void slowReaderClient(const SoakConfig &Config, SoakState &State) {
  WireRequest Health;
  Health.TheOp = WireRequest::Op::Health;
  std::string RequestLine = renderRequestLine(Health) + "\n";
  while (Clock::now() < Config.End) {
    ServeClient Client;
    std::string Error;
    if (!Client.connectWithRetry(Config.Address, 2000, &Error)) {
      State.recordError("slow-reader connect: " + Error);
      return;
    }
    auto T0 = Clock::now();
    if (!sendAll(Client.fd(), RequestLine.data(), RequestLine.size())) {
      State.recordError("slow-reader send failed");
      return;
    }
    std::string Line;
    bool Eof = false;
    while (Clock::now() < Config.End + std::chrono::seconds(2)) {
      char Chunk[8];
      ssize_t N = ::recv(Client.fd(), Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        Eof = true;
        break;
      }
      Line.append(Chunk, static_cast<size_t>(N));
      if (Line.find('\n') != std::string::npos)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (Eof || Line.find('\n') == std::string::npos) {
      State.recordError("slow reader lost its connection mid-response");
      return;
    }
    State.Completed.fetch_add(1, std::memory_order_relaxed);
    State.recordLatency(std::chrono::duration<double, std::milli>(
                            Clock::now() - T0)
                            .count());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// A misbehaving client that parks a partial frame and goes silent. The
/// server's read deadline must eventually close the connection; each such
/// close is counted as expected, not as an error.
void stallerClient(const SoakConfig &Config, SoakState &State) {
  static const char Partial[] = "{\"op\":\"heal";
  while (Clock::now() < Config.End) {
    ServeClient Client;
    std::string Error;
    if (!Client.connectWithRetry(Config.Address, 2000, &Error)) {
      State.recordError("staller connect: " + Error);
      return;
    }
    if (!sendAll(Client.fd(), Partial, sizeof(Partial) - 1))
      continue; // Raced with shutdown; retry until the soak ends.
    // Wait for the server to hang up on us.
    while (Clock::now() < Config.End) {
      struct pollfd Pfd = {Client.fd(), POLLIN, 0};
      int Ready = ::poll(&Pfd, 1, 100);
      if (Ready < 0 && errno == EINTR)
        continue;
      if (Ready <= 0)
        continue;
      char Chunk[64];
      ssize_t N = ::recv(Client.fd(), Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        State.ExpectedCloses.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      // A reject line before the close also counts as the hang-up path.
    }
  }
}

/// A misbehaving client that sends one oversized request line per round;
/// the server must answer bad-request and close.
void oversizedClient(const SoakConfig &Config, SoakState &State) {
  std::string Giant(static_cast<size_t>(Config.OversizedBytes), 'a');
  Giant += '\n';
  while (Clock::now() < Config.End) {
    ServeClient Client;
    std::string Error;
    if (!Client.connectWithRetry(Config.Address, 2000, &Error)) {
      State.recordError("oversized connect: " + Error);
      return;
    }
    // The server may slam the door mid-send; both a reject line and a
    // straight close count as the rejection we are probing for.
    (void)sendAll(Client.fd(), Giant.data(), Giant.size());
    std::string Head;
    while (Clock::now() < Config.End + std::chrono::seconds(2)) {
      char Chunk[256];
      ssize_t N = ::recv(Client.fd(), Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        break;
      Head.append(Chunk, static_cast<size_t>(N));
      if (Head.find('\n') != std::string::npos)
        break;
    }
    if (!Head.empty() && Head.find("bad-request") == std::string::npos) {
      State.recordError("oversized line was not rejected: " + Head);
      return;
    }
    State.OversizedRejects.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

/// Reads the active bundle checksum(s) from one health response: the
/// top-level checksum for a worker, or the healthy backends' checksums
/// for a gateway. Returns true when the fleet (as visible through
/// \p Address) has fully converged on \p Expected.
bool fleetServesChecksum(const std::string &Address,
                         const std::string &Expected) {
  ServeClient Client;
  if (!Client.connect(Address))
    return false;
  WireRequest Health;
  Health.TheOp = WireRequest::Op::Health;
  std::optional<std::string> Line = Client.request(Health);
  if (!Line)
    return false;
  std::optional<JsonValue> Doc = parseJson(*Line);
  if (!Doc)
    return false;
  std::string Direct = Doc->getString("bundle_checksum");
  if (!Direct.empty())
    return Direct == Expected;
  const JsonValue *Backends = Doc->get("backends");
  if (!Backends || !Backends->isArray())
    return false;
  size_t Healthy = 0;
  for (const JsonValue &Backend : Backends->Items) {
    if (!Backend.getBool("healthy", false))
      continue;
    ++Healthy;
    if (Backend.getString("bundle_checksum") != Expected)
      return false;
  }
  return Healthy > 0;
}

/// Promotes Config.SwapBundle to Config.SwapTarget (atomic tmp+rename)
/// halfway through the soak, then polls health until every healthy
/// serving process reports the new checksum.
void bundleSwapper(const SoakConfig &Config, SoakState &State,
                   Clock::time_point Start) {
  std::string Error;
  std::optional<ModelBundle> Swapped =
      loadBundleFile(Config.SwapBundle, &Error);
  if (!Swapped) {
    State.recordError("swap bundle unloadable: " + Error);
    return;
  }
  std::string Expected = bundleChecksumHex(*Swapped);

  auto Halfway = Start + (Config.End - Start) / 2;
  std::this_thread::sleep_until(Halfway);

  // saveBundleFile publishes atomically (tmp + rename), so the watching
  // workers see either the old complete bundle or the new one.
  if (!saveBundleFile(*Swapped, Config.SwapTarget, &Error)) {
    State.recordError("could not publish the swap bundle: " + Error);
    return;
  }

  // The fleet must converge before the soak ends (plus a short grace
  // period so slow reload polls are not a spurious failure).
  auto Deadline = Config.End + std::chrono::seconds(10);
  while (Clock::now() < Deadline) {
    if (fleetServesChecksum(Config.Address, Expected)) {
      State.BundleSwaps.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  State.recordError("fleet never converged on the swapped bundle");
}

int runSoak(SoakConfig Config, const std::string &BenchName,
            bool BenchAppend) {
  // Byte-identity reference (optional): one serial pass against a direct
  // worker. Skipped when a mid-run swap is scheduled — the bytes then
  // legitimately change under the clients' feet, so each response is
  // instead validated as a well-formed ok response.
  std::vector<std::string> Reference;
  if (!Config.Reference.empty() && Config.SwapBundle.empty()) {
    ServeClient Client;
    std::string Error;
    if (!Client.connectWithRetry(Config.Reference, 2000, &Error)) {
      std::fprintf(stderr, "loadgen_serve: reference: %s\n", Error.c_str());
      return 1;
    }
    for (const std::string &Text : Config.LoopTexts) {
      WireRequest Request;
      Request.TheOp = WireRequest::Op::Predict;
      Request.LoopText = Text;
      Request.WantScores = Config.WantScores;
      Request.DeadlineMs = Config.DeadlineMs;
      std::optional<std::string> Line = Client.request(Request, &Error);
      if (!Line) {
        std::fprintf(stderr, "loadgen_serve: reference pass: %s\n",
                     Error.c_str());
        return 1;
      }
      Reference.push_back(*Line);
    }
  }

  SoakState State;
  auto Start = Clock::now();
  Config.End = Start + std::chrono::seconds(Config.DurationS);

  std::vector<std::thread> Threads;
  for (int64_t C = 0; C < Config.Steady; ++C)
    Threads.emplace_back([&, C] {
      steadyClient(Config, State, Reference, static_cast<size_t>(C), 0);
    });
  for (int64_t C = 0; C < Config.Reconnectors; ++C)
    Threads.emplace_back([&, C] {
      steadyClient(Config, State, Reference, static_cast<size_t>(C), 5);
    });
  for (int64_t C = 0; C < Config.SlowReaders; ++C)
    Threads.emplace_back([&] { slowReaderClient(Config, State); });
  for (int64_t C = 0; C < Config.Stallers; ++C)
    Threads.emplace_back([&] { stallerClient(Config, State); });
  for (int64_t C = 0; C < Config.Oversized; ++C)
    Threads.emplace_back([&] { oversizedClient(Config, State); });
  if (!Config.SwapBundle.empty())
    Threads.emplace_back([&] { bundleSwapper(Config, State, Start); });
  for (std::thread &T : Threads)
    T.join();
  double WallS =
      std::chrono::duration<double>(Clock::now() - Start).count();

  std::sort(State.LatenciesMs.begin(), State.LatenciesMs.end());
  uint64_t Completed = State.Completed.load();
  uint64_t Errors = State.Errors.load();
  if (!Config.SwapBundle.empty() && State.BundleSwaps.load() == 0)
    ++Errors; // recordError already captured the reason.
  bool Matches = State.Mismatches.load() == 0;
  int64_t TotalClients = Config.Steady + Config.Reconnectors +
                         Config.SlowReaders + Config.Stallers +
                         Config.Oversized;

  char RowText[1024];
  std::snprintf(
      RowText, sizeof(RowText),
      "{\"experiment\": \"serve_soak\", \"mode\": \"%s\", "
      "\"duration_s\": %.1f, \"clients\": %lld, \"completed\": %llu, "
      "\"errors\": %llu, \"reconnects\": %llu, \"expected_closes\": %llu, "
      "\"oversized_rejects\": %llu, \"bundle_swaps\": %llu, "
      "\"throughput_rps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"p999_ms\": %.3f, \"matches_reference\": %s}",
      Config.Label.c_str(), WallS,
      static_cast<long long>(TotalClients),
      static_cast<unsigned long long>(Completed),
      static_cast<unsigned long long>(Errors),
      static_cast<unsigned long long>(State.Reconnects.load()),
      static_cast<unsigned long long>(State.ExpectedCloses.load()),
      static_cast<unsigned long long>(State.OversizedRejects.load()),
      static_cast<unsigned long long>(State.BundleSwaps.load()),
      WallS > 0 ? static_cast<double>(Completed) / WallS : 0.0,
      percentile(State.LatenciesMs, 0.50),
      percentile(State.LatenciesMs, 0.99),
      percentile(State.LatenciesMs, 0.999), Matches ? "true" : "false");
  std::printf("%s\n", RowText);

  if (!BenchName.empty()) {
    BenchJsonWriter Writer(BenchName, BenchAppend);
    Writer.row(RowText);
    if (!Writer.flush()) {
      std::fprintf(stderr, "loadgen_serve: cannot write %s\n",
                   Writer.path().c_str());
      return 1;
    }
    std::fprintf(stderr, "loadgen_serve: row %s to %s\n",
                 BenchAppend ? "appended" : "written",
                 Writer.path().c_str());
  }

  if (Errors != 0) {
    std::lock_guard<std::mutex> Lock(State.Mutex);
    std::fprintf(stderr, "loadgen_serve: soak saw %llu error(s); first: %s\n",
                 static_cast<unsigned long long>(Errors),
                 State.FirstError.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("loadgen_serve",
                "Closed-loop load generator for metaopt-serve: N "
                "concurrent clients,\nthroughput + latency percentiles "
                "as a JSON row, with byte-identity checks.\n--soak runs "
                "a sustained mixed workload (reconnects, slow readers,\n"
                "stallers, oversized frames, optional mid-run bundle "
                "hot-swap).");
  Cli.option("socket", "addr",
             "daemon address: unix socket path or host:port (required)");
  Cli.option("clients", "n", "concurrent client connections (default: 32)");
  Cli.option("requests", "n", "requests per client (default: 50)");
  Cli.flag("scores", "request per-factor scores");
  Cli.option("deadline-ms", "ms", "per-request deadline (default: none)");
  Cli.flag("soak", "sustained mixed-workload mode (serve_soak row)");
  Cli.option("duration-s", "s", "soak wall-clock duration (default: 10)");
  Cli.option("label", "name", "soak row \"mode\" label (default: steady)");
  Cli.option("reference", "addr",
             "direct worker for the soak byte-identity reference");
  Cli.option("reconnectors", "n", "soak clients that reconnect (default: 0)");
  Cli.option("slow-readers", "n",
             "soak clients that dribble reads (default: 0)");
  Cli.option("stallers", "n",
             "soak clients that park partial frames (default: 0)");
  Cli.option("oversized", "n",
             "soak clients that send oversized lines (default: 0)");
  Cli.option("oversized-bytes", "n",
             "size of an oversized line (default: 1 MiB + 1 KiB)");
  Cli.option("swap-bundle", "file", "bundle to hot-swap in mid-soak");
  Cli.option("swap-target", "path", "live bundle path the fleet watches");
  Cli.option("bench", "name",
             "also write the soak row to BENCH_<name>.json");
  Cli.flag("bench-append", "append to the bench file instead of rewriting");
  Cli.positionalHelp("[<file.loop> ...]",
                     "loop files to cycle through (default: built-ins)");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  std::string SocketPath = Cli.getString("socket");
  if (SocketPath.empty()) {
    std::fprintf(stderr, "loadgen_serve: --socket is required\n%s",
                 Cli.usage().c_str());
    return 2;
  }
  int64_t Clients = Cli.getInt("clients", 32);
  int64_t Requests = Cli.getInt("requests", 50);
  int64_t DeadlineMs = Cli.getInt("deadline-ms", 0);
  if (Clients < 1 || Requests < 1 || DeadlineMs < 0) {
    std::fprintf(stderr, "loadgen_serve: bad --clients/--requests value\n");
    return 2;
  }
  bool WantScores = Cli.has("scores");

  std::vector<std::string> LoopTexts;
  for (const std::string &File : Cli.positional()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "loadgen_serve: cannot open '%s'\n",
                   File.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    LoopTexts.push_back(Buffer.str());
  }
  if (LoopTexts.empty())
    for (const char *Text : BuiltinLoops)
      LoopTexts.emplace_back(Text);

  if (Cli.has("soak")) {
    SoakConfig Config;
    Config.Address = SocketPath;
    Config.Reference = Cli.getString("reference");
    Config.LoopTexts = LoopTexts;
    Config.WantScores = WantScores;
    Config.DeadlineMs = DeadlineMs;
    Config.DurationS = Cli.getInt("duration-s", 10);
    Config.Steady = Cli.has("clients") ? Clients : 4;
    Config.Reconnectors = Cli.getInt("reconnectors", 0);
    Config.SlowReaders = Cli.getInt("slow-readers", 0);
    Config.Stallers = Cli.getInt("stallers", 0);
    Config.Oversized = Cli.getInt("oversized", 0);
    Config.OversizedBytes =
        Cli.getInt("oversized-bytes", Config.OversizedBytes);
    Config.SwapBundle = Cli.getString("swap-bundle");
    Config.SwapTarget = Cli.getString("swap-target");
    Config.Label = Cli.has("label") ? Cli.getString("label") : "steady";
    if (Config.DurationS < 1 || Config.Steady < 0 ||
        Config.Reconnectors < 0 || Config.SlowReaders < 0 ||
        Config.Stallers < 0 || Config.Oversized < 0 ||
        Config.OversizedBytes < 2) {
      std::fprintf(stderr, "loadgen_serve: bad soak tuning\n");
      return 2;
    }
    if (Config.SwapBundle.empty() != Config.SwapTarget.empty()) {
      std::fprintf(stderr, "loadgen_serve: --swap-bundle and --swap-target "
                           "go together\n");
      return 2;
    }
    if (Config.Steady + Config.Reconnectors + Config.SlowReaders +
            Config.Stallers + Config.Oversized <
        1) {
      std::fprintf(stderr, "loadgen_serve: soak needs at least one client\n");
      return 2;
    }
    return runSoak(std::move(Config), Cli.getString("bench"),
                   Cli.has("bench-append"));
  }

  auto RequestFor = [&](size_t Index) {
    WireRequest Request;
    Request.TheOp = WireRequest::Op::Predict;
    Request.LoopText = LoopTexts[Index % LoopTexts.size()];
    Request.WantScores = WantScores;
    Request.DeadlineMs = DeadlineMs;
    return Request;
  };

  // Serial reference pass: one client, one request per distinct loop.
  // Every concurrent response must match these bytes exactly.
  std::vector<std::string> Reference(LoopTexts.size());
  {
    ServeClient Client;
    std::string Error;
    if (!Client.connectWithRetry(SocketPath, 2000, &Error)) {
      std::fprintf(stderr, "loadgen_serve: %s\n", Error.c_str());
      return 1;
    }
    for (size_t I = 0; I < LoopTexts.size(); ++I) {
      std::optional<std::string> Line =
          Client.request(RequestFor(I), &Error);
      if (!Line) {
        std::fprintf(stderr, "loadgen_serve: reference pass: %s\n",
                     Error.c_str());
        return 1;
      }
      Reference[I] = *Line;
    }
  }

  std::vector<ClientResult> Results(static_cast<size_t>(Clients));
  std::vector<std::thread> Threads;
  auto Start = std::chrono::steady_clock::now();
  for (int64_t C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      ClientResult &Result = Results[static_cast<size_t>(C)];
      ServeClient Client;
      std::string Error;
      if (!Client.connectWithRetry(SocketPath, 2000, &Error)) {
        Result.Errors = static_cast<size_t>(Requests);
        Result.FirstError = Error;
        return;
      }
      for (int64_t R = 0; R < Requests; ++R) {
        size_t LoopIndex = static_cast<size_t>(R) % LoopTexts.size();
        auto T0 = std::chrono::steady_clock::now();
        std::optional<std::string> Line =
            Client.request(RequestFor(LoopIndex), &Error);
        auto T1 = std::chrono::steady_clock::now();
        if (!Line) {
          ++Result.Errors;
          if (Result.FirstError.empty())
            Result.FirstError = Error;
          break; // The connection is gone; stop this client.
        }
        Result.LatenciesMs.push_back(
            std::chrono::duration<double, std::milli>(T1 - T0).count());
        if (*Line != Reference[LoopIndex]) {
          ++Result.Errors;
          if (Result.FirstError.empty())
            Result.FirstError =
                "response diverged from the serial reference: " + *Line;
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  std::vector<double> All;
  size_t Errors = 0;
  std::string FirstError;
  for (const ClientResult &Result : Results) {
    All.insert(All.end(), Result.LatenciesMs.begin(),
               Result.LatenciesMs.end());
    Errors += Result.Errors;
    if (FirstError.empty())
      FirstError = Result.FirstError;
  }
  std::sort(All.begin(), All.end());
  double Mean = 0;
  for (double L : All)
    Mean += L;
  if (!All.empty())
    Mean /= static_cast<double>(All.size());

  std::printf(
      "{\"bench\":\"loadgen_serve\",\"clients\":%lld,"
      "\"requests_per_client\":%lld,\"completed\":%zu,\"errors\":%zu,"
      "\"wall_ms\":%.1f,\"throughput_rps\":%.1f,\"latency_ms\":{"
      "\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f},"
      "\"consistent\":%s}\n",
      static_cast<long long>(Clients), static_cast<long long>(Requests),
      All.size(), Errors, WallMs,
      WallMs > 0 ? 1000.0 * static_cast<double>(All.size()) / WallMs : 0.0,
      Mean, percentile(All, 0.50), percentile(All, 0.95),
      percentile(All, 0.99), Errors == 0 ? "true" : "false");
  if (Errors != 0) {
    std::fprintf(stderr, "loadgen_serve: %zu errors; first: %s\n", Errors,
                 FirstError.c_str());
    return 1;
  }
  return 0;
}
