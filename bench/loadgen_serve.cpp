//===- bench/loadgen_serve.cpp - Closed-loop serving load generator -------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Drives a running metaopt-serve daemon with N concurrent closed-loop
// clients (each sends a request, waits for the response, sends the next)
// and reports throughput and client-observed latency percentiles as one
// JSON row — the serving counterpart of the microbench_* harnesses.
//
// The generator also enforces the serving correctness contract while it
// measures: every response to the same request text must be byte-identical
// across clients, iterations, and batch compositions. Any divergence makes
// the run fail (exit 1), so a throughput number from this harness is also
// a determinism certificate.
//
// Usage:
//   loadgen_serve --socket=<path> [--clients=32] [--requests=50]
//                 [--scores] [--deadline-ms=<ms>] [<file.loop> ...]
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "support/CommandLine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace metaopt;

namespace {

// Distinct loop shapes so batches mix cheap and expensive requests.
const char *BuiltinLoops[] = {
    R"(loop "loadgen.dot" lang=C nest=1 trip=2048 rtrip=2048 {
  phi %f_acc = [%f_acc.init, %f_acc.next]
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_acc.next = fma %f_x, %f_y, %f_acc
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
    R"(loop "loadgen.scan" lang=C nest=1 trip=-1 rtrip=777 {
  %i_v = load @0[stride=4, offset=0, size=4]
  %p_hit = icmp %i_v, %i_needle
  exit_if %p_hit prob=0.002
  %i_t = iadd %i_v, %i_bias
  store %i_t, @1[stride=4, offset=0, size=4]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
    R"(loop "loadgen.saxpy" lang=Fortran nest=1 trip=512 rtrip=512 {
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_ax = fmul %f_x, %f_a
  %f_s = fadd %f_ax, %f_y
  store %f_s, @1[stride=8, offset=0, size=8]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
    R"(loop "loadgen.copy" lang=C nest=2 trip=64 rtrip=64 {
  %i_v = load @0[stride=4, offset=0, size=4]
  store %i_v, @1[stride=4, offset=0, size=4]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
})",
};

struct ClientResult {
  std::vector<double> LatenciesMs;
  /// First response seen per request index; compared across clients.
  std::vector<std::string> Responses;
  size_t Errors = 0;
  std::string FirstError;
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("loadgen_serve",
                "Closed-loop load generator for metaopt-serve: N "
                "concurrent clients,\nthroughput + latency percentiles "
                "as a JSON row, with byte-identity checks.");
  Cli.option("socket", "path", "daemon socket to connect to (required)");
  Cli.option("clients", "n", "concurrent client connections (default: 32)");
  Cli.option("requests", "n", "requests per client (default: 50)");
  Cli.flag("scores", "request per-factor scores");
  Cli.option("deadline-ms", "ms", "per-request deadline (default: none)");
  Cli.positionalHelp("[<file.loop> ...]",
                     "loop files to cycle through (default: built-ins)");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  std::string SocketPath = Cli.getString("socket");
  if (SocketPath.empty()) {
    std::fprintf(stderr, "loadgen_serve: --socket is required\n%s",
                 Cli.usage().c_str());
    return 2;
  }
  int64_t Clients = Cli.getInt("clients", 32);
  int64_t Requests = Cli.getInt("requests", 50);
  int64_t DeadlineMs = Cli.getInt("deadline-ms", 0);
  if (Clients < 1 || Requests < 1 || DeadlineMs < 0) {
    std::fprintf(stderr, "loadgen_serve: bad --clients/--requests value\n");
    return 2;
  }
  bool WantScores = Cli.has("scores");

  std::vector<std::string> LoopTexts;
  for (const std::string &File : Cli.positional()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "loadgen_serve: cannot open '%s'\n",
                   File.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    LoopTexts.push_back(Buffer.str());
  }
  if (LoopTexts.empty())
    for (const char *Text : BuiltinLoops)
      LoopTexts.emplace_back(Text);

  auto RequestFor = [&](size_t Index) {
    WireRequest Request;
    Request.TheOp = WireRequest::Op::Predict;
    Request.LoopText = LoopTexts[Index % LoopTexts.size()];
    Request.WantScores = WantScores;
    Request.DeadlineMs = DeadlineMs;
    return Request;
  };

  // Serial reference pass: one client, one request per distinct loop.
  // Every concurrent response must match these bytes exactly.
  std::vector<std::string> Reference(LoopTexts.size());
  {
    ServeClient Client;
    std::string Error;
    if (!Client.connectWithRetry(SocketPath, 2000, &Error)) {
      std::fprintf(stderr, "loadgen_serve: %s\n", Error.c_str());
      return 1;
    }
    for (size_t I = 0; I < LoopTexts.size(); ++I) {
      std::optional<std::string> Line =
          Client.request(RequestFor(I), &Error);
      if (!Line) {
        std::fprintf(stderr, "loadgen_serve: reference pass: %s\n",
                     Error.c_str());
        return 1;
      }
      Reference[I] = *Line;
    }
  }

  std::vector<ClientResult> Results(static_cast<size_t>(Clients));
  std::vector<std::thread> Threads;
  auto Start = std::chrono::steady_clock::now();
  for (int64_t C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      ClientResult &Result = Results[static_cast<size_t>(C)];
      ServeClient Client;
      std::string Error;
      if (!Client.connectWithRetry(SocketPath, 2000, &Error)) {
        Result.Errors = static_cast<size_t>(Requests);
        Result.FirstError = Error;
        return;
      }
      for (int64_t R = 0; R < Requests; ++R) {
        size_t LoopIndex = static_cast<size_t>(R) % LoopTexts.size();
        auto T0 = std::chrono::steady_clock::now();
        std::optional<std::string> Line =
            Client.request(RequestFor(LoopIndex), &Error);
        auto T1 = std::chrono::steady_clock::now();
        if (!Line) {
          ++Result.Errors;
          if (Result.FirstError.empty())
            Result.FirstError = Error;
          break; // The connection is gone; stop this client.
        }
        Result.LatenciesMs.push_back(
            std::chrono::duration<double, std::milli>(T1 - T0).count());
        if (*Line != Reference[LoopIndex]) {
          ++Result.Errors;
          if (Result.FirstError.empty())
            Result.FirstError =
                "response diverged from the serial reference: " + *Line;
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  std::vector<double> All;
  size_t Errors = 0;
  std::string FirstError;
  for (const ClientResult &Result : Results) {
    All.insert(All.end(), Result.LatenciesMs.begin(),
               Result.LatenciesMs.end());
    Errors += Result.Errors;
    if (FirstError.empty())
      FirstError = Result.FirstError;
  }
  std::sort(All.begin(), All.end());
  double Mean = 0;
  for (double L : All)
    Mean += L;
  if (!All.empty())
    Mean /= static_cast<double>(All.size());

  std::printf(
      "{\"bench\":\"loadgen_serve\",\"clients\":%lld,"
      "\"requests_per_client\":%lld,\"completed\":%zu,\"errors\":%zu,"
      "\"wall_ms\":%.1f,\"throughput_rps\":%.1f,\"latency_ms\":{"
      "\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f},"
      "\"consistent\":%s}\n",
      static_cast<long long>(Clients), static_cast<long long>(Requests),
      All.size(), Errors, WallMs,
      WallMs > 0 ? 1000.0 * static_cast<double>(All.size()) / WallMs : 0.0,
      Mean, percentile(All, 0.50), percentile(All, 0.95),
      percentile(All, 0.99), Errors == 0 ? "true" : "false");
  if (Errors != 0) {
    std::fprintf(stderr, "loadgen_serve: %zu errors; first: %s\n", Errors,
                 FirstError.c_str());
    return 1;
  }
  return 0;
}
