//===- bench/ablation_context.cpp - Hidden program context ----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Why does no classifier reach 100%? Because the best unroll factor
// depends on program context the 38 *static* features cannot see: the
// loop's effective i-cache share, the registers the enclosing function
// leaves it, its data-cache behaviour. The paper hits the same wall at
// 65% ("we assume that the optimal unroll factor of a particular loop
// does not depend on [context]...").
//
// This ablation quantifies the wall in our substrate: relabeling the
// corpus with all program context pinned to one fixed value removes the
// hidden variance, and LOOCV accuracy rises sharply - evidence that the
// residual error is context, not the learners.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/driver/LabelCollector.h"
#include "core/ml/CrossValidation.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: hidden program context",
                   "accuracy with real vs pinned per-loop context");

  CorpusOptions CorpusOpts;
  if (Args.has("quick")) {
    CorpusOpts.MinLoopsPerBenchmark = 6;
    CorpusOpts.MaxLoopsPerBenchmark = 10;
  } else {
    CorpusOpts.MinLoopsPerBenchmark = 12;
    CorpusOpts.MaxLoopsPerBenchmark = 18;
  }
  std::vector<Benchmark> Corpus = buildCorpus(CorpusOpts);
  LabelingOptions Labeling;
  FeatureSet Features = paperReducedFeatureSet();

  auto Evaluate = [&](const std::vector<Benchmark> &Suite) {
    Dataset Data = collectLabels(Suite, Labeling);
    NearNeighborClassifier Nn(Features, 0.3);
    double Accuracy = predictionAccuracy(Data, loocvPredictions(Nn, Data));
    return std::make_pair(Data.size(), Accuracy);
  };

  auto [RealSize, RealAccuracy] = Evaluate(Corpus);

  // Pin every loop's program context to one fixed environment.
  std::vector<Benchmark> Pinned = Corpus;
  SimContext Fixed; // The default context.
  for (Benchmark &Bench : Pinned)
    for (CorpusLoop &Entry : Bench.Loops)
      Entry.Ctx = Fixed;
  auto [PinnedSize, PinnedAccuracy] = Evaluate(Pinned);

  TablePrinter Table("Context vs accuracy (NN, LOOCV)");
  Table.addHeader({"corpus", "usable loops", "accuracy"});
  Table.addRow({"real per-loop context", std::to_string(RealSize),
                formatPercent(RealAccuracy, 1)});
  Table.addRow({"pinned (identical) context", std::to_string(PinnedSize),
                formatPercent(PinnedAccuracy, 1)});
  Table.print();

  std::printf("\nShape checks:\n");
  printComparison("removing hidden context raises accuracy",
                  "context caps the 65% ceiling",
                  PinnedAccuracy > RealAccuracy + 0.05 ? "yes" : "no");
  return 0;
}
