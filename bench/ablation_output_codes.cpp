//===- bench/ablation_output_codes.cpp - Output code ablation -------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Section 5.2: the paper transforms the 8-class problem into binary
// problems with identity output codes, decoding by Hamming distance, and
// notes that "error correcting codewords can provide better results by
// using more bits than necessary ... but for simplicity we do not use
// such encodings." This ablation tries exactly those variants.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: output codes",
                   "one-vs-rest vs error-correcting codes, Hamming vs "
                   "loss decoding (LS-SVM)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  Rng Subsampler(3);
  Dataset Data = Pipe->dataset(/*EnableSwp=*/false)
                     .subsample(static_cast<size_t>(
                                    Args.getInt("svm-cap", 1200)),
                                Subsampler);
  std::printf("evaluating on %zu loops\n\n", Data.size());
  FeatureSet Features = paperReducedFeatureSet();

  struct Variant {
    const char *Name;
    SvmOptions Options;
  };
  std::vector<Variant> Variants;
  {
    SvmOptions Base;
    Variants.push_back({"one-vs-rest, Hamming (paper)", Base});
    SvmOptions Loss = Base;
    Loss.Decode = SvmOptions::Decoding::Loss;
    Variants.push_back({"one-vs-rest, loss decoding", Loss});
    SvmOptions Ecoc = Base;
    Ecoc.CodeKind = SvmOptions::Code::RandomEcoc;
    Ecoc.EcocBits = 15;
    Variants.push_back({"random ECOC 15 bits, Hamming", Ecoc});
    SvmOptions EcocLoss = Ecoc;
    EcocLoss.Decode = SvmOptions::Decoding::Loss;
    Variants.push_back({"random ECOC 15 bits, loss", EcocLoss});
    SvmOptions Ecoc31 = Ecoc;
    Ecoc31.EcocBits = 31;
    Variants.push_back({"random ECOC 31 bits, Hamming", Ecoc31});
  }

  TablePrinter Table("Output code variants (LOOCV)");
  Table.addHeader({"variant", "bits", "accuracy", "top-2"});
  double PaperVariant = 0.0, BestEcoc = 0.0;
  for (const Variant &V : Variants) {
    SvmClassifier Svm(Features, V.Options);
    std::vector<unsigned> Pred = loocvPredictions(Svm, Data);
    double Accuracy = predictionAccuracy(Data, Pred);
    RankDistribution Rank = rankDistribution(Data, Pred);
    unsigned Bits = V.Options.CodeKind == SvmOptions::Code::OneVsRest
                        ? MaxUnrollFactor
                        : V.Options.EcocBits;
    Table.addRow({V.Name, std::to_string(Bits),
                  formatPercent(Accuracy, 1),
                  formatPercent(Rank.topTwoAccuracy(), 1)});
    if (V.Options.CodeKind == SvmOptions::Code::OneVsRest &&
        V.Options.Decode == SvmOptions::Decoding::Hamming)
      PaperVariant = Accuracy;
    if (V.Options.CodeKind == SvmOptions::Code::RandomEcoc)
      BestEcoc = std::max(BestEcoc, Accuracy);
  }
  Table.print();

  std::printf("\nShape checks:\n");
  printComparison("ECOC competitive with or better than one-vs-rest",
                  "\"can provide better results\"",
                  BestEcoc + 0.02 >= PaperVariant ? "yes" : "no");
  return 0;
}
