//===- bench/microbench_pipeline.cpp - Labeling scaling -------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Wall-clock cost of the pipeline's dominant step — empirical labeling,
// the step the paper spent ~a week of machine time on — printed as JSON
// rows (one object per line) so dashboards can ingest them directly; the
// same rows are also written to BENCH_pipeline.json at the repo root so
// successive runs leave a machine-readable perf trajectory.
//
// The labeling experiment compares two implementations of collectLabels:
//
//   mode="serial-reference"  PruneEquivalent off, one thread: every
//                            (loop, factor) runs the full simulateLoop
//                            pipeline. This is the semantics anchor.
//   mode="production"        PruneEquivalent on (class-shared compiled
//                            plans + the structural body cache,
//                            sim/SimCompile.h), at each requested thread
//                            count.
//
// speedup_vs_serial is production time over the serial reference, so it
// measures the *algorithmic* win (batching + dedup + compiled fast path)
// plus whatever thread scaling the host actually offers — each row
// carries hw_threads because on a single-hardware-thread container the
// pool cannot add anything and the trajectory would otherwise read as a
// scaling bug (the flat 1.00x/0.97x rows this bench used to report were
// exactly that: an honest pool measured on a 1-CPU host, presented as if
// the thread axis were the interesting one). Also re-verifies the
// determinism contract: every row must produce the byte-identical dataset
// CSV the serial reference produces, with or without the simulation cache
// (cache/SimCache.h).
//
// A second experiment exercises the content-addressed simulation cache on
// a repeated labeling sweep: an uncached baseline, a cold cached run
// (every simulation is a miss+insert), and a warm cached run (every
// simulation is a hit), each row carrying the cache's hit/miss/insert
// counters so the warm-cache speedup is measured, not asserted.
//
// Flags:
//   --full           label the whole 72-benchmark corpus (default: a
//                    reduced slice so the bench finishes quickly)
//   --swp            also time the software-pipelining configuration
//   --threads=<csv>  comma-separated thread counts (default "1,2,4,8")
//   --cache-dir=<d>  attach the persistent cache tier for the cache
//                    experiment (a second process run then starts warm)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cache/SimCache.h"
#include "concurrency/ThreadPool.h"
#include "core/driver/LabelCollector.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

/// Destination for the machine-readable BENCH_pipeline.json copy of every
/// row this bench prints; bound in main for the whole run.
BenchJsonWriter *RowSink = nullptr;

/// Prints one JSON row to stdout and records it for BENCH_pipeline.json.
void emitRow(const std::string &Row) {
  std::printf("%s\n", Row.c_str());
  std::fflush(stdout);
  if (RowSink)
    RowSink->row(Row);
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::vector<unsigned> parseThreadList(const std::string &Csv) {
  std::vector<unsigned> Threads;
  for (const std::string &Part : split(Csv, ',')) {
    int Value = std::atoi(Part.c_str());
    if (Value >= 1)
      Threads.push_back(static_cast<unsigned>(Value));
  }
  if (Threads.empty())
    Threads = {1, 2, 4, 8};
  return Threads;
}

/// One labeling sweep through a fresh cold cache; emits a labeling row.
/// Every row measures the same work from the same starting state, so the
/// serial-reference and production rows are directly comparable. Returns
/// the dataset CSV for the byte-identity check.
std::string labelingRow(const std::vector<Benchmark> &Corpus,
                        LabelingOptions &Options, const char *Mode,
                        unsigned Threads, bool Full, bool EnableSwp,
                        double RefSeconds, const std::string &RefCsv,
                        double *OutSeconds = nullptr) {
  ThreadPool::setGlobalThreads(Threads);
  SimCache RunCache;
  Options.Cache = &RunCache;
  auto Start = std::chrono::steady_clock::now();
  size_t TotalLoops = 0;
  Dataset Data = collectLabels(Corpus, Options, &TotalLoops);
  double Seconds = secondsSince(Start);
  if (OutSeconds)
    *OutSeconds = Seconds;

  std::string Csv = Data.toCsv();
  bool Deterministic = RefCsv.empty() || Csv == RefCsv;
  double Baseline = RefSeconds > 0.0 ? RefSeconds : Seconds;
  double Speedup = Seconds > 0.0 ? Baseline / Seconds : 1.0;
  SimCacheStats Stats = RunCache.stats();
  char Row[512];
  std::snprintf(Row, sizeof(Row),
                "{\"experiment\": \"labeling\", \"corpus\": \"%s\", "
                "\"swp\": %s, \"mode\": \"%s\", \"threads\": %u, "
                "\"hw_threads\": %u, \"loops\": %zu, \"usable\": %zu, "
                "\"seconds\": %.3f, \"speedup_vs_serial\": %.2f, "
                "\"csv_matches_serial\": %s, \"cache_hits\": %llu, "
                "\"cache_misses\": %llu, \"cache_inserts\": %llu}",
                Full ? "full" : "quick", EnableSwp ? "true" : "false", Mode,
                Threads, ThreadPool::defaultThreadCount(), TotalLoops,
                Data.size(), Seconds, Speedup,
                Deterministic ? "true" : "false",
                static_cast<unsigned long long>(Stats.Hits),
                static_cast<unsigned long long>(Stats.Misses),
                static_cast<unsigned long long>(Stats.Inserts));
  emitRow(Row);
  return Csv;
}

void benchLabeling(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                   const std::vector<unsigned> &ThreadCounts, bool Full) {
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;

  // Baseline: the unpruned per-(loop, factor) pipeline on one thread.
  Options.PruneEquivalent = false;
  double RefSeconds = 0.0;
  std::string RefCsv = labelingRow(Corpus, Options, "serial-reference",
                                   /*Threads=*/1, Full, EnableSwp,
                                   /*RefSeconds=*/0.0, "", &RefSeconds);

  // Production: batched class plans + compiled fast path, per thread
  // count. Byte-identity with the reference CSV is asserted per row.
  Options.PruneEquivalent = true;
  for (unsigned Threads : ThreadCounts)
    labelingRow(Corpus, Options, "production", Threads, Full, EnableSwp,
                RefSeconds, RefCsv);
}

/// The static labeling-space pruner (LabelingOptions::PruneEquivalent):
/// one sweep with pruning off and one with it on, each through a fresh
/// cold cache so both rows measure the same work. The pruned row carries
/// the equivalence-class structure and the simulation-count reduction;
/// both sweeps must produce the byte-identical dataset CSV.
void benchLabelingPrune(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                        bool Full) {
  ThreadPool::setGlobalThreads(ThreadPool::defaultThreadCount());
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;

  std::string ReferenceCsv;
  double UnprunedSeconds = 0.0;
  for (bool Pruned : {false, true}) {
    Options.PruneEquivalent = Pruned;
    SimCache RunCache;
    Options.Cache = &RunCache;
    LabelingStats Stats;
    auto Start = std::chrono::steady_clock::now();
    Dataset Data = collectLabels(Corpus, Options, nullptr, &Stats);
    double Seconds = secondsSince(Start);
    std::string Csv = Data.toCsv();
    if (!Pruned) {
      ReferenceCsv = Csv;
      UnprunedSeconds = Seconds;
    }
    double Speedup =
        UnprunedSeconds > 0.0 && Seconds > 0.0 ? UnprunedSeconds / Seconds
                                               : 1.0;
    char Row[512];
    std::snprintf(Row, sizeof(Row),
                  "{\"experiment\": \"labeling_prune\", \"corpus\": "
                  "\"%s\", \"swp\": %s, \"pruned\": %s, \"loops\": %zu, "
                  "\"classes\": %zu, \"sims_run\": %zu, "
                  "\"sims_pruned\": %zu, \"pruning_rate\": %.4f, "
                  "\"seconds\": %.3f, \"speedup_vs_unpruned\": %.2f, "
                  "\"csv_matches_unpruned\": %s}",
                  Full ? "full" : "quick", EnableSwp ? "true" : "false",
                  Pruned ? "true" : "false", Stats.TotalLoops,
                  Stats.EquivalenceClasses, Stats.SimulationsRun,
                  Stats.SimulationsPruned, Stats.pruningRate(), Seconds,
                  Speedup, Csv == ReferenceCsv ? "true" : "false");
    emitRow(Row);
  }
}

/// One labeling sweep with \p Options; prints a labeling_cache JSON row.
/// Returns the dataset CSV so phases can be compared byte-for-byte.
std::string cachePhase(const std::vector<Benchmark> &Corpus,
                       LabelingOptions &Options, const char *Phase,
                       SimCache *Cache, double *InOutColdSeconds,
                       const std::string &ReferenceCsv) {
  // The warm-start count is set at cache construction; read it before
  // resetting the per-phase counters.
  uint64_t PersistentLoaded = Cache ? Cache->stats().PersistentLoaded : 0;
  if (Cache)
    Cache->resetStats();
  Options.Cache = Cache;
  auto Start = std::chrono::steady_clock::now();
  Dataset Data = collectLabels(Corpus, Options);
  double Seconds = secondsSince(Start);
  if (std::string(Phase) == "cold")
    *InOutColdSeconds = Seconds;
  double SpeedupVsCold =
      *InOutColdSeconds > 0.0 && Seconds > 0.0 ? *InOutColdSeconds / Seconds
                                               : 1.0;
  SimCacheStats Stats = Cache ? Cache->stats() : SimCacheStats{};
  std::string Csv = Data.toCsv();
  bool Matches = ReferenceCsv.empty() || Csv == ReferenceCsv;
  char Row[512];
  std::snprintf(Row, sizeof(Row),
                "{\"experiment\": \"labeling_cache\", \"phase\": \"%s\", "
                "\"seconds\": %.3f, \"speedup_vs_cold\": %.2f, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                "\"cache_inserts\": %llu, \"cache_entries\": %zu, "
                "\"persistent_loaded\": %llu, \"csv_matches_uncached\": %s}",
                Phase, Seconds, SpeedupVsCold,
                static_cast<unsigned long long>(Stats.Hits),
                static_cast<unsigned long long>(Stats.Misses),
                static_cast<unsigned long long>(Stats.Inserts),
                Cache ? Cache->size() : 0,
                static_cast<unsigned long long>(PersistentLoaded),
                Matches ? "true" : "false");
  emitRow(Row);
  return Csv;
}

/// The repeated labeling sweep: uncached baseline, cold cached run, warm
/// cached run. The warm run's speedup_vs_cold is the cache's measured
/// payoff; every phase must produce the byte-identical dataset CSV.
void benchLabelingCache(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                        const std::string &CacheDir) {
  ThreadPool::setGlobalThreads(ThreadPool::defaultThreadCount());
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;

  SimCacheConfig Disabled;
  Disabled.Enabled = false;
  SimCache NoCache(Disabled);

  SimCacheConfig Enabled;
  Enabled.PersistentDir = CacheDir;
  SimCache Cache(Enabled);

  double ColdSeconds = 0.0;
  std::string Reference =
      cachePhase(Corpus, Options, "uncached", &NoCache, &ColdSeconds, "");
  cachePhase(Corpus, Options, "cold", &Cache, &ColdSeconds, Reference);
  cachePhase(Corpus, Options, "warm", &Cache, &ColdSeconds, Reference);
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  BenchJsonWriter Json("pipeline");
  RowSink = &Json;
  bool Full = Args.has("full");
  std::vector<unsigned> ThreadCounts =
      parseThreadList(Args.getString("threads", "1,2,4,8"));

  CorpusOptions CorpusOpts;
  if (!Full) {
    CorpusOpts.MinLoopsPerBenchmark = 4;
    CorpusOpts.MaxLoopsPerBenchmark = 6;
  }
  std::vector<Benchmark> Corpus = buildCorpus(CorpusOpts);

  benchLabeling(Corpus, /*EnableSwp=*/false, ThreadCounts, Full);
  if (Args.has("swp"))
    benchLabeling(Corpus, /*EnableSwp=*/true, ThreadCounts, Full);

  benchLabelingPrune(Corpus, /*EnableSwp=*/false, Full);
  if (Args.has("swp"))
    benchLabelingPrune(Corpus, /*EnableSwp=*/true, Full);

  benchLabelingCache(Corpus, /*EnableSwp=*/false,
                     Args.getString("cache-dir", ""));
  if (Args.has("swp"))
    benchLabelingCache(Corpus, /*EnableSwp=*/true,
                       Args.getString("cache-dir", ""));

  if (!Json.flush())
    std::fprintf(stderr, "microbench_pipeline: cannot write %s\n",
                 Json.path().c_str());
  return 0;
}
