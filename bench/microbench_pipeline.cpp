//===- bench/microbench_pipeline.cpp - Labeling scaling -------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Wall-clock scaling of the pipeline's dominant cost — empirical labeling,
// the step the paper spent ~a week of machine time on — across the
// work-stealing pool at 1/2/4/8 threads, printed as JSON rows (one object
// per line) so dashboards can ingest them directly; the same rows are
// also written to BENCH_pipeline.json at the repo root so successive
// runs leave a machine-readable perf trajectory. Also re-verifies the
// determinism contract: every thread count must produce the byte-identical
// dataset CSV the serial run produces, with or without the simulation
// cache (cache/SimCache.h).
//
// A second experiment exercises the content-addressed simulation cache on
// a repeated labeling sweep: an uncached baseline, a cold cached run
// (every simulation is a miss+insert), and a warm cached run (every
// simulation is a hit), each row carrying the cache's hit/miss/insert
// counters so the warm-cache speedup is measured, not asserted.
//
// Flags:
//   --full           label the whole 72-benchmark corpus (default: a
//                    reduced slice so the bench finishes quickly)
//   --swp            also time the software-pipelining configuration
//   --threads=<csv>  comma-separated thread counts (default "1,2,4,8")
//   --cache-dir=<d>  attach the persistent cache tier for the cache
//                    experiment (a second process run then starts warm)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "cache/SimCache.h"
#include "concurrency/ThreadPool.h"
#include "core/driver/LabelCollector.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

/// Destination for the machine-readable BENCH_pipeline.json copy of every
/// row this bench prints; bound in main for the whole run.
BenchJsonWriter *RowSink = nullptr;

/// Prints one JSON row to stdout and records it for BENCH_pipeline.json.
void emitRow(const std::string &Row) {
  std::printf("%s\n", Row.c_str());
  std::fflush(stdout);
  if (RowSink)
    RowSink->row(Row);
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::vector<unsigned> parseThreadList(const std::string &Csv) {
  std::vector<unsigned> Threads;
  for (const std::string &Part : split(Csv, ',')) {
    int Value = std::atoi(Part.c_str());
    if (Value >= 1)
      Threads.push_back(static_cast<unsigned>(Value));
  }
  if (Threads.empty())
    Threads = {1, 2, 4, 8};
  return Threads;
}

void benchLabeling(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                   const std::vector<unsigned> &ThreadCounts, bool Full) {
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;

  // The first requested thread count is the baseline for both the speedup
  // column and the determinism check, so the check is meaningful even when
  // 1 is not in the list. Each run gets its own cold cache so every row
  // measures the same work (simulate + insert) and the scaling numbers
  // stay comparable across thread counts.
  double BaselineSeconds = 0.0;
  std::string BaselineCsv;
  for (unsigned Threads : ThreadCounts) {
    ThreadPool::setGlobalThreads(Threads);
    SimCache RunCache;
    Options.Cache = &RunCache;
    auto Start = std::chrono::steady_clock::now();
    size_t TotalLoops = 0;
    Dataset Data = collectLabels(Corpus, Options, &TotalLoops);
    double Seconds = secondsSince(Start);

    std::string Csv = Data.toCsv();
    if (BaselineCsv.empty()) {
      BaselineSeconds = Seconds;
      BaselineCsv = Csv;
    }
    bool Deterministic = Csv == BaselineCsv;
    double Speedup = BaselineSeconds > 0.0 ? BaselineSeconds / Seconds : 1.0;
    SimCacheStats Stats = RunCache.stats();
    char Row[512];
    std::snprintf(Row, sizeof(Row),
                  "{\"experiment\": \"labeling\", \"corpus\": \"%s\", "
                  "\"swp\": %s, \"threads\": %u, \"loops\": %zu, "
                  "\"usable\": %zu, \"seconds\": %.3f, "
                  "\"speedup_vs_serial\": %.2f, \"csv_matches_serial\": %s, "
                  "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                  "\"cache_inserts\": %llu}",
                  Full ? "full" : "quick", EnableSwp ? "true" : "false",
                  Threads, TotalLoops, Data.size(), Seconds, Speedup,
                  Deterministic ? "true" : "false",
                  static_cast<unsigned long long>(Stats.Hits),
                  static_cast<unsigned long long>(Stats.Misses),
                  static_cast<unsigned long long>(Stats.Inserts));
    emitRow(Row);
  }
}

/// The static labeling-space pruner (LabelingOptions::PruneEquivalent):
/// one sweep with pruning off and one with it on, each through a fresh
/// cold cache so both rows measure the same work. The pruned row carries
/// the equivalence-class structure and the simulation-count reduction;
/// both sweeps must produce the byte-identical dataset CSV.
void benchLabelingPrune(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                        bool Full) {
  ThreadPool::setGlobalThreads(ThreadPool::defaultThreadCount());
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;

  std::string ReferenceCsv;
  double UnprunedSeconds = 0.0;
  for (bool Pruned : {false, true}) {
    Options.PruneEquivalent = Pruned;
    SimCache RunCache;
    Options.Cache = &RunCache;
    LabelingStats Stats;
    auto Start = std::chrono::steady_clock::now();
    Dataset Data = collectLabels(Corpus, Options, nullptr, &Stats);
    double Seconds = secondsSince(Start);
    std::string Csv = Data.toCsv();
    if (!Pruned) {
      ReferenceCsv = Csv;
      UnprunedSeconds = Seconds;
    }
    double Speedup =
        UnprunedSeconds > 0.0 && Seconds > 0.0 ? UnprunedSeconds / Seconds
                                               : 1.0;
    char Row[512];
    std::snprintf(Row, sizeof(Row),
                  "{\"experiment\": \"labeling_prune\", \"corpus\": "
                  "\"%s\", \"swp\": %s, \"pruned\": %s, \"loops\": %zu, "
                  "\"classes\": %zu, \"sims_run\": %zu, "
                  "\"sims_pruned\": %zu, \"pruning_rate\": %.4f, "
                  "\"seconds\": %.3f, \"speedup_vs_unpruned\": %.2f, "
                  "\"csv_matches_unpruned\": %s}",
                  Full ? "full" : "quick", EnableSwp ? "true" : "false",
                  Pruned ? "true" : "false", Stats.TotalLoops,
                  Stats.EquivalenceClasses, Stats.SimulationsRun,
                  Stats.SimulationsPruned, Stats.pruningRate(), Seconds,
                  Speedup, Csv == ReferenceCsv ? "true" : "false");
    emitRow(Row);
  }
}

/// One labeling sweep with \p Options; prints a labeling_cache JSON row.
/// Returns the dataset CSV so phases can be compared byte-for-byte.
std::string cachePhase(const std::vector<Benchmark> &Corpus,
                       LabelingOptions &Options, const char *Phase,
                       SimCache *Cache, double *InOutColdSeconds,
                       const std::string &ReferenceCsv) {
  // The warm-start count is set at cache construction; read it before
  // resetting the per-phase counters.
  uint64_t PersistentLoaded = Cache ? Cache->stats().PersistentLoaded : 0;
  if (Cache)
    Cache->resetStats();
  Options.Cache = Cache;
  auto Start = std::chrono::steady_clock::now();
  Dataset Data = collectLabels(Corpus, Options);
  double Seconds = secondsSince(Start);
  if (std::string(Phase) == "cold")
    *InOutColdSeconds = Seconds;
  double SpeedupVsCold =
      *InOutColdSeconds > 0.0 && Seconds > 0.0 ? *InOutColdSeconds / Seconds
                                               : 1.0;
  SimCacheStats Stats = Cache ? Cache->stats() : SimCacheStats{};
  std::string Csv = Data.toCsv();
  bool Matches = ReferenceCsv.empty() || Csv == ReferenceCsv;
  char Row[512];
  std::snprintf(Row, sizeof(Row),
                "{\"experiment\": \"labeling_cache\", \"phase\": \"%s\", "
                "\"seconds\": %.3f, \"speedup_vs_cold\": %.2f, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                "\"cache_inserts\": %llu, \"cache_entries\": %zu, "
                "\"persistent_loaded\": %llu, \"csv_matches_uncached\": %s}",
                Phase, Seconds, SpeedupVsCold,
                static_cast<unsigned long long>(Stats.Hits),
                static_cast<unsigned long long>(Stats.Misses),
                static_cast<unsigned long long>(Stats.Inserts),
                Cache ? Cache->size() : 0,
                static_cast<unsigned long long>(PersistentLoaded),
                Matches ? "true" : "false");
  emitRow(Row);
  return Csv;
}

/// The repeated labeling sweep: uncached baseline, cold cached run, warm
/// cached run. The warm run's speedup_vs_cold is the cache's measured
/// payoff; every phase must produce the byte-identical dataset CSV.
void benchLabelingCache(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                        const std::string &CacheDir) {
  ThreadPool::setGlobalThreads(ThreadPool::defaultThreadCount());
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;

  SimCacheConfig Disabled;
  Disabled.Enabled = false;
  SimCache NoCache(Disabled);

  SimCacheConfig Enabled;
  Enabled.PersistentDir = CacheDir;
  SimCache Cache(Enabled);

  double ColdSeconds = 0.0;
  std::string Reference =
      cachePhase(Corpus, Options, "uncached", &NoCache, &ColdSeconds, "");
  cachePhase(Corpus, Options, "cold", &Cache, &ColdSeconds, Reference);
  cachePhase(Corpus, Options, "warm", &Cache, &ColdSeconds, Reference);
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  BenchJsonWriter Json("pipeline");
  RowSink = &Json;
  bool Full = Args.has("full");
  std::vector<unsigned> ThreadCounts =
      parseThreadList(Args.getString("threads", "1,2,4,8"));

  CorpusOptions CorpusOpts;
  if (!Full) {
    CorpusOpts.MinLoopsPerBenchmark = 4;
    CorpusOpts.MaxLoopsPerBenchmark = 6;
  }
  std::vector<Benchmark> Corpus = buildCorpus(CorpusOpts);

  benchLabeling(Corpus, /*EnableSwp=*/false, ThreadCounts, Full);
  if (Args.has("swp"))
    benchLabeling(Corpus, /*EnableSwp=*/true, ThreadCounts, Full);

  benchLabelingPrune(Corpus, /*EnableSwp=*/false, Full);
  if (Args.has("swp"))
    benchLabelingPrune(Corpus, /*EnableSwp=*/true, Full);

  benchLabelingCache(Corpus, /*EnableSwp=*/false,
                     Args.getString("cache-dir", ""));
  if (Args.has("swp"))
    benchLabelingCache(Corpus, /*EnableSwp=*/true,
                       Args.getString("cache-dir", ""));

  if (!Json.flush())
    std::fprintf(stderr, "microbench_pipeline: cannot write %s\n",
                 Json.path().c_str());
  return 0;
}
