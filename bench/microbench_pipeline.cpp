//===- bench/microbench_pipeline.cpp - Labeling scaling -------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Wall-clock scaling of the pipeline's dominant cost — empirical labeling,
// the step the paper spent ~a week of machine time on — across the
// work-stealing pool at 1/2/4/8 threads, printed as JSON rows (one object
// per line) so dashboards can ingest them directly. Also re-verifies the
// determinism contract: every thread count must produce the byte-identical
// dataset CSV the serial run produces.
//
// Flags:
//   --full           label the whole 72-benchmark corpus (default: a
//                    reduced slice so the bench finishes quickly)
//   --swp            also time the software-pipelining configuration
//   --threads=<csv>  comma-separated thread counts (default "1,2,4,8")
//
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "core/driver/LabelCollector.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::vector<unsigned> parseThreadList(const std::string &Csv) {
  std::vector<unsigned> Threads;
  for (const std::string &Part : split(Csv, ',')) {
    int Value = std::atoi(Part.c_str());
    if (Value >= 1)
      Threads.push_back(static_cast<unsigned>(Value));
  }
  if (Threads.empty())
    Threads = {1, 2, 4, 8};
  return Threads;
}

void benchLabeling(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                   const std::vector<unsigned> &ThreadCounts, bool Full) {
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;

  // The first requested thread count is the baseline for both the speedup
  // column and the determinism check, so the check is meaningful even when
  // 1 is not in the list.
  double BaselineSeconds = 0.0;
  std::string BaselineCsv;
  for (unsigned Threads : ThreadCounts) {
    ThreadPool::setGlobalThreads(Threads);
    auto Start = std::chrono::steady_clock::now();
    size_t TotalLoops = 0;
    Dataset Data = collectLabels(Corpus, Options, &TotalLoops);
    double Seconds = secondsSince(Start);

    std::string Csv = Data.toCsv();
    if (BaselineCsv.empty()) {
      BaselineSeconds = Seconds;
      BaselineCsv = Csv;
    }
    bool Deterministic = Csv == BaselineCsv;
    double Speedup = BaselineSeconds > 0.0 ? BaselineSeconds / Seconds : 1.0;
    std::printf("{\"experiment\": \"labeling\", \"corpus\": \"%s\", "
                "\"swp\": %s, \"threads\": %u, \"loops\": %zu, "
                "\"usable\": %zu, \"seconds\": %.3f, "
                "\"speedup_vs_serial\": %.2f, \"csv_matches_serial\": %s}\n",
                Full ? "full" : "quick", EnableSwp ? "true" : "false",
                Threads, TotalLoops, Data.size(), Seconds, Speedup,
                Deterministic ? "true" : "false");
    std::fflush(stdout);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  bool Full = Args.has("full");
  std::vector<unsigned> ThreadCounts =
      parseThreadList(Args.getString("threads", "1,2,4,8"));

  CorpusOptions CorpusOpts;
  if (!Full) {
    CorpusOpts.MinLoopsPerBenchmark = 4;
    CorpusOpts.MaxLoopsPerBenchmark = 6;
  }
  std::vector<Benchmark> Corpus = buildCorpus(CorpusOpts);

  benchLabeling(Corpus, /*EnableSwp=*/false, ThreadCounts, Full);
  if (Args.has("swp"))
    benchLabeling(Corpus, /*EnableSwp=*/true, ThreadCounts, Full);
  return 0;
}
