//===- bench/BenchCommon.h - Shared harness plumbing ------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure regeneration binaries: the standard
/// full-corpus pipeline (with on-disk label caching so the suite of
/// benches labels the corpus only once), paper-vs-measured row printing,
/// and the ORC-baseline prediction collection used by Table 2.
///
/// Every bench accepts --quick to run on a reduced corpus.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_BENCH_BENCHCOMMON_H
#define METAOPT_BENCH_BENCHCOMMON_H

#include "cache/SimCache.h"
#include "concurrency/ThreadPool.h"
#include "core/driver/Heuristics.h"
#include "core/driver/Pipeline.h"
#include "heuristics/OrcLikeHeuristic.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace metaopt {

/// Applies the shared --threads=<n> flag: resizes the global pool that
/// labeling, LOOCV, speedup evaluation, and feature selection run on.
/// Without the flag the pool keeps its default (METAOPT_THREADS env var
/// or hardware concurrency); --threads=1 forces the serial golden path.
inline void applyThreadsFlag(const CommandLine &Args) {
  if (Args.has("threads"))
    ThreadPool::setGlobalThreads(
        static_cast<unsigned>(Args.getInt("threads", 0)));
}

/// Applies the shared simulation-cache flags: --cache-dir=<dir> attaches
/// the persistent tier of the process-global SimCache (and is also where
/// the dataset CSVs go), --no-sim-cache disables the cache entirely so
/// the cache-on/cache-off byte-identity invariant can be spot-checked on
/// any bench. Without either flag the global cache keeps its environment
/// defaults (METAOPT_SIM_CACHE / METAOPT_CACHE_DIR).
inline void applySimCacheFlags(const CommandLine &Args) {
  if (Args.has("no-sim-cache")) {
    SimCacheConfig Config;
    Config.Enabled = false;
    SimCache::configureGlobal(Config);
  } else if (Args.has("cache-dir")) {
    SimCacheConfig Config;
    Config.PersistentDir = Args.getString("cache-dir");
    SimCache::configureGlobal(Config);
  }
}

/// Builds the standard pipeline; --quick shrinks the corpus and disables
/// the disk cache, --threads=<n> sets the parallelism, --cache-dir /
/// --no-sim-cache control the simulation cache.
inline std::unique_ptr<Pipeline> makePipeline(const CommandLine &Args) {
  applyThreadsFlag(Args);
  applySimCacheFlags(Args);
  PipelineOptions Options;
  if (Args.has("quick")) {
    Options.Corpus.MinLoopsPerBenchmark = 6;
    Options.Corpus.MaxLoopsPerBenchmark = 10;
    Options.CacheDir = "";
  } else if (Args.has("cache-dir")) {
    Options.CacheDir = Args.getString("cache-dir");
  }
  return std::make_unique<Pipeline>(Options);
}

/// Index from loop name to the corpus entry (for heuristics that need the
/// Loop itself rather than the feature vector).
inline std::map<std::string, const CorpusLoop *>
indexCorpusLoops(const std::vector<Benchmark> &Corpus) {
  std::map<std::string, const CorpusLoop *> Index;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops)
      Index[Entry.TheLoop.name()] = &Entry;
  return Index;
}

/// The ORC-like baseline's predictions aligned with a dataset.
inline std::vector<unsigned>
orcPredictions(const Dataset &Data,
               const std::map<std::string, const CorpusLoop *> &Index,
               const UnrollHeuristic &Orc) {
  std::vector<unsigned> Predictions;
  Predictions.reserve(Data.size());
  for (const Example &Ex : Data.examples())
    Predictions.push_back(Orc.chooseFactor(Index.at(Ex.LoopName)->TheLoop));
  return Predictions;
}

/// Returns "out/<name>", creating the gitignored out/ directory on first
/// use. All generated bench artifacts (figure CSVs, intermediate dumps)
/// land there so the repo root stays free of build products.
inline std::string benchOutPath(const std::string &Name) {
  std::error_code Ec;
  std::filesystem::create_directories("out", Ec);
  return "out/" + Name;
}

/// Collects machine-readable result rows (one JSON object per line) and
/// rewrites BENCH_<name>.json at the repo root on flush. The per-run
/// rewrite (rather than append) keeps the file a snapshot of the latest
/// run, which is what trajectory tooling diffs across commits. Multi-phase
/// harnesses that accumulate one file across several invocations (the
/// serving soak runs two phases against different topologies) pass
/// \p Append so later phases add rows instead of clobbering earlier ones.
class BenchJsonWriter {
public:
  explicit BenchJsonWriter(std::string Name, bool Append = false)
      : Path("BENCH_" + std::move(Name) + ".json"), Append(Append) {}

  /// Adds one row; \p Json must be a complete JSON object literal.
  void row(std::string Json) { Rows.push_back(std::move(Json)); }

  /// Writes all rows, one per line. Returns false on I/O failure.
  bool flush() const {
    std::ofstream Out(Path, Append ? std::ios::app : std::ios::out);
    if (!Out)
      return false;
    for (const std::string &Row : Rows)
      Out << Row << "\n";
    return static_cast<bool>(Out);
  }

  const std::string &path() const { return Path; }
  size_t size() const { return Rows.size(); }

private:
  std::string Path;
  bool Append;
  std::vector<std::string> Rows;
};

/// Prints one "paper vs measured" comparison line.
inline void printComparison(const char *What, const std::string &Paper,
                            const std::string &Measured) {
  std::printf("  %-46s paper: %-10s measured: %s\n", What, Paper.c_str(),
              Measured.c_str());
}

/// Prints the standard header naming the experiment.
inline void printBenchHeader(const char *Id, const char *Description) {
  std::printf("==============================================================="
              "=\n%s - %s\n"
              "================================================================"
              "\n",
              Id, Description);
}

} // namespace metaopt

#endif // METAOPT_BENCH_BENCHCOMMON_H
