//===- bench/microbench_classifiers.cpp - Timing claims -------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Google-benchmark microbenchmarks backing the paper's timing claims:
//  - Section 5.1: "with over 2,500 examples in our database, the
//    linear-time scan takes less than 5 ms";
//  - Section 5.2: "SVMs take longer to train than the NN algorithm
//    (around 30 seconds for our data)" - measured here at smaller scales
//    since the cost is the O(n^3) factorization (benchmarked directly);
//  - compile-time costs a compiler would pay: feature extraction and
//    unroll+schedule of a loop.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "cache/SimCache.h"
#include "core/driver/Pipeline.h"
#include "core/features/FeatureExtractor.h"
#include "core/ml/Forest.h"
#include "core/ml/Lsh.h"
#include "core/ml/Mlp.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"
#include "sched/IterativeModulo.h"
#include "sched/ListScheduler.h"
#include "transform/MemoryOpt.h"
#include "transform/Unroller.h"

#include <benchmark/benchmark.h>

using namespace metaopt;

namespace {

/// One shared labeled dataset for all microbenchmarks (small corpus so
/// the binary starts fast; the NN lookup bench then scales it).
const Dataset &sharedDataset() {
  static Dataset Data = [] {
    CorpusOptions Options;
    Options.MinLoopsPerBenchmark = 10;
    Options.MaxLoopsPerBenchmark = 14;
    LabelingOptions Labeling;
    return collectLabels(buildCorpus(Options), Labeling);
  }();
  return Data;
}

/// Inflates the dataset to ~N examples by jittered duplication, so the
/// lookup benchmark runs at the paper's database size regardless of the
/// corpus slice used to build it.
Dataset inflatedDataset(size_t Target) {
  const Dataset &Base = sharedDataset();
  Dataset Result;
  Rng Generator(99);
  while (Result.size() < Target) {
    for (const Example &Ex : Base.examples()) {
      if (Result.size() >= Target)
        break;
      Example Copy = Ex;
      for (double &Value : Copy.Features)
        Value *= 1.0 + Generator.nextGaussian(0.0, 0.01);
      Result.add(std::move(Copy));
    }
  }
  return Result;
}

Loop benchLoop() {
  Rng Generator(7);
  LoopGenParams Params;
  Params.Name = "bench";
  Params.TripCount = 1024;
  Params.RuntimeTripCount = 1024;
  Params.SizeScale = 2;
  return generateLoop(LoopKind::Mixed, Params, Generator);
}

} // namespace

/// Section 5.1 claim: one NN query against a 2,500-entry database must be
/// far under 5 ms.
static void BM_NnLookup2500(benchmark::State &State) {
  Dataset Data = inflatedDataset(2500);
  NearNeighborClassifier Nn(paperReducedFeatureSet(), 0.3);
  Nn.train(Data);
  FeatureVector Query = Data[42].Features;
  for (auto _ : State)
    benchmark::DoNotOptimize(Nn.predict(Query));
  State.SetLabel("paper claim: < 5 ms per lookup");
}
BENCHMARK(BM_NnLookup2500)->Unit(benchmark::kMicrosecond);

/// Section 5.1's scalability route: "approximate near neighbor lookup
/// permit[s] fast access (sublinear in the size of the database)". Sweep
/// the database size for the exact scan and the LSH lookup; the exact
/// scan grows linearly, the LSH lookup should not.
static void BM_NnLookupScaling(benchmark::State &State) {
  Dataset Data = inflatedDataset(static_cast<size_t>(State.range(0)));
  NearNeighborClassifier Nn(paperReducedFeatureSet(), 0.3);
  Nn.train(Data);
  FeatureVector Query = Data[3].Features;
  for (auto _ : State)
    benchmark::DoNotOptimize(Nn.predict(Query));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_NnLookupScaling)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

static void BM_LshLookupScaling(benchmark::State &State) {
  Dataset Data = inflatedDataset(static_cast<size_t>(State.range(0)));
  LshNearNeighborClassifier Lsh(paperReducedFeatureSet());
  Lsh.train(Data);
  FeatureVector Query = Data[3].Features;
  for (auto _ : State)
    benchmark::DoNotOptimize(Lsh.predict(Query));
  State.SetComplexityN(State.range(0));
  State.SetLabel("candidates scanned: " +
                 std::to_string(Lsh.lastCandidateCount()) + " of " +
                 std::to_string(Lsh.databaseSize()));
}
BENCHMARK(BM_LshLookupScaling)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMicrosecond);

/// NN "training" is just populating the database.
static void BM_NnTrain(benchmark::State &State) {
  Dataset Data = inflatedDataset(2500);
  for (auto _ : State) {
    NearNeighborClassifier Nn(paperReducedFeatureSet(), 0.3);
    Nn.train(Data);
    benchmark::DoNotOptimize(Nn.databaseSize());
  }
}
BENCHMARK(BM_NnTrain)->Unit(benchmark::kMillisecond);

/// LS-SVM training cost is the kernel-system factorization: O(n^3).
/// Sweeping n shows the scaling that puts full-corpus training in the
/// tens of seconds, matching the paper's "around 30 seconds".
static void BM_SvmTrain(benchmark::State &State) {
  Dataset Data = inflatedDataset(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    SvmClassifier Svm(paperReducedFeatureSet());
    Svm.train(Data);
    benchmark::DoNotOptimize(&Svm);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SvmTrain)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNCubed);

/// One SVM prediction (n kernel evaluations + decode).
static void BM_SvmPredict(benchmark::State &State) {
  Dataset Data = inflatedDataset(1000);
  SvmClassifier Svm(paperReducedFeatureSet());
  Svm.train(Data);
  FeatureVector Query = Data[7].Features;
  for (auto _ : State)
    benchmark::DoNotOptimize(Svm.predict(Query));
}
BENCHMARK(BM_SvmPredict)->Unit(benchmark::kMicrosecond);

/// Model-zoo MLP: seeded-Adam training at the paper's database scale.
static void BM_MlpTrain(benchmark::State &State) {
  Dataset Data = inflatedDataset(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    MlpClassifier Mlp(paperReducedFeatureSet());
    Mlp.train(Data);
    benchmark::DoNotOptimize(&Mlp);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_MlpTrain)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

/// One MLP prediction: two dense layers plus a softmax.
static void BM_MlpPredict(benchmark::State &State) {
  Dataset Data = inflatedDataset(1000);
  MlpClassifier Mlp(paperReducedFeatureSet());
  Mlp.train(Data);
  FeatureVector Query = Data[7].Features;
  for (auto _ : State)
    benchmark::DoNotOptimize(Mlp.predict(Query));
}
BENCHMARK(BM_MlpPredict)->Unit(benchmark::kMicrosecond);

/// Model-zoo random forest: 16 seeded bootstrap CART trees.
static void BM_ForestTrain(benchmark::State &State) {
  Dataset Data = inflatedDataset(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    RandomForestClassifier Forest(paperReducedFeatureSet());
    Forest.train(Data);
    benchmark::DoNotOptimize(Forest.numTrees());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ForestTrain)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNLogN);

/// One forest prediction: 16 tree walks plus the majority vote.
static void BM_ForestPredict(benchmark::State &State) {
  Dataset Data = inflatedDataset(1000);
  RandomForestClassifier Forest(paperReducedFeatureSet());
  Forest.train(Data);
  FeatureVector Query = Data[7].Features;
  for (auto _ : State)
    benchmark::DoNotOptimize(Forest.predict(Query));
}
BENCHMARK(BM_ForestPredict)->Unit(benchmark::kMicrosecond);

/// Compile-time cost of extracting the 38 features from a loop ("lookup
/// time is far outweighed by compiler fixed-point dataflow analyses").
static void BM_FeatureExtraction(benchmark::State &State) {
  Loop L = benchLoop();
  for (auto _ : State)
    benchmark::DoNotOptimize(extractFeatures(L));
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMicrosecond);

/// Compile-time cost of unrolling by 8 and list-scheduling the result.
static void BM_UnrollAndSchedule(benchmark::State &State) {
  Loop L = benchLoop();
  MachineModel Machine(itanium2Config());
  for (auto _ : State) {
    Loop U = unrollLoop(L, 8);
    DependenceGraph DG(U);
    benchmark::DoNotOptimize(listSchedule(U, DG, Machine));
  }
}
BENCHMARK(BM_UnrollAndSchedule)->Unit(benchmark::kMicrosecond);

/// The post-unroll memory cleanup pass (Section 3's scalar replacement
/// and wide-load pairing).
static void BM_MemoryOptimize(benchmark::State &State) {
  Loop L = benchLoop();
  for (auto _ : State) {
    Loop U = unrollLoop(L, 8);
    benchmark::DoNotOptimize(optimizeMemory(U));
  }
}
BENCHMARK(BM_MemoryOptimize)->Unit(benchmark::kMicrosecond);

/// The real iterative modulo scheduler on an unrolled body.
static void BM_IterativeModulo(benchmark::State &State) {
  Loop U = unrollLoop(benchLoop(), 4);
  MachineModel Machine(itanium2Config());
  DependenceGraph DG(U);
  for (auto _ : State)
    benchmark::DoNotOptimize(iterativeModuloSchedule(U, DG, Machine));
}
BENCHMARK(BM_IterativeModulo)->Unit(benchmark::kMicrosecond);

/// End-to-end labeling cost of one loop (8 factors x simulate x 30
/// trials): what a week of the paper's machine time buys per loop here.
static void BM_LabelOneLoop(benchmark::State &State) {
  CorpusOptions Options;
  Options.MinLoopsPerBenchmark = 2;
  Options.MaxLoopsPerBenchmark = 2;
  std::vector<Benchmark> Corpus = buildCorpus(Options);
  const Benchmark &Bench = Corpus.front();
  const CorpusLoop &Entry = Bench.Loops.front();
  MachineModel Machine(itanium2Config());
  LabelingOptions Labeling;
  // A disabled cache keeps this measuring the simulator, not the cache.
  SimCacheConfig CacheConfig;
  CacheConfig.Enabled = false;
  SimCache NoCache(CacheConfig);
  Labeling.Cache = &NoCache;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        measureLoopAtAllFactors(Bench, Entry, Machine, Labeling));
}
BENCHMARK(BM_LabelOneLoop)->Unit(benchmark::kMicrosecond);

namespace {

/// The normal console output plus one flat JSON row per measured run
/// ("classifier_microbench" experiment), rewritten into
/// BENCH_classifiers.json for metaopt-benchcheck — e.g. the Section 5.1
/// "< 5 ms per lookup" claim can be pinned with a max_real_ns ceiling.
class JsonRowReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonRowReporter(BenchJsonWriter &Writer) : Writer(Writer) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    for (const Run &R : Reports) {
      // Aggregates (BigO fits, RMS) repeat the iteration data in other
      // units; only real measurements become rows.
      if (R.run_type != Run::RT_Iteration || R.error_occurred ||
          R.iterations <= 0)
        continue;
      double Iters = static_cast<double>(R.iterations);
      char Row[512];
      std::snprintf(Row, sizeof(Row),
                    "{\"experiment\": \"classifier_microbench\", "
                    "\"benchmark\": \"%s\", \"iterations\": %lld, "
                    "\"real_ns\": %.1f, \"cpu_ns\": %.1f}",
                    R.benchmark_name().c_str(),
                    static_cast<long long>(R.iterations),
                    1e9 * R.real_accumulated_time / Iters,
                    1e9 * R.cpu_accumulated_time / Iters);
      Writer.row(Row);
    }
    ConsoleReporter::ReportRuns(Reports);
  }

private:
  BenchJsonWriter &Writer;
};

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  BenchJsonWriter Writer("classifiers");
  JsonRowReporter Reporter(Writer);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  if (!Writer.flush()) {
    std::fprintf(stderr, "microbench_classifiers: cannot write %s\n",
                 Writer.path().c_str());
    return 1;
  }
  std::fprintf(stderr, "microbench_classifiers: %zu rows -> %s\n",
               Writer.size(), Writer.path().c_str());
  return 0;
}
