//===- bench/fig3_histogram.cpp - Regenerates Figure 3 --------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Figure 3: "Histogram of optimal unroll factors ... collected from over
// 2,500 loops with software pipelining disabled." The paper's shape:
// u=1 ~27%, u=2 ~18%, u=4 ~19%, u=8 ~30%, odd factors rare, and "no one
// loop unrolling factor is dominantly better than the others."
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Figure 3",
                   "histogram of optimal unroll factors (SWP disabled)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);
  auto Histogram = Data.labelHistogram();

  std::printf("labeled loops: %zu (paper: \"over 2,500 loops\")\n\n",
              Data.size());
  std::printf("%-8s %-9s %s\n", "factor", "share", "");
  double MaxShare = 0.0;
  unsigned PowerOfTwoMass = 0;
  for (unsigned F = 1; F <= MaxUnrollFactor; ++F) {
    double Share =
        Data.empty() ? 0.0
                     : static_cast<double>(Histogram[F - 1]) / Data.size();
    MaxShare = std::max(MaxShare, Share);
    if (F == 1 || F == 2 || F == 4 || F == 8)
      PowerOfTwoMass += static_cast<unsigned>(Histogram[F - 1]);
    std::printf("u=%u     %6.1f%%  %s\n", F, Share * 100.0,
                std::string(static_cast<size_t>(Share * 120), '#').c_str());
  }

  std::printf("\nShape checks:\n");
  printComparison("largest single-factor share", "~30% (u=8)",
                  formatPercent(MaxShare, 1));
  printComparison(
      "power-of-two factors (1,2,4,8) mass", "~92%",
      formatPercent(static_cast<double>(PowerOfTwoMass) / Data.size(), 1));
  printComparison("no factor holds a majority", "true",
                  MaxShare < 0.5 ? "true" : "false");
  return 0;
}
