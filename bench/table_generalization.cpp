//===- bench/table_generalization.cpp - Synthetic-to-real gap -------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// The paper trains and evaluates on loops drawn from one benchmark
// population; this repo's training corpus is synthetic. The obvious
// question - do models trained on the generated corpus transfer to loops
// lifted from real code? - is answered here: every classifier is trained
// on the synthetic pipeline dataset and then evaluated, without any
// retraining, on the committed kernel corpus under corpus/imported/
// (ingested through src/import). Each imported kernel is labeled with the
// same empirical protocol as the training set (measure at factors 1..8,
// median of 30 noisy trials, argmin), so "accuracy" means the same thing
// on both sides of the table. The in-distribution LOOCV accuracy is
// printed beside the imported-corpus accuracy; the difference is the
// synthetic-to-real generalization gap.
//
// Rows are printed as a table and also written to BENCH_generalization.json
// at the repo root (one JSON object per line), tagged with the imported
// corpus fingerprint so a result row can never be confused with a run
// against a different kernel set.
//
// Flags: --quick / --threads=<n> / --cache-dir=<d> (shared pipeline
// flags), --cap=<n> training subsample cap (default 1000),
// --imported=<dir> kernel corpus location (default: the committed
// corpus/imported/ directory).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/features/FeatureExtractor.h"
#include "core/ml/CrossValidation.h"
#include "core/ml/DecisionTree.h"
#include "core/ml/Evaluation.h"
#include "core/ml/Forest.h"
#include "core/ml/Lsh.h"
#include "core/ml/Mlp.h"
#include "core/ml/Regression.h"
#include "import/ImportedCorpus.h"

#include <algorithm>
#include <cmath>

using namespace metaopt;

namespace {

/// Destination for the BENCH_generalization.json copy of every JSON row.
BenchJsonWriter *RowSink = nullptr;

void emitRow(const std::string &Row) {
  if (RowSink)
    RowSink->row(Row);
}

/// Lowercase hex of the 128-bit corpus fingerprint (Hi then Lo, matching
/// serve's bundle manifests).
std::string hexOf(const Fingerprint &Print) {
  char Buffer[33];
  std::snprintf(Buffer, sizeof(Buffer), "%016llx%016llx",
                static_cast<unsigned long long>(Print.Hi),
                static_cast<unsigned long long>(Print.Lo));
  return Buffer;
}

/// Mean speedup over u=1 actually realized by following \p Preds:
/// cycles(u=1) / cycles(predicted factor), averaged over the eval set.
double realizedSpeedup(const Dataset &Data,
                       const std::vector<unsigned> &Preds) {
  if (Data.empty())
    return 1.0;
  double Sum = 0.0;
  for (size_t I = 0; I < Data.size(); ++I) {
    const Example &Ex = Data[I];
    Sum += Ex.CyclesPerFactor[0] / Ex.CyclesPerFactor[Preds[I] - 1];
  }
  return Sum / static_cast<double>(Data.size());
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Generalization gap",
                   "train on the synthetic corpus, evaluate on imported "
                   "real-code kernels");

  BenchJsonWriter Json("generalization");
  RowSink = &Json;

  // Training side: the standard synthetic pipeline dataset (SWP off),
  // subsampled exactly like the classifier ablation so the LOOCV columns
  // are comparable across benches.
  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Full = Pipe->dataset(/*EnableSwp=*/false);
  Rng Subsampler(17);
  Dataset Train = Full.subsample(
      static_cast<size_t>(Args.getInt("cap", 1000)), Subsampler);
  FeatureSet Features = paperReducedFeatureSet();

  // Eval side: the committed kernel corpus, ingested through src/import
  // and labeled with the training protocol. The paper's usability filters
  // (50k-cycle noise floor, 1.05x sensitivity) are *reported*, not
  // applied: the imported set is small and fixed, and a deployed
  // predictor does not get to skip insensitive loops either.
  std::string ImportedDir =
      Args.getString("imported", METAOPT_IMPORTED_CORPUS_DIR);
  ImportedCorpus Kernels = loadImportedCorpus(ImportedDir);
  if (!Kernels.succeeded() || Kernels.Loops.empty()) {
    std::printf("FAILED to load imported corpus from %s:\n%s\n",
                ImportedDir.c_str(), Kernels.Report.renderText().c_str());
    return 1;
  }
  Benchmark Imported = toBenchmark(Kernels);
  std::string CorpusHex = hexOf(importedCorpusFingerprint(Kernels));

  LabelingOptions Options;
  MachineModel Machine(Options.Machine);
  Dataset Eval;
  size_t WouldPassFilters = 0;
  for (const CorpusLoop &Entry : Imported.Loops) {
    std::array<double, MaxUnrollFactor> Medians =
        measureLoopAtAllFactors(Imported, Entry, Machine, Options);
    Example Ex;
    Ex.Features = extractFeatures(Entry.TheLoop);
    Ex.CyclesPerFactor = Medians;
    Ex.LoopName = Entry.TheLoop.name();
    Ex.BenchmarkName = Imported.Name;
    double Sum = 0.0, BestCycles = Medians[0];
    for (unsigned F = 1; F <= MaxUnrollFactor; ++F) {
      Sum += Medians[F - 1];
      if (Medians[F - 1] < BestCycles) {
        BestCycles = Medians[F - 1];
        Ex.Label = F;
      }
    }
    if (isReliablyMeasurable(BestCycles, Options.Protocol) &&
        BestCycles * Options.MinBestVsAverage <= Sum / MaxUnrollFactor)
      ++WouldPassFilters;
    Eval.add(std::move(Ex));
  }

  // --labels: dump each kernel's measured oracle label (the corpus is
  // curated for label diversity; this is how you check it).
  if (Args.has("labels")) {
    std::printf("per-kernel oracle labels:\n");
    for (size_t I = 0; I < Eval.size(); ++I)
      std::printf("  %-24s u=%u\n", Eval.examples()[I].LoopName.c_str(),
                  Eval.examples()[I].Label);
    std::printf("\n");
  }

  auto Histogram = Eval.labelHistogram();
  std::printf("training loops (synthetic): %zu   imported kernels: %zu "
              "(%zu would pass the paper's usability filters)\n",
              Train.size(), Eval.size(), WouldPassFilters);
  std::printf("imported label histogram (u=1..8):");
  for (size_t Count : Histogram)
    std::printf(" %zu", Count);
  std::printf("\nimported corpus fingerprint: %s\n\n", CorpusHex.c_str());
  {
    char Row[512];
    std::snprintf(Row, sizeof(Row),
                  "{\"experiment\": \"generalization_corpus\", "
                  "\"synthetic_loops\": %zu, \"imported_loops\": %zu, "
                  "\"imported_pass_filters\": %zu, "
                  "\"imported_fingerprint\": \"%s\"}",
                  Train.size(), Eval.size(), WouldPassFilters,
                  CorpusHex.c_str());
    emitRow(Row);
  }

  // Every classifier: LOOCV accuracy in-distribution, then accuracy /
  // top-2 / mean cost / realized speedup on the imported kernels without
  // retraining. The gap column is LOOCV minus imported accuracy.
  TablePrinter Table("Synthetic-train / imported-eval (generalization)");
  Table.addHeader({"classifier", "loocv", "imported", "top-2", "mean cost",
                   "speedup", "gap"});
  std::vector<std::pair<std::string, double>> ImportedAccuracies;
  auto AddRow = [&](const std::string &Name,
                    const std::vector<unsigned> &LoocvPred,
                    const std::vector<unsigned> &EvalPred) {
    // Calibration rows (oracle, always-1) have no LOOCV side; their
    // loocv/gap columns print as "-" and serialize as null.
    bool HasLoocv = !LoocvPred.empty();
    double Loocv =
        HasLoocv ? rankDistribution(Train, LoocvPred).accuracy() : 0.0;
    RankDistribution Rank = rankDistribution(Eval, EvalPred);
    double Cost = meanCostOfPredictions(Eval, EvalPred);
    double Speedup = realizedSpeedup(Eval, EvalPred);
    double Gap = Loocv - Rank.accuracy();
    Table.addRow({Name, HasLoocv ? formatPercent(Loocv, 1) : "-",
                  formatPercent(Rank.accuracy(), 1),
                  formatPercent(Rank.topTwoAccuracy(), 1),
                  formatDouble(Cost, 3) + "x",
                  formatDouble(Speedup, 3) + "x",
                  HasLoocv ? formatPercent(Gap, 1) : "-"});
    ImportedAccuracies.emplace_back(Name, Rank.accuracy());
    char LoocvJson[32], GapJson[32];
    if (HasLoocv) {
      std::snprintf(LoocvJson, sizeof(LoocvJson), "%.4f", Loocv);
      std::snprintf(GapJson, sizeof(GapJson), "%.4f", Gap);
    } else {
      std::snprintf(LoocvJson, sizeof(LoocvJson), "null");
      std::snprintf(GapJson, sizeof(GapJson), "null");
    }
    char Row[512];
    std::snprintf(Row, sizeof(Row),
                  "{\"experiment\": \"generalization\", "
                  "\"classifier\": \"%s\", \"loocv_accuracy\": %s, "
                  "\"imported_accuracy\": %.4f, \"imported_top2\": %.4f, "
                  "\"imported_mean_cost\": %.4f, "
                  "\"imported_speedup\": %.4f, \"gap\": %s, "
                  "\"imported_fingerprint\": \"%s\"}",
                  Name.c_str(), LoocvJson, Rank.accuracy(),
                  Rank.topTwoAccuracy(), Cost, Speedup, GapJson,
                  CorpusHex.c_str());
    emitRow(Row);
  };
  auto PredictAll = [&](const Classifier &Model) {
    std::vector<unsigned> Preds;
    Preds.reserve(Eval.size());
    for (const Example &Ex : Eval.examples())
      Preds.push_back(Model.predict(Ex.Features));
    return Preds;
  };

  // The paper's two learners plus the ECOC variant (fast exact LOOCV).
  {
    NearNeighborClassifier Nn(Features, 0.3);
    std::vector<unsigned> Loocv = loocvPredictions(Nn, Train);
    Nn.train(Train);
    AddRow("near-neighbor (paper)", Loocv, PredictAll(Nn));
  }
  {
    SvmClassifier Svm(Features);
    std::vector<unsigned> Loocv = loocvPredictions(Svm, Train);
    Svm.train(Train);
    AddRow("LS-SVM one-vs-rest (paper)", Loocv, PredictAll(Svm));
  }
  {
    SvmOptions Ecoc;
    Ecoc.CodeKind = SvmOptions::Code::RandomEcoc;
    SvmClassifier Svm(Features, Ecoc);
    std::vector<unsigned> Loocv = loocvPredictions(Svm, Train);
    Svm.train(Train);
    AddRow("LS-SVM random ECOC", Loocv, PredictAll(Svm));
  }

  // Decision tree and LSH: training is cheap, brute-force LOOCV.
  {
    DecisionTreeClassifier Tree(Features);
    std::vector<unsigned> Loocv = bruteForceLoocv(
        [](const FeatureSet &F) {
          return std::make_unique<DecisionTreeClassifier>(F);
        },
        Features, Train);
    Tree.train(Train);
    AddRow("decision tree (CART)", Loocv, PredictAll(Tree));
  }
  {
    LshNearNeighborClassifier Lsh(Features);
    std::vector<unsigned> Loocv = bruteForceLoocv(
        [](const FeatureSet &F) {
          return std::make_unique<LshNearNeighborClassifier>(F);
        },
        Features, Train);
    Lsh.train(Train);
    AddRow("LSH approximate NN", Loocv, PredictAll(Lsh));
  }

  // Kernel ridge regression: exact LOO residuals, rounded to factors.
  {
    KrrUnrollRegressor Krr(Features);
    Krr.train(Train);
    std::vector<unsigned> Loocv;
    for (double Value : Krr.looValues())
      Loocv.push_back(static_cast<unsigned>(
          std::clamp<long>(std::lround(Value), 1, MaxUnrollFactor)));
    AddRow("kernel ridge regression (Sec. 8)", Loocv, PredictAll(Krr));
  }

  // The model zoo: MLP and random forest, brute-force LOOCV like the
  // tree (both retrain deterministically from a fixed seed per fold).
  {
    MlpClassifier Mlp(Features);
    std::vector<unsigned> Loocv = bruteForceLoocv(
        [](const FeatureSet &F) {
          return std::make_unique<MlpClassifier>(F);
        },
        Features, Train);
    Mlp.train(Train);
    AddRow("MLP (model zoo)", Loocv, PredictAll(Mlp));
  }
  {
    RandomForestClassifier Forest(Features);
    std::vector<unsigned> Loocv = bruteForceLoocv(
        [](const FeatureSet &F) {
          return std::make_unique<RandomForestClassifier>(F);
        },
        Features, Train);
    Forest.train(Train);
    AddRow("random forest (model zoo)", Loocv, PredictAll(Forest));
  }

  // Calibration rows: the oracle (predict the measured label - upper
  // bound on realized speedup) and the never-unroll baseline.
  {
    std::vector<unsigned> Oracle;
    for (const Example &Ex : Eval.examples())
      Oracle.push_back(Ex.Label);
    AddRow("oracle (upper bound)", {}, Oracle);
    AddRow("always-1 (never unroll)", {},
           std::vector<unsigned>(Eval.size(), 1));
  }
  Table.print();

  std::printf("\nShape checks:\n");
  double BestImported = 0.0;
  for (size_t I = 0; I + 2 < ImportedAccuracies.size(); ++I)
    BestImported = std::max(BestImported, ImportedAccuracies[I].second);
  double OracleSpeedup = realizedSpeedup(Eval, [&] {
    std::vector<unsigned> Oracle;
    for (const Example &Ex : Eval.examples())
      Oracle.push_back(Ex.Label);
    return Oracle;
  }());
  printComparison("some learner transfers to real-code kernels",
                  "beats never-unroll on accuracy",
                  BestImported >
                          ImportedAccuracies.back().second
                      ? "yes"
                      : "no");
  printComparison("unrolling pays off on the imported set",
                  "oracle speedup > 1.0x",
                  formatDouble(OracleSpeedup, 3) + "x");
  if (!Json.flush())
    std::fprintf(stderr, "table_generalization: cannot write %s\n",
                 Json.path().c_str());
  return 0;
}
