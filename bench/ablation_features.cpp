//===- bench/ablation_features.cpp - Feature subset ablation --------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Section 7: "using a well chosen subset of features improves
// classification accuracy" and "whenever possible, it is preferable to
// use a small number of features". This ablation compares LOOCV accuracy
// for: the full 38 features, the paper-style reduced union, the MIS top-k
// sets, and single features.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/ml/CrossValidation.h"
#include "core/ml/FeatureSelection.h"

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  printBenchHeader("Ablation: feature subsets",
                   "LOOCV accuracy vs feature set (NN classifier)");

  std::unique_ptr<Pipeline> Pipe = makePipeline(Args);
  const Dataset &Data = Pipe->dataset(/*EnableSwp=*/false);

  auto Evaluate = [&](const FeatureSet &Features) {
    NearNeighborClassifier Nn(Features, 0.3);
    return predictionAccuracy(Data, loocvPredictions(Nn, Data));
  };

  auto Mis = rankByMutualInformation(Data);
  auto MisTop = [&](size_t K) {
    FeatureSet Set;
    for (size_t I = 0; I < K; ++I)
      Set.push_back(Mis[I].first);
    return Set;
  };

  TablePrinter Table("Feature subsets");
  Table.addHeader({"feature set", "#features", "NN LOOCV accuracy"});
  double FullAccuracy = Evaluate(fullFeatureSet());
  Table.addRow({"all features", std::to_string(NumFeatures),
                formatPercent(FullAccuracy, 1)});
  double ReducedAccuracy = Evaluate(paperReducedFeatureSet());
  Table.addRow({"paper-style reduced union",
                std::to_string(paperReducedFeatureSet().size()),
                formatPercent(ReducedAccuracy, 1)});
  for (size_t K : {3u, 5u, 8u, 12u, 20u})
    Table.addRow({"MIS top-" + std::to_string(K), std::to_string(K),
                  formatPercent(Evaluate(MisTop(K)), 1)});
  Table.addRow({"single best MIS feature", "1",
                formatPercent(Evaluate(MisTop(1)), 1)});
  Table.print();

  std::printf("\nShape checks:\n");
  printComparison("well-chosen subset >= all 38 features",
                  "yes (the paper's point)",
                  ReducedAccuracy + 0.02 >= FullAccuracy ? "yes" : "no");
  printComparison("one feature is not enough", "yes",
                  Evaluate(MisTop(1)) < ReducedAccuracy ? "yes" : "no");
  return 0;
}
