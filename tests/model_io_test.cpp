//===- tests/model_io_test.cpp - Model serialization and CV utilities -----===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// A compiler does not retrain at startup: it ships a trained model. These
// tests pin down the serialize/deserialize round trips for the normalizer
// and both paper classifiers, plus the k-fold validation and confusion
// matrix utilities.
//
//===----------------------------------------------------------------------===//

#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace metaopt;

namespace {

Dataset cleanDataset(size_t N, uint64_t Seed, double LabelNoise = 0.0) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextGaussian();
    double F1 = Generator.nextGaussian();
    Ex.Features[0] = F0;
    Ex.Features[1] = F1;
    Ex.Features[2] = Generator.nextGaussian() * 10.0;
    unsigned Label = 1 + (F0 > 0 ? 1 : 0) + (F1 > 0 ? 2 : 0);
    if (Generator.nextBool(LabelNoise))
      Label = 1 + static_cast<unsigned>(Generator.nextBelow(8));
    Ex.Label = Label;
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      Ex.CyclesPerFactor[F] =
          1000.0 + 100.0 * std::abs(static_cast<int>(F + 1) -
                                    static_cast<int>(Label));
    Ex.LoopName = "loop" + std::to_string(I);
    Ex.BenchmarkName = "bench" + std::to_string(I % 4);
    Data.add(std::move(Ex));
  }
  return Data;
}

FeatureSet firstTwoFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1)};
}

} // namespace

//===----------------------------------------------------------------------===//
// Normalizer serialization
//===----------------------------------------------------------------------===//

TEST(NormalizerIoTest, RoundTripIsBitExact) {
  Dataset Data = cleanDataset(60, 1);
  Normalizer Norm;
  Norm.fit(Data.featureMatrix(),
           {static_cast<FeatureId>(0), static_cast<FeatureId>(2)});
  std::optional<Normalizer> Loaded =
      Normalizer::deserialize(Norm.serialize());
  ASSERT_TRUE(Loaded.has_value());
  for (const Example &Ex : Data.examples()) {
    std::vector<double> A = Norm.apply(Ex.Features);
    std::vector<double> B = Loaded->apply(Ex.Features);
    ASSERT_EQ(A.size(), B.size());
    for (size_t D = 0; D < A.size(); ++D)
      EXPECT_EQ(A[D], B[D]); // Bit-exact via %.17g.
  }
}

TEST(NormalizerIoTest, RejectsGarbage) {
  EXPECT_FALSE(Normalizer::deserialize("").has_value());
  EXPECT_FALSE(Normalizer::deserialize("normalizer zscore x").has_value());
  EXPECT_FALSE(
      Normalizer::deserialize("normalizer sigmoid 1\n0 1 1\n").has_value());
  EXPECT_FALSE(
      Normalizer::deserialize("normalizer zscore 2\n0 1 1\n").has_value());
  EXPECT_FALSE(
      Normalizer::deserialize("normalizer zscore 1\n999 1 1\n").has_value());
}

//===----------------------------------------------------------------------===//
// NearNeighbor serialization
//===----------------------------------------------------------------------===//

TEST(NnIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(200, 2, 0.1);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Train);
  std::optional<NearNeighborClassifier> Loaded =
      NearNeighborClassifier::deserialize(Nn.serialize());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->databaseSize(), Nn.databaseSize());
  EXPECT_DOUBLE_EQ(Loaded->radius(), Nn.radius());
  Dataset Queries = cleanDataset(120, 3);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(Loaded->predict(Ex.Features), Nn.predict(Ex.Features));
}

TEST(NnIoTest, SerializationIsStable) {
  Dataset Train = cleanDataset(50, 4);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Train);
  std::string First = Nn.serialize();
  std::optional<NearNeighborClassifier> Loaded =
      NearNeighborClassifier::deserialize(First);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->serialize(), First);
}

TEST(NnIoTest, RejectsCorruptedInput) {
  Dataset Train = cleanDataset(30, 5);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Train);
  std::string Good = Nn.serialize();
  EXPECT_FALSE(NearNeighborClassifier::deserialize("").has_value());
  EXPECT_FALSE(
      NearNeighborClassifier::deserialize("nn-model 2\n").has_value());
  // Truncate the points section.
  std::string Truncated = Good.substr(0, Good.size() / 2);
  EXPECT_FALSE(
      NearNeighborClassifier::deserialize(Truncated).has_value());
}

//===----------------------------------------------------------------------===//
// SVM serialization
//===----------------------------------------------------------------------===//

TEST(SvmIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(150, 6, 0.1);
  SvmClassifier Svm(firstTwoFeatures());
  Svm.train(Train);
  std::optional<SvmClassifier> Loaded =
      SvmClassifier::deserialize(Svm.serialize());
  ASSERT_TRUE(Loaded.has_value());
  Dataset Queries = cleanDataset(120, 7);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(Loaded->predict(Ex.Features), Svm.predict(Ex.Features));
}

TEST(SvmIoTest, EcocVariantRoundTrips) {
  Dataset Train = cleanDataset(120, 8);
  SvmOptions Options;
  Options.CodeKind = SvmOptions::Code::RandomEcoc;
  Options.EcocBits = 15;
  Options.Decode = SvmOptions::Decoding::Loss;
  SvmClassifier Svm(firstTwoFeatures(), Options);
  Svm.train(Train);
  std::optional<SvmClassifier> Loaded =
      SvmClassifier::deserialize(Svm.serialize());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->options().EcocBits, 15u);
  EXPECT_EQ(Loaded->options().Decode, SvmOptions::Decoding::Loss);
  Dataset Queries = cleanDataset(80, 9);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(Loaded->predict(Ex.Features), Svm.predict(Ex.Features));
}

TEST(SvmIoTest, RejectsCorruptedInput) {
  EXPECT_FALSE(SvmClassifier::deserialize("").has_value());
  EXPECT_FALSE(SvmClassifier::deserialize("svm-model 9\n").has_value());
  Dataset Train = cleanDataset(40, 10);
  SvmClassifier Svm(firstTwoFeatures());
  Svm.train(Train);
  std::string Good = Svm.serialize();
  EXPECT_FALSE(
      SvmClassifier::deserialize(Good.substr(0, Good.size() / 3))
          .has_value());
}

//===----------------------------------------------------------------------===//
// K-fold cross-validation
//===----------------------------------------------------------------------===//

TEST(KFoldTest, AgreesWithLoocvOnCleanData) {
  Dataset Data = cleanDataset(300, 11);
  ClassifierFactory Factory = [](const FeatureSet &F) {
    return std::make_unique<NearNeighborClassifier>(F, 0.3);
  };
  std::vector<unsigned> KFold =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 10);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  std::vector<unsigned> Loocv = loocvPredictions(Nn, Data);
  double KAcc = predictionAccuracy(Data, KFold);
  double LAcc = predictionAccuracy(Data, Loocv);
  EXPECT_NEAR(KAcc, LAcc, 0.05);
  EXPECT_GT(KAcc, 0.85);
}

TEST(KFoldTest, DeterministicForFixedSeed) {
  Dataset Data = cleanDataset(100, 12, 0.2);
  ClassifierFactory Factory = [](const FeatureSet &F) {
    return std::make_unique<NearNeighborClassifier>(F, 0.3);
  };
  std::vector<unsigned> A =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 5, 42);
  std::vector<unsigned> B =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 5, 42);
  EXPECT_EQ(A, B);
}

TEST(KFoldTest, EveryExampleGetsPredicted) {
  Dataset Data = cleanDataset(97, 13); // Not divisible by K.
  ClassifierFactory Factory = [](const FeatureSet &F) {
    return std::make_unique<NearNeighborClassifier>(F, 0.3);
  };
  std::vector<unsigned> Pred =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 7);
  ASSERT_EQ(Pred.size(), Data.size());
  for (unsigned Factor : Pred) {
    EXPECT_GE(Factor, 1u);
    EXPECT_LE(Factor, MaxUnrollFactor);
  }
}

//===----------------------------------------------------------------------===//
// Confusion matrix
//===----------------------------------------------------------------------===//

TEST(ConfusionTest, CountsSumToDatasetSize) {
  Dataset Data = cleanDataset(200, 14, 0.3);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  std::vector<unsigned> Pred = loocvPredictions(Nn, Data);
  ConfusionMatrix Confusion = confusionMatrix(Data, Pred);
  size_t Total = 0, Diagonal = 0;
  for (unsigned R = 0; R < MaxUnrollFactor; ++R)
    for (unsigned C = 0; C < MaxUnrollFactor; ++C) {
      Total += Confusion[R][C];
      if (R == C)
        Diagonal += Confusion[R][C];
    }
  EXPECT_EQ(Total, Data.size());
  EXPECT_NEAR(static_cast<double>(Diagonal) / Total,
              predictionAccuracy(Data, Pred), 1e-12);
}

TEST(ConfusionTest, PerfectPredictionsAreDiagonal) {
  Dataset Data = cleanDataset(80, 15);
  std::vector<unsigned> Perfect;
  for (const Example &Ex : Data.examples())
    Perfect.push_back(Ex.Label);
  ConfusionMatrix Confusion = confusionMatrix(Data, Perfect);
  for (unsigned R = 0; R < MaxUnrollFactor; ++R)
    for (unsigned C = 0; C < MaxUnrollFactor; ++C)
      if (R != C) {
        EXPECT_EQ(Confusion[R][C], 0u);
      }
}

TEST(ConfusionTest, RenderedTableContainsCounts) {
  Dataset Data = cleanDataset(50, 16);
  std::vector<unsigned> Pred(Data.size(), 3);
  ConfusionMatrix Confusion = confusionMatrix(Data, Pred);
  std::string Text = renderConfusionMatrix(Confusion);
  EXPECT_NE(Text.find("u3"), std::string::npos);
  EXPECT_NE(Text.find("Confusion matrix"), std::string::npos);
}
