//===- tests/model_io_test.cpp - Model serialization and CV utilities -----===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// A compiler does not retrain at startup: it ships a trained model. These
// tests pin down the serialize/deserialize round trips for the normalizer
// and both paper classifiers, plus the k-fold validation and confusion
// matrix utilities.
//
//===----------------------------------------------------------------------===//

#include "core/ml/CrossValidation.h"
#include "core/ml/DecisionTree.h"
#include "core/ml/Evaluation.h"
#include "core/ml/Forest.h"
#include "core/ml/Lsh.h"
#include "core/ml/Mlp.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"
#include "core/ml/Regression.h"
#include "support/Rng.h"

#include <cstdio>

#include <algorithm>

#include <gtest/gtest.h>

#include <cmath>

using namespace metaopt;

namespace {

Dataset cleanDataset(size_t N, uint64_t Seed, double LabelNoise = 0.0) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextGaussian();
    double F1 = Generator.nextGaussian();
    Ex.Features[0] = F0;
    Ex.Features[1] = F1;
    Ex.Features[2] = Generator.nextGaussian() * 10.0;
    unsigned Label = 1 + (F0 > 0 ? 1 : 0) + (F1 > 0 ? 2 : 0);
    if (Generator.nextBool(LabelNoise))
      Label = 1 + static_cast<unsigned>(Generator.nextBelow(8));
    Ex.Label = Label;
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      Ex.CyclesPerFactor[F] =
          1000.0 + 100.0 * std::abs(static_cast<int>(F + 1) -
                                    static_cast<int>(Label));
    Ex.LoopName = "loop" + std::to_string(I);
    Ex.BenchmarkName = "bench" + std::to_string(I % 4);
    Data.add(std::move(Ex));
  }
  return Data;
}

FeatureSet firstTwoFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1)};
}

/// Strips the trailing checksum line of an mlp/forest blob so a test can
/// mutate the body, then reseals it with a freshly computed checksum —
/// the way to probe structural validation beneath the checksum layer.
std::string resealChecksum(const std::string &Blob,
                           const std::string &From, const std::string &To) {
  size_t ChecksumPos = Blob.rfind("\nchecksum ");
  EXPECT_NE(ChecksumPos, std::string::npos);
  std::string Body = Blob.substr(0, ChecksumPos + 1);
  size_t At = Body.find(From);
  EXPECT_NE(At, std::string::npos) << From;
  Body.replace(At, From.size(), To);
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "checksum %016llx\n",
                static_cast<unsigned long long>(Rng::hashString(Body)));
  return Body + Buffer;
}

} // namespace

//===----------------------------------------------------------------------===//
// Normalizer serialization
//===----------------------------------------------------------------------===//

TEST(NormalizerIoTest, RoundTripIsBitExact) {
  Dataset Data = cleanDataset(60, 1);
  Normalizer Norm;
  Norm.fit(Data.featureMatrix(),
           {static_cast<FeatureId>(0), static_cast<FeatureId>(2)});
  std::optional<Normalizer> Loaded =
      Normalizer::deserialize(Norm.serialize());
  ASSERT_TRUE(Loaded.has_value());
  for (const Example &Ex : Data.examples()) {
    std::vector<double> A = Norm.apply(Ex.Features);
    std::vector<double> B = Loaded->apply(Ex.Features);
    ASSERT_EQ(A.size(), B.size());
    for (size_t D = 0; D < A.size(); ++D)
      EXPECT_EQ(A[D], B[D]); // Bit-exact via %.17g.
  }
}

TEST(NormalizerIoTest, RejectsGarbage) {
  EXPECT_FALSE(Normalizer::deserialize("").has_value());
  EXPECT_FALSE(Normalizer::deserialize("normalizer zscore x").has_value());
  EXPECT_FALSE(
      Normalizer::deserialize("normalizer sigmoid 1\n0 1 1\n").has_value());
  EXPECT_FALSE(
      Normalizer::deserialize("normalizer zscore 2\n0 1 1\n").has_value());
  EXPECT_FALSE(
      Normalizer::deserialize("normalizer zscore 1\n999 1 1\n").has_value());
}

//===----------------------------------------------------------------------===//
// NearNeighbor serialization
//===----------------------------------------------------------------------===//

TEST(NnIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(200, 2, 0.1);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Train);
  std::optional<NearNeighborClassifier> Loaded =
      NearNeighborClassifier::deserialize(Nn.serialize());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->databaseSize(), Nn.databaseSize());
  EXPECT_DOUBLE_EQ(Loaded->radius(), Nn.radius());
  Dataset Queries = cleanDataset(120, 3);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(Loaded->predict(Ex.Features), Nn.predict(Ex.Features));
}

TEST(NnIoTest, SerializationIsStable) {
  Dataset Train = cleanDataset(50, 4);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Train);
  std::string First = Nn.serialize();
  std::optional<NearNeighborClassifier> Loaded =
      NearNeighborClassifier::deserialize(First);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->serialize(), First);
}

TEST(NnIoTest, RejectsCorruptedInput) {
  Dataset Train = cleanDataset(30, 5);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Train);
  std::string Good = Nn.serialize();
  EXPECT_FALSE(NearNeighborClassifier::deserialize("").has_value());
  EXPECT_FALSE(
      NearNeighborClassifier::deserialize("nn-model 2\n").has_value());
  // Truncate the points section.
  std::string Truncated = Good.substr(0, Good.size() / 2);
  EXPECT_FALSE(
      NearNeighborClassifier::deserialize(Truncated).has_value());
}

//===----------------------------------------------------------------------===//
// SVM serialization
//===----------------------------------------------------------------------===//

TEST(SvmIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(150, 6, 0.1);
  SvmClassifier Svm(firstTwoFeatures());
  Svm.train(Train);
  std::optional<SvmClassifier> Loaded =
      SvmClassifier::deserialize(Svm.serialize());
  ASSERT_TRUE(Loaded.has_value());
  Dataset Queries = cleanDataset(120, 7);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(Loaded->predict(Ex.Features), Svm.predict(Ex.Features));
}

TEST(SvmIoTest, EcocVariantRoundTrips) {
  Dataset Train = cleanDataset(120, 8);
  SvmOptions Options;
  Options.CodeKind = SvmOptions::Code::RandomEcoc;
  Options.EcocBits = 15;
  Options.Decode = SvmOptions::Decoding::Loss;
  SvmClassifier Svm(firstTwoFeatures(), Options);
  Svm.train(Train);
  std::optional<SvmClassifier> Loaded =
      SvmClassifier::deserialize(Svm.serialize());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->options().EcocBits, 15u);
  EXPECT_EQ(Loaded->options().Decode, SvmOptions::Decoding::Loss);
  Dataset Queries = cleanDataset(80, 9);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(Loaded->predict(Ex.Features), Svm.predict(Ex.Features));
}

TEST(SvmIoTest, RejectsCorruptedInput) {
  EXPECT_FALSE(SvmClassifier::deserialize("").has_value());
  EXPECT_FALSE(SvmClassifier::deserialize("svm-model 9\n").has_value());
  Dataset Train = cleanDataset(40, 10);
  SvmClassifier Svm(firstTwoFeatures());
  Svm.train(Train);
  std::string Good = Svm.serialize();
  EXPECT_FALSE(
      SvmClassifier::deserialize(Good.substr(0, Good.size() / 3))
          .has_value());
}

//===----------------------------------------------------------------------===//
// Decision tree serialization
//===----------------------------------------------------------------------===//

TEST(DtreeIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(200, 11, 0.1);
  DecisionTreeClassifier Tree(firstTwoFeatures());
  Tree.train(Train);
  std::optional<DecisionTreeClassifier> Loaded =
      DecisionTreeClassifier::deserialize(Tree.serialize());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->numNodes(), Tree.numNodes());
  EXPECT_EQ(Loaded->depth(), Tree.depth());
  Dataset Queries = cleanDataset(120, 12);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(Loaded->predict(Ex.Features), Tree.predict(Ex.Features));
}

TEST(DtreeIoTest, SerializationIsStable) {
  Dataset Train = cleanDataset(80, 13);
  DecisionTreeClassifier Tree(firstTwoFeatures());
  Tree.train(Train);
  std::string First = Tree.serialize();
  std::optional<DecisionTreeClassifier> Loaded =
      DecisionTreeClassifier::deserialize(First);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->serialize(), First);
}

TEST(DtreeIoTest, RejectsCorruptedInput) {
  EXPECT_FALSE(DecisionTreeClassifier::deserialize("").has_value());
  EXPECT_FALSE(
      DecisionTreeClassifier::deserialize("dtree-model 2\n").has_value());
  Dataset Train = cleanDataset(60, 14);
  DecisionTreeClassifier Tree(firstTwoFeatures());
  Tree.train(Train);
  std::string Good = Tree.serialize();
  EXPECT_FALSE(
      DecisionTreeClassifier::deserialize(Good.substr(0, Good.size() / 2))
          .has_value());
}

TEST(DtreeIoTest, RejectsCyclicNodeLinks) {
  // An internal node whose child points back at it has in-range indices
  // but would make predict() walk forever; the depth invariant must
  // reject it.
  std::string Blob = "dtree-model 1\n"
                     "limits 12 5 0.98\n"
                     "normalizer zscore 1\n"
                     "0 0 1\n"
                     "nodes 2 root 0\n"
                     "0 1 0 0.5 1 1 0\n"
                     "0 2 0 0.25 0 0 1\n";
  EXPECT_FALSE(DecisionTreeClassifier::deserialize(Blob).has_value());
}

//===----------------------------------------------------------------------===//
// LSH serialization
//===----------------------------------------------------------------------===//

TEST(LshIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(200, 15, 0.1);
  LshNearNeighborClassifier Lsh(firstTwoFeatures());
  Lsh.train(Train);
  std::optional<LshNearNeighborClassifier> Loaded =
      LshNearNeighborClassifier::deserialize(Lsh.serialize());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->databaseSize(), Lsh.databaseSize());
  Dataset Queries = cleanDataset(120, 16);
  for (const Example &Ex : Queries.examples()) {
    EXPECT_EQ(Loaded->predict(Ex.Features), Lsh.predict(Ex.Features));
    // The seed-regrown tables must agree bucket for bucket, so the two
    // classifiers scan the same candidate sets.
    EXPECT_EQ(Loaded->lastCandidateCount(), Lsh.lastCandidateCount());
  }
}

TEST(LshIoTest, SerializationIsStable) {
  Dataset Train = cleanDataset(80, 17);
  LshNearNeighborClassifier Lsh(firstTwoFeatures());
  Lsh.train(Train);
  std::string First = Lsh.serialize();
  std::optional<LshNearNeighborClassifier> Loaded =
      LshNearNeighborClassifier::deserialize(First);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->serialize(), First);
}

TEST(LshIoTest, RejectsCorruptedInput) {
  EXPECT_FALSE(LshNearNeighborClassifier::deserialize("").has_value());
  EXPECT_FALSE(
      LshNearNeighborClassifier::deserialize("lsh-model 2\n").has_value());
  Dataset Train = cleanDataset(60, 18);
  LshNearNeighborClassifier Lsh(firstTwoFeatures());
  Lsh.train(Train);
  std::string Good = Lsh.serialize();
  EXPECT_FALSE(LshNearNeighborClassifier::deserialize(
                   Good.substr(0, Good.size() / 2))
                   .has_value());
}

//===----------------------------------------------------------------------===//
// Kernel ridge regression serialization
//===----------------------------------------------------------------------===//

TEST(KrrIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(120, 19, 0.1);
  KrrUnrollRegressor Krr(firstTwoFeatures());
  Krr.train(Train);
  std::optional<KrrUnrollRegressor> Loaded =
      KrrUnrollRegressor::deserialize(Krr.serialize());
  ASSERT_TRUE(Loaded.has_value());
  Dataset Queries = cleanDataset(80, 20);
  for (const Example &Ex : Queries.examples()) {
    EXPECT_EQ(Loaded->predictValue(Ex.Features),
              Krr.predictValue(Ex.Features)); // Bit-exact via %.17g.
    EXPECT_EQ(Loaded->predict(Ex.Features), Krr.predict(Ex.Features));
  }
}

TEST(KrrIoTest, RestoredModelSupportsLoocv) {
  Dataset Train = cleanDataset(60, 21);
  KrrUnrollRegressor Krr(firstTwoFeatures());
  Krr.train(Train);
  std::optional<KrrUnrollRegressor> Loaded =
      KrrUnrollRegressor::deserialize(Krr.serialize());
  ASSERT_TRUE(Loaded.has_value());
  // The solver is rebuilt lazily from the restored points.
  std::vector<double> Original = Krr.looValues();
  std::vector<double> Restored = Loaded->looValues();
  ASSERT_EQ(Original.size(), Restored.size());
  for (size_t I = 0; I < Original.size(); ++I)
    EXPECT_NEAR(Original[I], Restored[I], 1e-9);
}

TEST(KrrIoTest, RejectsCorruptedInput) {
  EXPECT_FALSE(KrrUnrollRegressor::deserialize("").has_value());
  EXPECT_FALSE(
      KrrUnrollRegressor::deserialize("krr-model 2\n").has_value());
  Dataset Train = cleanDataset(50, 22);
  KrrUnrollRegressor Krr(firstTwoFeatures());
  Krr.train(Train);
  std::string Good = Krr.serialize();
  EXPECT_FALSE(
      KrrUnrollRegressor::deserialize(Good.substr(0, Good.size() / 2))
          .has_value());
}

//===----------------------------------------------------------------------===//
// MLP serialization
//===----------------------------------------------------------------------===//

TEST(MlpIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(150, 25, 0.1);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  std::optional<MlpClassifier> Loaded =
      MlpClassifier::deserialize(Mlp.serialize());
  ASSERT_TRUE(Loaded.has_value());
  Dataset Queries = cleanDataset(120, 26);
  for (const Example &Ex : Queries.examples()) {
    EXPECT_EQ(Loaded->predict(Ex.Features), Mlp.predict(Ex.Features));
    auto A = Mlp.scores(Ex.Features);
    auto B = Loaded->scores(Ex.Features);
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      EXPECT_EQ(A[F], B[F]); // Bit-exact via %.17g.
  }
}

TEST(MlpIoTest, SerializationIsStable) {
  Dataset Train = cleanDataset(80, 27);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  std::string First = Mlp.serialize();
  std::optional<MlpClassifier> Loaded = MlpClassifier::deserialize(First);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->serialize(), First);
}

TEST(MlpIoTest, RejectsTruncatedInputWithDiagnostic) {
  Dataset Train = cleanDataset(60, 28);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  std::string Good = Mlp.serialize();
  std::string Error;
  EXPECT_FALSE(MlpClassifier::deserialize("", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(MlpClassifier::deserialize(Good.substr(0, Good.size() / 2),
                                          &Error)
                   .has_value());
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
}

TEST(MlpIoTest, RejectsChecksumTamperWithDiagnostic) {
  Dataset Train = cleanDataset(60, 29);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  std::string Tampered = Mlp.serialize();
  // Flip one byte of the body (the options keyword) without resealing.
  size_t At = Tampered.find("options");
  ASSERT_NE(At, std::string::npos);
  Tampered[At] = 'O';
  std::string Error;
  EXPECT_FALSE(MlpClassifier::deserialize(Tampered, &Error).has_value());
  EXPECT_NE(Error.find("checksum mismatch"), std::string::npos) << Error;
}

TEST(MlpIoTest, RejectsBadLayerShapeWithDiagnostic) {
  Dataset Train = cleanDataset(60, 30);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  std::string Good = Mlp.serialize();
  // Claim the first layer consumes 3 inputs when the normalizer emits 2;
  // the checksum is resealed, so the structural check must catch it.
  std::string BadShape = resealChecksum(Good, "layer 0 24 2", "layer 0 24 3");
  std::string Error;
  EXPECT_FALSE(MlpClassifier::deserialize(BadShape, &Error).has_value());
  EXPECT_NE(Error.find("bad layer shape"), std::string::npos) << Error;
}

TEST(MlpIoTest, RejectsBadLayerCountWithDiagnostic) {
  Dataset Train = cleanDataset(60, 31);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  std::string BadCount =
      resealChecksum(Mlp.serialize(), "layers 2", "layers 9");
  std::string Error;
  EXPECT_FALSE(MlpClassifier::deserialize(BadCount, &Error).has_value());
  EXPECT_NE(Error.find("layer count"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Random forest serialization
//===----------------------------------------------------------------------===//

TEST(ForestIoTest, RoundTripPredictsIdentically) {
  Dataset Train = cleanDataset(150, 32, 0.1);
  RandomForestClassifier Forest(firstTwoFeatures());
  Forest.train(Train);
  std::optional<RandomForestClassifier> Loaded =
      RandomForestClassifier::deserialize(Forest.serialize());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->numTrees(), Forest.numTrees());
  Dataset Queries = cleanDataset(120, 33);
  for (const Example &Ex : Queries.examples()) {
    EXPECT_EQ(Loaded->predict(Ex.Features), Forest.predict(Ex.Features));
    auto A = Forest.scores(Ex.Features);
    auto B = Loaded->scores(Ex.Features);
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      EXPECT_EQ(A[F], B[F]);
  }
}

TEST(ForestIoTest, SerializationIsStable) {
  Dataset Train = cleanDataset(80, 34);
  RandomForestClassifier Forest(firstTwoFeatures());
  Forest.train(Train);
  std::string First = Forest.serialize();
  std::optional<RandomForestClassifier> Loaded =
      RandomForestClassifier::deserialize(First);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->serialize(), First);
}

TEST(ForestIoTest, RejectsTruncatedInputWithDiagnostic) {
  Dataset Train = cleanDataset(60, 35);
  RandomForestClassifier Forest(firstTwoFeatures());
  Forest.train(Train);
  std::string Good = Forest.serialize();
  std::string Error;
  EXPECT_FALSE(RandomForestClassifier::deserialize("", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(
      RandomForestClassifier::deserialize(Good.substr(0, Good.size() / 2),
                                          &Error)
          .has_value());
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
}

TEST(ForestIoTest, RejectsChecksumTamperWithDiagnostic) {
  Dataset Train = cleanDataset(60, 36);
  RandomForestClassifier Forest(firstTwoFeatures());
  Forest.train(Train);
  std::string Tampered = Forest.serialize();
  size_t At = Tampered.find("options");
  ASSERT_NE(At, std::string::npos);
  Tampered[At] = 'O';
  std::string Error;
  EXPECT_FALSE(
      RandomForestClassifier::deserialize(Tampered, &Error).has_value());
  EXPECT_NE(Error.find("checksum mismatch"), std::string::npos) << Error;
}

TEST(ForestIoTest, RejectsBadTreeCountWithDiagnostic) {
  Dataset Train = cleanDataset(60, 37);
  RandomForestOptions Options;
  Options.NumTrees = 4;
  RandomForestClassifier Forest(firstTwoFeatures(), Options);
  Forest.train(Train);
  std::string Good = Forest.serialize();
  std::string Error;
  // Zero trees, resealed: structurally invalid.
  EXPECT_FALSE(RandomForestClassifier::deserialize(
                   resealChecksum(Good, "trees 4\n", "trees 0\n"), &Error)
                   .has_value());
  EXPECT_NE(Error.find("tree count"), std::string::npos) << Error;
  // A count disagreeing with the options header is equally rejected.
  Error.clear();
  EXPECT_FALSE(RandomForestClassifier::deserialize(
                   resealChecksum(Good, "trees 4\n", "trees 3\n"), &Error)
                   .has_value());
  EXPECT_NE(Error.find("tree count"), std::string::npos) << Error;
}

TEST(ForestIoTest, RejectsTamperedEmbeddedTreeWithDiagnostic) {
  Dataset Train = cleanDataset(60, 38);
  RandomForestOptions Options;
  Options.NumTrees = 2;
  RandomForestClassifier Forest(firstTwoFeatures(), Options);
  Forest.train(Train);
  // Corrupt the first embedded tree's header; the frame still parses, so
  // the failure must come from the per-tree deserializer.
  std::string Bad = resealChecksum(Forest.serialize(), "dtree-model 1",
                                   "dtree-model 9");
  std::string Error;
  EXPECT_FALSE(RandomForestClassifier::deserialize(Bad, &Error).has_value());
  EXPECT_NE(Error.find("tree"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Loader registry
//===----------------------------------------------------------------------===//

TEST(RegistryTest, AllBuiltinsAreRegistered) {
  std::vector<std::string> Names = registeredClassifierNames();
  for (const char *Expected :
       {"near-neighbor", "svm", "svm-ecoc", "decision-tree", "lsh-nn",
        "krr-regression", "mlp", "random-forest"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Expected),
              Names.end())
        << "missing loader for " << Expected;
}

TEST(RegistryTest, RestoresEveryBuiltinPolymorphically) {
  Dataset Train = cleanDataset(100, 23);
  std::vector<std::unique_ptr<Classifier>> Trained;
  Trained.push_back(
      std::make_unique<NearNeighborClassifier>(firstTwoFeatures(), 0.3));
  Trained.push_back(std::make_unique<SvmClassifier>(firstTwoFeatures()));
  Trained.push_back(
      std::make_unique<DecisionTreeClassifier>(firstTwoFeatures()));
  Trained.push_back(
      std::make_unique<LshNearNeighborClassifier>(firstTwoFeatures()));
  Trained.push_back(
      std::make_unique<KrrUnrollRegressor>(firstTwoFeatures()));
  Trained.push_back(std::make_unique<MlpClassifier>(firstTwoFeatures()));
  Trained.push_back(
      std::make_unique<RandomForestClassifier>(firstTwoFeatures()));
  Dataset Queries = cleanDataset(60, 24);
  for (const auto &Model : Trained) {
    Model->train(Train);
    std::unique_ptr<Classifier> Loaded =
        deserializeClassifier(Model->serialize(), Model->name());
    ASSERT_NE(Loaded, nullptr) << Model->name();
    EXPECT_EQ(Loaded->name(), Model->name());
    for (const Example &Ex : Queries.examples())
      EXPECT_EQ(Loaded->predict(Ex.Features), Model->predict(Ex.Features))
          << Model->name();
  }
}

//===----------------------------------------------------------------------===//
// K-fold cross-validation
//===----------------------------------------------------------------------===//

TEST(KFoldTest, AgreesWithLoocvOnCleanData) {
  Dataset Data = cleanDataset(300, 11);
  ClassifierFactory Factory = [](const FeatureSet &F) {
    return std::make_unique<NearNeighborClassifier>(F, 0.3);
  };
  std::vector<unsigned> KFold =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 10);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  std::vector<unsigned> Loocv = loocvPredictions(Nn, Data);
  double KAcc = predictionAccuracy(Data, KFold);
  double LAcc = predictionAccuracy(Data, Loocv);
  EXPECT_NEAR(KAcc, LAcc, 0.05);
  EXPECT_GT(KAcc, 0.85);
}

TEST(KFoldTest, DeterministicForFixedSeed) {
  Dataset Data = cleanDataset(100, 12, 0.2);
  ClassifierFactory Factory = [](const FeatureSet &F) {
    return std::make_unique<NearNeighborClassifier>(F, 0.3);
  };
  std::vector<unsigned> A =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 5, 42);
  std::vector<unsigned> B =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 5, 42);
  EXPECT_EQ(A, B);
}

TEST(KFoldTest, EveryExampleGetsPredicted) {
  Dataset Data = cleanDataset(97, 13); // Not divisible by K.
  ClassifierFactory Factory = [](const FeatureSet &F) {
    return std::make_unique<NearNeighborClassifier>(F, 0.3);
  };
  std::vector<unsigned> Pred =
      kFoldPredictions(Factory, firstTwoFeatures(), Data, 7);
  ASSERT_EQ(Pred.size(), Data.size());
  for (unsigned Factor : Pred) {
    EXPECT_GE(Factor, 1u);
    EXPECT_LE(Factor, MaxUnrollFactor);
  }
}

//===----------------------------------------------------------------------===//
// Confusion matrix
//===----------------------------------------------------------------------===//

TEST(ConfusionTest, CountsSumToDatasetSize) {
  Dataset Data = cleanDataset(200, 14, 0.3);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  std::vector<unsigned> Pred = loocvPredictions(Nn, Data);
  ConfusionMatrix Confusion = confusionMatrix(Data, Pred);
  size_t Total = 0, Diagonal = 0;
  for (unsigned R = 0; R < MaxUnrollFactor; ++R)
    for (unsigned C = 0; C < MaxUnrollFactor; ++C) {
      Total += Confusion[R][C];
      if (R == C)
        Diagonal += Confusion[R][C];
    }
  EXPECT_EQ(Total, Data.size());
  EXPECT_NEAR(static_cast<double>(Diagonal) / Total,
              predictionAccuracy(Data, Pred), 1e-12);
}

TEST(ConfusionTest, PerfectPredictionsAreDiagonal) {
  Dataset Data = cleanDataset(80, 15);
  std::vector<unsigned> Perfect;
  for (const Example &Ex : Data.examples())
    Perfect.push_back(Ex.Label);
  ConfusionMatrix Confusion = confusionMatrix(Data, Perfect);
  for (unsigned R = 0; R < MaxUnrollFactor; ++R)
    for (unsigned C = 0; C < MaxUnrollFactor; ++C)
      if (R != C) {
        EXPECT_EQ(Confusion[R][C], 0u);
      }
}

TEST(ConfusionTest, RenderedTableContainsCounts) {
  Dataset Data = cleanDataset(50, 16);
  std::vector<unsigned> Pred(Data.size(), 3);
  ConfusionMatrix Confusion = confusionMatrix(Data, Pred);
  std::string Text = renderConfusionMatrix(Confusion);
  EXPECT_NE(Text.find("u3"), std::string::npos);
  EXPECT_NE(Text.find("Confusion matrix"), std::string::npos);
}
