//===- tests/schedprinter_test.cpp - Schedule rendering + round trips -----===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Covers the schedule pretty-printer, the resource treatment of paired
// wide loads, and a corpus-wide print->parse->print round-trip property.
//
//===----------------------------------------------------------------------===//

#include "corpus/BenchmarkSuite.h"
#include "ir/LoopBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "sched/IterativeModulo.h"
#include "sched/ListScheduler.h"
#include "sched/ModuloScheduler.h"
#include "sched/SchedulePrinter.h"
#include "transform/MemoryOpt.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

Loop makeStream() {
  LoopBuilder B("stream", SourceLanguage::C, 1, 512);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(X, {1, 8, 0, false, 8});
  return B.finalize();
}

} // namespace

//===----------------------------------------------------------------------===//
// occupiesIssueSlot / paired-load scheduling
//===----------------------------------------------------------------------===//

TEST(PairedLoadTest, OccupiesIssueSlotClassification) {
  Loop L = makeStream();
  for (const Instruction &Instr : L.body()) {
    if (Instr.Op == Opcode::IvAdd || Instr.Op == Opcode::IvCmp)
      EXPECT_FALSE(occupiesIssueSlot(Instr));
    else
      EXPECT_TRUE(occupiesIssueSlot(Instr));
  }
  Instruction PairedLoad;
  PairedLoad.Op = Opcode::Load;
  PairedLoad.Paired = true;
  EXPECT_FALSE(occupiesIssueSlot(PairedLoad));
}

TEST(PairedLoadTest, PairingShortensMemBoundSchedules) {
  // Eight streaming loads saturate the 4 M units; after unroll+pairing,
  // half of them ride free, so the schedule must shrink.
  MachineModel M(itanium2Config());
  Loop L = makeStream();
  Loop Plain = unrollLoop(L, 8);
  Loop Optimized = unrollLoop(L, 8);
  optimizeMemory(Optimized);

  DependenceGraph DgPlain(Plain), DgOpt(Optimized);
  Schedule SchedPlain = listSchedule(Plain, DgPlain, M);
  Schedule SchedOpt = listSchedule(Optimized, DgOpt, M);
  EXPECT_LT(SchedOpt.Length, SchedPlain.Length);
}

TEST(PairedLoadTest, PairingLowersResourceMii) {
  MachineModel M(itanium2Config());
  Loop L = makeStream();
  Loop Plain = unrollLoop(L, 8);
  Loop Optimized = unrollLoop(L, 8);
  optimizeMemory(Optimized);
  EXPECT_LT(resourceMIIForLoop(Optimized, M),
            resourceMIIForLoop(Plain, M));
}

//===----------------------------------------------------------------------===//
// SchedulePrinter
//===----------------------------------------------------------------------===//

TEST(SchedulePrinterTest, ListScheduleShowsEveryInstruction) {
  MachineModel M(itanium2Config());
  Loop L = makeStream();
  DependenceGraph DG(L);
  Schedule Sched = listSchedule(L, DG, M);
  std::string Text = printSchedule(L, Sched, M);
  EXPECT_NE(Text.find("c0:"), std::string::npos);
  EXPECT_NE(Text.find("load"), std::string::npos);
  EXPECT_NE(Text.find("store"), std::string::npos);
  EXPECT_NE(Text.find("back_br"), std::string::npos);
  // Unit tags appear.
  EXPECT_NE(Text.find("[M]"), std::string::npos);
  EXPECT_NE(Text.find("[B]"), std::string::npos);
}

TEST(SchedulePrinterTest, ModuloKernelShowsSlotsAndStages) {
  MachineModel M(itanium2Config());
  Loop L = unrollLoop(makeStream(), 4);
  DependenceGraph DG(L);
  ModuloScheduleResult Kernel = iterativeModuloSchedule(L, DG, M);
  ASSERT_TRUE(Kernel.Succeeded);
  std::string Text = printModuloSchedule(L, Kernel, M);
  EXPECT_NE(Text.find("II=" + std::to_string(Kernel.II)),
            std::string::npos);
  EXPECT_NE(Text.find("s0:"), std::string::npos);
  EXPECT_NE(Text.find("stage"), std::string::npos);
}

TEST(SchedulePrinterTest, FailedModuloScheduleSaysSo) {
  MachineModel M(itanium2Config());
  ModuloScheduleResult Nothing;
  Loop L = makeStream();
  EXPECT_EQ(printModuloSchedule(L, Nothing, M), "no modulo schedule\n");
}

//===----------------------------------------------------------------------===//
// Corpus-wide textual round trip
//===----------------------------------------------------------------------===//

TEST(RoundTripTest, EveryCorpusLoopSurvivesPrintParsePrint) {
  CorpusOptions Options;
  Options.MinLoopsPerBenchmark = 3;
  Options.MaxLoopsPerBenchmark = 4;
  std::vector<Benchmark> Corpus = buildCorpus(Options);
  size_t Checked = 0;
  for (const Benchmark &Bench : Corpus) {
    for (const CorpusLoop &Entry : Bench.Loops) {
      std::string First = printLoop(Entry.TheLoop);
      ParseResult Result = parseLoops(First);
      ASSERT_TRUE(Result.succeeded())
          << Entry.TheLoop.name() << ": " << Result.Error;
      ASSERT_EQ(Result.Loops.size(), 1u);
      EXPECT_EQ(printLoop(Result.Loops[0]), First)
          << Entry.TheLoop.name();
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 200u);
}

TEST(RoundTripTest, OptimizedUnrolledLoopsSurviveToo) {
  CorpusOptions Options;
  Options.MinLoopsPerBenchmark = 1;
  Options.MaxLoopsPerBenchmark = 1;
  std::vector<Benchmark> Corpus = buildCorpus(Options);
  size_t Checked = 0;
  for (const Benchmark &Bench : Corpus) {
    for (const CorpusLoop &Entry : Bench.Loops) {
      Loop U = unrollLoop(Entry.TheLoop, 4);
      optimizeMemory(U);
      std::string First = printLoop(U);
      ParseResult Result = parseLoops(First);
      ASSERT_TRUE(Result.succeeded()) << U.name() << ": " << Result.Error;
      EXPECT_EQ(printLoop(Result.Loops[0]), First) << U.name();
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 72u);
}
