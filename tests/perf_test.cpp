//===- tests/perf_test.cpp - Labeling fast-path perf & identity -----------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Guards the labeling fast path (sim/SimCompile.h) on two fronts:
//
//  * Byte-identity: the compiled plan evaluated at every factor must
//    reproduce simulateLoop's SimResult bit for bit, over both a
//    generated corpus slice and every promoted fuzz reproducer in
//    tests/fuzz_seeds/ — the seeds are loops that broke an oracle once,
//    so they are exactly the structures most likely to diverge.
//
//  * Throughput: the production labeling configuration (pruning on,
//    4 threads) must beat the serial reference sweep by >= 1.5x on the
//    quick corpus while producing the byte-identical dataset. The
//    committed BENCH_pipeline.json records ~2.2x, so the floor leaves
//    headroom for CI noise; see docs/PERF.md for the design.
//
// The suite carries the ctest label `perf` so the CI bench-smoke job can
// run it in isolation (`ctest -L perf`) on a Release build.
//
//===----------------------------------------------------------------------===//

#include "cache/SimCache.h"
#include "concurrency/ThreadPool.h"
#include "core/driver/LabelCollector.h"
#include "corpus/BenchmarkSuite.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "machine/Machine.h"
#include "sim/SimCompile.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef METAOPT_FUZZ_SEED_DIR
#error "METAOPT_FUZZ_SEED_DIR must point at tests/fuzz_seeds"
#endif

using namespace metaopt;

namespace {

/// Asserts plan evaluation == simulateLoop at every factor, both SWP
/// modes, under \p Ctx. \p Where names the loop in failure output.
void expectFastPathMatches(const Loop &L, const MachineModel &Machine,
                           const SimContext &Ctx, SimBodyStatsCache *Cache,
                           const std::string &Where) {
  for (bool Swp : {false, true}) {
    LoopSimPlan Plan = compileLoopSim(L, Machine, Ctx, Swp, Cache);
    for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
      SimResult Ref = simulateLoop(L, Factor, Machine, Ctx, Swp);
      SimResult Fast = evaluatePlan(Plan, Factor, Machine, Ctx);
      EXPECT_TRUE(Ref == Fast)
          << Where << " factor " << Factor << " swp " << Swp
          << ": cycles " << Ref.Cycles << " vs " << Fast.Cycles;
    }
  }
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One cold-cache labeling sweep; returns wall seconds, CSV via out-param.
double timedSweep(const std::vector<Benchmark> &Corpus,
                  bool PruneEquivalent, unsigned Threads,
                  std::string *OutCsv) {
  ThreadPool::setGlobalThreads(Threads);
  SimCache RunCache;
  LabelingOptions Options;
  Options.PruneEquivalent = PruneEquivalent;
  Options.Cache = &RunCache;
  auto Start = std::chrono::steady_clock::now();
  Dataset Data = collectLabels(Corpus, Options);
  double Seconds = secondsSince(Start);
  *OutCsv = Data.toCsv();
  return Seconds;
}

} // namespace

TEST(FastPathIdentity, MatchesReferenceOnGeneratedCorpus) {
  CorpusOptions CorpusOpts;
  CorpusOpts.MinLoopsPerBenchmark = 2;
  CorpusOpts.MaxLoopsPerBenchmark = 4;
  std::vector<Benchmark> Corpus = buildCorpus(CorpusOpts);
  MachineModel Machine(itanium2Config());
  SimBodyStatsCache Cache; // Shared: identity must survive body sharing.
  size_t Checked = 0;
  for (const Benchmark &Bench : Corpus) {
    for (const CorpusLoop &Entry : Bench.Loops) {
      expectFastPathMatches(Entry.TheLoop, Machine, Entry.Ctx, &Cache,
                            Bench.Name + "/" + Entry.TheLoop.name());
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 20u);
  // The corpus repeats loop shapes, so the body cache must actually share.
  EXPECT_GT(Cache.hits(), 0u);
}

TEST(FastPathIdentity, MatchesReferenceOnFuzzSeeds) {
  namespace fs = std::filesystem;
  fs::path Dir(METAOPT_FUZZ_SEED_DIR);
  ASSERT_TRUE(fs::exists(Dir)) << Dir;
  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  SimBodyStatsCache Cache;
  unsigned Compared = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".loop")
      continue;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In) << Entry.path();
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    ParseResult Parsed =
        parseLoops(Buffer.str(), Entry.path().filename().string());
    ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
    for (const Loop &L : Parsed.Loops) {
      if (!isWellFormed(L) || L.runtimeTripCount() < 0)
        continue; // simulateLoop itself rejects these.
      expectFastPathMatches(L, Machine, Ctx, &Cache,
                            Entry.path().filename().string() + "/" +
                                L.name());
      ++Compared;
    }
  }
  EXPECT_GT(Compared, 0u);
}

TEST(LabelingThroughput, ProductionBeatsSerialReferenceAt4Threads) {
  std::vector<Benchmark> Corpus = buildCorpus(CorpusOptions{});

  // Best-of-two per mode damps scheduler noise on busy CI machines; the
  // floor (1.5x) sits well under the ~2.2x the bench records.
  std::string SerialCsv, ProductionCsv;
  double Serial = timedSweep(Corpus, /*PruneEquivalent=*/false,
                             /*Threads=*/1, &SerialCsv);
  {
    std::string Again;
    Serial = std::min(Serial, timedSweep(Corpus, false, 1, &Again));
    ASSERT_EQ(SerialCsv, Again);
  }
  double Production = timedSweep(Corpus, /*PruneEquivalent=*/true,
                                 /*Threads=*/4, &ProductionCsv);
  {
    std::string Again;
    Production = std::min(Production, timedSweep(Corpus, true, 4, &Again));
    ASSERT_EQ(ProductionCsv, Again);
  }
  ThreadPool::setGlobalThreads(ThreadPool::defaultThreadCount());

  // The contract half: identical datasets.
  EXPECT_EQ(SerialCsv, ProductionCsv);
  // The throughput half: the whole point of the fast path.
  ASSERT_GT(Production, 0.0);
  EXPECT_GE(Serial / Production, 1.5)
      << "serial " << Serial << "s vs production " << Production << "s";
}
