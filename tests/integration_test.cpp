//===- tests/integration_test.cpp - End-to-end pipeline tests -------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// These tests run the paper's whole methodology on a reduced corpus and
// assert the *shapes* of the headline results: learned classifiers beat
// the hand-written heuristic on prediction rank, mispredict costs grow
// with rank, and the parse -> predict -> unroll -> schedule -> simulate
// compiler path works on novel loops.
//
//===----------------------------------------------------------------------===//

#include "core/driver/Heuristics.h"
#include "core/driver/Pipeline.h"
#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"
#include "heuristics/OrcLikeHeuristic.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "sim/Simulator.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

/// Shared fixture: label a reduced corpus once for the whole test suite.
class IntegrationTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    PipelineOptions Options;
    Options.Corpus.MinLoopsPerBenchmark = 5;
    Options.Corpus.MaxLoopsPerBenchmark = 8;
    Options.CacheDir = "";
    Pipe = new Pipeline(Options);
    Data = &Pipe->dataset(/*EnableSwp=*/false);
  }
  static void TearDownTestSuite() {
    delete Pipe;
    Pipe = nullptr;
    Data = nullptr;
  }

  static Pipeline *Pipe;
  static const Dataset *Data;
};

Pipeline *IntegrationTest::Pipe = nullptr;
const Dataset *IntegrationTest::Data = nullptr;

} // namespace

TEST_F(IntegrationTest, DatasetIsSubstantial) {
  EXPECT_GT(Data->size(), 200u);
  // Labels span several factors; no single factor has a majority beyond
  // 70% (Figure 3's "no one unroll factor is dominantly better").
  auto Histogram = Data->labelHistogram();
  size_t Max = 0, Nonzero = 0;
  for (size_t Count : Histogram) {
    Max = std::max(Max, Count);
    Nonzero += Count > 0;
  }
  EXPECT_GE(Nonzero, 5u);
  EXPECT_LT(static_cast<double>(Max) / Data->size(), 0.7);
}

TEST_F(IntegrationTest, LearnedBeatsHandWrittenOnRank) {
  FeatureSet Features = paperReducedFeatureSet();
  NearNeighborClassifier Nn(Features, 0.3);
  std::vector<unsigned> NnPred = loocvPredictions(Nn, *Data);

  MachineModel Machine(itanium2Config());
  OrcLikeHeuristic Orc(Machine, false);
  std::vector<unsigned> OrcPred;
  std::map<std::string, const Loop *> ByName;
  for (const Benchmark &Bench : Pipe->corpus())
    for (const CorpusLoop &Entry : Bench.Loops)
      ByName[Entry.TheLoop.name()] = &Entry.TheLoop;
  for (const Example &Ex : Data->examples())
    OrcPred.push_back(Orc.chooseFactor(*ByName.at(Ex.LoopName)));

  RankDistribution NnRank = rankDistribution(*Data, NnPred);
  RankDistribution OrcRank = rankDistribution(*Data, OrcPred);
  // The paper's central claim: the learned classifier is substantially
  // more accurate than the production heuristic.
  EXPECT_GT(NnRank.accuracy(), OrcRank.accuracy());
  EXPECT_GT(NnRank.accuracy(), 0.3);
  // And cheaper on average when it mispredicts.
  EXPECT_LT(meanCostOfPredictions(*Data, NnPred),
            meanCostOfPredictions(*Data, OrcPred));
}

TEST_F(IntegrationTest, CostGrowsWithRank) {
  auto Cost = costByRank(*Data);
  EXPECT_DOUBLE_EQ(Cost[0], 1.0);
  for (unsigned R = 1; R < MaxUnrollFactor; ++R)
    EXPECT_GE(Cost[R] + 1e-9, Cost[R - 1]) << "rank " << R;
  // The worst choice hurts: the paper reports 1.77x, ours lands in the
  // same regime (well above 1.3x, below 5x).
  EXPECT_GT(Cost[MaxUnrollFactor - 1], 1.3);
  EXPECT_LT(Cost[MaxUnrollFactor - 1], 5.0);
}

TEST_F(IntegrationTest, SvmAndNnAgreeOnMostLoops) {
  FeatureSet Features = paperReducedFeatureSet();
  Rng Subsampler(5);
  Dataset Small = Data->subsample(400, Subsampler);
  NearNeighborClassifier Nn(Features, 0.3);
  Nn.train(Small);
  SvmClassifier Svm(Features);
  Svm.train(Small);
  size_t Agree = 0;
  for (const Example &Ex : Small.examples())
    Agree += Nn.predict(Ex.Features) == Svm.predict(Ex.Features);
  EXPECT_GT(static_cast<double>(Agree) / Small.size(), 0.5);
}

TEST_F(IntegrationTest, CompilerPathOnNovelLoop) {
  // Train, then compile a loop that is not in the corpus, end to end.
  FeatureSet Features = paperReducedFeatureSet();
  NearNeighborClassifier Nn(Features, 0.3);
  Nn.train(*Data);
  LearnedHeuristic Policy(Nn);

  const char *Source = R"(
loop "novel" lang=C nest=1 trip=512 rtrip=512 {
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_m = fmul %f_x, %f_y
  store %f_m, @2[stride=8, offset=0, size=8]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
)";
  ParseResult Parsed = parseLoops(Source);
  ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
  const Loop &Novel = Parsed.Loops[0];

  unsigned Factor = Policy.chooseFactor(Novel);
  ASSERT_GE(Factor, 1u);
  ASSERT_LE(Factor, MaxUnrollFactor);

  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  SimResult Chosen = simulateLoop(Novel, Factor, Machine, Ctx, false);
  SimResult Rolled = simulateLoop(Novel, 1, Machine, Ctx, false);
  // The learned choice must not be a disaster on this easy loop.
  EXPECT_LT(Chosen.Cycles, Rolled.Cycles * 1.5);
}

TEST_F(IntegrationTest, DatasetCsvSurvivesFullRoundTrip) {
  std::string Csv = Data->toCsv();
  std::optional<Dataset> Loaded = Dataset::fromCsv(Csv);
  ASSERT_TRUE(Loaded.has_value());
  ASSERT_EQ(Loaded->size(), Data->size());
  // Training on the reloaded data gives identical predictions.
  FeatureSet Features = paperReducedFeatureSet();
  NearNeighborClassifier A(Features, 0.3), B(Features, 0.3);
  A.train(*Data);
  B.train(*Loaded);
  for (size_t I = 0; I < std::min<size_t>(100, Data->size()); ++I)
    EXPECT_EQ(A.predict((*Data)[I].Features),
              B.predict((*Loaded)[I].Features));
}

TEST_F(IntegrationTest, SwpDatasetPrefersSmallerFactors) {
  const Dataset &Swp = Pipe->dataset(/*EnableSwp=*/true);
  ASSERT_GT(Swp.size(), 100u);
  auto HistNo = Data->labelHistogram();
  auto HistSwp = Swp.labelHistogram();
  // Software pipelining extracts the ILP itself, so big unroll factors
  // matter less: the mean label must drop.
  auto MeanLabel = [](const std::array<size_t, MaxUnrollFactor> &H) {
    double Sum = 0.0, Count = 0.0;
    for (unsigned F = 0; F < MaxUnrollFactor; ++F) {
      Sum += (F + 1.0) * H[F];
      Count += H[F];
    }
    return Sum / Count;
  };
  EXPECT_LT(MeanLabel(HistSwp), MeanLabel(HistNo));
}

//===----------------------------------------------------------------------===//
// Full-scale headline guard
//===----------------------------------------------------------------------===//

/// Guards the reproduction's headline numbers on the *default* corpus:
/// dataset scale ("more than 2,500 loops"), Figure 3's no-majority shape,
/// and NN LOOCV accuracy in the paper's regime. If a substrate change
/// moves these, EXPERIMENTS.md needs regenerating.
TEST(FullScaleGuard, HeadlineNumbersHold) {
  PipelineOptions Options; // Default: the full 72-benchmark corpus.
  Options.CacheDir = "";
  Pipeline Pipe(Options);
  const Dataset &Data = Pipe.dataset(/*EnableSwp=*/false);
  EXPECT_GT(Data.size(), 2500u);

  auto Histogram = Data.labelHistogram();
  size_t Max = 0;
  for (size_t Count : Histogram)
    Max = std::max(Max, Count);
  EXPECT_LT(static_cast<double>(Max) / Data.size(), 0.5)
      << "a factor gained a majority; Figure 3's shape broke";

  NearNeighborClassifier Nn(paperReducedFeatureSet(), 0.3);
  double Accuracy = predictionAccuracy(Data, loocvPredictions(Nn, Data));
  EXPECT_GT(Accuracy, 0.5) << "NN LOOCV accuracy fell out of the paper's "
                              "regime (paper: 62%)";
  EXPECT_LT(Accuracy, 0.8) << "suspiciously high: hidden context lost?";
}
