//===- tests/driver_test.cpp - Unit tests for core/driver -----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "core/driver/Heuristics.h"
#include "core/driver/Pipeline.h"
#include "core/driver/SpeedupEvaluator.h"
#include "core/ml/NearNeighbor.h"
#include "heuristics/OrcLikeHeuristic.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

using namespace metaopt;

namespace {

/// A small corpus that labels in well under a second.
CorpusOptions tinyCorpus() {
  CorpusOptions Options;
  Options.MinLoopsPerBenchmark = 2;
  Options.MaxLoopsPerBenchmark = 3;
  return Options;
}

LabelingOptions tinyLabeling() {
  LabelingOptions Options;
  Options.EnableSwp = false;
  return Options;
}

} // namespace

//===----------------------------------------------------------------------===//
// Label collection
//===----------------------------------------------------------------------===//

TEST(LabelCollectorTest, ProducesValidExamples) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  size_t Raw = 0;
  Dataset Data = collectLabels(Corpus, tinyLabeling(), &Raw);
  EXPECT_GT(Raw, 100u);
  EXPECT_GT(Data.size(), 50u);
  EXPECT_LE(Data.size(), Raw);
  for (const Example &Ex : Data.examples()) {
    EXPECT_GE(Ex.Label, 1u);
    EXPECT_LE(Ex.Label, MaxUnrollFactor);
    // The label is the argmin of the measured cycles.
    double Best = Ex.CyclesPerFactor[Ex.Label - 1];
    for (double Cycles : Ex.CyclesPerFactor)
      EXPECT_GE(Cycles + 1e-9, Best);
    EXPECT_FALSE(Ex.LoopName.empty());
    EXPECT_FALSE(Ex.BenchmarkName.empty());
  }
}

TEST(LabelCollectorTest, AppliesTheNoiseFloor) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  LabelingOptions Options = tinyLabeling();
  Dataset Data = collectLabels(Corpus, Options);
  for (const Example &Ex : Data.examples())
    EXPECT_GE(Ex.CyclesPerFactor[Ex.Label - 1],
              Options.Protocol.MinReliableCycles);
}

TEST(LabelCollectorTest, AppliesTheSensitivityFilter) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  LabelingOptions Options = tinyLabeling();
  Dataset Data = collectLabels(Corpus, Options);
  for (const Example &Ex : Data.examples()) {
    double Sum = 0.0;
    for (double Cycles : Ex.CyclesPerFactor)
      Sum += Cycles;
    double Average = Sum / MaxUnrollFactor;
    EXPECT_LE(Ex.CyclesPerFactor[Ex.Label - 1] * Options.MinBestVsAverage,
              Average + 1e-6);
  }
}

TEST(LabelCollectorTest, DeterministicAcrossRuns) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  Dataset A = collectLabels(Corpus, tinyLabeling());
  Dataset B = collectLabels(Corpus, tinyLabeling());
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Label, B[I].Label);
    EXPECT_DOUBLE_EQ(A[I].CyclesPerFactor[0], B[I].CyclesPerFactor[0]);
  }
}

TEST(LabelCollectorTest, PruningPreservesTheDatasetAndReportsStats) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  LabelingOptions Off = tinyLabeling();
  Off.PruneEquivalent = false;
  LabelingOptions On = tinyLabeling();
  LabelingStats StatsOff, StatsOn;
  Dataset A = collectLabels(Corpus, Off, nullptr, &StatsOff);
  Dataset B = collectLabels(Corpus, On, nullptr, &StatsOn);
  // The canonical-form certificate (analysis/symbolic/Canonical.h): the
  // pruned sweep produces the byte-identical dataset.
  EXPECT_EQ(A.toCsv(), B.toCsv());
  EXPECT_EQ(StatsOff.SimulationsPruned, 0u);
  EXPECT_EQ(StatsOff.EquivalenceClasses, StatsOff.TotalLoops);
  EXPECT_EQ(StatsOn.TotalLoops, StatsOff.TotalLoops);
  EXPECT_GE(StatsOn.EquivalenceClasses, 1u);
  EXPECT_LE(StatsOn.EquivalenceClasses, StatsOn.TotalLoops);
  EXPECT_EQ(StatsOn.SimulationsRun + StatsOn.SimulationsPruned,
            StatsOn.TotalLoops * MaxUnrollFactor);
}

TEST(LabelCollectorTest, EquivalentLoopsShareOneSimulationClass) {
  // Clone a benchmark under a new name: every cloned loop is sim-
  // equivalent to its original (the canonical form erases names), so the
  // class count stays put while the loop count doubles.
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  std::vector<Benchmark> Doubled = {Corpus[0], Corpus[0]};
  Doubled[1].Name = "clone." + Doubled[1].Name;

  LabelingStats Stats;
  collectLabels(Doubled, tinyLabeling(), nullptr, &Stats);
  ASSERT_EQ(Stats.TotalLoops, 2 * Corpus[0].Loops.size());
  EXPECT_LE(Stats.EquivalenceClasses, Corpus[0].Loops.size());
  EXPECT_GE(Stats.SimulationsPruned,
            Corpus[0].Loops.size() * MaxUnrollFactor);
  EXPECT_GT(Stats.pruningRate(), 0.0);
}

TEST(LabelCollectorTest, ContextMutatedClonesStillShareClasses) {
  // Regression for the dead-pruning bug: the class key used to fold in
  // the per-loop SimContext, and since the corpus randomizes every
  // loop's context, every equivalence class was a singleton (0 of 2808
  // simulations pruned on the quick corpus). The context must stay OUT
  // of the class key — structurally equivalent loops share one compiled
  // plan even when their cache/budget contexts differ — while each
  // member evaluates that plan under its own context, so the pruned
  // sweep still matches the unpruned one byte for byte.
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  std::vector<Benchmark> Doubled = {Corpus[0], Corpus[0]};
  Doubled[1].Name = "ctxclone." + Doubled[1].Name;
  for (CorpusLoop &Entry : Doubled[1].Loops) {
    Entry.Ctx.EffectiveIcacheBytes /= 2;
    Entry.Ctx.DcacheMissRate *= 1.5;
    Entry.Ctx.IntRegBudget -= 4;
  }

  LabelingOptions Off = tinyLabeling();
  Off.PruneEquivalent = false;
  LabelingStats Stats;
  Dataset Pruned = collectLabels(Doubled, tinyLabeling(), nullptr, &Stats);
  Dataset Unpruned = collectLabels(Doubled, Off);
  EXPECT_EQ(Pruned.toCsv(), Unpruned.toCsv());
  ASSERT_EQ(Stats.TotalLoops, 2 * Corpus[0].Loops.size());
  // Every mutated clone still collides with its original.
  EXPECT_LE(Stats.EquivalenceClasses, Corpus[0].Loops.size());
  EXPECT_GE(Stats.SimulationsPruned,
            Corpus[0].Loops.size() * MaxUnrollFactor);
  EXPECT_GT(Stats.pruningRate(), 0.0);
}

TEST(LabelCollectorTest, SwpConfigurationDiffers) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  LabelingOptions NoSwp = tinyLabeling();
  LabelingOptions Swp = tinyLabeling();
  Swp.EnableSwp = true;
  Dataset A = collectLabels(Corpus, NoSwp);
  Dataset B = collectLabels(Corpus, Swp);
  // The two configurations must produce different label distributions.
  auto HistA = A.labelHistogram();
  auto HistB = B.labelHistogram();
  EXPECT_NE(HistA, HistB);
}

//===----------------------------------------------------------------------===//
// Learned and oracle policies
//===----------------------------------------------------------------------===//

TEST(LearnedHeuristicTest, DelegatesToClassifier) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  Dataset Data = collectLabels(Corpus, tinyLabeling());
  NearNeighborClassifier Nn(paperReducedFeatureSet());
  Nn.train(Data);
  LearnedHeuristic Policy(Nn);
  EXPECT_EQ(Policy.name(), "learned-near-neighbor");
  for (const Benchmark &Bench : Corpus) {
    for (const CorpusLoop &Entry : Bench.Loops) {
      unsigned Factor = Policy.chooseFactor(Entry.TheLoop);
      EXPECT_GE(Factor, 1u);
      EXPECT_LE(Factor, MaxUnrollFactor);
    }
  }
}

TEST(OracleHeuristicTest, ReplaysLabels) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  Dataset Data = collectLabels(Corpus, tinyLabeling());
  OracleHeuristic Oracle(Data, 1);
  for (const Benchmark &Bench : Corpus) {
    for (const CorpusLoop &Entry : Bench.Loops) {
      unsigned Factor = Oracle.chooseFactor(Entry.TheLoop);
      // Labeled loops replay their label; filtered loops fall back to 1.
      bool Found = false;
      for (const Example &Ex : Data.examples()) {
        if (Ex.LoopName == Entry.TheLoop.name()) {
          EXPECT_EQ(Factor, Ex.Label);
          Found = true;
        }
      }
      if (!Found) {
        EXPECT_EQ(Factor, 1u);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Speedup evaluation
//===----------------------------------------------------------------------===//

TEST(SpeedupEvaluatorTest, OracleNeverLosesToBaselineLoopTime) {
  // On pure loop time (no noise, same simulator), the oracle's per-loop
  // choices are by construction at least as good as any other policy for
  // labeled loops; whole-benchmark times include unlabeled loops where
  // oracle falls back, so allow slack but demand rough sanity.
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  Dataset Data = collectLabels(Corpus, tinyLabeling());
  SpeedupOptions Options;
  Options.Labeling = tinyLabeling();
  std::vector<std::string> Eval = {"164.gzip", "171.swim", "179.art"};
  SpeedupReport Report =
      evaluateSpeedups(Corpus, Eval, Data, paperReducedFeatureSet(),
                       Options);
  ASSERT_EQ(Report.Rows.size(), 3u);
  for (const SpeedupRow &Row : Report.Rows) {
    EXPECT_GT(Row.OracleVsOrc, -0.25) << Row.Benchmark;
    EXPECT_LT(Row.OracleVsOrc, 3.0) << Row.Benchmark;
  }
}

TEST(SpeedupEvaluatorTest, FpFlagsMatchSuite) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  Dataset Data = collectLabels(Corpus, tinyLabeling());
  SpeedupOptions Options;
  Options.Labeling = tinyLabeling();
  std::vector<std::string> Eval = {"164.gzip", "171.swim"};
  SpeedupReport Report =
      evaluateSpeedups(Corpus, Eval, Data, paperReducedFeatureSet(),
                       Options);
  EXPECT_FALSE(Report.Rows[0].FloatingPoint); // gzip.
  EXPECT_TRUE(Report.Rows[1].FloatingPoint);  // swim.
}

TEST(SpeedupEvaluatorTest, NonLoopTimeDilutes) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  MachineModel Machine(itanium2Config());
  OrcLikeHeuristic Orc(Machine, false);
  const Benchmark &Bench = Corpus.front();
  double NonLoop = nonLoopCycles(Bench, Orc, Machine, false);
  double LoopOnly = benchmarkCycles(Bench, Orc, Machine, false, 0.0);
  EXPECT_GT(NonLoop, 0.0);
  EXPECT_NEAR(NonLoop / (NonLoop + LoopOnly), Bench.NonLoopFraction,
              1e-9);
}

namespace {

/// A broken policy that answers an out-of-range factor — what a buggy or
/// corrupted classifier could produce. The evaluator must refuse it in
/// every build mode rather than feed it to the unroller.
class RogueHeuristic : public UnrollHeuristic {
public:
  std::string name() const override { return "rogue"; }
  unsigned chooseFactor(const Loop &) const override {
    return MaxUnrollFactor + 3;
  }
};

} // namespace

TEST(SpeedupEvaluatorTest, RejectsOutOfRangePolicyFactors) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  MachineModel Machine(itanium2Config());
  RogueHeuristic Rogue;
  EXPECT_THROW(benchmarkCycles(Corpus.front(), Rogue, Machine, false, 0.0),
               std::runtime_error);
}

TEST(SpeedupEvaluatorTest, RejectsBadNonLoopFraction) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  // NonLoopFraction == 1 would divide by zero; > 1 and < 0 produce
  // negative times. All must throw, in Release builds too.
  for (double Bad : {1.0, 1.5, -0.1}) {
    Benchmark Broken = Corpus.front();
    Broken.NonLoopFraction = Bad;
    EXPECT_THROW(nonLoopFromLoopCycles(Broken, 1e6), std::domain_error)
        << "fraction " << Bad;
  }
  EXPECT_GE(nonLoopFromLoopCycles(Corpus.front(), 1e6), 0.0);
}

TEST(SpeedupEvaluatorTest, RejectsUnknownEvalBenchmark) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  Dataset Data = collectLabels(Corpus, tinyLabeling());
  SpeedupOptions Options;
  Options.Labeling = tinyLabeling();
  std::vector<std::string> Eval = {"164.gzip", "999.nosuch"};
  EXPECT_THROW(evaluateSpeedups(Corpus, Eval, Data,
                                paperReducedFeatureSet(), Options),
               std::invalid_argument);
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

TEST(PipelineTest, LazyAndConsistent) {
  PipelineOptions Options;
  Options.Corpus = tinyCorpus();
  Options.CacheDir = "";
  Pipeline Pipe(Options);
  EXPECT_EQ(Pipe.corpus().size(), 72u);
  const Dataset &First = Pipe.dataset(false);
  const Dataset &Second = Pipe.dataset(false);
  EXPECT_EQ(&First, &Second); // Same object: labeled once.
  EXPECT_GT(Pipe.totalLoops(false), First.size());
}

TEST(PipelineTest, DiskCacheRoundTrips) {
  std::string CacheDir =
      ::testing::TempDir() + "/metaopt_pipeline_cache_test";
  std::filesystem::remove_all(CacheDir);

  PipelineOptions Options;
  Options.Corpus = tinyCorpus();
  Options.CacheDir = CacheDir;

  Pipeline First(Options);
  const Dataset &Fresh = First.dataset(false);
  size_t FreshSize = Fresh.size();

  Pipeline Second(Options);
  const Dataset &Cached = Second.dataset(false);
  ASSERT_EQ(Cached.size(), FreshSize);
  for (size_t I = 0; I < FreshSize; ++I) {
    EXPECT_EQ(Cached[I].Label, Fresh[I].Label);
    EXPECT_EQ(Cached[I].LoopName, Fresh[I].LoopName);
  }
  std::filesystem::remove_all(CacheDir);
}

TEST(PipelineTest, ExportWritesCsv) {
  PipelineOptions Options;
  Options.Corpus = tinyCorpus();
  Options.CacheDir = "";
  Pipeline Pipe(Options);
  std::string Path = ::testing::TempDir() + "/metaopt_export_test.csv";
  ASSERT_TRUE(Pipe.exportDatasetCsv(false, Path));
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::fclose(File);
  std::filesystem::remove(Path);
}
