//===- tests/fuzz_test.cpp - Differential fuzzing regression tier ---------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// The ctest face of src/fuzz (label: fuzz): a fixed-seed campaign through
// every oracle must stay green, campaigns must be byte-identical at any
// thread count, the generator must keep emitting verifier-clean loops
// across its shape space, the shrinker must preserve failures, and every
// promoted reproducer in tests/fuzz_seeds/ must replay clean.
//
//===----------------------------------------------------------------------===//

#include "concurrency/Parallel.h"
#include "concurrency/ThreadPool.h"
#include "fuzz/FuzzLoopGen.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Oracles.h"
#include "fuzz/Shrinker.h"
#include "ir/LoopBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace metaopt;

namespace {

#ifndef METAOPT_FUZZ_SEED_DIR
#error "METAOPT_FUZZ_SEED_DIR must point at tests/fuzz_seeds"
#endif

/// The fixed-seed regression campaign: every oracle over 200 generated
/// loops. A failure here is a real bug in the transformation stack (or
/// an oracle) — the log names the case; reproduce it with
/// `metaopt-fuzz --seed=20050320 --iterations=200`.
TEST(FuzzTest, FixedSeedCampaignIsClean) {
  FuzzCampaignOptions Options;
  Options.Seed = 20050320; // corpus seed; arbitrary but pinned
  Options.Iterations = 200;
  FuzzCampaignResult Result = runFuzzCampaign(Options);
  EXPECT_EQ(Result.CasesFailed, 0u) << Result.Log;
  EXPECT_EQ(Result.CasesRun, 200u);
}

/// Campaign output is a pure function of the options: one thread and
/// many threads must produce byte-identical logs and reports.
TEST(FuzzTest, CampaignIsThreadCountInvariant) {
  FuzzCampaignOptions Options;
  Options.Seed = 7;
  Options.Iterations = 60;

  ThreadPool OneThread(1);
  ThreadPool ManyThreads(8);
  // Campaigns run on the global pool; drive the generation half through
  // explicit pools of different widths to compare byte output.
  auto RunOn = [&](ThreadPool &Pool) {
    std::vector<std::string> Texts = parallelMap<std::string>(
        static_cast<size_t>(Options.Iterations),
        [&](size_t Index) {
          FuzzGenOptions Gen = Options.Gen;
          Gen.Seed = Options.Seed;
          return printLoop(generateFuzzLoop(Gen, Index));
        },
        &Pool);
    std::string Log;
    for (const std::string &Text : Texts)
      Log += Text;
    return Log;
  };
  EXPECT_EQ(RunOn(OneThread), RunOn(ManyThreads));

  // And the full pipeline (oracles included) twice on the global pool.
  FuzzCampaignResult A = runFuzzCampaign(Options);
  FuzzCampaignResult B = runFuzzCampaign(Options);
  EXPECT_EQ(A.Log, B.Log);
  ASSERT_EQ(A.Reports.size(), B.Reports.size());
  for (size_t I = 0; I < A.Reports.size(); ++I)
    EXPECT_EQ(A.Reports[I].MinimizedText, B.Reports[I].MinimizedText);
}

/// The generator's contract: always verifier-clean, deterministic per
/// (options, index), and actually spanning the shape space the oracles
/// need (exits, calls, predication, narrow and indirect memory).
TEST(FuzzTest, GeneratorEmitsVerifierCleanDiverseLoops) {
  FuzzGenOptions Gen;
  Gen.Seed = 99;
  bool SawExit = false, SawCall = false, SawPred = false, SawStore = false;
  bool SawIndirect = false, SawNarrow = false, SawKnownTrip = false,
       SawUnknownTrip = false;
  for (uint64_t Index = 0; Index < 300; ++Index) {
    Loop L = generateFuzzLoop(Gen, Index);
    std::vector<std::string> Errors = verifyLoop(L);
    ASSERT_TRUE(Errors.empty())
        << "case " << Index << ": " << Errors.front() << "\n"
        << printLoop(L);
    ASSERT_EQ(printLoop(L), printLoop(generateFuzzLoop(Gen, Index)));
    SawKnownTrip |= L.hasKnownTripCount();
    SawUnknownTrip |= !L.hasKnownTripCount();
    for (const Instruction &Instr : L.body()) {
      SawExit |= Instr.Op == Opcode::ExitIf;
      SawCall |= Instr.isCall();
      SawPred |= Instr.Pred != NoReg && Instr.Op != Opcode::ExitIf &&
                 Instr.Op != Opcode::BackBr;
      SawStore |= Instr.isStore();
      SawIndirect |= Instr.isMemory() && Instr.Mem.Indirect;
      SawNarrow |= Instr.isMemory() && Instr.Mem.SizeBytes == 4;
    }
  }
  EXPECT_TRUE(SawExit);
  EXPECT_TRUE(SawCall);
  EXPECT_TRUE(SawPred);
  EXPECT_TRUE(SawStore);
  EXPECT_TRUE(SawIndirect);
  EXPECT_TRUE(SawNarrow);
  EXPECT_TRUE(SawKnownTrip);
  EXPECT_TRUE(SawUnknownTrip);
}

/// AllowExits/AllowCalls gate their fragments (SWP-eligible campaigns
/// rely on this).
TEST(FuzzTest, GeneratorRespectsShapeGates) {
  FuzzGenOptions Gen;
  Gen.Seed = 5;
  Gen.AllowExits = false;
  Gen.AllowCalls = false;
  for (uint64_t Index = 0; Index < 100; ++Index) {
    Loop L = generateFuzzLoop(Gen, Index);
    for (const Instruction &Instr : L.body()) {
      EXPECT_NE(Instr.Op, Opcode::ExitIf) << "case " << Index;
      EXPECT_FALSE(Instr.isCall()) << "case " << Index;
    }
  }
}

/// The shrinker only returns candidates that are still verifier-clean
/// and still failing, and it makes real progress on an obviously
/// shrinkable predicate.
TEST(FuzzTest, ShrinkerPreservesFailureAndShrinks) {
  FuzzGenOptions Gen;
  Gen.Seed = 11;
  // Find a generated loop with a store and a body worth shrinking.
  auto HasStore = [](const Loop &Candidate) {
    for (const Instruction &Instr : Candidate.body())
      if (Instr.isStore())
        return true;
    return false;
  };
  for (uint64_t Index = 0; Index < 20; ++Index) {
    Loop L = generateFuzzLoop(Gen, Index);
    if (!HasStore(L) || L.body().size() < 8)
      continue;
    Loop Small = shrinkLoop(L, HasStore);
    EXPECT_TRUE(isWellFormed(Small));
    EXPECT_TRUE(HasStore(Small));
    EXPECT_LT(Small.body().size(), L.body().size());
    EXPECT_LE(Small.runtimeTripCount(), 1);
    return;
  }
  FAIL() << "no shrinkable loop in the first 20 cases";
}

/// Every promoted reproducer must replay clean — these files each
/// caught a real miscompile once.
TEST(FuzzTest, PromotedSeedsReplayClean) {
  namespace fs = std::filesystem;
  fs::path Dir(METAOPT_FUZZ_SEED_DIR);
  ASSERT_TRUE(fs::exists(Dir)) << Dir;
  unsigned Replayed = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".loop")
      continue;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In) << Entry.path();
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    std::vector<OracleFailure> Failures =
        replayLoops(Buffer.str(), Entry.path().filename().string());
    for (const OracleFailure &Failure : Failures)
      ADD_FAILURE() << Entry.path().filename().string() << " ["
                    << Failure.Oracle << "] " << Failure.Detail;
    ++Replayed;
  }
  // The two fixed bug families plus the model-zoo bundle coverage seed
  // must stay committed.
  EXPECT_GE(Replayed, 7u);
}

/// reproFileName is filesystem-safe and self-describing.
TEST(FuzzTest, ReproFileNameShape) {
  FuzzCaseReport Report;
  Report.Index = 42;
  Report.MinimizedOracles = {"memory-opt"};
  EXPECT_EQ(reproFileName(9, Report), "fuzz-9-42-memory-opt.loop");
  Report.MinimizedOracles.clear();
  EXPECT_EQ(reproFileName(9, Report), "fuzz-9-42-unknown.loop");
}

} // namespace

//===----------------------------------------------------------------------===//
// static-claims oracle
//===----------------------------------------------------------------------===//

TEST(StaticClaimsOracleTest, RealAnalysisClaimsSurviveExecution) {
  // A loop the analysis can say a lot about: a provably-true guard, a
  // provably-dead store, stride-disjoint accesses, and the induction
  // increment (a range-bounded value). Every claim must survive the
  // traced execution, and the canonical-form certificate must hold.
  LoopBuilder B("claimful", SourceLanguage::C, 1, 100);
  RegId One = B.iconst(1);
  RegId Two = B.iconst(2);
  RegId Live = B.icmp(One, Two); // 1 < 2: always true.
  RegId Dead = B.icmp(Two, One); // 2 < 1: always false.
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPredicate(Live);
  B.store(X, {1, 8, 0, false, 8});
  B.clearPredicate();
  B.setPredicate(Dead);
  B.store(X, {0, 8, 0, false, 8});
  B.clearPredicate();
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis Symbolic(L);
  EXPECT_FALSE(Symbolic.claims().empty());
  std::vector<OracleFailure> Out;
  oracleStaticClaims(L, /*Seed=*/7, Out);
  EXPECT_TRUE(Out.empty()) << Out.front().Detail;
}

TEST(StaticClaimsOracleTest, RefutesADeliberatelyUnsoundStubAnalysis) {
  // The regression guarantee: if the symbolic analysis ever starts
  // emitting wrong claims, the oracle must catch them. Stand in for that
  // future bug with hand-written claims that are each concretely false.
  LoopBuilder B("unsound", SourceLanguage::C, 1, 64);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8}); // body[0]
  B.store(X, {0, 8, 4, false, 8});                        // body[1]
  RegId One = B.iconst(1);                                // body[2]
  RegId Two = B.iconst(2);                                // body[3]
  RegId Dead = B.icmp(Two, One);                          // body[4]
  B.setPredicate(Dead);
  B.store(X, {1, 8, 0, false, 8});                        // body[5]
  B.clearPredicate();
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  std::vector<StaticClaim> Stub;
  // body[0] reads [8i, 8i+8) and body[1] writes [8i+4, 8i+12): they
  // overlap on every iteration, so "same-iteration disjoint" is false.
  StaticClaim Disjoint;
  Disjoint.K = StaticClaim::Kind::Disjoint;
  Disjoint.A = 0;
  Disjoint.B = 1;
  Disjoint.Lag = 0;
  Stub.push_back(Disjoint);
  // body[5]'s guard is 2 < 1: off on every iteration.
  StaticClaim Guard;
  Guard.K = StaticClaim::Kind::GuardAlwaysTrue;
  Guard.A = 5;
  Stub.push_back(Guard);
  // body[2] defines the constant 1; [5, 9] excludes it.
  StaticClaim Range;
  Range.K = StaticClaim::Kind::RangeBound;
  Range.Reg = One;
  Range.Lo = 5;
  Range.Hi = 9;
  Stub.push_back(Range);

  std::vector<OracleFailure> Out;
  checkClaimsAgainstExecution(L, Stub, /*Seed=*/7, Out);
  ASSERT_EQ(Out.size(), 3u);
  for (const OracleFailure &Failure : Out) {
    EXPECT_EQ(Failure.Oracle, "static-claims");
    EXPECT_NE(Failure.Detail.find("refuted"), std::string::npos);
  }
  EXPECT_NE(Out[0].Detail.find("disjoint"), std::string::npos);
  EXPECT_NE(Out[1].Detail.find("guard-always-true"), std::string::npos);
  EXPECT_NE(Out[2].Detail.find("range"), std::string::npos);

  // The real analysis on the same loop produces only sound claims.
  SymbolicAnalysis Symbolic(L);
  std::vector<OracleFailure> Sound;
  checkClaimsAgainstExecution(L, Symbolic.claims(), /*Seed=*/7, Sound);
  EXPECT_TRUE(Sound.empty()) << Sound.front().Detail;
}

TEST(StaticClaimsOracleTest, VacuousClaimsOnDeadGuardsAreNotRefuted) {
  // A store that never executes participates in no overlap, however its
  // address collides on paper: disjointness under an always-false guard
  // must be accepted as vacuously true, mirroring provesDisjoint().
  LoopBuilder B("vacuous", SourceLanguage::C, 1, 16);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8}); // body[0]
  RegId One = B.iconst(1);
  RegId Two = B.iconst(2);
  RegId Dead = B.icmp(Two, One);
  B.setPredicate(Dead);
  B.store(X, {0, 8, 0, false, 8}); // body[4]: same bytes as body[0].
  B.clearPredicate();
  Loop L = B.finalize();

  StaticClaim Claim;
  Claim.K = StaticClaim::Kind::Disjoint;
  Claim.A = 0;
  Claim.B = 4;
  Claim.Lag = 0;
  std::vector<OracleFailure> Out;
  checkClaimsAgainstExecution(L, {Claim}, /*Seed=*/7, Out);
  EXPECT_TRUE(Out.empty()) << Out.front().Detail;
}
