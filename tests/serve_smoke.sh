#!/bin/sh
# Daemon smoke test for the serving stack (ctest label: serve).
#
# End to end: metaopt-train publishes a bundle from a tiny corpus,
# metaopt-serve loads it, 32 concurrent metaopt-predict clients all ask
# for the same predictions with --json and every response line must be
# byte-identical, loadgen_serve hammers the daemon while checking the
# same invariant, and finally SIGTERM must drain cleanly: exit status 0,
# every client answered, and the socket file removed.
#
# Usage: serve_smoke.sh <metaopt-train> <metaopt-serve> <metaopt-predict>
#                       <loadgen_serve>
set -u

TRAIN="$1"
SERVE="$2"
PREDICT="$3"
LOADGEN="$4"

WORK="${TMPDIR:-/tmp}/metaopt_serve_smoke_$$"
rm -rf "$WORK"
mkdir -p "$WORK"
BUNDLE="$WORK/model.bundle"
SOCKET="$WORK/serve.sock"
SERVE_PID=""

fail() {
    echo "serve_smoke: FAIL: $1" >&2
    [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2>/dev/null
    exit 1
}

cleanup() {
    [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

# --- 1. Train and publish a bundle (tiny corpus keeps this fast). -------
"$TRAIN" --out="$BUNDLE" --classifier=nn --cv=none \
         --corpus-min=2 --corpus-max=3 --cache-dir="$WORK/cache" \
    || fail "metaopt-train exited non-zero"
[ -f "$BUNDLE" ] || fail "no bundle was written"

# A trained bundle must pass inspection.
"$TRAIN" --inspect "$BUNDLE" > "$WORK/inspect.txt" \
    || fail "bundle failed inspection: $(cat "$WORK/inspect.txt")"

# A corrupted copy must be rejected.
cp "$BUNDLE" "$WORK/corrupt.bundle"
printf 'x' | dd of="$WORK/corrupt.bundle" bs=1 seek=100 conv=notrunc 2>/dev/null
if "$TRAIN" --inspect "$WORK/corrupt.bundle" > /dev/null 2>&1; then
    fail "corrupted bundle passed inspection"
fi

# --- 2. Start the daemon. -----------------------------------------------
"$SERVE" --bundle="$BUNDLE" --socket="$SOCKET" 2> "$WORK/serve.log" &
SERVE_PID=$!

# --- 3. Health check (retries until the socket appears). ----------------
"$PREDICT" --socket="$SOCKET" --connect-timeout-ms=10000 --health \
    > "$WORK/health.json" || fail "health check failed"
grep -q '"status":"ok"' "$WORK/health.json" || fail "health not ok"

# --- 4. Concurrent clients must get byte-identical responses. -----------
cat > "$WORK/sample.loop" <<'EOF'
loop "smoke.saxpy" lang=C nest=1 trip=1024 rtrip=1024 {
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_ax = fmul %f_x, %f_a
  %f_s = fadd %f_ax, %f_y
  store %f_s, @1[stride=8, offset=0, size=8]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
EOF

CLIENTS=32
CLIENT_PIDS=""
I=0
while [ "$I" -lt "$CLIENTS" ]; do
    "$PREDICT" --socket="$SOCKET" --json --scores \
        "$WORK/sample.loop" "$WORK/sample.loop" "$WORK/sample.loop" \
        > "$WORK/client.$I.out" 2>> "$WORK/clients.err" &
    CLIENT_PIDS="$CLIENT_PIDS $!"
    I=$((I + 1))
done
for PID in $CLIENT_PIDS; do
    wait "$PID" || fail "concurrent client (pid $PID) exited non-zero"
done
CLIENT_FAILURES=0
I=0
while [ "$I" -lt "$CLIENTS" ]; do
    [ -s "$WORK/client.$I.out" ] || CLIENT_FAILURES=$((CLIENT_FAILURES + 1))
    if ! cmp -s "$WORK/client.0.out" "$WORK/client.$I.out"; then
        CLIENT_FAILURES=$((CLIENT_FAILURES + 1))
    fi
    I=$((I + 1))
done
[ "$CLIENT_FAILURES" -eq 0 ] \
    || fail "$CLIENT_FAILURES of $CLIENTS concurrent clients diverged"
grep -q '"status":"ok"' "$WORK/client.0.out" || fail "predictions not ok"

# A malformed loop must be rejected, not crash the daemon.
printf 'loop "broken" {\n' > "$WORK/broken.loop"
if "$PREDICT" --socket="$SOCKET" --json "$WORK/broken.loop" \
        > "$WORK/broken.json" 2>/dev/null; then
    fail "malformed loop was accepted"
fi
grep -q '"status":"malformed"' "$WORK/broken.json" \
    || fail "malformed loop not reported as malformed"

# --- 5. Closed-loop load with byte-identity checks. ---------------------
"$LOADGEN" --socket="$SOCKET" --clients="$CLIENTS" --requests=20 --scores \
    > "$WORK/loadgen.json" || fail "loadgen reported divergence or errors"
grep -q '"consistent":true' "$WORK/loadgen.json" \
    || fail "loadgen output missing consistent:true"

# --- 6. SIGTERM must drain cleanly. -------------------------------------
kill -TERM "$SERVE_PID"
WAITED=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    [ "$WAITED" -lt 100 ] || fail "daemon did not exit within 10s of SIGTERM"
    sleep 0.1
    WAITED=$((WAITED + 1))
done
wait "$SERVE_PID"
STATUS=$?
SERVE_PID=""
[ "$STATUS" -eq 0 ] \
    || fail "daemon exited $STATUS after SIGTERM: $(cat "$WORK/serve.log")"
[ ! -e "$SOCKET" ] || fail "daemon left its socket file behind"
grep -q "drained cleanly" "$WORK/serve.log" \
    || fail "daemon log missing the drain summary"

echo "serve_smoke: PASS ($CLIENTS concurrent clients, loadgen $(cat "$WORK/loadgen.json"))"
exit 0
