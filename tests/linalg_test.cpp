//===- tests/linalg_test.cpp - Unit tests for src/linalg ------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "linalg/Cholesky.h"
#include "linalg/Eigen.h"
#include "linalg/Matrix.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace metaopt;

namespace {

/// Random symmetric positive-definite matrix A = B^T B + eps I.
Matrix randomSpd(size_t N, Rng &Generator, double Ridge = 0.5) {
  Matrix B(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      B.at(I, J) = Generator.nextGaussian();
  Matrix A = B.transpose().multiply(B);
  A.addToDiagonal(Ridge);
  return A;
}

std::vector<double> randomVector(size_t N, Rng &Generator) {
  std::vector<double> V(N);
  for (double &X : V)
    X = Generator.nextGaussian();
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, IdentityMultiplication) {
  Rng Generator(1);
  Matrix A = randomSpd(5, Generator);
  Matrix I = Matrix::identity(5);
  EXPECT_LT(A.multiply(I).distanceFrom(A), 1e-12);
  EXPECT_LT(I.multiply(A).distanceFrom(A), 1e-12);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix A(2, 3);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(0, 2) = 3;
  A.at(1, 0) = 4;
  A.at(1, 1) = 5;
  A.at(1, 2) = 6;
  Matrix B(3, 1);
  B.at(0, 0) = 7;
  B.at(1, 0) = 8;
  B.at(2, 0) = 9;
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 122.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng Generator(2);
  Matrix A(3, 7);
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = 0; J < 7; ++J)
      A.at(I, J) = Generator.nextGaussian();
  EXPECT_LT(A.transpose().transpose().distanceFrom(A), 1e-15);
}

TEST(MatrixTest, MatrixVectorAgainstMatrixMatrix) {
  Rng Generator(3);
  Matrix A = randomSpd(6, Generator);
  std::vector<double> V = randomVector(6, Generator);
  std::vector<double> Direct = A.multiply(V);
  Matrix Column(6, 1);
  for (size_t I = 0; I < 6; ++I)
    Column.at(I, 0) = V[I];
  Matrix Product = A.multiply(Column);
  for (size_t I = 0; I < 6; ++I)
    EXPECT_NEAR(Direct[I], Product.at(I, 0), 1e-12);
}

TEST(MatrixTest, VectorHelpers) {
  std::vector<double> A = {1, 2, 3};
  std::vector<double> B = {4, -5, 6};
  EXPECT_DOUBLE_EQ(dotProduct(A, B), 12.0);
  EXPECT_DOUBLE_EQ(squaredDistance(A, B), 9 + 49 + 9);
  EXPECT_DOUBLE_EQ(vectorNorm({3, 4}), 5.0);
  addScaled(A, 2.0, B);
  EXPECT_DOUBLE_EQ(A[0], 9.0);
  EXPECT_DOUBLE_EQ(A[1], -8.0);
}

//===----------------------------------------------------------------------===//
// Cholesky
//===----------------------------------------------------------------------===//

TEST(CholeskyTest, FactorReconstructs) {
  Rng Generator(4);
  Matrix A = randomSpd(8, Generator);
  auto Factor = Cholesky::factor(A);
  ASSERT_TRUE(Factor.has_value());
  const Matrix &L = Factor->factorMatrix();
  Matrix Reconstructed = L.multiply(L.transpose());
  EXPECT_LT(Reconstructed.distanceFrom(A), 1e-9);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 1; // Eigenvalues 3 and -1.
  EXPECT_FALSE(Cholesky::factor(A).has_value());
}

TEST(CholeskyTest, SolveSatisfiesSystem) {
  Rng Generator(5);
  for (size_t N : {1u, 2u, 5u, 20u}) {
    Matrix A = randomSpd(N, Generator);
    std::vector<double> B = randomVector(N, Generator);
    auto Factor = Cholesky::factor(A);
    ASSERT_TRUE(Factor.has_value());
    std::vector<double> X = Factor->solve(B);
    std::vector<double> Residual = A.multiply(X);
    addScaled(Residual, -1.0, B);
    EXPECT_LT(vectorNorm(Residual), 1e-8) << "order " << N;
  }
}

TEST(CholeskyTest, MatrixSolveMatchesColumnSolves) {
  Rng Generator(6);
  Matrix A = randomSpd(6, Generator);
  Matrix B(6, 3);
  for (size_t I = 0; I < 6; ++I)
    for (size_t J = 0; J < 3; ++J)
      B.at(I, J) = Generator.nextGaussian();
  auto Factor = Cholesky::factor(A);
  ASSERT_TRUE(Factor.has_value());
  Matrix X = Factor->solve(B);
  for (size_t J = 0; J < 3; ++J) {
    std::vector<double> Column(6);
    for (size_t I = 0; I < 6; ++I)
      Column[I] = B.at(I, J);
    std::vector<double> Xj = Factor->solve(Column);
    for (size_t I = 0; I < 6; ++I)
      EXPECT_NEAR(X.at(I, J), Xj[I], 1e-10);
  }
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Rng Generator(7);
  Matrix A = randomSpd(10, Generator);
  auto Factor = Cholesky::factor(A);
  ASSERT_TRUE(Factor.has_value());
  Matrix Inverse = Factor->inverse();
  Matrix Product = A.multiply(Inverse);
  EXPECT_LT(Product.distanceFrom(Matrix::identity(10)), 1e-8);
}

TEST(CholeskyTest, LogDeterminantMatchesKnown) {
  Matrix A(2, 2);
  A.at(0, 0) = 4;
  A.at(1, 1) = 9; // det = 36.
  auto Factor = Cholesky::factor(A);
  ASSERT_TRUE(Factor.has_value());
  EXPECT_NEAR(Factor->logDeterminant(), std::log(36.0), 1e-12);
}

/// Property: solve(A, A*x) == x for random systems of several orders.
class CholeskyRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRoundTrip, SolveInvertsMultiply) {
  Rng Generator(100 + GetParam());
  size_t N = static_cast<size_t>(GetParam());
  Matrix A = randomSpd(N, Generator);
  std::vector<double> X = randomVector(N, Generator);
  std::vector<double> B = A.multiply(X);
  auto Factor = Cholesky::factor(A);
  ASSERT_TRUE(Factor.has_value());
  std::vector<double> Solved = Factor->solve(B);
  addScaled(Solved, -1.0, X);
  EXPECT_LT(vectorNorm(Solved), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Orders, CholeskyRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Eigen
//===----------------------------------------------------------------------===//

TEST(EigenTest, DiagonalMatrix) {
  Matrix A(3, 3);
  A.at(0, 0) = 3;
  A.at(1, 1) = 1;
  A.at(2, 2) = 2;
  EigenDecomposition E = symmetricEigen(A);
  ASSERT_EQ(E.Values.size(), 3u);
  EXPECT_NEAR(E.Values[0], 3.0, 1e-12);
  EXPECT_NEAR(E.Values[1], 2.0, 1e-12);
  EXPECT_NEAR(E.Values[2], 1.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix A(2, 2);
  A.at(0, 0) = 2;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = 2;
  EigenDecomposition E = symmetricEigen(A);
  EXPECT_NEAR(E.Values[0], 3.0, 1e-10);
  EXPECT_NEAR(E.Values[1], 1.0, 1e-10);
}

TEST(EigenTest, ReconstructionProperty) {
  Rng Generator(8);
  Matrix A = randomSpd(7, Generator);
  EigenDecomposition E = symmetricEigen(A);
  // A == V diag(w) V^T.
  Matrix D(7, 7);
  for (size_t I = 0; I < 7; ++I)
    D.at(I, I) = E.Values[I];
  Matrix Reconstructed =
      E.Vectors.multiply(D).multiply(E.Vectors.transpose());
  EXPECT_LT(Reconstructed.distanceFrom(A), 1e-8);
}

TEST(EigenTest, VectorsAreOrthonormal) {
  Rng Generator(9);
  Matrix A = randomSpd(6, Generator);
  EigenDecomposition E = symmetricEigen(A);
  Matrix Gram = E.Vectors.transpose().multiply(E.Vectors);
  EXPECT_LT(Gram.distanceFrom(Matrix::identity(6)), 1e-9);
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Rng Generator(10);
  Matrix A = randomSpd(9, Generator);
  EigenDecomposition E = symmetricEigen(A);
  double Trace = 0.0, Sum = 0.0;
  for (size_t I = 0; I < 9; ++I) {
    Trace += A.at(I, I);
    Sum += E.Values[I];
  }
  EXPECT_NEAR(Trace, Sum, 1e-9);
}

TEST(EigenTest, SpdMatrixHasPositiveEigenvalues) {
  Rng Generator(11);
  Matrix A = randomSpd(8, Generator);
  EigenDecomposition E = symmetricEigen(A);
  for (double Value : E.Values)
    EXPECT_GT(Value, 0.0);
}
