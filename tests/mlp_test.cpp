//===- tests/mlp_test.cpp - Tests for the MLP classifier ------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// The backprop correctness tier for the model zoo's MLP: per-layer
// finite-difference gradient checks over several random seeds, convergence
// on a separable toy corpus, the seeded-Adam determinism contract, and the
// softmax score surface.
//
//===----------------------------------------------------------------------===//

#include "core/ml/Mlp.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace metaopt;

namespace {

/// Same synthetic dataset family as ml_test: label = 1 + (f0>0) + 2*(f1>0).
Dataset cleanDataset(size_t N, uint64_t Seed, double LabelNoise = 0.0) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextGaussian();
    double F1 = Generator.nextGaussian();
    Ex.Features[0] = F0;
    Ex.Features[1] = F1;
    Ex.Features[2] = Generator.nextGaussian() * 10.0;
    Ex.Features[3] = Generator.nextGaussian() * 0.1;
    unsigned Label = 1 + (F0 > 0 ? 1 : 0) + (F1 > 0 ? 2 : 0);
    if (Generator.nextBool(LabelNoise))
      Label = 1 + static_cast<unsigned>(Generator.nextBelow(4));
    Ex.Label = Label;
    Ex.CyclesPerFactor.fill(1000.0);
    Ex.LoopName = "loop" + std::to_string(I);
    Ex.BenchmarkName = "bench" + std::to_string(I % 5);
    Data.add(std::move(Ex));
  }
  return Data;
}

FeatureSet firstTwoFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1)};
}

FeatureSet firstFourFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1),
          static_cast<FeatureId>(2), static_cast<FeatureId>(3)};
}

/// An MLP with freshly initialized (untrained) weights: Epochs=0 fits the
/// normalizer and draws the seeded init without taking any Adam step.
MlpClassifier initializedMlp(const Dataset &Data, std::vector<unsigned> Hidden,
                             uint64_t Seed) {
  MlpOptions Options;
  Options.HiddenSizes = std::move(Hidden);
  Options.Epochs = 0;
  Options.Seed = Seed;
  MlpClassifier Mlp(firstTwoFeatures(), Options);
  Mlp.train(Data);
  return Mlp;
}

/// Checks every parameter's analytic gradient against a central finite
/// difference of lossOn(). Covers all layers, since parameters() spans
/// them all. The parameters are first jittered away from zero: freshly
/// initialized biases are exactly 0, which can park a whole layer's
/// pre-activations exactly on the ReLU kink (an example whose previous
/// layer is fully inactive contributes z = b = 0), where the loss is
/// genuinely non-differentiable and no finite difference can agree.
void checkGradients(MlpClassifier &Mlp, const Dataset &Data, uint64_t Seed) {
  std::vector<double> Initial = Mlp.parameters();
  Rng Jitter(Seed);
  for (double &Param : Initial)
    Param += Jitter.nextDoubleInRange(0.01, 0.05);
  Mlp.setParameters(Initial);

  const std::vector<double> Analytic = Mlp.lossGradient(Data);
  std::vector<double> Params = Mlp.parameters();
  ASSERT_EQ(Analytic.size(), Params.size());
  const double Eps = 1e-6;
  for (size_t I = 0; I < Params.size(); ++I) {
    double Saved = Params[I];
    Params[I] = Saved + Eps;
    Mlp.setParameters(Params);
    double LossPlus = Mlp.lossOn(Data);
    Params[I] = Saved - Eps;
    Mlp.setParameters(Params);
    double LossMinus = Mlp.lossOn(Data);
    Params[I] = Saved;
    double Numeric = (LossPlus - LossMinus) / (2.0 * Eps);
    // Absolute floor for near-zero gradients, relative bound otherwise.
    EXPECT_NEAR(Analytic[I], Numeric, 1e-5 + 1e-4 * std::abs(Numeric))
        << "parameter index " << I;
  }
  Mlp.setParameters(Params);
}

} // namespace

//===----------------------------------------------------------------------===//
// Finite-difference gradient checks
//===----------------------------------------------------------------------===//

TEST(MlpGradientTest, OneHiddenLayerMatchesFiniteDifferences) {
  for (uint64_t Seed : {11u, 12u, 13u}) {
    Dataset Data = cleanDataset(40, 100 + Seed);
    MlpClassifier Mlp = initializedMlp(Data, {5}, Seed);
    ASSERT_EQ(Mlp.numLayers(), 2u);
    checkGradients(Mlp, Data, Seed * 7);
  }
}

TEST(MlpGradientTest, TwoHiddenLayersMatchFiniteDifferences) {
  for (uint64_t Seed : {21u, 22u, 23u}) {
    Dataset Data = cleanDataset(40, 200 + Seed);
    MlpClassifier Mlp = initializedMlp(Data, {6, 4}, Seed);
    ASSERT_EQ(Mlp.numLayers(), 3u);
    checkGradients(Mlp, Data, Seed * 9);
  }
}

TEST(MlpGradientTest, WeightDecayTermIsDifferentiatedToo) {
  Dataset Data = cleanDataset(30, 300);
  MlpOptions Options;
  Options.HiddenSizes = {4};
  Options.Epochs = 0;
  Options.WeightDecay = 0.1; // Large enough to dominate rounding noise.
  Options.Seed = 31;
  MlpClassifier Mlp(firstTwoFeatures(), Options);
  Mlp.train(Data);
  checkGradients(Mlp, Data, 33);
}

//===----------------------------------------------------------------------===//
// Convergence on a separable toy corpus
//===----------------------------------------------------------------------===//

TEST(MlpTrainingTest, ConvergesOnSeparableData) {
  Dataset Train = cleanDataset(400, 40);
  Dataset Test = cleanDataset(150, 41);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  EXPECT_GT(Mlp.accuracyOn(Test), 0.9);
}

TEST(MlpTrainingTest, TrainingReducesTheLoss) {
  Dataset Train = cleanDataset(300, 42);
  MlpClassifier Untrained = initializedMlp(Train, {24}, 7);
  MlpClassifier Trained(firstTwoFeatures());
  Trained.train(Train);
  EXPECT_LT(Trained.lossOn(Train), 0.5 * Untrained.lossOn(Train));
}

TEST(MlpTrainingTest, IgnoresDistractorFeatures) {
  Dataset Train = cleanDataset(400, 43);
  Dataset Test = cleanDataset(150, 44);
  MlpClassifier Mlp(firstFourFeatures());
  Mlp.train(Train);
  EXPECT_GT(Mlp.accuracyOn(Test), 0.85);
}

//===----------------------------------------------------------------------===//
// Determinism and the score surface
//===----------------------------------------------------------------------===//

TEST(MlpDeterminismTest, SameSeedSameBytes) {
  Dataset Train = cleanDataset(200, 50);
  MlpClassifier A(firstTwoFeatures());
  MlpClassifier B(firstTwoFeatures());
  A.train(Train);
  B.train(Train);
  EXPECT_EQ(A.serialize(), B.serialize());
}

TEST(MlpDeterminismTest, DifferentSeedsDiverge) {
  Dataset Train = cleanDataset(200, 51);
  MlpOptions OtherSeed;
  OtherSeed.Seed = 0xdecafbad;
  MlpClassifier A(firstTwoFeatures());
  MlpClassifier B(firstTwoFeatures(), OtherSeed);
  A.train(Train);
  B.train(Train);
  EXPECT_NE(A.serialize(), B.serialize());
}

TEST(MlpScoresTest, ScoresAreASoftmaxAndArgmaxMatchesPredict) {
  Dataset Train = cleanDataset(300, 52);
  Dataset Queries = cleanDataset(40, 53);
  MlpClassifier Mlp(firstTwoFeatures());
  Mlp.train(Train);
  for (const Example &Ex : Queries.examples()) {
    auto Scores = Mlp.scores(Ex.Features);
    double Sum = 0.0;
    for (double Score : Scores) {
      EXPECT_GE(Score, 0.0);
      Sum += Score;
    }
    EXPECT_NEAR(Sum, 1.0, 1e-9);
    unsigned Best = 0;
    for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
      if (Scores[Class] > Scores[Best])
        Best = Class;
    EXPECT_EQ(Best + 1, Mlp.predict(Ex.Features));
  }
}
