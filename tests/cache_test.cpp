//===- tests/cache_test.cpp - Unit tests for src/cache --------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "cache/SimCache.h"
#include "concurrency/Parallel.h"
#include "concurrency/ThreadPool.h"
#include "core/driver/SpeedupEvaluator.h"
#include "core/features/FeatureCatalog.h"
#include "ir/LoopBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace metaopt;

namespace {

Loop makeDaxpy(int64_t Trip = 1024) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, Trip);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  MemRef X{0, 8, 0, false, 8};
  MemRef Y{1, 8, 0, false, 8};
  RegId Xv = B.load(RegClass::Float, X);
  RegId Yv = B.load(RegClass::Float, Y);
  B.store(B.fma(Alpha, Xv, Yv), Y);
  return B.finalize();
}

Loop makeIir() {
  LoopBuilder B("iir", SourceLanguage::C, 1, 512);
  RegId A = B.liveIn(RegClass::Float, "a");
  RegId Y = B.phi(RegClass::Float, "y");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Next = B.fma(A, Y, X);
  B.store(Next, {1, 8, 0, false, 8});
  B.setPhiRecur(Y, Next);
  return B.finalize();
}

CorpusOptions tinyCorpus() {
  CorpusOptions Options;
  Options.MinLoopsPerBenchmark = 2;
  Options.MaxLoopsPerBenchmark = 3;
  return Options;
}

SimCacheConfig disabledConfig() {
  SimCacheConfig Config;
  Config.Enabled = false;
  return Config;
}

/// Fresh temp directory for a persistent-tier test.
std::string freshCacheDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "/metaopt_cache_test_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// Overwrites \p Count bytes at \p Offset in \p Path.
void patchFile(const std::string &Path, std::streamoff Offset,
               const void *Bytes, size_t Count) {
  std::fstream File(Path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(File.good());
  File.seekp(Offset);
  File.write(static_cast<const char *>(Bytes),
             static_cast<std::streamsize>(Count));
  ASSERT_TRUE(File.good());
}

std::string slurp(const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(File),
                     std::istreambuf_iterator<char>());
}

} // namespace

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

TEST(FingerprintTest, DeterministicAndNonDestructive) {
  FingerprintHasher A, B;
  A.str("hello");
  A.u64(42);
  A.f64(3.25);
  B.str("hello");
  B.u64(42);
  B.f64(3.25);
  EXPECT_EQ(A.digest(), B.digest());
  // digest() must not consume the state: hashing more afterwards works.
  Fingerprint First = A.digest();
  A.u64(7);
  EXPECT_NE(A.digest(), First);
}

TEST(FingerprintTest, LengthPrefixPreventsConcatenationCollisions) {
  FingerprintHasher A, B;
  A.str("ab");
  A.str("c");
  B.str("a");
  B.str("bc");
  EXPECT_NE(A.digest(), B.digest());
}

TEST(FingerprintTest, SensitiveToEveryByte) {
  FingerprintHasher A, B;
  A.str("daxpy");
  B.str("daxpz");
  EXPECT_NE(A.digest(), B.digest());
}

//===----------------------------------------------------------------------===//
// Key derivation
//===----------------------------------------------------------------------===//

TEST(SimCacheKeyTest, StableAcrossPrintParseRoundTrip) {
  // The key is derived from the canonical print; a loop that survives a
  // print -> parse -> print round trip must produce the same key, so a
  // corpus loop and its reparsed twin share cache entries.
  Loop Original = makeDaxpy();
  ParseResult Parsed = parseLoops(printLoop(Original));
  ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
  ASSERT_EQ(Parsed.Loops.size(), 1u);

  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  for (unsigned Factor : {1u, 4u, 8u})
    EXPECT_EQ(simCacheKey(Original, Factor, Machine, Ctx, false),
              simCacheKey(Parsed.Loops.front(), Factor, Machine, Ctx, false));
}

TEST(SimCacheKeyTest, DistinguishesEverySimulationInput) {
  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  Loop L = makeDaxpy();
  SimKey Base = simCacheKey(L, 4, Machine, Ctx, false);

  EXPECT_NE(simCacheKey(makeIir(), 4, Machine, Ctx, false), Base);
  EXPECT_NE(simCacheKey(L, 5, Machine, Ctx, false), Base);
  EXPECT_NE(simCacheKey(L, 4, Machine, Ctx, true), Base);

  MachineConfig Narrow = itanium2Config();
  Narrow.IssueWidth = 2;
  EXPECT_NE(simCacheKey(L, 4, MachineModel(Narrow), Ctx, false), Base);

  SimContext Tight = Ctx;
  Tight.EffectiveIcacheBytes = 256;
  EXPECT_NE(simCacheKey(L, 4, Machine, Tight, false), Base);

  SimContext Missy = Ctx;
  Missy.DcacheMissRate = 0.25;
  EXPECT_NE(simCacheKey(L, 4, Machine, Missy, false), Base);
}

TEST(SimCacheKeyTest, TripCountIsPartOfTheKey) {
  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  EXPECT_NE(simCacheKey(makeDaxpy(1024), 4, Machine, Ctx, false),
            simCacheKey(makeDaxpy(2048), 4, Machine, Ctx, false));
}

//===----------------------------------------------------------------------===//
// In-memory tier
//===----------------------------------------------------------------------===//

TEST(SimCacheTest, HitReturnsTheByteIdenticalResult) {
  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  Loop L = makeDaxpy();

  SimCache Cache;
  SimResult Fresh = simulateLoop(L, 4, Machine, Ctx, false);
  SimResult Miss = Cache.simulate(L, 4, Machine, Ctx, false);
  SimResult Hit = Cache.simulate(L, 4, Machine, Ctx, false);
  EXPECT_EQ(Miss, Fresh);
  EXPECT_EQ(Hit, Fresh);

  SimCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Inserts, 1u);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_DOUBLE_EQ(Stats.hitRate(), 0.5);
}

TEST(SimCacheTest, DisabledCacheIsAPurePassThrough) {
  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  Loop L = makeDaxpy();

  SimCache Cache(disabledConfig());
  SimResult A = Cache.simulate(L, 4, Machine, Ctx, false);
  SimResult B = Cache.simulate(L, 4, Machine, Ctx, false);
  EXPECT_EQ(A, simulateLoop(L, 4, Machine, Ctx, false));
  EXPECT_EQ(A, B);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().lookups(), 0u);
}

TEST(SimCacheTest, ClearDropsEntriesButKeepsStats) {
  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  SimCache Cache;
  Cache.simulate(makeDaxpy(), 1, Machine, Ctx, false);
  ASSERT_EQ(Cache.size(), 1u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
}

TEST(SimCacheTest, ConcurrentSweepsAreDeterministicAtAnyThreadCount) {
  MachineModel Machine(itanium2Config());
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());

  // The uncached, serial reference for every (loop, factor) pair.
  struct Work {
    const CorpusLoop *Entry;
    unsigned Factor;
  };
  std::vector<Work> Items;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops)
      for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor)
        Items.push_back({&Entry, Factor});
  std::vector<SimResult> Reference;
  Reference.reserve(Items.size());
  for (const Work &Item : Items)
    Reference.push_back(simulateLoop(Item.Entry->TheLoop, Item.Factor,
                                     Machine, Item.Entry->Ctx, false));

  for (unsigned Threads : {1u, 4u}) {
    ThreadPool Pool(Threads);
    SimCache Cache;
    // Two passes: the first is all misses (with concurrent inserts of the
    // same keys racing benignly), the second all hits.
    for (int Pass = 0; Pass < 2; ++Pass) {
      std::vector<SimResult> Results = parallelMap<SimResult>(
          Items.size(),
          [&](size_t I) {
            return Cache.simulate(Items[I].Entry->TheLoop, Items[I].Factor,
                                  Machine, Items[I].Entry->Ctx, false);
          },
          &Pool);
      ASSERT_EQ(Results.size(), Reference.size());
      for (size_t I = 0; I < Results.size(); ++I)
        EXPECT_EQ(Results[I], Reference[I]) << "pass " << Pass << " item "
                                            << I << " threads " << Threads;
    }
    SimCacheStats Stats = Cache.stats();
    EXPECT_EQ(Stats.Hits, Items.size());
    EXPECT_EQ(Stats.Misses, Items.size());
    EXPECT_EQ(Stats.Inserts, Cache.size());
    EXPECT_EQ(Cache.size(), Items.size());
  }
}

//===----------------------------------------------------------------------===//
// Persistent tier
//===----------------------------------------------------------------------===//

TEST(SimCachePersistentTest, RoundTripsAcrossHandles) {
  std::string Dir = freshCacheDir("roundtrip");
  MachineModel Machine(itanium2Config());
  SimContext Ctx;

  SimCacheConfig Config;
  Config.PersistentDir = Dir;
  {
    SimCache Writer(Config);
    for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor)
      Writer.simulate(makeDaxpy(), Factor, Machine, Ctx, false);
    EXPECT_TRUE(Writer.savePersistentIfDirty());
    // A second call has nothing new to write.
    EXPECT_FALSE(Writer.savePersistentIfDirty());
  }

  SimCache Reader(Config);
  EXPECT_EQ(Reader.size(), static_cast<size_t>(MaxUnrollFactor));
  EXPECT_EQ(Reader.stats().PersistentLoaded,
            static_cast<uint64_t>(MaxUnrollFactor));
  SimResult Warm = Reader.simulate(makeDaxpy(), 4, Machine, Ctx, false);
  EXPECT_EQ(Warm, simulateLoop(makeDaxpy(), 4, Machine, Ctx, false));
  EXPECT_EQ(Reader.stats().Hits, 1u);
  EXPECT_EQ(Reader.stats().Misses, 0u);

  SimCacheFileInfo Info = inspectSimCacheFile(Reader.persistentPath());
  EXPECT_TRUE(Info.Valid) << Info.Error;
  EXPECT_EQ(Info.Version, SimCacheFileVersion);
  EXPECT_EQ(Info.Entries, static_cast<uint64_t>(MaxUnrollFactor));

  std::filesystem::remove_all(Dir);
}

TEST(SimCachePersistentTest, FileBytesAreDeterministic) {
  // Whatever order entries were inserted in, the saved file is sorted by
  // key, so two processes that did the same work publish identical bytes.
  MachineModel Machine(itanium2Config());
  SimContext Ctx;

  std::string DirA = freshCacheDir("bytes_a");
  std::string DirB = freshCacheDir("bytes_b");
  SimCacheConfig ConfigA, ConfigB;
  ConfigA.PersistentDir = DirA;
  ConfigB.PersistentDir = DirB;

  SimCache A(ConfigA), B(ConfigB);
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor)
    A.simulate(makeDaxpy(), Factor, Machine, Ctx, false);
  for (unsigned Factor = MaxUnrollFactor; Factor >= 1; --Factor)
    B.simulate(makeDaxpy(), Factor, Machine, Ctx, false);
  ASSERT_TRUE(A.savePersistent());
  ASSERT_TRUE(B.savePersistent());
  EXPECT_EQ(slurp(A.persistentPath()), slurp(B.persistentPath()));

  std::filesystem::remove_all(DirA);
  std::filesystem::remove_all(DirB);
}

TEST(SimCachePersistentTest, RejectsCorruptTruncatedAndMismatchedFiles) {
  std::string Dir = freshCacheDir("reject");
  MachineModel Machine(itanium2Config());
  SimContext Ctx;

  SimCacheConfig Config;
  Config.PersistentDir = Dir;
  SimCache Writer(Config);
  Writer.simulate(makeDaxpy(), 2, Machine, Ctx, false);
  Writer.simulate(makeIir(), 3, Machine, Ctx, false);
  ASSERT_TRUE(Writer.savePersistent());
  std::string Path = Writer.persistentPath();
  std::string Pristine = slurp(Path);
  ASSERT_FALSE(Pristine.empty());

  auto restore = [&] {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Pristine.data(), static_cast<std::streamsize>(Pristine.size()));
  };
  auto rejects = [&](const char *What) {
    SimCacheFileInfo Info = inspectSimCacheFile(Path);
    EXPECT_FALSE(Info.Valid) << What;
    EXPECT_FALSE(Info.Error.empty()) << What;
    SimCache Reader(Config); // Construction tries to warm-start.
    EXPECT_EQ(Reader.size(), 0u) << What;
    EXPECT_FALSE(Reader.loadPersistent()) << What;
  };

  // A flipped payload byte breaks the checksum.
  char Flipped = static_cast<char>(Pristine[Pristine.size() - 5] ^ 0x40);
  patchFile(Path, static_cast<std::streamoff>(Pristine.size() - 5), &Flipped,
            1);
  rejects("corrupt payload byte");
  restore();

  // A truncated record breaks the size/count agreement.
  std::filesystem::resize_file(Path, Pristine.size() - 9);
  rejects("truncated record");
  restore();

  // A future format version is rejected before the payload is even read.
  uint64_t FutureVersion = SimCacheFileVersion + 1;
  patchFile(Path, 8, &FutureVersion, sizeof(FutureVersion));
  rejects("version mismatch");
  restore();

  // Wrong magic: some other tool's file living under the same name.
  const char BadMagic[8] = {'N', 'O', 'T', 'A', 'C', 'A', 'S', 'H'};
  patchFile(Path, 0, BadMagic, sizeof(BadMagic));
  rejects("bad magic");

  // The pristine bytes still load after all that abuse.
  restore();
  SimCache Reader(Config);
  EXPECT_EQ(Reader.size(), 2u);

  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// End-to-end determinism: cache on/off x thread counts
//===----------------------------------------------------------------------===//

TEST(SimCacheEndToEndTest, LabelingIsByteIdenticalCacheOnVsOff) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());

  LabelingOptions Options;
  SimCache Off(disabledConfig());
  Options.Cache = &Off;
  std::string Uncached = collectLabels(Corpus, Options).toCsv();

  SimCache On;
  Options.Cache = &On;
  std::string Cold = collectLabels(Corpus, Options).toCsv();
  std::string Warm = collectLabels(Corpus, Options).toCsv();
  EXPECT_GT(On.stats().Hits, 0u);

  EXPECT_EQ(Uncached, Cold);
  EXPECT_EQ(Uncached, Warm);
}

TEST(SimCacheEndToEndTest, LabelingIsByteIdenticalAcrossThreadCounts) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  LabelingOptions Options;
  SimCache Cache;
  Options.Cache = &Cache;

  unsigned Saved = ThreadPool::global().threadCount();
  ThreadPool::setGlobalThreads(1);
  std::string Serial = collectLabels(Corpus, Options).toCsv();
  ThreadPool::setGlobalThreads(4);
  std::string Threaded = collectLabels(Corpus, Options).toCsv();
  ThreadPool::setGlobalThreads(Saved);

  EXPECT_EQ(Serial, Threaded);
}

TEST(SimCacheEndToEndTest, SpeedupReportIsIdenticalCacheOnVsOff) {
  std::vector<Benchmark> Corpus = buildCorpus(tinyCorpus());
  LabelingOptions Labeling;
  SimCache Off(disabledConfig());
  Labeling.Cache = &Off;
  Dataset Data = collectLabels(Corpus, Labeling);

  std::vector<std::string> Eval = {"164.gzip", "171.swim"};
  SpeedupOptions Options;
  Options.Labeling = Labeling;
  SpeedupReport Uncached =
      evaluateSpeedups(Corpus, Eval, Data, paperReducedFeatureSet(), Options);

  SimCache On;
  Options.Labeling.Cache = &On;
  SpeedupReport Cached =
      evaluateSpeedups(Corpus, Eval, Data, paperReducedFeatureSet(), Options);
  EXPECT_GT(On.stats().Hits, 0u);

  ASSERT_EQ(Cached.Rows.size(), Uncached.Rows.size());
  for (size_t I = 0; I < Cached.Rows.size(); ++I) {
    EXPECT_EQ(Cached.Rows[I].Benchmark, Uncached.Rows[I].Benchmark);
    EXPECT_DOUBLE_EQ(Cached.Rows[I].NnVsOrc, Uncached.Rows[I].NnVsOrc);
    EXPECT_DOUBLE_EQ(Cached.Rows[I].SvmVsOrc, Uncached.Rows[I].SvmVsOrc);
    EXPECT_DOUBLE_EQ(Cached.Rows[I].OracleVsOrc,
                     Uncached.Rows[I].OracleVsOrc);
  }
  EXPECT_DOUBLE_EQ(Cached.MeanNn, Uncached.MeanNn);
  EXPECT_DOUBLE_EQ(Cached.MeanSvm, Uncached.MeanSvm);
  EXPECT_DOUBLE_EQ(Cached.MeanOracle, Uncached.MeanOracle);
}
