//===- tests/features_test.cpp - Unit tests for core/features -------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "core/features/FeatureExtractor.h"
#include "core/features/Normalizer.h"
#include "corpus/LoopGenerators.h"
#include "ir/LoopBuilder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace metaopt;

namespace {

double get(const FeatureVector &Features, FeatureId Id) {
  return Features[static_cast<unsigned>(Id)];
}

Loop makeDaxpy(int64_t Trip = 1024) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, Trip);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  MemRef X{0, 8, 0, false, 8};
  MemRef Y{1, 8, 0, false, 8};
  RegId Xv = B.load(RegClass::Float, X);
  RegId Yv = B.load(RegClass::Float, Y);
  B.store(B.fma(Alpha, Xv, Yv), Y);
  return B.finalize();
}

} // namespace

//===----------------------------------------------------------------------===//
// Catalogue
//===----------------------------------------------------------------------===//

TEST(FeatureCatalogTest, FortyOneUniqueNames) {
  std::set<std::string> Names;
  for (unsigned I = 0; I < NumFeatures; ++I) {
    FeatureId Id = static_cast<FeatureId>(I);
    EXPECT_TRUE(Names.insert(featureName(Id)).second) << featureName(Id);
    EXPECT_NE(std::string(featureDescription(Id)), "");
  }
  EXPECT_EQ(Names.size(), 41u);
}

TEST(FeatureCatalogTest, FullSetCoversEverything) {
  FeatureSet Full = fullFeatureSet();
  EXPECT_EQ(Full.size(), NumFeatures);
  std::set<FeatureId> Unique(Full.begin(), Full.end());
  EXPECT_EQ(Unique.size(), NumFeatures);
}

TEST(FeatureCatalogTest, ReducedSetIsTablesUnion) {
  FeatureSet Reduced = paperReducedFeatureSet();
  EXPECT_EQ(Reduced.size(), 10u);
  std::set<FeatureId> Set(Reduced.begin(), Reduced.end());
  // Spot-check members named in Tables 3 and 4.
  EXPECT_TRUE(Set.count(FeatureId::NumFloatOps));
  EXPECT_TRUE(Set.count(FeatureId::LiveRangeSize));
  EXPECT_TRUE(Set.count(FeatureId::KnownTripCount));
  EXPECT_TRUE(Set.count(FeatureId::NestLevel));
}

//===----------------------------------------------------------------------===//
// Extraction on hand-built loops
//===----------------------------------------------------------------------===//

TEST(FeatureExtractorTest, DaxpyCounts) {
  FeatureVector F = extractFeatures(makeDaxpy());
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumOps), 4.0); // 2 ld + fma + st.
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumFloatOps), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumMemOps), 3.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumLoads), 2.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumStores), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumBranches), 0.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumDefs), 3.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::TripCount), 1024.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::KnownTripCount), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::Language), 0.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NestLevel), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumIndirectRefs), 0.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumLoopCarriedValues), 0.0);
}

TEST(FeatureExtractorTest, UnknownTripEncodedAsMinusOne) {
  LoopBuilder B("u", SourceLanguage::Fortran90, 3,
                Loop::UnknownTripCount);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  FeatureVector F = extractFeatures(L);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::TripCount), -1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::KnownTripCount), 0.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::Language), 2.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NestLevel), 3.0);
}

TEST(FeatureExtractorTest, BranchAndCallCounts) {
  LoopBuilder B("bc", SourceLanguage::C, 1, 64);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.25);
  B.call({});
  Loop L = B.finalize();
  FeatureVector F = extractFeatures(L);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumBranches), 2.0); // exit + call.
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumCalls), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumEarlyExits), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::SumExitProbability), 0.25);
}

TEST(FeatureExtractorTest, PredicatesCounted) {
  LoopBuilder B("pred", SourceLanguage::C, 1, 64);
  RegId T = B.liveIn(RegClass::Float, "t");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId C1 = B.fcmp(X, T);
  RegId C2 = B.fcmp(T, X);
  B.setPredicate(C1);
  B.fadd(X, T);
  B.setPredicate(C2);
  B.fadd(T, X);
  B.setPredicate(C1); // Reuse: still only two unique predicates.
  B.fadd(X, X);
  B.clearPredicate();
  Loop L = B.finalize();
  FeatureVector F = extractFeatures(L);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumUniquePredicates), 2.0);
}

TEST(FeatureExtractorTest, IndirectRefsAndRecurrence) {
  LoopBuilder B("gather", SourceLanguage::C, 1, 64);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId Index = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId V = B.load(RegClass::Float, {1, 0, 0, true, 8}, Index);
  B.setPhiRecur(Acc, B.fadd(Acc, V));
  Loop L = B.finalize();
  FeatureVector F = extractFeatures(L);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumIndirectRefs), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::NumLoopCarriedValues), 1.0);
  EXPECT_GE(get(F, FeatureId::RecMii), 4.0); // fadd-latency-bound.
}

TEST(FeatureExtractorTest, CriticalPathGrowsWithChains) {
  LoopBuilder Short("short", SourceLanguage::C, 1, 64);
  RegId X = Short.load(RegClass::Float, {0, 8, 0, false, 8});
  Short.store(X, {1, 8, 0, false, 8});
  Loop ShortLoop = Short.finalize();

  LoopBuilder Long("long", SourceLanguage::C, 1, 64);
  RegId Y = Long.load(RegClass::Float, {0, 8, 0, false, 8});
  for (int I = 0; I < 5; ++I)
    Y = Long.fmul(Y, Y);
  Long.store(Y, {1, 8, 0, false, 8});
  Loop LongLoop = Long.finalize();

  EXPECT_GT(get(extractFeatures(LongLoop), FeatureId::CriticalPathLatency),
            get(extractFeatures(ShortLoop),
                FeatureId::CriticalPathLatency));
}

TEST(FeatureExtractorTest, MoreStreamsMoreParallelComputations) {
  auto Streams = [](int Count) {
    LoopBuilder B("par", SourceLanguage::C, 1, 64);
    for (int S = 0; S < Count; ++S) {
      RegId X = B.load(RegClass::Float,
                       {static_cast<int32_t>(2 * S), 8, 0, false, 8});
      B.store(X, {static_cast<int32_t>(2 * S + 1), 8, 0, false, 8});
    }
    return extractFeatures(B.finalize());
  };
  EXPECT_GT(get(Streams(5), FeatureId::NumParallelComputations),
            get(Streams(2), FeatureId::NumParallelComputations));
}

TEST(FeatureExtractorTest, ExtractionIsDeterministic) {
  Rng Generator(3);
  LoopGenParams Params;
  Params.Name = "det";
  Params.TripCount = 128;
  Params.RuntimeTripCount = 128;
  Loop L = generateLoop(LoopKind::Mixed, Params, Generator);
  FeatureVector A = extractFeatures(L);
  FeatureVector B = extractFeatures(L);
  EXPECT_EQ(A, B);
}

TEST(FeatureExtractorTest, AllFeaturesFiniteAcrossGenerators) {
  for (unsigned Kind = 0; Kind < NumLoopKinds; ++Kind) {
    Rng Generator(Kind * 7 + 1);
    LoopGenParams Params;
    Params.Name = "finite";
    Params.TripCount = 100;
    Params.RuntimeTripCount = 100;
    Loop L = generateLoop(static_cast<LoopKind>(Kind), Params, Generator);
    FeatureVector F = extractFeatures(L);
    for (unsigned I = 0; I < NumFeatures; ++I)
      EXPECT_TRUE(std::isfinite(F[I]))
          << loopKindName(static_cast<LoopKind>(Kind)) << " feature "
          << featureName(static_cast<FeatureId>(I));
  }
}

//===----------------------------------------------------------------------===//
// Normalizer
//===----------------------------------------------------------------------===//

TEST(NormalizerTest, ZScoreProducesZeroMeanUnitVariance) {
  std::vector<FeatureVector> Vectors(50);
  Rng Generator(5);
  for (FeatureVector &V : Vectors) {
    V.fill(0.0);
    V[0] = Generator.nextGaussian(100.0, 25.0);
    V[1] = Generator.nextGaussian(-2.0, 0.5);
  }
  FeatureSet Features = {static_cast<FeatureId>(0),
                         static_cast<FeatureId>(1)};
  Normalizer Norm;
  Norm.fit(Vectors, Features);
  double Sum0 = 0, Sum1 = 0, Sq0 = 0, Sq1 = 0;
  for (const FeatureVector &V : Vectors) {
    std::vector<double> Out = Norm.apply(V);
    Sum0 += Out[0];
    Sum1 += Out[1];
    Sq0 += Out[0] * Out[0];
    Sq1 += Out[1] * Out[1];
  }
  EXPECT_NEAR(Sum0 / 50, 0.0, 1e-9);
  EXPECT_NEAR(Sum1 / 50, 0.0, 1e-9);
  EXPECT_NEAR(Sq0 / 50, 1.0, 1e-9);
  EXPECT_NEAR(Sq1 / 50, 1.0, 1e-9);
}

TEST(NormalizerTest, MinMaxMapsToUnitInterval) {
  std::vector<FeatureVector> Vectors(20);
  for (size_t I = 0; I < 20; ++I) {
    Vectors[I].fill(0.0);
    Vectors[I][3] = static_cast<double>(I) * 10.0;
  }
  Normalizer Norm;
  Norm.fit(Vectors, {static_cast<FeatureId>(3)},
           NormalizationKind::MinMax);
  EXPECT_DOUBLE_EQ(Norm.apply(Vectors[0])[0], 0.0);
  EXPECT_DOUBLE_EQ(Norm.apply(Vectors[19])[0], 1.0);
  EXPECT_NEAR(Norm.apply(Vectors[10])[0], 10.0 / 19.0, 1e-12);
}

TEST(NormalizerTest, ConstantFeatureDoesNotDivideByZero) {
  std::vector<FeatureVector> Vectors(5);
  for (FeatureVector &V : Vectors)
    V.fill(7.0);
  Normalizer Norm;
  Norm.fit(Vectors, {static_cast<FeatureId>(0)});
  std::vector<double> Out = Norm.apply(Vectors[0]);
  EXPECT_TRUE(std::isfinite(Out[0]));
  EXPECT_DOUBLE_EQ(Out[0], 0.0);
}

TEST(NormalizerTest, SubsetSelectsAndOrders) {
  FeatureVector V;
  V.fill(0.0);
  V[static_cast<unsigned>(FeatureId::NumOps)] = 11.0;
  V[static_cast<unsigned>(FeatureId::NumMemOps)] = 22.0;
  Normalizer Norm;
  // Fit on a spread so scaling is identity-ish but nonzero.
  std::vector<FeatureVector> Fit(2, V);
  Fit[1][static_cast<unsigned>(FeatureId::NumOps)] = 13.0;
  Fit[1][static_cast<unsigned>(FeatureId::NumMemOps)] = 26.0;
  Norm.fit(Fit, {FeatureId::NumMemOps, FeatureId::NumOps});
  std::vector<double> Out = Norm.apply(V);
  ASSERT_EQ(Out.size(), 2u);
  // First output dimension must be NumMemOps (the subset's order).
  EXPECT_LT(Out[0], 0.0); // 22 below the fit mean 24.
  EXPECT_LT(Out[1], 0.0); // 11 below the fit mean 12.
}

//===----------------------------------------------------------------------===//
// Symbolic-prover features
//===----------------------------------------------------------------------===//

TEST(FeatureExtractorTest, SymbolicProverFeatures) {
  // daxpy: every same-symbol pair advances 8 bytes per iteration over
  // disjoint slots, so every lag is proven disjoint.
  FeatureVector F = extractFeatures(makeDaxpy());
  EXPECT_DOUBLE_EQ(get(F, FeatureId::MinSymbolicDepDistance),
                   MaxUnrollFactor + 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::ProvableDisjointFraction), 1.0);
  EXPECT_DOUBLE_EQ(get(F, FeatureId::ReachablePredicatedStores), 0.0);

  // First-order recurrence a[i] = f(a[i-1]): the lag-1 store->load pair
  // is a genuine carried dependence the prover must refuse.
  LoopBuilder B("recur", SourceLanguage::C, 1, 256);
  RegId Prev = B.load(RegClass::Float, {0, 8, -8, false, 8});
  RegId Next = B.fadd(Prev, Prev);
  B.store(Next, {0, 8, 0, false, 8});
  FeatureVector R = extractFeatures(B.finalize());
  EXPECT_DOUBLE_EQ(get(R, FeatureId::MinSymbolicDepDistance), 1.0);
  EXPECT_LT(get(R, FeatureId::ProvableDisjointFraction), 1.0);
}

TEST(FeatureExtractorTest, ReachablePredicatedStoresExcludesProvenDead) {
  LoopBuilder B("pred", SourceLanguage::C, 1, 256);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Y = B.load(RegClass::Float, {1, 8, 0, false, 8});
  RegId P = B.fcmp(X, Y); // Data-dependent: reachable.
  B.setPredicate(P);
  B.store(X, {2, 8, 0, false, 8});
  B.clearPredicate();
  RegId One = B.iconst(1);
  RegId Two = B.iconst(2);
  RegId Dead = B.icmp(Two, One); // 2 < 1: provably false.
  B.setPredicate(Dead);
  B.store(Y, {3, 8, 0, false, 8});
  B.clearPredicate();
  FeatureVector F = extractFeatures(B.finalize());
  EXPECT_DOUBLE_EQ(get(F, FeatureId::ReachablePredicatedStores), 1.0);
}
