//===- tests/symbolic_test.cpp - Stride-interval analysis tests -----------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Golden stride-interval fixpoints for hand-traced loops, predicate-fact
// proofs, the disjointness prover (positive and refusal cases), the
// independence summary, and the canonical sim-equivalence form (including
// simulateLoop invariance at every factor).
//
//===----------------------------------------------------------------------===//

#include "analysis/symbolic/Canonical.h"
#include "analysis/symbolic/Disjointness.h"
#include "analysis/symbolic/StrideInterval.h"
#include "ir/LoopBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "machine/Machine.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <limits>

using namespace metaopt;

namespace {

Loop parseOne(std::string_view Text) {
  ParseResult Parsed = parseLoops(Text, "symbolic_test.loop");
  EXPECT_TRUE(Parsed.succeeded()) << Parsed.Error;
  EXPECT_EQ(Parsed.Loops.size(), 1u);
  return Parsed.Loops.at(0);
}

/// Finds the register with printer name \p Name.
RegId regNamed(const Loop &L, std::string_view Name) {
  for (RegId Reg = 0; Reg < L.numRegs(); ++Reg)
    if (L.regName(Reg) == Name)
      return Reg;
  ADD_FAILURE() << "no register named " << Name;
  return NoReg;
}

/// Body index of the Nth memory op.
const AccessSummary &accessNo(const SymbolicAnalysis &SA, size_t N) {
  EXPECT_LT(N, SA.accesses().size());
  return SA.accesses()[N];
}

//===----------------------------------------------------------------------===//
// Golden fixpoints for hand-traced loops
//===----------------------------------------------------------------------===//

TEST(StrideInterval, LinearInductionResolvesToAffineForm) {
  // j starts at an opaque live-in and advances by 4 each iteration:
  // j(i) = j.init + 4*i. The address register scales it by 8.
  LoopBuilder B("ind", SourceLanguage::C, 1, 100);
  RegId J = B.phi(RegClass::Int, "j");
  RegId Four = B.iconst(4);
  RegId JNext = B.iadd(J, Four);
  B.setPhiRecur(J, JNext);
  RegId Eight = B.iconst(8);
  RegId Addr = B.imul(J, Eight);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.describeValue(J), "%i_j.init + 4*i");
  EXPECT_EQ(SA.describeValue(JNext), "%i_j.init + 4 + 4*i");
  EXPECT_EQ(SA.describeValue(Four), "4");
  // Base-carrying values cannot be scaled: implicit coefficient is 1.
  EXPECT_EQ(SA.describeValue(Addr), "top");
}

TEST(StrideInterval, IvAddIsIterationPlusOneAndBounded) {
  LoopBuilder B("iv", SourceLanguage::C, 1, 64);
  RegId X = B.liveIn(RegClass::Float, "x");
  B.store(X, {/*BaseSym=*/0, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  RegId IvNext = regNamed(L, "iv.next");
  EXPECT_EQ(SA.describeValue(IvNext), "1 + 1*i");
  int64_t Lo = 0, Hi = 0;
  ASSERT_TRUE(SA.valueRange(IvNext, Lo, Hi));
  EXPECT_EQ(Lo, 1);
  EXPECT_EQ(Hi, 64);
  ASSERT_TRUE(SA.ivRange(Lo, Hi));
  EXPECT_EQ(Lo, 0);
  EXPECT_EQ(Hi, 63);
}

TEST(StrideInterval, ConstantFoldingFollowsInterpreterEdgeCases) {
  LoopBuilder B("fold", SourceLanguage::C, 1, 8);
  RegId A = B.iconst(42);
  RegId Zero = B.iconst(0);
  RegId Div = B.idiv(A, Zero); // x / 0 == 0 in the reference semantics.
  RegId Rem = B.irem(A, Zero); // x % 0 == x.
  RegId Prod = B.imul(A, A);
  RegId Sink = B.iadd(Div, Rem);
  RegId Sink2 = B.iadd(Prod, Sink);
  B.store(B.fcvt(Sink2), {/*BaseSym=*/0, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.describeValue(Div), "0");
  EXPECT_EQ(SA.describeValue(Rem), "42");
  EXPECT_EQ(SA.describeValue(Prod), "1764");
  EXPECT_EQ(SA.describeValue(Sink2), "1806");
}

TEST(StrideInterval, UnknownTripKeepsAffineFormButRefusesRange) {
  LoopBuilder B("unk", SourceLanguage::C, 1, Loop::UnknownTripCount);
  RegId J = B.phi(RegClass::Int, "j");
  RegId One = B.iconst(1);
  B.setPhiRecur(J, B.iadd(J, One));
  B.store(B.fcvt(J), {/*BaseSym=*/0, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.describeValue(J), "%i_j.init + 1*i");
  int64_t Lo, Hi;
  EXPECT_FALSE(SA.ivRange(Lo, Hi));
  RegId IvNext = regNamed(L, "iv.next");
  EXPECT_EQ(SA.describeValue(IvNext), "1 + 1*i");
  EXPECT_FALSE(SA.valueRange(IvNext, Lo, Hi));
}

TEST(StrideInterval, NonLinearRecurrenceWidensToTop) {
  // j(i+1) = 2 * j(i): geometric, not affine.
  LoopBuilder B("geo", SourceLanguage::C, 1, 16);
  RegId J = B.phi(RegClass::Int, "j");
  RegId Two = B.iconst(2);
  B.setPhiRecur(J, B.imul(J, Two));
  B.store(B.fcvt(J), {/*BaseSym=*/0, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.describeValue(J), "top");
}

TEST(StrideInterval, MutualInductionsResolveTogether) {
  // Two counters advancing in lock-step through a shared increment.
  LoopBuilder B("pair", SourceLanguage::C, 1, 32);
  RegId A = B.phi(RegClass::Int, "a");
  RegId C = B.phi(RegClass::Int, "c");
  RegId Three = B.iconst(3);
  B.setPhiRecur(A, B.iadd(A, Three));
  B.setPhiRecur(C, B.isub(C, Three));
  RegId Diff = B.isub(A, A); // Cancels the base: constant 0.
  B.store(B.fcvt(Diff), {/*BaseSym=*/0, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.describeValue(A), "%i_a.init + 3*i");
  EXPECT_EQ(SA.describeValue(C), "%i_c.init - 3*i");
  EXPECT_EQ(SA.describeValue(Diff), "0");
}

TEST(StrideInterval, PredicatedDefJoinsWithZeroDefault) {
  // Under an unknown guard, a predicated-off instruction writes the class
  // default, so the defined value is the join of {computed, 0}.
  Loop L = parseOne("loop \"pred\" lang=C nest=1 trip=8 rtrip=8 {\n"
                    "  %f_a = load @0[stride=8, offset=0, size=8]\n"
                    "  %p_g = fcmp %f_a, %f_b\n"
                    "  (%p_g) %i_x = iconst 7\n"
                    "  (%p_g) %i_z = iconst 0\n"
                    "  %f_c = fcvt %i_x\n"
                    "  store %f_c, @1[stride=8, offset=0, size=8]\n"
                    "  %i_iv.next = iv_add %i_iv\n"
                    "  %p_iv.cond = iv_cmp %i_iv.next\n"
                    "  back_br %p_iv.cond\n"
                    "}\n");
  ASSERT_TRUE(isWellFormed(L));
  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.describeValue(regNamed(L, "x")), "top"); // join(7, 0)
  EXPECT_EQ(SA.describeValue(regNamed(L, "z")), "0");   // join(0, 0)
}

TEST(StrideInterval, OverflowProneInductionIsFlaggedAndRefused) {
  LoopBuilder B("ovf", SourceLanguage::C, 1, 1000);
  RegId Big = B.iconst(std::numeric_limits<int64_t>::max() - 10);
  RegId IvLike = B.phi(RegClass::Int, "k");
  RegId One = B.iconst(1);
  B.setPhiRecur(IvLike, B.iadd(IvLike, One));
  B.store(B.fcvt(Big), {/*BaseSym=*/0, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  // Wire the big constant into an iteration term: big + (1+i)*large.
  // Rebuild: simpler to parse a loop where iv.next is scaled hugely.
  Loop L2 = parseOne(
      "loop \"ovf2\" lang=C nest=1 trip=1000 rtrip=1000 {\n"
      "  %i_big = iconst 9223372036854775797\n"
      "  %i_sc = iconst 4611686018427387904\n"
      "  %i_j = iadd %i_big, %i_sc\n"
      "  %f_v = fcvt %i_j\n"
      "  store %f_v, @0[stride=8, offset=0, size=8]\n"
      "  %i_iv.next = iv_add %i_iv\n"
      "  %p_iv.cond = iv_cmp %i_iv.next\n"
      "  back_br %p_iv.cond\n"
      "}\n");
  ASSERT_TRUE(isWellFormed(L2));
  SymbolicAnalysis SA(L2);
  RegId J = regNamed(L2, "j");
  // The wrapped affine form is still exact mod 2^64...
  EXPECT_TRUE(SA.value(J).isAffine());
  // ...but the constant fold overflowed, so the value is overflow-prone
  // and gets no range.
  EXPECT_TRUE(SA.overflowProne(J));
  int64_t Lo, Hi;
  EXPECT_FALSE(SA.valueRange(J, Lo, Hi));
}

//===----------------------------------------------------------------------===//
// Predicate facts
//===----------------------------------------------------------------------===//

TEST(StrideInterval, SelfCompareIsAlwaysFalse) {
  Loop L = parseOne("loop \"selfcmp\" lang=C nest=1 trip=16 rtrip=16 {\n"
                    "  %f_a = load @0[stride=8, offset=0, size=8]\n"
                    "  %p_i = icmp %i_x, %i_x\n"
                    "  %p_f = fcmp %f_a, %f_a\n"
                    "  (%p_i) store %f_a, @1[stride=8, offset=0, size=8]\n"
                    "  (%p_f) store %f_a, @2[stride=8, offset=0, size=8]\n"
                    "  %i_iv.next = iv_add %i_iv\n"
                    "  %p_iv.cond = iv_cmp %i_iv.next\n"
                    "  back_br %p_iv.cond\n"
                    "}\n");
  ASSERT_TRUE(isWellFormed(L));
  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.predFact(regNamed(L, "i")), PredFact::AlwaysFalse);
  EXPECT_EQ(SA.predFact(regNamed(L, "f")), PredFact::AlwaysFalse);
  // Both guarded stores are provably dead.
  EXPECT_EQ(accessNo(SA, 1).Guard, PredFact::AlwaysFalse);
  EXPECT_EQ(accessNo(SA, 2).Guard, PredFact::AlwaysFalse);
}

TEST(StrideInterval, IterationBoundedCompareProvesBothDirections) {
  // Two counters share one init and advance by 3 and 1; their difference
  // cancels the base, leaving the pure iteration term 2*i in [0, 198]
  // (trip=100). Against constants: 2*i < 200 always, 2*i < 0 never.
  Loop L = parseOne("loop \"rangecmp\" lang=C nest=1 trip=100 rtrip=100 {\n"
                    "  phi %i_p = [%i_x, %i_pn]\n"
                    "  phi %i_q = [%i_x, %i_qn]\n"
                    "  %i_three = iconst 3\n"
                    "  %i_one = iconst 1\n"
                    "  %i_pn = iadd %i_p, %i_three\n"
                    "  %i_qn = iadd %i_q, %i_one\n"
                    "  %i_d = isub %i_p, %i_q\n"
                    "  %i_hi = iconst 200\n"
                    "  %i_lo = iconst 0\n"
                    "  %p_a = icmp %i_d, %i_hi\n"
                    "  %p_b = icmp %i_d, %i_lo\n"
                    "  %f_v = load @0[stride=8, offset=0, size=8]\n"
                    "  (%p_a) store %f_v, @1[stride=8, offset=0, size=8]\n"
                    "  (%p_b) store %f_v, @2[stride=8, offset=0, size=8]\n"
                    "  %i_iv.next = iv_add %i_iv\n"
                    "  %p_iv.cond = iv_cmp %i_iv.next\n"
                    "  back_br %p_iv.cond\n"
                    "}\n");
  ASSERT_TRUE(isWellFormed(L));
  SymbolicAnalysis SA(L);
  EXPECT_EQ(SA.describeValue(regNamed(L, "d")), "2*i");
  int64_t Lo = 0, Hi = 0;
  ASSERT_TRUE(SA.valueRange(regNamed(L, "d"), Lo, Hi));
  EXPECT_EQ(Lo, 0);
  EXPECT_EQ(Hi, 198);
  EXPECT_EQ(SA.predFact(regNamed(L, "a")), PredFact::AlwaysTrue);
  EXPECT_EQ(SA.predFact(regNamed(L, "b")), PredFact::AlwaysFalse);
}

TEST(StrideInterval, PredSetCombinesFactsWithAnd) {
  Loop L = parseOne("loop \"predset\" lang=C nest=1 trip=16 rtrip=16 {\n"
                    "  %p_dead = icmp %i_x, %i_x\n"
                    "  %p_c = predset %p_u, %p_dead\n"
                    "  %f_v = load @0[stride=8, offset=0, size=8]\n"
                    "  (%p_c) store %f_v, @1[stride=8, offset=0, size=8]\n"
                    "  %i_iv.next = iv_add %i_iv\n"
                    "  %p_iv.cond = iv_cmp %i_iv.next\n"
                    "  back_br %p_iv.cond\n"
                    "}\n");
  ASSERT_TRUE(isWellFormed(L));
  SymbolicAnalysis SA(L);
  // unknown AND always-false == always-false.
  EXPECT_EQ(SA.predFact(regNamed(L, "c")), PredFact::AlwaysFalse);
}

//===----------------------------------------------------------------------===//
// Access summaries and the disjointness prover
//===----------------------------------------------------------------------===//

TEST(Disjointness, AffineIndirectAccessResolvesToDirectForm) {
  // a[j] where j advances 8 bytes per iteration through a phi: the
  // indirect access folds into stride 8 with the phi init as base.
  LoopBuilder B("gather", SourceLanguage::C, 1, 64);
  RegId J = B.phi(RegClass::Int, "j");
  RegId Eight = B.iconst(8);
  B.setPhiRecur(J, B.iadd(J, Eight));
  RegId V = B.load(RegClass::Float,
                   {/*BaseSym=*/0, /*Stride=*/0, /*Offset=*/0,
                    /*Indirect=*/true},
                   J);
  B.store(V, {/*BaseSym=*/1, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  const AccessSummary &Gather = accessNo(SA, 0);
  EXPECT_TRUE(Gather.WasIndirect);
  ASSERT_TRUE(Gather.AddressKnown);
  EXPECT_EQ(Gather.Base, L.phis().at(0).Init);
  EXPECT_EQ(Gather.Stride, 8);
  EXPECT_EQ(Gather.Offset, 0);
}

TEST(Disjointness, SameSymbolGapAndStrideProofs) {
  // Store walks @0 at stride 16 writing offset 0; load reads offset 8:
  // same-iteration disjoint (gap 8 >= size? no: 8 >= 8 yes), and the
  // cross-iteration lag-1 delta of -8 also clears -size.
  LoopBuilder B("gap", SourceLanguage::C, 1, 128);
  RegId V = B.load(RegClass::Float,
                   {/*BaseSym=*/0, /*Stride=*/16, /*Offset=*/8});
  B.store(V, {/*BaseSym=*/0, /*Stride=*/16, /*Offset=*/0});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  const AccessSummary &Ld = accessNo(SA, 0);
  const AccessSummary &St = accessNo(SA, 1);
  // Same iteration: byte ranges [8,16) vs [0,8).
  EXPECT_TRUE(provesDisjoint(SA, Ld, St, 0));
  // Store at i+1 writes 16 bytes later: [16, 24) vs load's [8, 16).
  EXPECT_TRUE(provesDisjoint(SA, Ld, St, 1));
  // Load at i+1 reads [24, 32) vs store's [0, 8).
  EXPECT_TRUE(provesDisjoint(SA, St, Ld, 1));

  // An 8-byte-apart pair at stride 8 is NOT disjoint across one
  // iteration: store at i+1 hits exactly the load's slot.
  LoopBuilder B2("carried", SourceLanguage::C, 1, 128);
  RegId V2 = B2.load(RegClass::Float,
                     {/*BaseSym=*/0, /*Stride=*/8, /*Offset=*/8});
  B2.store(V2, {/*BaseSym=*/0, /*Stride=*/8, /*Offset=*/0});
  Loop L2 = B2.finalize();
  SymbolicAnalysis SA2(L2);
  EXPECT_TRUE(provesDisjoint(SA2, accessNo(SA2, 0), accessNo(SA2, 1), 0));
  // Load at [8i+8, 8i+16) vs store at i+1 writing [8(i+1), 8(i+1)+8):
  // the exact same bytes, so the proof must be refused.
  EXPECT_FALSE(provesDisjoint(SA2, accessNo(SA2, 0), accessNo(SA2, 1), 1));
}

TEST(Disjointness, DifferentStridesUseIterationBounds) {
  // Load at stride 0 offset 4096; store walks stride 8 from 0 over 100
  // iterations: max store byte is 8*99+8 = 800 <= 4096, provably
  // disjoint at every lag — but only because the trip is known.
  LoopBuilder B("bounded", SourceLanguage::C, 1, 100);
  RegId V = B.load(RegClass::Float,
                   {/*BaseSym=*/0, /*Stride=*/0, /*Offset=*/4096});
  B.store(V, {/*BaseSym=*/0, /*Stride=*/8, /*Offset=*/0});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));
  SymbolicAnalysis SA(L);
  EXPECT_TRUE(provesDisjoint(SA, accessNo(SA, 0), accessNo(SA, 1), 0));
  EXPECT_TRUE(provesDisjoint(SA, accessNo(SA, 0), accessNo(SA, 1), 7));

  LoopBuilder B2("unbounded", SourceLanguage::C, 1, Loop::UnknownTripCount);
  RegId V2 = B2.load(RegClass::Float,
                     {/*BaseSym=*/0, /*Stride=*/0, /*Offset=*/4096});
  B2.store(V2, {/*BaseSym=*/0, /*Stride=*/8, /*Offset=*/0});
  Loop L2 = B2.finalize();
  SymbolicAnalysis SA2(L2);
  // Unknown trip: the walking store eventually reaches 4096.
  EXPECT_FALSE(provesDisjoint(SA2, accessNo(SA2, 0), accessNo(SA2, 1), 0));
}

TEST(Disjointness, IndependenceSummaryOnDaxpyShape) {
  // y[i] = a*x[i] + y[i]: the only same-symbol pair is load/store of @1
  // at identical addresses — lag 0 is a real dependence (not disjoint),
  // but every cross-iteration lag is provably clean, so all eight
  // unrolled copies are mutually independent.
  LoopBuilder B("daxpy", SourceLanguage::C, 1, 256);
  RegId A = B.liveIn(RegClass::Float, "alpha");
  RegId X = B.load(RegClass::Float, {/*BaseSym=*/0, /*Stride=*/8});
  RegId Y = B.load(RegClass::Float, {/*BaseSym=*/1, /*Stride=*/8});
  RegId R = B.fma(A, X, Y);
  B.store(R, {/*BaseSym=*/1, /*Stride=*/8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  SymbolicAnalysis SA(L);
  IndependenceSummary Sum = summarizeIndependence(SA);
  EXPECT_EQ(Sum.ProvenFactor, MaxUnrollFactor);
  EXPECT_EQ(Sum.MinDependenceLag, MaxUnrollFactor + 1);
  EXPECT_EQ(Sum.DisjointFraction, 1.0);
  EXPECT_GT(Sum.RelevantChecks, 0u);

  // A recurrence through memory (stride 8, store 8 bytes behind the
  // load) caps the proven factor at 1 and the dependence lag at 1.
  LoopBuilder B2("rec", SourceLanguage::C, 1, 256);
  RegId V2 = B2.load(RegClass::Float,
                     {/*BaseSym=*/0, /*Stride=*/8, /*Offset=*/8});
  B2.store(V2, {/*BaseSym=*/0, /*Stride=*/8, /*Offset=*/0});
  Loop L2 = B2.finalize();
  SymbolicAnalysis SA2(L2);
  IndependenceSummary Sum2 = summarizeIndependence(SA2);
  EXPECT_EQ(Sum2.ProvenFactor, 1u);
  EXPECT_EQ(Sum2.MinDependenceLag, 1u);
  EXPECT_LT(Sum2.DisjointFraction, 1.0);
}

TEST(Disjointness, DeadGuardMakesAccessVacuouslyDisjoint) {
  Loop L = parseOne("loop \"deadstore\" lang=C nest=1 trip=64 rtrip=64 {\n"
                    "  %p_dead = icmp %i_x, %i_x\n"
                    "  %f_v = load @0[stride=8, offset=0, size=8]\n"
                    "  (%p_dead) store %f_v, @0[stride=8, offset=0, size=8]\n"
                    "  %i_iv.next = iv_add %i_iv\n"
                    "  %p_iv.cond = iv_cmp %i_iv.next\n"
                    "  back_br %p_iv.cond\n"
                    "}\n");
  ASSERT_TRUE(isWellFormed(L));
  SymbolicAnalysis SA(L);
  // The store aliases the load exactly, but it never executes.
  EXPECT_TRUE(provesDisjoint(SA, accessNo(SA, 0), accessNo(SA, 1), 0));
  EXPECT_EQ(summarizeIndependence(SA).ProvenFactor, MaxUnrollFactor);
}

//===----------------------------------------------------------------------===//
// Claims
//===----------------------------------------------------------------------===//

TEST(StrideInterval, ClaimsAreEmittedAndDescribable) {
  LoopBuilder B("claims", SourceLanguage::C, 1, 32);
  RegId V = B.load(RegClass::Float,
                   {/*BaseSym=*/0, /*Stride=*/16, /*Offset=*/8});
  B.store(V, {/*BaseSym=*/0, /*Stride=*/16, /*Offset=*/0});
  Loop L = B.finalize();
  SymbolicAnalysis SA(L);
  std::vector<StaticClaim> Claims = SA.claims();
  ASSERT_FALSE(Claims.empty());
  bool SawDisjoint = false, SawRange = false;
  for (const StaticClaim &C : Claims) {
    EXPECT_FALSE(describeClaim(C, L).empty());
    SawDisjoint |= C.K == StaticClaim::Kind::Disjoint;
    SawRange |= C.K == StaticClaim::Kind::RangeBound;
  }
  EXPECT_TRUE(SawDisjoint);
  EXPECT_TRUE(SawRange); // iv.next gets [1, 32].
}

TEST(StrideInterval, ZeroTripLoopEmitsNoClaims) {
  LoopBuilder B("zero", SourceLanguage::C, 1, 0);
  RegId V = B.load(RegClass::Float, {/*BaseSym=*/0, /*Stride=*/8});
  B.store(V, {/*BaseSym=*/0, /*Stride=*/8});
  Loop L = B.finalize();
  SymbolicAnalysis SA(L);
  EXPECT_TRUE(SA.claims().empty());
}

//===----------------------------------------------------------------------===//
// Canonical sim form
//===----------------------------------------------------------------------===//

/// Builds the same daxpy structure with configurable surface details.
Loop surfaceVariant(const std::string &Name, SourceLanguage Lang, int Nest,
                    int32_t SymA, int32_t SymB, const std::string &Prefix) {
  LoopBuilder B(Name, Lang, Nest, 256);
  RegId A = B.liveIn(RegClass::Float, Prefix + "alpha");
  RegId X = B.load(RegClass::Float, {SymA, /*Stride=*/8});
  RegId Y = B.load(RegClass::Float, {SymB, /*Stride=*/8});
  RegId R = B.fma(A, X, Y);
  B.store(R, {SymB, /*Stride=*/8});
  return B.finalize();
}

TEST(Canonical, SurfaceDetailsCanonicalizeAway) {
  Loop A = surfaceVariant("first", SourceLanguage::C, 1, 0, 1, "p");
  Loop B = surfaceVariant("second", SourceLanguage::Fortran, 3, 7, 2, "q");
  EXPECT_EQ(canonicalSimText(A), canonicalSimText(B));

  // A structural difference (stride) must NOT collide.
  LoopBuilder C("third", SourceLanguage::C, 1, 256);
  RegId Alpha = C.liveIn(RegClass::Float, "alpha");
  RegId X = C.load(RegClass::Float, {0, /*Stride=*/16});
  RegId Y = C.load(RegClass::Float, {1, /*Stride=*/8});
  C.store(C.fma(Alpha, X, Y), {1, /*Stride=*/8});
  EXPECT_NE(canonicalSimText(A), canonicalSimText(C.finalize()));

  // Different trip metadata must not collide either.
  Loop D = surfaceVariant("fourth", SourceLanguage::C, 1, 0, 1, "p");
  D.setTripCount(128);
  EXPECT_NE(canonicalSimText(A), canonicalSimText(D));
}

TEST(Canonical, SimKeyCollidesForHandBuiltEquivalentLoops) {
  // The labeling pruner groups loops by canonicalSimKey, not by the
  // printed canonical text, so the key itself must collide for loops
  // that differ only in simulation-irrelevant surface detail. This is
  // the class-key side of the PR-7 pruning bug (the key used to fold in
  // the per-loop SimContext, making every class a singleton).
  Loop A = surfaceVariant("first", SourceLanguage::C, 1, 0, 1, "p");
  Loop B = surfaceVariant("second", SourceLanguage::Fortran, 3, 7, 2, "q");
  EXPECT_EQ(canonicalSimKey(A), canonicalSimKey(B));

  // Structural differences must keep distinct keys: a changed stride...
  LoopBuilder C("third", SourceLanguage::C, 1, 256);
  RegId Alpha = C.liveIn(RegClass::Float, "alpha");
  RegId X = C.load(RegClass::Float, {0, /*Stride=*/16});
  RegId Y = C.load(RegClass::Float, {1, /*Stride=*/8});
  C.store(C.fma(Alpha, X, Y), {1, /*Stride=*/8});
  EXPECT_FALSE(canonicalSimKey(A) == canonicalSimKey(C.finalize()));

  // ...and a changed trip count (it feeds the simulated cost directly).
  Loop D = surfaceVariant("fourth", SourceLanguage::C, 1, 0, 1, "p");
  D.setTripCount(128);
  EXPECT_FALSE(canonicalSimKey(A) == canonicalSimKey(D));
}

TEST(Canonical, SimulatorIsInvariantUnderCanonicalization) {
  Loop A = surfaceVariant("orig", SourceLanguage::Fortran90, 2, 5, 3, "v");
  Loop Canon = canonicalSimForm(A);
  ASSERT_TRUE(isWellFormed(Canon));
  MachineModel Machine(itanium2Config());
  SimContext Ctx;
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    for (bool Swp : {false, true}) {
      SimResult RA = simulateLoop(A, Factor, Machine, Ctx, Swp);
      SimResult RB = simulateLoop(Canon, Factor, Machine, Ctx, Swp);
      EXPECT_TRUE(RA == RB) << "factor " << Factor << " swp " << Swp;
    }
  }
}

} // namespace
