//===- tests/ims_test.cpp - Iterative modulo scheduler tests --------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Validates the slot-assigning iterative modulo scheduler and - the point
// of its existence here - that the analytic II the simulator uses for the
// Figure 5 experiments is actually achievable by a real scheduler.
//
//===----------------------------------------------------------------------===//

#include "analysis/Recurrence.h"
#include "corpus/LoopGenerators.h"
#include "ir/LoopBuilder.h"
#include "sched/IterativeModulo.h"
#include "sched/ModuloScheduler.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace metaopt;

namespace {

Loop makeDaxpy(int Streams = 1) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, 1024);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  for (int S = 0; S < Streams; ++S) {
    MemRef X{static_cast<int32_t>(2 * S), 8, 0, false, 8};
    MemRef Y{static_cast<int32_t>(2 * S + 1), 8, 0, false, 8};
    RegId Xv = B.load(RegClass::Float, X);
    RegId Yv = B.load(RegClass::Float, Y);
    B.store(B.fma(Alpha, Xv, Yv), Y);
  }
  return B.finalize();
}

} // namespace

TEST(ImsTest, SchedulesDaxpyAtResourceBound) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(2);
  DependenceGraph DG(L);
  ModuloScheduleResult Sched = iterativeModuloSchedule(L, DG, M);
  ASSERT_TRUE(Sched.Succeeded);
  EXPECT_TRUE(validateModuloSchedule(L, DG, M, Sched).empty());
  int Bound = static_cast<int>(std::ceil(resourceMIIForLoop(L, M) - 1e-9));
  EXPECT_GE(Sched.II, Bound);
  EXPECT_LE(Sched.II, Bound + 1); // A good IMS lands on or near MII.
}

TEST(ImsTest, RejectsExitsAndCalls) {
  MachineModel M(itanium2Config());
  LoopBuilder B("exit", SourceLanguage::C, 1, 64);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.01);
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_FALSE(iterativeModuloSchedule(L, DG, M).Succeeded);
}

TEST(ImsTest, HonorsRecurrence) {
  MachineModel M(itanium2Config());
  LoopBuilder B("iir", SourceLanguage::C, 1, 256);
  RegId A = B.liveIn(RegClass::Float, "a");
  RegId Y = B.phi(RegClass::Float, "y");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Next = B.fma(A, Y, X);
  B.store(Next, {1, 8, 0, false, 8});
  B.setPhiRecur(Y, Next);
  Loop L = B.finalize();
  DependenceGraph DG(L);
  ModuloScheduleResult Sched = iterativeModuloSchedule(L, DG, M);
  ASSERT_TRUE(Sched.Succeeded);
  EXPECT_GE(Sched.II, M.latency(Opcode::FMA));
  EXPECT_TRUE(validateModuloSchedule(L, DG, M, Sched).empty());
}

TEST(ImsTest, ValidatorCatchesBrokenSchedules) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(1);
  DependenceGraph DG(L);
  ModuloScheduleResult Sched = iterativeModuloSchedule(L, DG, M);
  ASSERT_TRUE(Sched.Succeeded);
  // Sabotage: move the fma before its loads complete.
  for (uint32_t Node = 0; Node < L.body().size(); ++Node)
    if (L.body()[Node].Op == Opcode::FMA)
      Sched.CycleOf[Node] = 0;
  EXPECT_FALSE(validateModuloSchedule(L, DG, M, Sched).empty());
}

TEST(ImsTest, StageCountMatchesSpan) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(2);
  DependenceGraph DG(L);
  ModuloScheduleResult Sched = iterativeModuloSchedule(L, DG, M);
  ASSERT_TRUE(Sched.Succeeded);
  int Last = 0;
  for (int T : Sched.CycleOf)
    Last = std::max(Last, T);
  EXPECT_EQ(Sched.StageCount, Last / Sched.II + 1);
}

/// The grounding property: across the corpus generators and unroll
/// factors, the real IMS achieves an II close to the analytic model the
/// simulator uses (within its register-pressure bumps).
class ImsVsAnalytic : public ::testing::TestWithParam<int> {};

TEST_P(ImsVsAnalytic, AnalyticIiIsAchievable) {
  MachineModel M(itanium2Config());
  LoopKind Kind = static_cast<LoopKind>(GetParam());
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    Rng Generator(Seed * 617 + GetParam());
    LoopGenParams Params;
    Params.Name = "ims";
    Params.TripCount = 256;
    Params.RuntimeTripCount = 256;
    Loop L = generateLoop(Kind, Params, Generator);
    for (unsigned Factor : {1u, 4u}) {
      Loop U = unrollLoop(L, Factor);
      DependenceGraph DG(U);
      SwpResult Analytic = moduloSchedule(U, DG, M);
      ModuloScheduleResult Real = iterativeModuloSchedule(U, DG, M);
      ASSERT_EQ(Analytic.Pipelined, Real.Succeeded)
          << loopKindName(Kind) << " seed " << Seed;
      if (!Real.Succeeded)
        continue;
      EXPECT_TRUE(validateModuloSchedule(U, DG, M, Real).empty());
      // The analytic II may exceed the IMS's (register-pressure bumps);
      // the IMS must reach the lower bound region: within 50% + 1 cycle
      // of the analytic answer in either direction.
      EXPECT_LE(Real.II, Analytic.II * 3 / 2 + 1)
          << loopKindName(Kind) << " seed " << Seed << " factor "
          << Factor;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ImsVsAnalytic,
                         ::testing::Range(0,
                                          static_cast<int>(NumLoopKinds)));
