//===- tests/ml_test.cpp - Unit tests for core/ml -------------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"
#include "core/ml/FeatureSelection.h"
#include "core/ml/Lda.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace metaopt;

namespace {

/// Builds a synthetic dataset whose label is decided by two features with
/// a clean linear rule: label = 1 + (f0 > 0) + 2*(f1 > 0) in {1,2,3,4}.
/// Any reasonable classifier must learn it almost perfectly.
Dataset cleanDataset(size_t N, uint64_t Seed, double LabelNoise = 0.0) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextGaussian();
    double F1 = Generator.nextGaussian();
    Ex.Features[0] = F0;
    Ex.Features[1] = F1;
    // A couple of distractor dimensions.
    Ex.Features[2] = Generator.nextGaussian() * 10.0;
    Ex.Features[3] = Generator.nextGaussian() * 0.1;
    unsigned Label = 1 + (F0 > 0 ? 1 : 0) + (F1 > 0 ? 2 : 0);
    if (Generator.nextBool(LabelNoise))
      Label = 1 + static_cast<unsigned>(Generator.nextBelow(4));
    Ex.Label = Label;
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      Ex.CyclesPerFactor[F] =
          1000.0 + 100.0 * std::abs(static_cast<int>(F + 1) -
                                    static_cast<int>(Label));
    Ex.LoopName = "loop" + std::to_string(I);
    Ex.BenchmarkName = "bench" + std::to_string(I % 5);
    Data.add(std::move(Ex));
  }
  return Data;
}

FeatureSet firstTwoFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1)};
}

FeatureSet firstFourFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1),
          static_cast<FeatureId>(2), static_cast<FeatureId>(3)};
}

} // namespace

//===----------------------------------------------------------------------===//
// Dataset
//===----------------------------------------------------------------------===//

TEST(DatasetTest, HistogramCountsLabels) {
  Dataset Data = cleanDataset(100, 1);
  auto Histogram = Data.labelHistogram();
  size_t Total = 0;
  for (size_t Count : Histogram)
    Total += Count;
  EXPECT_EQ(Total, 100u);
  EXPECT_EQ(Histogram[4], 0u); // Labels are only 1..4 here.
}

TEST(DatasetTest, ExcludingBenchmarkRemovesAllItsLoops) {
  Dataset Data = cleanDataset(100, 2);
  Dataset Rest = Data.excludingBenchmark("bench2");
  EXPECT_EQ(Rest.size(), 80u);
  for (const Example &Ex : Rest.examples())
    EXPECT_NE(Ex.BenchmarkName, "bench2");
}

TEST(DatasetTest, WithoutExampleDropsExactlyOne) {
  Dataset Data = cleanDataset(10, 3);
  Dataset Smaller = Data.withoutExample(4);
  EXPECT_EQ(Smaller.size(), 9u);
  for (const Example &Ex : Smaller.examples())
    EXPECT_NE(Ex.LoopName, "loop4");
}

TEST(DatasetTest, SubsampleDeterministicAndBounded) {
  Dataset Data = cleanDataset(50, 4);
  Rng A(9), B(9);
  Dataset SubA = Data.subsample(20, A);
  Dataset SubB = Data.subsample(20, B);
  ASSERT_EQ(SubA.size(), 20u);
  for (size_t I = 0; I < 20; ++I)
    EXPECT_EQ(SubA[I].LoopName, SubB[I].LoopName);
  // No-op when already small enough.
  Rng C(9);
  EXPECT_EQ(Data.subsample(500, C).size(), 50u);
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset Data = cleanDataset(25, 5);
  std::string Csv = Data.toCsv();
  std::optional<Dataset> Loaded = Dataset::fromCsv(Csv);
  ASSERT_TRUE(Loaded.has_value());
  ASSERT_EQ(Loaded->size(), Data.size());
  for (size_t I = 0; I < Data.size(); ++I) {
    EXPECT_EQ((*Loaded)[I].Label, Data[I].Label);
    EXPECT_EQ((*Loaded)[I].LoopName, Data[I].LoopName);
    EXPECT_EQ((*Loaded)[I].BenchmarkName, Data[I].BenchmarkName);
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      EXPECT_NEAR((*Loaded)[I].CyclesPerFactor[F],
                  Data[I].CyclesPerFactor[F], 1e-3);
    for (unsigned F = 0; F < NumFeatures; ++F)
      EXPECT_NEAR((*Loaded)[I].Features[F], Data[I].Features[F], 1e-6);
  }
}

TEST(DatasetTest, FromCsvRejectsGarbage) {
  EXPECT_FALSE(Dataset::fromCsv("").has_value());
  EXPECT_FALSE(Dataset::fromCsv("only,one,line\n1,2,3\n").has_value());
  // Header-only is an empty but valid dataset.
  Dataset Empty;
  std::optional<Dataset> Loaded = Dataset::fromCsv(Empty.toCsv());
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_TRUE(Loaded->empty());
}

TEST(DatasetTest, FactorRanksOrderByCycles) {
  Example Ex;
  for (unsigned F = 0; F < MaxUnrollFactor; ++F)
    Ex.CyclesPerFactor[F] = 100.0 - F; // u=8 fastest ... u=1 slowest.
  auto Ranks = factorRanks(Ex);
  EXPECT_EQ(Ranks[7], 0u); // u=8 is rank 0 (best).
  EXPECT_EQ(Ranks[0], 7u); // u=1 is rank 7 (worst).
}

TEST(DatasetTest, FactorRanksTieBreaksDeterministically) {
  Example Ex;
  Ex.CyclesPerFactor.fill(50.0);
  auto Ranks = factorRanks(Ex);
  // All equal: ranks follow factor order.
  for (unsigned F = 0; F < MaxUnrollFactor; ++F)
    EXPECT_EQ(Ranks[F], F);
}

//===----------------------------------------------------------------------===//
// Near neighbor classifier
//===----------------------------------------------------------------------===//

TEST(NearNeighborTest, LearnsCleanRule) {
  Dataset Train = cleanDataset(400, 10);
  Dataset Test = cleanDataset(100, 11);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Train);
  EXPECT_GT(Nn.accuracyOn(Test), 0.9);
}

TEST(NearNeighborTest, FallsBackToSingleNearest) {
  // A tiny radius leaves every ball empty: predictions must still work.
  Dataset Train = cleanDataset(100, 12);
  NearNeighborClassifier Nn(firstTwoFeatures(), 1e-9);
  Nn.train(Train);
  Dataset Test = cleanDataset(50, 13);
  EXPECT_GT(Nn.accuracyOn(Test), 0.8);
}

TEST(NearNeighborTest, VoteConfidence) {
  Dataset Train = cleanDataset(300, 14);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.5);
  Nn.train(Train);
  // A query deep inside one quadrant: confident majority.
  FeatureVector Query = {};
  Query[0] = 2.0;
  Query[1] = 2.0;
  auto Vote = Nn.predictWithVote(Query);
  EXPECT_EQ(Vote.Factor, 4u);
  EXPECT_GT(Vote.NeighborCount, 0u);
  EXPECT_GT(Vote.confidence(), 0.8);
}

TEST(NearNeighborTest, PredictExcludingIgnoresSelf) {
  // Two identical points with different labels: leaving one out must
  // return the other's label.
  Dataset Data;
  for (unsigned I = 0; I < 2; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    Ex.Label = I + 1;
    Ex.CyclesPerFactor.fill(1.0);
    Ex.LoopName = "twin" + std::to_string(I);
    Data.add(Ex);
  }
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  Nn.train(Data);
  EXPECT_EQ(Nn.predictExcluding(0), 2u);
  EXPECT_EQ(Nn.predictExcluding(1), 1u);
}

TEST(NearNeighborTest, RadiusScalesWithDimension) {
  // The same data classified with 2 and 4 features: the RMS-normalized
  // radius keeps neighborhood sizes comparable, so accuracy should not
  // collapse when distractors are added.
  Dataset Train = cleanDataset(400, 15);
  Dataset Test = cleanDataset(100, 16);
  NearNeighborClassifier Two(firstTwoFeatures(), 0.4);
  NearNeighborClassifier Four(firstFourFeatures(), 0.4);
  Two.train(Train);
  Four.train(Train);
  EXPECT_GT(Four.accuracyOn(Test), Two.accuracyOn(Test) - 0.25);
}

TEST(NearNeighborTest, LoocvMatchesBruteForce) {
  Dataset Data = cleanDataset(60, 17, /*LabelNoise=*/0.2);
  NearNeighborClassifier Nn(firstTwoFeatures(), 0.3);
  std::vector<unsigned> Fast = loocvPredictions(Nn, Data);
  ClassifierFactory Factory = [](const FeatureSet &Features) {
    return std::make_unique<NearNeighborClassifier>(Features, 0.3);
  };
  std::vector<unsigned> Slow =
      bruteForceLoocv(Factory, firstTwoFeatures(), Data);
  // The fast path reuses the full-set normalizer, so tiny boundary
  // differences are possible; demand near-perfect agreement.
  size_t Agree = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    Agree += Fast[I] == Slow[I];
  EXPECT_GE(Agree, Data.size() - 3);
}

//===----------------------------------------------------------------------===//
// LS-SVM and output codes
//===----------------------------------------------------------------------===//

TEST(LsSvmTest, BinarySeparation) {
  // One-dimensional, separable: f0 < 0 -> -1, f0 > 0 -> +1.
  Rng Generator(18);
  std::vector<std::vector<double>> Points;
  std::vector<double> Labels;
  for (int I = 0; I < 60; ++I) {
    double X = Generator.nextGaussian() + (I % 2 ? 2.0 : -2.0);
    Points.push_back({X});
    Labels.push_back(I % 2 ? 1.0 : -1.0);
  }
  RbfKernel Kernel(1.0);
  auto Solver = LsSvmSolver::create(Points, Kernel, 10.0);
  ASSERT_TRUE(Solver.has_value());
  LsSvmBinary Machine = Solver->solve(Labels);
  int Correct = 0;
  for (size_t I = 0; I < Points.size(); ++I) {
    double F = Machine.decision(kernelVector(Kernel, Points, Points[I]));
    Correct += (F > 0) == (Labels[I] > 0);
  }
  EXPECT_GE(Correct, 58);
}

TEST(LsSvmTest, LooIdentityMatchesRetraining) {
  // The closed-form leave-one-out decision must equal actually retraining
  // without the example. This validates the whole fast-LOOCV machinery.
  Rng Generator(19);
  std::vector<std::vector<double>> Points;
  std::vector<double> Labels;
  for (int I = 0; I < 30; ++I) {
    Points.push_back({Generator.nextGaussian(), Generator.nextGaussian()});
    Labels.push_back(Generator.nextBool(0.5) ? 1.0 : -1.0);
  }
  RbfKernel Kernel(2.0);
  auto Solver = LsSvmSolver::create(Points, Kernel, 5.0);
  ASSERT_TRUE(Solver.has_value());
  LsSvmBinary Machine = Solver->solve(Labels);
  std::vector<double> Loo = Solver->looDecisions(Labels, Machine);

  for (size_t Left = 0; Left < Points.size(); Left += 7) {
    std::vector<std::vector<double>> RestPoints;
    std::vector<double> RestLabels;
    for (size_t I = 0; I < Points.size(); ++I) {
      if (I == Left)
        continue;
      RestPoints.push_back(Points[I]);
      RestLabels.push_back(Labels[I]);
    }
    auto RestSolver = LsSvmSolver::create(RestPoints, Kernel, 5.0);
    ASSERT_TRUE(RestSolver.has_value());
    LsSvmBinary RestMachine = RestSolver->solve(RestLabels);
    double Direct = RestMachine.decision(
        kernelVector(Kernel, RestPoints, Points[Left]));
    EXPECT_NEAR(Loo[Left], Direct, 1e-8) << "example " << Left;
  }
}

TEST(SvmClassifierTest, LearnsCleanRule) {
  Dataset Train = cleanDataset(300, 20);
  Dataset Test = cleanDataset(100, 21);
  SvmClassifier Svm(firstTwoFeatures());
  Svm.train(Train);
  EXPECT_GT(Svm.accuracyOn(Test), 0.9);
}

TEST(SvmClassifierTest, FastLoocvMatchesBruteForce) {
  Dataset Data = cleanDataset(50, 22, /*LabelNoise=*/0.15);
  SvmClassifier Svm(firstTwoFeatures());
  std::vector<unsigned> Fast = loocvPredictions(Svm, Data);
  ClassifierFactory Factory = [](const FeatureSet &Features) {
    return std::make_unique<SvmClassifier>(Features);
  };
  std::vector<unsigned> Slow =
      bruteForceLoocv(Factory, firstTwoFeatures(), Data);
  size_t Agree = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    Agree += Fast[I] == Slow[I];
  // Normalizer refit differences allow rare disagreement near boundaries.
  EXPECT_GE(Agree, Data.size() - 3);
}

TEST(SvmClassifierTest, EcocAlsoLearns) {
  Dataset Train = cleanDataset(300, 23);
  Dataset Test = cleanDataset(100, 24);
  SvmOptions Options;
  Options.CodeKind = SvmOptions::Code::RandomEcoc;
  Options.EcocBits = 15;
  SvmClassifier Svm(firstTwoFeatures(), Options);
  Svm.train(Train);
  EXPECT_GT(Svm.accuracyOn(Test), 0.85);
  EXPECT_EQ(Svm.name(), "svm-ecoc");
}

TEST(SvmClassifierTest, LossDecodingWorks) {
  Dataset Train = cleanDataset(300, 25);
  Dataset Test = cleanDataset(100, 26);
  SvmOptions Options;
  Options.Decode = SvmOptions::Decoding::Loss;
  SvmClassifier Svm(firstTwoFeatures(), Options);
  Svm.train(Train);
  EXPECT_GT(Svm.accuracyOn(Test), 0.9);
}

//===----------------------------------------------------------------------===//
// Evaluation (Table 2 machinery)
//===----------------------------------------------------------------------===//

TEST(EvaluationTest, PerfectPredictionsRankZero) {
  Dataset Data = cleanDataset(50, 27);
  std::vector<unsigned> Predictions;
  for (const Example &Ex : Data.examples())
    Predictions.push_back(Ex.Label);
  RankDistribution Dist = rankDistribution(Data, Predictions);
  EXPECT_DOUBLE_EQ(Dist.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(Dist.Fraction[1], 0.0);
}

TEST(EvaluationTest, FractionsSumToOne) {
  Dataset Data = cleanDataset(80, 28);
  std::vector<unsigned> Predictions(Data.size(), 3);
  RankDistribution Dist = rankDistribution(Data, Predictions);
  double Sum = 0.0;
  for (double F : Dist.Fraction)
    Sum += F;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
}

TEST(EvaluationTest, CostByRankIsMonotoneFromOne) {
  Dataset Data = cleanDataset(100, 29);
  auto Cost = costByRank(Data);
  EXPECT_DOUBLE_EQ(Cost[0], 1.0);
  for (unsigned R = 1; R < MaxUnrollFactor; ++R)
    EXPECT_GE(Cost[R] + 1e-12, Cost[R - 1]);
}

TEST(EvaluationTest, MeanCostOfPerfectIsOne) {
  Dataset Data = cleanDataset(40, 30);
  std::vector<unsigned> Perfect;
  for (const Example &Ex : Data.examples())
    Perfect.push_back(Ex.Label);
  EXPECT_DOUBLE_EQ(meanCostOfPredictions(Data, Perfect), 1.0);
  std::vector<unsigned> Bad(Data.size(), 8);
  EXPECT_GT(meanCostOfPredictions(Data, Bad), 1.0);
}

//===----------------------------------------------------------------------===//
// Feature selection
//===----------------------------------------------------------------------===//

TEST(FeatureSelectionTest, MisRanksInformativeFeatureFirst) {
  Dataset Data = cleanDataset(500, 31);
  double Informative = mutualInformationScore(
      Data, static_cast<FeatureId>(0), 10);
  double Distractor = mutualInformationScore(
      Data, static_cast<FeatureId>(2), 10);
  EXPECT_GT(Informative, Distractor + 0.1);
  auto Ranked = rankByMutualInformation(Data, 10);
  // The two informative features must rank in the top three.
  unsigned TopHits = 0;
  for (size_t I = 0; I < 3; ++I)
    TopHits += static_cast<unsigned>(Ranked[I].first) <= 1;
  EXPECT_GE(TopHits, 2u);
}

TEST(FeatureSelectionTest, MisOfConstantFeatureIsZero) {
  Dataset Data = cleanDataset(100, 32);
  // Feature 10 is identically zero in cleanDataset.
  EXPECT_NEAR(mutualInformationScore(Data, static_cast<FeatureId>(10), 10),
              0.0, 1e-9);
}

TEST(FeatureSelectionTest, GreedyFindsTheRuleFeatures) {
  Dataset Data = cleanDataset(250, 33);
  auto Steps = greedyFeatureSelection(Data, nearNeighborTrainError, 2);
  ASSERT_EQ(Steps.size(), 2u);
  std::set<unsigned> Chosen = {
      static_cast<unsigned>(Steps[0].Feature),
      static_cast<unsigned>(Steps[1].Feature)};
  EXPECT_TRUE(Chosen.count(0));
  EXPECT_TRUE(Chosen.count(1));
  // Error must decrease (or at least not increase) along the steps.
  EXPECT_LE(Steps[1].TrainError, Steps[0].TrainError + 1e-12);
  EXPECT_LT(Steps[1].TrainError, 0.1);
}

TEST(FeatureSelectionTest, GreedyNeverRepeatsFeatures) {
  Dataset Data = cleanDataset(120, 34, 0.2);
  auto Steps = greedyFeatureSelection(Data, nearNeighborTrainError, 6);
  std::set<FeatureId> Seen;
  for (const GreedyStep &Step : Steps)
    EXPECT_TRUE(Seen.insert(Step.Feature).second);
}

TEST(FeatureSelectionTest, SvmTrainErrorDrivenGreedy) {
  Dataset Data = cleanDataset(80, 35);
  auto Steps = greedyFeatureSelection(Data, svmTrainError, 2);
  ASSERT_EQ(Steps.size(), 2u);
  EXPECT_LT(Steps[1].TrainError, 0.15);
}

//===----------------------------------------------------------------------===//
// LDA
//===----------------------------------------------------------------------===//

TEST(LdaTest, SeparatesTheInformativePlane) {
  Dataset Data = cleanDataset(400, 36);
  LdaProjection Lda = fitLda(Data, firstFourFeatures(), 2);
  // The projection directions must be dominated by the two informative
  // features (dims 0 and 1 of the subset).
  double InformativeMass = 0.0, DistractorMass = 0.0;
  for (unsigned K = 0; K < 2; ++K) {
    InformativeMass += std::abs(Lda.Directions.at(0, K)) +
                       std::abs(Lda.Directions.at(1, K));
    DistractorMass += std::abs(Lda.Directions.at(2, K)) +
                      std::abs(Lda.Directions.at(3, K));
  }
  EXPECT_GT(InformativeMass, DistractorMass * 3.0);
}

TEST(LdaTest, ProjectionSeparatesClassMeans) {
  Dataset Data = cleanDataset(400, 37);
  LdaProjection Lda = fitLda(Data, firstTwoFeatures(), 2);
  // Project class means; they must be spread apart.
  std::map<unsigned, std::vector<double>> Mean;
  std::map<unsigned, int> Count;
  for (const Example &Ex : Data.examples()) {
    std::vector<double> P = Lda.project(Ex.Features);
    auto &M = Mean[Ex.Label];
    if (M.empty())
      M.assign(2, 0.0);
    addScaled(M, 1.0, P);
    ++Count[Ex.Label];
  }
  std::vector<std::vector<double>> Means;
  for (auto &[Label, M] : Mean) {
    for (double &C : M)
      C /= Count[Label];
    Means.push_back(M);
  }
  ASSERT_EQ(Means.size(), 4u);
  for (size_t A = 0; A < Means.size(); ++A)
    for (size_t B = A + 1; B < Means.size(); ++B)
      EXPECT_GT(squaredDistance(Means[A], Means[B]), 0.05);
}

TEST(LdaTest, EigenvaluesSortedDescending) {
  Dataset Data = cleanDataset(200, 38);
  LdaProjection Lda = fitLda(Data, firstFourFeatures(), 2);
  ASSERT_EQ(Lda.Eigenvalues.size(), 2u);
  EXPECT_GE(Lda.Eigenvalues[0], Lda.Eigenvalues[1]);
}
