//===- tests/machine_test.cpp - Unit tests for src/machine ----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "machine/Machine.h"

#include <gtest/gtest.h>

using namespace metaopt;

TEST(MachineTest, Itanium2Shape) {
  MachineModel M(itanium2Config());
  EXPECT_EQ(M.name(), "itanium2");
  EXPECT_EQ(M.issueWidth(), 6);
  EXPECT_EQ(M.unitCount(UnitKind::Mem), 4);
  EXPECT_EQ(M.unitCount(UnitKind::Fp), 2);
  EXPECT_EQ(M.unitCount(UnitKind::Br), 3);
}

TEST(MachineTest, EveryOpcodeHasPositiveLatency) {
  MachineModel M(itanium2Config());
  for (unsigned I = 0; I < NumOpcodes; ++I)
    EXPECT_GE(M.latency(static_cast<Opcode>(I)), 1) << I;
}

TEST(MachineTest, LatencyOrderingMakesSense) {
  MachineModel M(itanium2Config());
  EXPECT_GT(M.latency(Opcode::FDiv), M.latency(Opcode::FMul));
  EXPECT_GT(M.latency(Opcode::FMul), M.latency(Opcode::IAdd));
  EXPECT_GT(M.latency(Opcode::Load), M.latency(Opcode::Store));
  EXPECT_GT(M.latency(Opcode::Call), M.latency(Opcode::FDiv));
}

TEST(MachineTest, UnitBindings) {
  MachineModel M(itanium2Config());
  EXPECT_EQ(M.unitFor(Opcode::Load), UnitKind::Mem);
  EXPECT_EQ(M.unitFor(Opcode::Store), UnitKind::Mem);
  EXPECT_EQ(M.unitFor(Opcode::FAdd), UnitKind::Fp);
  EXPECT_EQ(M.unitFor(Opcode::IMul), UnitKind::Fp); // Itanium quirk.
  EXPECT_EQ(M.unitFor(Opcode::IAdd), UnitKind::Int);
  EXPECT_EQ(M.unitFor(Opcode::ExitIf), UnitKind::Br);
  EXPECT_EQ(M.unitFor(Opcode::BackBr), UnitKind::Br);
}

TEST(MachineTest, ATypeFlexibility) {
  MachineModel M(itanium2Config());
  EXPECT_TRUE(M.canUseMemUnit(Opcode::IAdd));
  EXPECT_TRUE(M.canUseMemUnit(Opcode::Copy));
  EXPECT_FALSE(M.canUseMemUnit(Opcode::FAdd));
  EXPECT_FALSE(M.canUseMemUnit(Opcode::IMul));
  EXPECT_FALSE(M.canUseMemUnit(Opcode::Shl)); // Shifts are I-only.
}

TEST(MachineTest, CodeBytesBundling) {
  MachineModel M(itanium2Config());
  // Three slots per 16-byte bundle.
  EXPECT_EQ(M.codeBytes(0), 0);
  EXPECT_EQ(M.codeBytes(1), 16);
  EXPECT_EQ(M.codeBytes(3), 16);
  EXPECT_EQ(M.codeBytes(4), 32);
  EXPECT_EQ(M.codeBytes(9), 48);
}

TEST(MachineTest, ResourceMiiBottleneck) {
  MachineModel M(itanium2Config());
  // 8 FP ops on 2 FP units -> at least 4 cycles even if total/width is 2.
  std::array<int, NumUnitKinds> Ops = {};
  Ops[static_cast<unsigned>(UnitKind::Fp)] = 8;
  EXPECT_DOUBLE_EQ(M.resourceMII(Ops, 8), 4.0);
}

TEST(MachineTest, ResourceMiiIssueWidthBound) {
  MachineModel M(itanium2Config());
  std::array<int, NumUnitKinds> Ops = {};
  Ops[static_cast<unsigned>(UnitKind::Int)] = 1;
  // 30 total ops on a 6-wide machine need 5 cycles.
  EXPECT_DOUBLE_EQ(M.resourceMII(Ops, 30), 5.0);
}

TEST(MachineTest, ResourceMiiNeverBelowOne) {
  MachineModel M(itanium2Config());
  std::array<int, NumUnitKinds> Ops = {};
  EXPECT_DOUBLE_EQ(M.resourceMII(Ops, 1), 1.0);
}

TEST(MachineTest, AltVliwIsDifferent) {
  MachineConfig Alt = altVliwConfig();
  MachineConfig It2 = itanium2Config();
  EXPECT_NE(Alt.Name, It2.Name);
  EXPECT_LT(Alt.IssueWidth, It2.IssueWidth);
  EXPECT_LT(Alt.IntRegs, It2.IntRegs);
  EXPECT_GT(Alt.Latency[static_cast<unsigned>(Opcode::Load)],
            It2.Latency[static_cast<unsigned>(Opcode::Load)]);
  // Both are valid machines.
  MachineModel A(Alt), B(It2);
  EXPECT_EQ(A.issueWidth(), 4);
}
