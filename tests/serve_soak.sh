#!/bin/sh
# Sustained soak of the scale-out serving tier (ctest label: soak).
#
# Topology: metaopt-gateway fronting two metaopt-serve workers over TCP,
# both watching the same live bundle path for hot reload. Two phases,
# accumulating rows into one BENCH_serve.json that metaopt-benchcheck
# gates against bench/serve_floor.json:
#
#  * steady: a mixed well-behaved workload (closed-loop clients,
#    reconnectors, slow readers) through the gateway, with every predict
#    response required byte-identical to a direct single-worker run —
#    the sharding layer must be invisible.
#
#  * chaos: the same traffic plus protocol abusers (stallers parking
#    partial frames until the read deadline closes them, oversized
#    frames), with one worker SIGTERMed a third of the way in and the
#    live bundle atomically hot-swapped halfway through. Zero client
#    errors allowed: failover and drain-on-reload must not drop a single
#    in-flight response, and the fleet must converge on the new bundle
#    checksum.
#
# Usage: serve_soak.sh <metaopt-train> <metaopt-serve> <metaopt-gateway>
#                      <metaopt-predict> <loadgen_serve>
#                      <metaopt-benchcheck> <floor.json>
set -u

TRAIN="$1"
SERVE="$2"
GATEWAY="$3"
PREDICT="$4"
LOADGEN="$5"
BENCHCHECK="$6"
FLOOR="$7"

WORK="${TMPDIR:-/tmp}/metaopt_serve_soak_$$"
rm -rf "$WORK"
mkdir -p "$WORK"
LIVE="$WORK/live.bundle"
GW_SOCK="$WORK/gw.sock"
# PID-derived ports keep concurrent CI jobs off each other's listeners.
PORT1=$((10000 + $$ % 20000))
PORT2=$((PORT1 + 1))
W1_PID=""
W2_PID=""
GW_PID=""

fail() {
    echo "serve_soak: FAIL: $1" >&2
    for PID in $W1_PID $W2_PID $GW_PID; do
        kill -KILL "$PID" 2>/dev/null
    done
    exit 1
}

cleanup() {
    for PID in $W1_PID $W2_PID $GW_PID; do
        kill -KILL "$PID" 2>/dev/null
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# --- 1. Two distinct bundles: the serving one and the hot-swap one. -----
"$TRAIN" --out="$WORK/a.bundle" --classifier=nn --cv=none \
         --corpus-min=2 --corpus-max=3 --cache-dir="$WORK/cache" \
    || fail "training bundle A failed"
"$TRAIN" --out="$WORK/b.bundle" --classifier=nn --cv=none \
         --corpus-min=3 --corpus-max=4 --cache-dir="$WORK/cache" \
    || fail "training bundle B failed"
cmp -s "$WORK/a.bundle" "$WORK/b.bundle" \
    && fail "bundles A and B are identical; the swap would be a no-op"
cp "$WORK/a.bundle" "$LIVE"

# --- 2. Two workers on TCP, both watching the live bundle path. ---------
"$SERVE" --bundle="$LIVE" --tcp-port="$PORT1" --reload-poll-ms=100 \
         2> "$WORK/w1.log" &
W1_PID=$!
"$SERVE" --bundle="$LIVE" --tcp-port="$PORT2" --reload-poll-ms=100 \
         2> "$WORK/w2.log" &
W2_PID=$!

"$PREDICT" --socket="127.0.0.1:$PORT1" --connect-timeout-ms=10000 --health \
    > /dev/null || fail "worker 1 never became healthy: $(cat "$WORK/w1.log")"
"$PREDICT" --socket="127.0.0.1:$PORT2" --connect-timeout-ms=10000 --health \
    > /dev/null || fail "worker 2 never became healthy: $(cat "$WORK/w2.log")"

# --- 3. The gateway fronting both. --------------------------------------
"$GATEWAY" --backends="127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
           --socket="$GW_SOCK" --health-interval-ms=200 \
           --read-timeout-ms=1000 2> "$WORK/gw.log" &
GW_PID=$!
"$PREDICT" --socket="$GW_SOCK" --connect-timeout-ms=10000 --health \
    > "$WORK/gw_health.json" \
    || fail "gateway never became healthy: $(cat "$WORK/gw.log")"
grep -q '"backends_healthy": *2' "$WORK/gw_health.json" \
    || fail "gateway does not see 2 healthy backends: $(cat "$WORK/gw_health.json")"

cd "$WORK" || fail "cannot cd to workdir"

# --- 4. Phase A: steady soak, byte-identical to a direct worker. --------
"$LOADGEN" --socket="$GW_SOCK" --reference="127.0.0.1:$PORT1" \
           --soak --duration-s=6 --label=steady \
           --clients=4 --reconnectors=2 --slow-readers=1 \
           --bench=serve > "$WORK/steady.out" \
    || fail "steady soak failed: $(cat "$WORK/steady.out")"

# --- 5. Phase B: chaos soak with a worker kill and a bundle swap. -------
"$LOADGEN" --socket="$GW_SOCK" \
           --soak --duration-s=15 --label=chaos \
           --clients=4 --reconnectors=2 --slow-readers=1 \
           --stallers=1 --oversized=1 \
           --swap-bundle="$WORK/b.bundle" --swap-target="$LIVE" \
           --bench=serve --bench-append > "$WORK/chaos.out" &
SOAK_PID=$!

# A third of the way in, SIGTERM one worker; the gateway must fail the
# traffic over without a single client-visible error.
sleep 5
kill -TERM "$W2_PID" || fail "could not SIGTERM worker 2"
wait "$SOAK_PID" || fail "chaos soak failed: $(cat "$WORK/chaos.out")"

wait "$W2_PID"
W2_STATUS=$?
W2_PID=""
[ "$W2_STATUS" -eq 0 ] \
    || fail "worker 2 exited $W2_STATUS after SIGTERM: $(cat "$WORK/w2.log")"

# The gateway must now report the fleet as degraded, still serving.
"$PREDICT" --socket="$GW_SOCK" --health > "$WORK/degraded.json" 2>/dev/null
grep -q '"status": *"degraded"' "$WORK/degraded.json" \
    || fail "gateway not degraded after the kill: $(cat "$WORK/degraded.json")"

# --- 6. Gate the accumulated rows against the committed floors. ---------
[ -f "$WORK/BENCH_serve.json" ] || fail "soak produced no BENCH_serve.json"
"$BENCHCHECK" --floor="$FLOOR" "$WORK/BENCH_serve.json" \
    || fail "benchcheck rejected the soak rows"

# --- 7. Everything drains cleanly. --------------------------------------
kill -TERM "$GW_PID"
kill -TERM "$W1_PID"
for NAME in gateway worker1; do
    if [ "$NAME" = gateway ]; then PID=$GW_PID; else PID=$W1_PID; fi
    WAITED=0
    while kill -0 "$PID" 2>/dev/null; do
        [ "$WAITED" -lt 100 ] || fail "$NAME did not exit within 10s"
        sleep 0.1
        WAITED=$((WAITED + 1))
    done
    wait "$PID"
    STATUS=$?
    [ "$STATUS" -eq 0 ] || fail "$NAME exited $STATUS"
done
GW_PID=""
W1_PID=""
grep -q "drained cleanly" "$WORK/gw.log" \
    || fail "gateway log missing the drain summary"

echo "serve_soak: PASS"
cat "$WORK/BENCH_serve.json"
exit 0
