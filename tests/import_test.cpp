//===- tests/import_test.cpp - mloop importer tests -----------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Covers the real-code ingestion front door (src/import): one negative
// test per I-series diagnostic ID, a golden lowering test pinning the
// exact IR an mloop input produces, directive/provenance semantics,
// strict-vs-lenient mode, the export/import round-trip invariant on
// fuzz-generated loops, and the committed kernel corpus sweep — every
// kernel under corpus/imported/ must stay verifier-clean, lint-clean,
// interpreter-executable, and pass the full oracle stack (including
// unroll equivalence at factors 1..8).
//
//===----------------------------------------------------------------------===//

#include "import/Export.h"
#include "import/Import.h"
#include "import/ImportedCorpus.h"

#include "analysis/lint/Lint.h"
#include "exec/Interpreter.h"
#include "fuzz/FuzzLoopGen.h"
#include "fuzz/Oracles.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

/// True when some diagnostic in \p Report matches \p Id (prefix form,
/// e.g. "I010").
bool hasDiag(const DiagnosticReport &Report, std::string_view Id) {
  for (const Diagnostic &D : Report.diagnostics())
    if (D.hasId(Id))
      return true;
  return false;
}

/// Imports in strict mode and expects rejection with diagnostic \p Id.
void expectRejected(std::string_view Text, std::string_view Id) {
  ImportResult Result = importLoops(Text, "test.mloop");
  EXPECT_FALSE(Result.succeeded()) << "input unexpectedly accepted:\n"
                                   << Text;
  EXPECT_TRUE(Result.Loops.empty());
  EXPECT_TRUE(hasDiag(Result.Report, Id))
      << "expected " << Id << ", got:\n"
      << Result.Report.renderText();
}

/// Imports and expects exactly one clean loop.
ImportedLoop importOne(std::string_view Text) {
  ImportResult Result = importLoops(Text, "test.mloop");
  EXPECT_TRUE(Result.succeeded()) << Result.Report.renderText();
  EXPECT_EQ(Result.Loops.size(), 1u);
  return Result.Loops.at(0);
}

/// Wraps a statement body into a minimal valid file.
std::string wrap(std::string_view Body) {
  return "mloop 1\nloop \"t\" lang=C depth=1 trip=64 {\n" +
         std::string(Body) + "}\n";
}

//===----------------------------------------------------------------------===//
// Negative tests: one per diagnostic ID
//===----------------------------------------------------------------------===//

TEST(ImportDiagnostics, I000IoError) {
  ImportResult Result = importFile("/nonexistent/definitely_missing.mloop");
  EXPECT_FALSE(Result.succeeded());
  EXPECT_TRUE(hasDiag(Result.Report, "I000"));
}

TEST(ImportDiagnostics, I001MissingHeader) {
  expectRejected("loop \"t\" trip=8 {\n  %a = const i64 1\n}\n", "I001");
}

TEST(ImportDiagnostics, I002BadVersion) {
  expectRejected("mloop 99\nloop \"t\" trip=8 {\n  %a = const i64 1\n}\n",
                 "I002");
}

TEST(ImportDiagnostics, I003Syntax) {
  // Loop header without its '{'.
  expectRejected("mloop 1\nloop \"t\" trip=8\n  %a = const i64 1\n}\n",
                 "I003");
}

TEST(ImportDiagnostics, I004UnknownDirective) {
  expectRejected("mloop 1\nfrobnicate a=1\n" + wrap("  %a = const i64 1\n"),
                 "I004");
}

TEST(ImportDiagnostics, I005UnknownOpcode) {
  expectRejected(wrap("  %a = bogus i64 %b\n"), "I005");
}

TEST(ImportDiagnostics, I006BadType) {
  // Predicate OR is not in the instruction set (only AND via PredSet).
  expectRejected(wrap("  %a = or i1 %p, %q\n"), "I006");
}

TEST(ImportDiagnostics, I007DuplicateValue) {
  expectRejected(wrap("  %a = const i64 1\n  %a = const i64 2\n"), "I007");
}

TEST(ImportDiagnostics, I008PhiRecurUndefined) {
  expectRejected("mloop 1\nloop \"t\" trip=8 {\n"
                 "  %s = phi i64 [%s0, %never]\n"
                 "  %x = add i64 %s, %s\n}\n",
                 "I008");
}

TEST(ImportDiagnostics, I009DefUseCycle) {
  // Body use of a later body definition: loop-carried values need a phi.
  expectRejected(wrap("  %a = add i64 %b, %b\n  %b = const i64 3\n"),
                 "I009");
}

TEST(ImportDiagnostics, I010TripOutOfRange) {
  expectRejected("mloop 1\nloop \"t\" trip=2147483649 {\n"
                 "  %a = const i64 1\n}\n",
                 "I010");
}

TEST(ImportDiagnostics, I011BadMemRef) {
  // Access size must be one of {1, 2, 4, 8, 16}.
  expectRejected(wrap("  %v = load i64 @a[stride=8, offset=0, size=3]\n"),
                 "I011");
}

TEST(ImportDiagnostics, I012BadProbability) {
  // 'exit' requires prob= in [0, 1].
  expectRejected(wrap("  %v = const i64 1\n"
                      "  %p = icmp slt i64 %v, %bound\n"
                      "  exit %p\n"),
                 "I012");
}

TEST(ImportDiagnostics, I013OperandCount) {
  expectRejected(wrap("  %a = fma f64 %x, %y\n"), "I013");
}

TEST(ImportDiagnostics, I014ClassMismatch) {
  expectRejected(wrap("  %f = fadd f64 %x, %y\n  %i = add i64 %f, %f\n"),
                 "I014");
}

TEST(ImportDiagnostics, I015Truncated) {
  expectRejected("mloop 1\nloop \"t\" trip=8 {\n  %a = const i64 1\n",
                 "I015");
}

TEST(ImportDiagnostics, I016EmptyLoop) {
  expectRejected("mloop 1\nloop \"t\" trip=8 {\n}\n", "I016");
}

TEST(ImportDiagnostics, I017BadGuard) {
  // Loop-control and exits must not be predicated.
  expectRejected(wrap("  %v = const i64 1\n"
                      "  %p = icmp slt i64 %v, %bound\n"
                      "  exit %p prob=0.5 when(%q)\n"),
                 "I017");
}

TEST(ImportDiagnostics, I018BadIndex) {
  // ind() is only meaningful on memory operations.
  expectRejected(wrap("  %a = add i64 %b, %b ind(%i)\n"), "I018");
}

TEST(ImportDiagnostics, I019PhiInitDefined) {
  expectRejected("mloop 1\nloop \"t\" trip=8 {\n"
                 "  %s = phi i64 [%x, %s1]\n"
                 "  %x = add i64 %s, %s\n"
                 "  %s1 = add i64 %x, %x\n}\n",
                 "I019");
}

TEST(ImportDiagnostics, I020BadDirectiveArg) {
  expectRejected("mloop 1\ncontext icache=banana\n" +
                     wrap("  %a = const i64 1\n"),
                 "I020");
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

TEST(ImportLowering, GoldenReduction) {
  const char *Text = "mloop 1\n"
                     "source file=\"k.c\" line=3 function=\"f\" "
                     "extractor=\"t\"\n"
                     "context icache=4096 dmiss=0.1 execs=7\n"
                     "loop \"g\" lang=C depth=1 trip=64 {\n"
                     "  %s = phi i64 [%s0, %s1]\n"
                     "  %v = load i64 @a[stride=8, offset=0, size=8]\n"
                     "  %s1 = add i64 %s, %v\n"
                     "}\n";
  ImportedLoop Imported = importOne(Text);

  // The canonical loop-control tail is synthesized; names come through
  // the repo's printer conventions (class prefix + interned symbol).
  const char *Golden = "loop \"g\" lang=C nest=1 trip=64 rtrip=64 {\n"
                       "  phi %i_s = [%i_s0, %i_s1]\n"
                       "  %i_v = load @0[stride=8, offset=0, size=8]\n"
                       "  %i_s1 = iadd %i_s, %i_v\n"
                       "  %i_iv.next = iv_add %i_iv\n"
                       "  %p_iv.cond = iv_cmp %i_iv.next\n"
                       "  back_br %p_iv.cond\n"
                       "}\n";
  EXPECT_EQ(printLoop(Imported.TheLoop), Golden);
  EXPECT_TRUE(verifyLoopDiagnostics(Imported.TheLoop).empty());

  // Directives bound to this loop.
  EXPECT_EQ(Imported.Prov.SourceFile, "k.c");
  EXPECT_EQ(Imported.Prov.SourceLine, 3u);
  EXPECT_EQ(Imported.Prov.Function, "f");
  EXPECT_EQ(Imported.Prov.Extractor, "t");
  EXPECT_EQ(Imported.Prov.ImportFile, "test.mloop");
  EXPECT_EQ(Imported.Ctx.EffectiveIcacheBytes, 4096);
  EXPECT_DOUBLE_EQ(Imported.Ctx.DcacheMissRate, 0.1);
  EXPECT_EQ(Imported.Executions, 7);
}

TEST(ImportLowering, DefaultsWhenUnstated) {
  ImportedLoop Imported = importOne(
      "mloop 1\nloop \"d\" trip=? rtrip=96 {\n  %a = const i64 1\n}\n");
  const Loop &L = Imported.TheLoop;
  EXPECT_EQ(L.language(), SourceLanguage::C);
  EXPECT_EQ(L.nestLevel(), 1);
  EXPECT_EQ(L.tripCount(), Loop::UnknownTripCount);
  EXPECT_EQ(L.runtimeTripCount(), 96);
  EXPECT_TRUE(Imported.Prov.SourceFile.empty());
  // Context defaults match the corpus-wide SimContext defaults.
  SimContext Defaults;
  EXPECT_EQ(Imported.Ctx.EffectiveIcacheBytes,
            Defaults.EffectiveIcacheBytes);
  EXPECT_DOUBLE_EQ(Imported.Ctx.DcacheMissRate, Defaults.DcacheMissRate);
  EXPECT_EQ(Imported.Executions, 1);
}

TEST(ImportLowering, DirectivesResetBetweenLoops) {
  ImportResult Result = importLoops(
      "mloop 1\n"
      "source file=\"a.c\" line=10 function=\"f\" extractor=\"t\"\n"
      "context execs=99\n"
      "loop \"first\" trip=8 {\n  %a = const i64 1\n}\n"
      "loop \"second\" trip=8 {\n  %a = const i64 1\n}\n",
      "two.mloop");
  ASSERT_TRUE(Result.succeeded()) << Result.Report.renderText();
  ASSERT_EQ(Result.Loops.size(), 2u);
  EXPECT_EQ(Result.Loops[0].Prov.SourceFile, "a.c");
  EXPECT_EQ(Result.Loops[0].Executions, 99);
  // The directives apply to the *next* loop only.
  EXPECT_TRUE(Result.Loops[1].Prov.SourceFile.empty());
  EXPECT_EQ(Result.Loops[1].Executions, 1);
  // But the import file itself is always recorded.
  EXPECT_EQ(Result.Loops[1].Prov.ImportFile, "two.mloop");
}

TEST(ImportLowering, ArrayDirectivesResolveToInternedSymbols) {
  ImportResult Result = importLoops(
      "mloop 1\n"
      "array @a extent=1024 stride=8\n"
      "array @b stride=16\n"
      "array @unused extent=64\n"
      "array @7 extent=256\n"
      "loop \"k\" trip=64 {\n"
      "  %x = load f64 @a[stride=8, offset=0, size=8]\n"
      "  store f64 %x, @b[stride=8, offset=0, size=8]\n"
      "  store f64 %x, @7[stride=8, offset=0, size=8]\n"
      "}\n"
      "loop \"next\" trip=8 {\n"
      "  %y = load f64 @a[stride=8, offset=0, size=8]\n"
      "}\n",
      "arr.mloop");
  ASSERT_TRUE(Result.succeeded()) << Result.Report.renderText();
  ASSERT_EQ(Result.Loops.size(), 2u);
  const LoopSymbolContext &Symbols = Result.Loops[0].Symbols;
  // @unused is dropped; @a, @b resolve to interned ids; @7 is verbatim.
  ASSERT_EQ(Symbols.Decls.size(), 3u);
  const SymbolDecl *A = nullptr;
  for (const SymbolDecl &Decl : Symbols.Decls)
    if (Decl.Name == "a")
      A = &Decl;
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->ExtentBytes, 1024);
  EXPECT_TRUE(A->HasStride);
  EXPECT_EQ(A->DeclaredStride, 8);
  ASSERT_NE(Symbols.find(7), nullptr);
  EXPECT_EQ(Symbols.find(7)->ExtentBytes, 256);
  EXPECT_FALSE(Symbols.find(7)->HasStride);
  // Like every other directive, array declarations bind to the next
  // loop only.
  EXPECT_TRUE(Result.Loops[1].Symbols.empty());
}

TEST(ImportDiagnostics, ArrayDirectiveNegatives) {
  // No keys at all.
  expectRejected("mloop 1\narray @a\n" + wrap("  %a = const i64 1\n"),
                 "I020");
  // Unknown key.
  expectRejected("mloop 1\narray @a size=8\n" +
                     wrap("  %a = const i64 1\n"),
                 "I020");
  // Negative extent.
  expectRejected("mloop 1\narray @a extent=-4\n" +
                     wrap("  %a = const i64 1\n"),
                 "I020");
  // Duplicate declaration of one symbol.
  expectRejected("mloop 1\narray @a extent=8\narray @a extent=16\n" +
                     wrap("  %a = const i64 1\n"),
                 "I020");
}

TEST(ImportLowering, StrictRejectsWholeFileLenientKeepsCleanLoops) {
  const char *Text = "mloop 1\n"
                     "loop \"good\" trip=8 {\n  %a = const i64 1\n}\n"
                     "loop \"bad\" trip=8 {\n  %a = bogus i64 %b\n}\n";
  ImportResult Strict = importLoops(Text, "mix.mloop");
  EXPECT_FALSE(Strict.succeeded());
  EXPECT_TRUE(Strict.Loops.empty());
  EXPECT_EQ(Strict.ParsedLoops, 2u);

  ImportOptions Lenient;
  Lenient.Lenient = true;
  ImportResult Partial = importLoops(Text, "mix.mloop", Lenient);
  EXPECT_FALSE(Partial.succeeded()); // The error stays on the record.
  ASSERT_EQ(Partial.Loops.size(), 1u);
  EXPECT_EQ(Partial.Loops[0].TheLoop.name(), "good");
  EXPECT_TRUE(hasDiag(Partial.Report, "I005"));
}

//===----------------------------------------------------------------------===//
// Export round-trip
//===----------------------------------------------------------------------===//

TEST(ImportRoundTrip, FuzzLoopsPrintByteIdentical) {
  FuzzGenOptions Options;
  for (uint64_t Index = 0; Index < 50; ++Index) {
    Loop Original = generateFuzzLoop(Options, Index);
    std::string Exported = exportLoop(Original);
    ImportResult Result = importLoops(Exported, "roundtrip.mloop");
    ASSERT_TRUE(Result.succeeded())
        << "loop " << Index << ":\n"
        << Exported << Result.Report.renderText();
    ASSERT_EQ(Result.Loops.size(), 1u);
    EXPECT_EQ(printLoop(Result.Loops[0].TheLoop), printLoop(Original))
        << "loop " << Index << " did not round-trip";
  }
}

TEST(ImportRoundTrip, ExportIsReimportableAfterReexport) {
  // export(import(export(L))) == export(L): the exporter is a fixpoint
  // over imported loops.
  FuzzGenOptions Options;
  Loop Original = generateFuzzLoop(Options, 7);
  std::string First = exportLoop(Original);
  ImportResult Result = importLoops(First, "fix.mloop");
  ASSERT_TRUE(Result.succeeded());
  EXPECT_EQ(exportLoop(Result.Loops[0].TheLoop), First);
}

//===----------------------------------------------------------------------===//
// Committed kernel corpus
//===----------------------------------------------------------------------===//

TEST(ImportedCorpusTest, LoadsCommittedKernels) {
  ImportedCorpus Corpus = loadImportedCorpus(METAOPT_IMPORTED_CORPUS_DIR);
  EXPECT_TRUE(Corpus.succeeded()) << Corpus.Report.renderText();
  EXPECT_GE(Corpus.Loops.size(), 20u);
  EXPECT_EQ(Corpus.Files.size(), Corpus.Loops.size())
      << "committed kernels are one loop per file";
  for (const ImportedLoop &Entry : Corpus.Loops)
    EXPECT_FALSE(Entry.Prov.empty())
        << Entry.TheLoop.name() << " lacks a source directive";
}

TEST(ImportedCorpusTest, KernelsAreCleanExecutableAndOracleSafe) {
  ImportedCorpus Corpus = loadImportedCorpus(METAOPT_IMPORTED_CORPUS_DIR);
  ASSERT_TRUE(Corpus.succeeded()) << Corpus.Report.renderText();
  for (const ImportedLoop &Entry : Corpus.Loops) {
    const Loop &L = Entry.TheLoop;
    EXPECT_TRUE(verifyLoopDiagnostics(L).empty()) << L.name();
    EXPECT_FALSE(lintLoop(L).hasErrors()) << L.name();

    ExecResult Exec = interpretLoop(L);
    EXPECT_TRUE(Exec.IterationsExecuted >= 1 || Exec.Exited) << L.name();

    // The full oracle stack, including unroll equivalence at factors
    // 1..8 and the importer round-trip itself.
    std::vector<OracleFailure> Failures = runOracles(L);
    for (const OracleFailure &F : Failures)
      ADD_FAILURE() << L.name() << ": " << F.Oracle << ": " << F.Detail;
  }
}

TEST(ImportedCorpusTest, FingerprintIsStableAndProvenanceSensitive) {
  ImportedCorpus Corpus = loadImportedCorpus(METAOPT_IMPORTED_CORPUS_DIR);
  ASSERT_TRUE(Corpus.succeeded());
  ImportedCorpus Again = loadImportedCorpus(METAOPT_IMPORTED_CORPUS_DIR);
  EXPECT_EQ(importedCorpusFingerprint(Corpus),
            importedCorpusFingerprint(Again));

  // Perturbing provenance must change the fingerprint (result rows pin
  // exactly which real code they measured)...
  ImportedCorpus Tweaked = Corpus;
  Tweaked.Loops[0].Prov.SourceLine += 1;
  EXPECT_NE(importedCorpusFingerprint(Corpus),
            importedCorpusFingerprint(Tweaked));

  // ...but the on-disk path the file happened to be read from must not.
  ImportedCorpus Moved = Corpus;
  Moved.Loops[0].Prov.ImportFile = "elsewhere/moved.mloop";
  EXPECT_EQ(importedCorpusFingerprint(Corpus),
            importedCorpusFingerprint(Moved));
}

TEST(ImportedCorpusTest, BenchmarkCarriesContextAndWeights) {
  ImportedCorpus Corpus = loadImportedCorpus(METAOPT_IMPORTED_CORPUS_DIR);
  ASSERT_TRUE(Corpus.succeeded());
  Benchmark Bench = toBenchmark(Corpus);
  ASSERT_EQ(Bench.Loops.size(), Corpus.Loops.size());
  for (size_t I = 0; I < Bench.Loops.size(); ++I) {
    EXPECT_EQ(Bench.Loops[I].TheLoop.name(),
              Corpus.Loops[I].TheLoop.name());
    EXPECT_EQ(Bench.Loops[I].Executions, Corpus.Loops[I].Executions);
    EXPECT_EQ(Bench.Loops[I].Ctx.EffectiveIcacheBytes,
              Corpus.Loops[I].Ctx.EffectiveIcacheBytes);
  }
}

} // namespace
