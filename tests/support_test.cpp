//===- tests/support_test.cpp - Unit tests for src/support ----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Csv.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace metaopt;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Differences = 0;
  for (int I = 0; I < 50; ++I)
    Differences += A.next() != B.next();
  EXPECT_GT(Differences, 45);
}

TEST(RngTest, StringSeedingIsDeterministic) {
  Rng A(std::string("164.gzip")), B(std::string("164.gzip"));
  EXPECT_EQ(A.next(), B.next());
  Rng C(std::string("164.gzip")), D(std::string("175.vpr"));
  EXPECT_NE(C.next(), D.next());
}

TEST(RngTest, SplitStreamIsReproducible) {
  Rng A = Rng::splitStream(0x10adedD1CEull, 17);
  Rng B = Rng::splitStream(0x10adedD1CEull, 17);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, SplitStreamMatchesLabelingIdiom) {
  // splitStream hoists the per-loop seeding idiom out of the label
  // collector; datasets labeled before the hoist must not change.
  uint64_t Seed = 0x10adedD1CEull;
  uint64_t Index = Rng::hashString("bench3/loop17");
  Rng Hoisted = Rng::splitStream(Seed, Index);
  Rng Legacy(Seed ^ Index);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Hoisted.next(), Legacy.next());
}

TEST(RngTest, SplitStreamsAreIndependent) {
  // Streams from adjacent indices must not overlap or track each other:
  // collect the first 1,000 values of 8 sibling streams and require all
  // distinct, and no positionwise agreement between any stream pair.
  constexpr int Streams = 8, Draws = 1000;
  std::vector<std::vector<uint64_t>> Values(Streams);
  std::set<uint64_t> All;
  for (int S = 0; S < Streams; ++S) {
    Rng Stream = Rng::splitStream(12345, static_cast<uint64_t>(S));
    for (int I = 0; I < Draws; ++I) {
      Values[S].push_back(Stream.next());
      All.insert(Values[S].back());
    }
  }
  EXPECT_EQ(All.size(), static_cast<size_t>(Streams * Draws));
  for (int A = 0; A < Streams; ++A)
    for (int B = A + 1; B < Streams; ++B)
      for (int I = 0; I < Draws; ++I)
        ASSERT_NE(Values[A][I], Values[B][I]);
}

TEST(RngTest, SplitStreamDistributionStaysUniform) {
  // Each split stream should still look uniform: crude mean check on
  // doubles drawn from several sibling streams.
  for (uint64_t Index : {0ull, 1ull, 2ull, 1000000007ull}) {
    Rng Stream = Rng::splitStream(99, Index);
    double Sum = 0.0;
    for (int I = 0; I < 2000; ++I)
      Sum += Stream.nextDouble();
    EXPECT_NEAR(Sum / 2000, 0.5, 0.05);
  }
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng Generator(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Generator.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng Generator(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(Generator.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng Generator(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t Value = Generator.nextInRange(-3, 3);
    EXPECT_GE(Value, -3);
    EXPECT_LE(Value, 3);
    SawLo |= Value == -3;
    SawHi |= Value == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng Generator(3);
  for (int I = 0; I < 1000; ++I) {
    double Value = Generator.nextDouble();
    EXPECT_GE(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng Generator(5);
  RunningStats Stats;
  for (int I = 0; I < 20000; ++I)
    Stats.add(Generator.nextGaussian(10.0, 2.0));
  EXPECT_NEAR(Stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(Stats.stdDev(), 2.0, 0.1);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng Generator(9);
  EXPECT_FALSE(Generator.nextBool(0.0));
  EXPECT_TRUE(Generator.nextBool(1.0));
}

TEST(RngTest, NextBoolFrequency) {
  Rng Generator(13);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += Generator.nextBool(0.25);
  EXPECT_NEAR(Hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, PickWeightedRespectsWeights) {
  Rng Generator(17);
  std::vector<double> Weights = {1.0, 0.0, 3.0};
  std::array<int, 3> Counts = {};
  for (int I = 0; I < 8000; ++I)
    ++Counts[Generator.pickWeighted(Weights)];
  EXPECT_EQ(Counts[1], 0);
  EXPECT_NEAR(static_cast<double>(Counts[2]) / Counts[0], 3.0, 0.5);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng Generator(21);
  std::vector<int> Values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Shuffled = Values;
  Generator.shuffle(Shuffled);
  std::sort(Shuffled.begin(), Shuffled.end());
  EXPECT_EQ(Shuffled, Values);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanAndStdDev) {
  std::vector<double> Values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(Values), 5.0);
  EXPECT_DOUBLE_EQ(stdDev(Values), 2.0);
}

TEST(StatisticsTest, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 1.0);
}

TEST(StatisticsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({5}), 5.0);
}

TEST(StatisticsTest, EvenMedianAveragesTheTwoMiddleValues) {
  // The even case must average the two middle order statistics — not
  // just return the upper one nth_element lands on.
  EXPECT_DOUBLE_EQ(median({10, 20}), 15.0);
  EXPECT_DOUBLE_EQ(median({7, 1, 9, 3, 5, 11}), 6.0);
  // Duplicates spanning the midpoint.
  EXPECT_DOUBLE_EQ(median({2, 2, 2, 8}), 2.0);
  // Unsorted input with the two middle values adjacent in magnitude.
  EXPECT_DOUBLE_EQ(median({100, -100, 4, 6, 50, -50}), 5.0);
}

TEST(StatisticsTest, MedianIsRobustToOutliers) {
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4, 1000000}), 3.0);
}

TEST(StatisticsTest, QuantileEndpointsAndMiddle) {
  std::vector<double> Values = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(Values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(Values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(Values, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(Values, 0.25), 20.0);
}

TEST(StatisticsTest, GeometricMean) {
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatisticsTest, ArgMinArgMaxFirstOnTies) {
  std::vector<double> Values = {3, 1, 1, 5, 5};
  EXPECT_EQ(argMin(Values), 1u);
  EXPECT_EQ(argMax(Values), 3u);
}

TEST(StatisticsTest, RunningStatsMatchesBatch) {
  std::vector<double> Values = {1.5, 2.5, -3.0, 8.0, 0.25};
  RunningStats Stats;
  for (double V : Values)
    Stats.add(V);
  EXPECT_EQ(Stats.count(), Values.size());
  EXPECT_NEAR(Stats.mean(), mean(Values), 1e-12);
  EXPECT_NEAR(Stats.stdDev(), stdDev(Values), 1e-12);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtilsTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> Pieces = split("a,,b", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("x", ',').size(), 1u);
}

TEST(StringUtilsTest, SplitWhitespaceDiscardsEmpty) {
  std::vector<std::string> Pieces = splitWhitespace("  a\t b  c ");
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "c");
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StringUtilsTest, ParseInt) {
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-7"), -7);
  EXPECT_EQ(parseInt(" 13 "), 13);
  EXPECT_FALSE(parseInt("4x").has_value());
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("1.5").has_value());
}

TEST(StringUtilsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(parseDouble("abc").has_value());
  EXPECT_FALSE(parseDouble("1.5z").has_value());
}

TEST(StringUtilsTest, FormatHelpers) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(0.053, 1), "5.3%");
  EXPECT_EQ(formatPercent(-0.02, 0), "-2%");
}

TEST(StringUtilsTest, IsIdentifier) {
  EXPECT_TRUE(isIdentifier("foo"));
  EXPECT_TRUE(isIdentifier("_x1.y"));
  EXPECT_FALSE(isIdentifier("1abc"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("a b"));
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter Table("Title");
  Table.addHeader({"name", "value"});
  Table.addRow({"alpha", "1.5"});
  Table.addRow({"beta", "22"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("Title"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("22"), std::string::npos);
}

TEST(TablePrinterTest, NumericCellsRightAligned) {
  TablePrinter Table;
  Table.addHeader({"h1", "h2"});
  Table.addRow({"x", "5"});
  Table.addRow({"y", "123"});
  std::string Out = Table.render();
  // "5" must be padded on the left to align with "123".
  EXPECT_NE(Out.find("  5"), std::string::npos);
}

TEST(TablePrinterTest, RaggedRowsArePadded) {
  TablePrinter Table;
  Table.addHeader({"a", "b", "c"});
  Table.addRow({"one"});
  EXPECT_NO_FATAL_FAILURE({ std::string Out = Table.render(); });
}

//===----------------------------------------------------------------------===//
// Csv
//===----------------------------------------------------------------------===//

TEST(CsvTest, PlainCells) {
  CsvWriter Writer;
  Writer.addRow({"a", "b"});
  Writer.addRow({"1", "2"});
  EXPECT_EQ(Writer.str(), "a,b\n1,2\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter Writer;
  Writer.addRow({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(Writer.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(CsvTest, WriteToFileRoundTrips) {
  CsvWriter Writer;
  Writer.addRow({"x", "y"});
  std::string Path = ::testing::TempDir() + "/metaopt_csv_test.csv";
  ASSERT_TRUE(Writer.writeToFile(Path));
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  char Buffer[64] = {};
  size_t Read = std::fread(Buffer, 1, sizeof(Buffer) - 1, File);
  std::fclose(File);
  EXPECT_EQ(std::string(Buffer, Read), "x,y\n");
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, ParsesAllForms) {
  const char *Argv[] = {"prog", "--alpha=3", "--flag", "positional"};
  CommandLine Args(4, Argv);
  EXPECT_EQ(Args.getInt("alpha", 0), 3);
  EXPECT_TRUE(Args.has("flag"));
  ASSERT_EQ(Args.positional().size(), 1u);
  EXPECT_EQ(Args.positional()[0], "positional");
}

TEST(CommandLineTest, BareFlagNeverSwallowsPositionals) {
  // The regression that motivated dropping "--key value": a file name
  // after a boolean flag must stay positional.
  const char *Argv[] = {"prog", "--orc", "sample.loop"};
  CommandLine Args(3, Argv);
  EXPECT_TRUE(Args.has("orc"));
  ASSERT_EQ(Args.positional().size(), 1u);
  EXPECT_EQ(Args.positional()[0], "sample.loop");
}

TEST(CommandLineTest, DefaultsOnMissingOrMalformed) {
  const char *Argv[] = {"prog", "--num=abc"};
  CommandLine Args(2, Argv);
  EXPECT_EQ(Args.getInt("num", 5), 5);
  EXPECT_EQ(Args.getInt("absent", -1), -1);
  EXPECT_DOUBLE_EQ(Args.getDouble("absent", 2.5), 2.5);
  EXPECT_EQ(Args.getString("absent", "d"), "d");
}

TEST(CommandLineTest, FlagFollowedByOption) {
  const char *Argv[] = {"prog", "--flag", "--key=v"};
  CommandLine Args(3, Argv);
  EXPECT_TRUE(Args.has("flag"));
  EXPECT_EQ(Args.getString("flag"), "");
  EXPECT_EQ(Args.getString("key"), "v");
}

//===----------------------------------------------------------------------===//
// CliParser
//===----------------------------------------------------------------------===//

namespace {

CliParser makeToolCli() {
  CliParser Cli("metaopt-tool", "does tool things");
  Cli.flag("verbose", "print more");
  Cli.option("threads", "n", "worker threads");
  Cli.option("out", "path", "output file");
  Cli.positionalHelp("[<file> ...]", "inputs");
  return Cli;
}

} // namespace

TEST(CliParserTest, SuccessfulParseAnswersQueries) {
  CliParser Cli = makeToolCli();
  const char *Argv[] = {"metaopt-tool", "--verbose", "--threads=8",
                        "--out=x.bundle", "a.loop", "b.loop"};
  EXPECT_EQ(Cli.parse(6, Argv), std::nullopt);
  EXPECT_TRUE(Cli.has("verbose"));
  EXPECT_EQ(Cli.getInt("threads", 1), 8);
  EXPECT_EQ(Cli.getString("out"), "x.bundle");
  ASSERT_EQ(Cli.positional().size(), 2u);
  EXPECT_EQ(Cli.positional()[0], "a.loop");
  EXPECT_EQ(Cli.positional()[1], "b.loop");
}

TEST(CliParserTest, RejectsUnknownOptionsWithUsageExit) {
  // A typo must produce exit code 2, never run with the option ignored.
  CliParser Cli = makeToolCli();
  const char *Argv[] = {"metaopt-tool", "--treads=8"};
  EXPECT_EQ(Cli.parse(2, Argv), std::optional<int>(2));
}

TEST(CliParserTest, HelpAndVersionExitZero) {
  {
    CliParser Cli = makeToolCli();
    const char *Argv[] = {"metaopt-tool", "--help"};
    EXPECT_EQ(Cli.parse(2, Argv), std::optional<int>(0));
  }
  {
    CliParser Cli = makeToolCli();
    const char *Argv[] = {"metaopt-tool", "-h"};
    EXPECT_EQ(Cli.parse(2, Argv), std::optional<int>(0));
  }
  {
    CliParser Cli = makeToolCli();
    const char *Argv[] = {"metaopt-tool", "--version"};
    EXPECT_EQ(Cli.parse(2, Argv), std::optional<int>(0));
  }
}

TEST(CliParserTest, UsageListsEveryRegisteredOption) {
  CliParser Cli = makeToolCli();
  std::string Usage = Cli.usage();
  EXPECT_NE(Usage.find("--verbose"), std::string::npos);
  EXPECT_NE(Usage.find("--threads=<n>"), std::string::npos);
  EXPECT_NE(Usage.find("--out=<path>"), std::string::npos);
  EXPECT_NE(Usage.find("metaopt-tool"), std::string::npos);
  EXPECT_NE(Usage.find("[<file> ...]"), std::string::npos);
  // Every tool also answers --help/--version without registering them.
  EXPECT_NE(Usage.find("--help"), std::string::npos);
  EXPECT_NE(Usage.find("--version"), std::string::npos);
}

TEST(CliParserTest, VersionStringIsSane) {
  // Tools embed metaoptVersion() in bundles (CreatedBy) and the serving
  // health response, so it must stay a dotted triple.
  std::string Version = metaoptVersion();
  int Major = 0, Minor = 0, Patch = 0;
  EXPECT_EQ(std::sscanf(Version.c_str(), "%d.%d.%d", &Major, &Minor,
                        &Patch),
            3)
      << Version;
}
