//===- tests/serve_test.cpp - Model bundles and the serving stack ---------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Covers the serving subsystem bottom-up: the JSON wire codec, the model
// bundle container (round trips plus wholesale rejection of corrupt,
// truncated, and version-mismatched files, mirroring cache_test.cpp), the
// batched PredictionService and its byte-identity / backpressure /
// deadline contracts, the wire protocol, and a full daemon loopback over
// a real unix socket.
//
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "core/driver/Pipeline.h"
#include "core/features/FeatureExtractor.h"
#include "core/ml/Forest.h"
#include "core/ml/Mlp.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"
#include "serve/Client.h"
#include "serve/Json.h"
#include "serve/ModelBundle.h"
#include "serve/PredictionService.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace metaopt;

namespace {

Dataset cleanDataset(size_t N, uint64_t Seed) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextGaussian();
    double F1 = Generator.nextGaussian();
    Ex.Features[0] = F0;
    Ex.Features[1] = F1;
    Ex.Features[2] = Generator.nextGaussian() * 10.0;
    Ex.Label = 1 + (F0 > 0 ? 1 : 0) + (F1 > 0 ? 2 : 0);
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      Ex.CyclesPerFactor[F] = 1000.0 + 10.0 * F;
    Ex.LoopName = "loop" + std::to_string(I);
    Ex.BenchmarkName = "bench" + std::to_string(I % 4);
    Data.add(std::move(Ex));
  }
  return Data;
}

FeatureSet firstThreeFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1),
          static_cast<FeatureId>(2)};
}

/// A trained-NN bundle over the synthetic dataset.
ModelBundle makeNnBundle(size_t N = 80, uint64_t Seed = 7) {
  Dataset Data = cleanDataset(N, Seed);
  NearNeighborClassifier Nn(firstThreeFeatures());
  Nn.train(Data);
  ModelBundle Bundle;
  Bundle.Provenance.ClassifierName = Nn.name();
  Bundle.Provenance.CreatedBy = "serve_test";
  Bundle.Provenance.MachineName = "itanium2";
  Bundle.Provenance.CorpusSeed = Seed;
  Bundle.Provenance.CorpusFingerprint = "deadbeef";
  Bundle.Provenance.TrainingExamples = N;
  Bundle.Provenance.CvMethod = "none";
  Bundle.Features = firstThreeFeatures();
  Bundle.ClassifierBlob = Nn.serialize();
  return Bundle;
}

/// A trained model-zoo bundle ("mlp" or "random-forest") over the same
/// synthetic dataset as makeNnBundle.
ModelBundle makeZooBundle(const std::string &Name, size_t N = 80,
                          uint64_t Seed = 7) {
  Dataset Data = cleanDataset(N, Seed);
  std::unique_ptr<Classifier> Model;
  if (Name == "mlp")
    Model = std::make_unique<MlpClassifier>(firstThreeFeatures());
  else
    Model = std::make_unique<RandomForestClassifier>(firstThreeFeatures());
  Model->train(Data);
  ModelBundle Bundle;
  Bundle.Provenance.ClassifierName = Model->name();
  Bundle.Provenance.CreatedBy = "serve_test";
  Bundle.Provenance.MachineName = "itanium2";
  Bundle.Provenance.CorpusSeed = Seed;
  Bundle.Provenance.CorpusFingerprint = "deadbeef";
  Bundle.Provenance.TrainingExamples = N;
  Bundle.Provenance.CvMethod = "none";
  Bundle.Features = firstThreeFeatures();
  Bundle.ClassifierBlob = Model->serialize();
  return Bundle;
}

std::string freshDir(const std::string &Name) {
  // Keyed by pid: ctest runs each test in its own process, possibly in
  // parallel, and remove_all on a shared path would wipe a sibling
  // test's live socket or bundle.
  std::string Dir = ::testing::TempDir() + "/metaopt_serve_test_" +
                    std::to_string(::getpid()) + "_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

const char *ValidLoop = R"(loop "t.axpy" lang=C nest=1 trip=1024 rtrip=1024 {
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_ax = fmul %f_x, %f_a
  %f_s = fadd %f_ax, %f_y
  store %f_s, @1[stride=8, offset=0, size=8]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
)";

const char *SecondLoop = R"(loop "t.scan" lang=C nest=1 trip=-1 rtrip=500 {
  %i_v = load @0[stride=4, offset=0, size=4]
  %p_hit = icmp %i_v, %i_needle
  exit_if %p_hit prob=0.01
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// JSON codec
//===----------------------------------------------------------------------===//

TEST(JsonTest, ParsesScalarsAndContainers) {
  std::optional<JsonValue> Doc = parseJson(
      R"({"a": 1.5, "b": "x\ny", "c": [1, 2, 3], "d": true, "e": null})");
  ASSERT_TRUE(Doc.has_value());
  ASSERT_TRUE(Doc->isObject());
  EXPECT_EQ(Doc->getNumber("a", 0), 1.5);
  EXPECT_EQ(Doc->getString("b"), "x\ny");
  ASSERT_TRUE(Doc->get("c")->isArray());
  EXPECT_EQ(Doc->get("c")->Items.size(), 3u);
  EXPECT_TRUE(Doc->getBool("d", false));
  EXPECT_TRUE(Doc->get("e")->isNull());
}

TEST(JsonTest, DecodesUnicodeEscapes) {
  std::optional<JsonValue> Doc = parseJson(R"({"s": "Aé"})");
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("s"), "A\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(parseJson("").has_value());
  EXPECT_FALSE(parseJson("{").has_value());
  EXPECT_FALSE(parseJson("{\"a\": }").has_value());
  EXPECT_FALSE(parseJson("{} trailing").has_value());
  EXPECT_FALSE(parseJson("nul").has_value());
  EXPECT_FALSE(parseJson("{\"a\": 1e999}").has_value()); // Non-finite.
  EXPECT_FALSE(parseJson("\"raw\ncontrol\"").has_value());
  std::string Deep(200, '[');
  EXPECT_FALSE(parseJson(Deep).has_value());
}

TEST(JsonTest, DuplicateKeysKeepTheLast) {
  std::optional<JsonValue> Doc = parseJson(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getInt("k", 0), 2);
}

TEST(JsonTest, WriterTracksCommasAndEscapes) {
  JsonWriter W;
  W.beginObject();
  W.key("s").str("a\"b\n");
  W.key("n").number(static_cast<int64_t>(42));
  W.key("f").number(2.5);
  W.key("list").beginArray();
  W.number(static_cast<int64_t>(1));
  W.boolean(false);
  W.null();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.text(),
            R"({"s":"a\"b\n","n":42,"f":2.5,"list":[1,false,null]})");
  // The writer's output must parse back with its own parser.
  EXPECT_TRUE(parseJson(W.text()).has_value());
}

TEST(JsonTest, NumbersRoundTripThroughWriterAndParser) {
  for (double Value : {0.0, 1.0, -17.0, 0.1, 1e-9, 3.141592653589793,
                       1e15, 123456789.875}) {
    JsonWriter W;
    W.beginArray();
    W.number(Value);
    W.endArray();
    std::optional<JsonValue> Doc = parseJson(W.text());
    ASSERT_TRUE(Doc.has_value()) << W.text();
    ASSERT_EQ(Doc->Items.size(), 1u);
    EXPECT_EQ(Doc->Items[0].Number, Value) << W.text();
  }
}

//===----------------------------------------------------------------------===//
// Model bundle container
//===----------------------------------------------------------------------===//

TEST(ModelBundleTest, InMemoryRoundTripPreservesEverything) {
  ModelBundle Bundle = makeNnBundle();
  std::string Error;
  std::optional<ModelBundle> Loaded =
      parseBundle(serializeBundle(Bundle), &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  EXPECT_EQ(Loaded->Provenance.ClassifierName, "near-neighbor");
  EXPECT_EQ(Loaded->Provenance.CreatedBy, "serve_test");
  EXPECT_EQ(Loaded->Provenance.CorpusSeed, 7u);
  EXPECT_EQ(Loaded->Provenance.CorpusFingerprint, "deadbeef");
  EXPECT_EQ(Loaded->Provenance.TrainingExamples, 80u);
  EXPECT_EQ(Loaded->Features, Bundle.Features);
  EXPECT_EQ(Loaded->ClassifierBlob, Bundle.ClassifierBlob);
}

TEST(ModelBundleTest, InstantiatedClassifierPredictsIdentically) {
  Dataset Data = cleanDataset(80, 7);
  NearNeighborClassifier Nn(firstThreeFeatures());
  Nn.train(Data);
  ModelBundle Bundle = makeNnBundle();
  std::optional<ModelBundle> Loaded = parseBundle(serializeBundle(Bundle));
  ASSERT_TRUE(Loaded.has_value());
  std::unique_ptr<Classifier> Restored = Loaded->instantiate();
  ASSERT_NE(Restored, nullptr);
  for (const Example &Ex : Data.examples()) {
    EXPECT_EQ(Restored->predict(Ex.Features), Nn.predict(Ex.Features));
    EXPECT_EQ(Restored->scores(Ex.Features), Nn.scores(Ex.Features));
  }
}

TEST(ModelBundleTest, SvmBundleRoundTrips) {
  Dataset Data = cleanDataset(60, 11);
  SvmClassifier Svm(firstThreeFeatures());
  Svm.train(Data);
  ModelBundle Bundle;
  Bundle.Provenance.ClassifierName = Svm.name();
  Bundle.Features = firstThreeFeatures();
  Bundle.ClassifierBlob = Svm.serialize();
  std::optional<ModelBundle> Loaded = parseBundle(serializeBundle(Bundle));
  ASSERT_TRUE(Loaded.has_value());
  std::unique_ptr<Classifier> Restored = Loaded->instantiate();
  ASSERT_NE(Restored, nullptr);
  for (const Example &Ex : Data.examples())
    EXPECT_EQ(Restored->predict(Ex.Features), Svm.predict(Ex.Features));
}

TEST(ModelBundleTest, FileRoundTripAndInspect) {
  std::string Dir = freshDir("file_roundtrip");
  std::string Path = Dir + "/model.bundle";
  ModelBundle Bundle = makeNnBundle();
  std::string Error;
  ASSERT_TRUE(saveBundleFile(Bundle, Path, &Error)) << Error;
  // The atomic-publish temp file must not linger.
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"));

  std::optional<ModelBundle> Loaded = loadBundleFile(Path, &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  EXPECT_EQ(Loaded->ClassifierBlob, Bundle.ClassifierBlob);

  ModelBundleInfo Info = inspectBundleFile(Path);
  EXPECT_TRUE(Info.Valid);
  EXPECT_EQ(Info.Version, ModelBundleFileVersion);
  EXPECT_EQ(Info.Provenance.ClassifierName, "near-neighbor");
  EXPECT_EQ(Info.FeatureCount, 3u);
}

TEST(ModelBundleTest, RejectsMissingAndEmptyFiles) {
  std::string Dir = freshDir("missing");
  ModelBundleInfo Info = inspectBundleFile(Dir + "/nope.bundle");
  EXPECT_FALSE(Info.Valid);
  EXPECT_NE(Info.Error.find("missing"), std::string::npos);
}

TEST(ModelBundleTest, RejectsCorruptTruncatedAndMismatchedFiles) {
  std::string Content = serializeBundle(makeNnBundle());

  // Flip one payload byte: checksum mismatch.
  {
    std::string Corrupt = Content;
    Corrupt[Corrupt.size() / 2] ^= 0x20;
    std::string Error;
    EXPECT_FALSE(parseBundle(Corrupt, &Error).has_value());
    EXPECT_NE(Error.find("checksum"), std::string::npos) << Error;
  }
  // Truncate the payload: size mismatch.
  {
    std::string Error;
    EXPECT_FALSE(
        parseBundle(Content.substr(0, Content.size() - 7), &Error)
            .has_value());
    EXPECT_NE(Error.find("size"), std::string::npos) << Error;
  }
  // Truncate into the header.
  {
    std::string Error;
    EXPECT_FALSE(parseBundle(Content.substr(0, 10), &Error).has_value());
    EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
  }
  // Bump the version field (byte 8, little-endian).
  {
    std::string Mismatched = Content;
    Mismatched[8] = static_cast<char>(ModelBundleFileVersion + 1);
    std::string Error;
    EXPECT_FALSE(parseBundle(Mismatched, &Error).has_value());
    EXPECT_NE(Error.find("version mismatch"), std::string::npos) << Error;
  }
  // Foreign magic.
  {
    std::string Foreign = Content;
    Foreign[0] = 'X';
    std::string Error;
    EXPECT_FALSE(parseBundle(Foreign, &Error).has_value());
    EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
  }
}

TEST(ModelBundleTest, RejectsTamperedClassifierBlobEvenWithValidChecksum) {
  // An attacker-free scenario: a *rebuilt* container around a garbage
  // blob passes the checksum but must still fail to instantiate.
  ModelBundle Bundle = makeNnBundle();
  Bundle.ClassifierBlob = "nn-model 999\ngarbage\n";
  std::optional<ModelBundle> Loaded = parseBundle(serializeBundle(Bundle));
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->instantiate(), nullptr);
}

TEST(ModelBundleTest, CorpusFingerprintIsStableAndSeedSensitive) {
  CorpusOptions Small;
  Small.MinLoopsPerBenchmark = 2;
  Small.MaxLoopsPerBenchmark = 3;
  std::vector<Benchmark> A = buildCorpus(Small);
  std::vector<Benchmark> B = buildCorpus(Small);
  EXPECT_EQ(fingerprintHex(corpusFingerprint(A)),
            fingerprintHex(corpusFingerprint(B)));

  CorpusOptions Reseeded = Small;
  Reseeded.Seed = Small.Seed + 1;
  std::vector<Benchmark> C = buildCorpus(Reseeded);
  EXPECT_NE(fingerprintHex(corpusFingerprint(A)),
            fingerprintHex(corpusFingerprint(C)));
  EXPECT_EQ(fingerprintHex(corpusFingerprint(A)).size(), 32u);
}

//===----------------------------------------------------------------------===//
// Pipeline-trained bundle equivalence
//===----------------------------------------------------------------------===//

TEST(ModelBundleTest, PipelineBundleMatchesInProcessClassifierOnAllLoops) {
  PipelineOptions Options;
  Options.Corpus.MinLoopsPerBenchmark = 2;
  Options.Corpus.MaxLoopsPerBenchmark = 3;
  Options.CacheDir = "";
  Pipeline Pipe(Options);

  NearNeighborClassifier Nn(paperReducedFeatureSet());
  Nn.train(Pipe.dataset(/*EnableSwp=*/false));

  ModelBundle Bundle;
  Bundle.Provenance.ClassifierName = Nn.name();
  Bundle.Features = paperReducedFeatureSet();
  Bundle.ClassifierBlob = Nn.serialize();

  std::string Dir = freshDir("pipeline_bundle");
  std::string Path = Dir + "/model.bundle";
  ASSERT_TRUE(saveBundleFile(Bundle, Path));
  std::optional<ModelBundle> Loaded = loadBundleFile(Path);
  ASSERT_TRUE(Loaded.has_value());
  std::unique_ptr<Classifier> Restored = Loaded->instantiate();
  ASSERT_NE(Restored, nullptr);

  // Every loop of the corpus — not just the labeled subset — must get
  // the identical prediction from the restored model.
  size_t Checked = 0;
  for (const Benchmark &Bench : Pipe.corpus())
    for (const CorpusLoop &Entry : Bench.Loops) {
      FeatureVector Features = extractFeatures(Entry.TheLoop);
      ASSERT_EQ(Restored->predict(Features), Nn.predict(Features))
          << Bench.Name << "/" << Entry.TheLoop.name();
      ++Checked;
    }
  EXPECT_GT(Checked, 100u);
}

//===----------------------------------------------------------------------===//
// PredictionService
//===----------------------------------------------------------------------===//

TEST(PredictionServiceTest, PredictsAndRendersDeterministically) {
  PredictionService Service(makeNnBundle());
  PredictRequest Request;
  Request.LoopText = ValidLoop;
  Request.WantScores = true;
  PredictResponse Response = Service.predict(Request);
  ASSERT_EQ(Response.Status, PredictStatus::Ok);
  ASSERT_EQ(Response.Loops.size(), 1u);
  EXPECT_EQ(Response.Loops[0].LoopName, "t.axpy");
  EXPECT_GE(Response.Loops[0].Factor, 1u);
  EXPECT_LE(Response.Loops[0].Factor, MaxUnrollFactor);

  PredictResponse Unbatched = Service.predictUnbatched(Request);
  EXPECT_EQ(renderPredictResponse("x", Response),
            renderPredictResponse("x", Unbatched));
}

TEST(PredictionServiceTest, BatchedConcurrentEqualsSerialByteForByte) {
  PredictionServiceOptions Options;
  Options.MaxBatch = 8;
  Options.BatchLinger = std::chrono::microseconds(500);
  PredictionService Service(makeNnBundle(), Options);

  std::vector<std::string> Texts = {ValidLoop, SecondLoop,
                                    std::string(ValidLoop) + SecondLoop};
  std::vector<std::string> Reference;
  for (const std::string &Text : Texts) {
    PredictRequest Request;
    Request.LoopText = Text;
    Request.WantScores = true;
    Reference.push_back(
        renderPredictResponse("", Service.predictUnbatched(Request)));
  }

  constexpr int ThreadCount = 8;
  constexpr int PerThread = 25;
  std::vector<std::thread> Threads;
  std::vector<int> Mismatches(ThreadCount, 0);
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        size_t Which = static_cast<size_t>(I) % Texts.size();
        PredictRequest Request;
        Request.LoopText = Texts[Which];
        Request.WantScores = true;
        std::string Rendered =
            renderPredictResponse("", Service.predict(Request));
        if (Rendered != Reference[Which])
          ++Mismatches[T];
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T < ThreadCount; ++T)
    EXPECT_EQ(Mismatches[T], 0);

  ServiceStatsSnapshot Stats = Service.stats();
  EXPECT_EQ(Stats.Ok, static_cast<uint64_t>(ThreadCount * PerThread));
  EXPECT_GT(Stats.Batches, 0u);
}

TEST(PredictionServiceTest, ModelZooFamiliesServeByteIdentically) {
  // Both model-zoo families must serve through the exact same byte-identity
  // contract as the near-neighbor baseline: the bundle trained at one thread
  // equals the bundle trained at many, and batched predictions render the
  // same JSON as serial ones.
  for (const char *Family : {"mlp", "random-forest"}) {
    SCOPED_TRACE(Family);
    ThreadPool::setGlobalThreads(1);
    ModelBundle Narrow = makeZooBundle(Family);
    ThreadPool::setGlobalThreads(4);
    ModelBundle Wide = makeZooBundle(Family);
    ThreadPool::setGlobalThreads(0); // Restore the default pool.
    EXPECT_EQ(serializeBundle(Narrow), serializeBundle(Wide));

    PredictionServiceOptions Options;
    Options.MaxBatch = 4;
    Options.BatchLinger = std::chrono::microseconds(200);
    PredictionService Service(Wide, Options);

    std::vector<std::string> Texts = {ValidLoop, SecondLoop,
                                      std::string(ValidLoop) + SecondLoop};
    std::vector<std::string> Reference;
    for (const std::string &Text : Texts) {
      PredictRequest Request;
      Request.LoopText = Text;
      Request.WantScores = true;
      PredictResponse Response = Service.predictUnbatched(Request);
      ASSERT_EQ(Response.Status, PredictStatus::Ok);
      Reference.push_back(renderPredictResponse("", Response));
    }

    constexpr int ThreadCount = 4;
    constexpr int PerThread = 10;
    std::vector<std::thread> Threads;
    std::vector<int> Mismatches(ThreadCount, 0);
    for (int T = 0; T < ThreadCount; ++T)
      Threads.emplace_back([&, T] {
        for (int I = 0; I < PerThread; ++I) {
          size_t Which = static_cast<size_t>(I) % Texts.size();
          PredictRequest Request;
          Request.LoopText = Texts[Which];
          Request.WantScores = true;
          std::string Rendered =
              renderPredictResponse("", Service.predict(Request));
          if (Rendered != Reference[Which])
            ++Mismatches[T];
        }
      });
    for (std::thread &T : Threads)
      T.join();
    for (int T = 0; T < ThreadCount; ++T)
      EXPECT_EQ(Mismatches[T], 0) << "thread " << T;
  }
}

TEST(PredictionServiceTest, RejectsMalformedInputWithDiagnostics) {
  PredictionService Service(makeNnBundle());

  PredictRequest Unparseable;
  Unparseable.LoopText = "loop \"x\" {";
  PredictResponse Response = Service.predict(Unparseable);
  EXPECT_EQ(Response.Status, PredictStatus::Malformed);
  EXPECT_NE(Response.Error.find("line"), std::string::npos);

  // Parses but fails the verifier: a register defined twice. The error
  // must carry the verifier's stable V### diagnostic ID.
  PredictRequest Invalid;
  Invalid.LoopText = R"(loop "bad" lang=C nest=1 trip=8 rtrip=8 {
  %f_y = fadd %f_x, %f_x
  %f_y = fmul %f_x, %f_x
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
)";
  Response = Service.predict(Invalid);
  EXPECT_EQ(Response.Status, PredictStatus::Malformed);
  EXPECT_NE(Response.Error.find("[V"), std::string::npos) << Response.Error;

  PredictRequest Empty;
  Empty.LoopText = "# only a comment\n";
  Response = Service.predict(Empty);
  EXPECT_EQ(Response.Status, PredictStatus::Malformed);
}

TEST(PredictionServiceTest, ExpiredDeadlineIsReported) {
  PredictionServiceOptions Options;
  Options.BatchLinger = std::chrono::microseconds(0);
  PredictionService Service(makeNnBundle(), Options);
  PredictRequest Request;
  Request.LoopText = ValidLoop;
  Request.Deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  PredictResponse Response = Service.predict(Request);
  EXPECT_EQ(Response.Status, PredictStatus::DeadlineExceeded);
  EXPECT_EQ(Service.stats().DeadlineExceeded, 1u);
}

TEST(PredictionServiceTest, FullQueueRefusesWithOverloaded) {
  PredictionServiceOptions Options;
  // MaxQueue below MaxBatch: batches never fill, so the dispatcher sits
  // out the whole linger while we flood the two-slot queue.
  Options.MaxBatch = 4;
  Options.MaxQueue = 2;
  Options.BatchLinger = std::chrono::microseconds(50000);
  PredictionService Service(makeNnBundle(), Options);

  std::vector<std::future<PredictResponse>> Futures;
  for (int I = 0; I < 40; ++I) {
    PredictRequest Request;
    Request.LoopText = ValidLoop;
    Futures.push_back(Service.submit(Request));
  }
  size_t Overloaded = 0, Answered = 0;
  for (auto &Future : Futures) {
    PredictResponse Response = Future.get();
    if (Response.Status == PredictStatus::Overloaded)
      ++Overloaded;
    else if (Response.Status == PredictStatus::Ok)
      ++Answered;
  }
  EXPECT_GT(Overloaded, 0u);
  EXPECT_GT(Answered, 0u);
  EXPECT_EQ(Service.stats().Overloaded, Overloaded);
}

TEST(PredictionServiceTest, ShutdownDrainsQueuedRequestsThenRefuses) {
  PredictionServiceOptions Options;
  Options.BatchLinger = std::chrono::microseconds(20000);
  PredictionService Service(makeNnBundle(), Options);

  std::vector<std::future<PredictResponse>> Futures;
  for (int I = 0; I < 10; ++I) {
    PredictRequest Request;
    Request.LoopText = ValidLoop;
    Futures.push_back(Service.submit(Request));
  }
  Service.shutdown();
  for (auto &Future : Futures)
    EXPECT_EQ(Future.get().Status, PredictStatus::Ok);

  PredictRequest Late;
  Late.LoopText = ValidLoop;
  EXPECT_EQ(Service.predict(Late).Status, PredictStatus::ShuttingDown);
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, RequestLinesRoundTrip) {
  WireRequest Request;
  Request.TheOp = WireRequest::Op::Predict;
  Request.Id = "req-17";
  Request.LoopText = ValidLoop;
  Request.WantScores = true;
  Request.DeadlineMs = 250;

  std::optional<WireRequest> Parsed =
      parseRequestLine(renderRequestLine(Request));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->TheOp, WireRequest::Op::Predict);
  EXPECT_EQ(Parsed->Id, "req-17");
  EXPECT_EQ(Parsed->LoopText, ValidLoop);
  EXPECT_TRUE(Parsed->WantScores);
  EXPECT_EQ(Parsed->DeadlineMs, 250);

  for (WireRequest::Op Op :
       {WireRequest::Op::Health, WireRequest::Op::Stats,
        WireRequest::Op::Shutdown}) {
    WireRequest Admin;
    Admin.TheOp = Op;
    std::optional<WireRequest> AdminParsed =
        parseRequestLine(renderRequestLine(Admin));
    ASSERT_TRUE(AdminParsed.has_value());
    EXPECT_EQ(AdminParsed->TheOp, Op);
  }
}

TEST(ProtocolTest, RejectsInvalidRequests) {
  std::string Error;
  EXPECT_FALSE(parseRequestLine("not json", &Error).has_value());
  EXPECT_FALSE(parseRequestLine("[1,2]", &Error).has_value());
  EXPECT_FALSE(parseRequestLine("{}", &Error).has_value());
  EXPECT_NE(Error.find("op"), std::string::npos);
  EXPECT_FALSE(
      parseRequestLine(R"({"op":"predict"})", &Error).has_value());
  EXPECT_NE(Error.find("loop"), std::string::npos);
  EXPECT_FALSE(parseRequestLine(R"({"op":"teleport"})", &Error)
                   .has_value());
  EXPECT_FALSE(
      parseRequestLine(R"({"op":"predict","loop":"x","deadline_ms":-1})",
                       &Error)
          .has_value());
}

TEST(ProtocolTest, ResponsesAreParseableJson) {
  PredictionService Service(makeNnBundle());
  PredictRequest Request;
  Request.LoopText = ValidLoop;
  Request.WantScores = true;
  std::string Line =
      renderPredictResponse("id1", Service.predict(Request));
  std::optional<JsonValue> Doc = parseJson(Line);
  ASSERT_TRUE(Doc.has_value()) << Line;
  EXPECT_EQ(Doc->getString("status"), "ok");
  EXPECT_EQ(Doc->getString("id"), "id1");
  const JsonValue *Loops = Doc->get("loops");
  ASSERT_NE(Loops, nullptr);
  ASSERT_EQ(Loops->Items.size(), 1u);
  EXPECT_EQ(Loops->Items[0].getString("name"), "t.axpy");
  ASSERT_NE(Loops->Items[0].get("scores"), nullptr);
  EXPECT_EQ(Loops->Items[0].get("scores")->Items.size(),
            static_cast<size_t>(MaxUnrollFactor));

  EXPECT_TRUE(parseJson(renderHealthResponse("", Service.bundle()))
                  .has_value());
  EXPECT_TRUE(parseJson(renderHealthResponse("", Service.bundle(),
                                             Service.bundleChecksum()))
                  .has_value());
  ServerStatsExtra Extra;
  Extra.ConnectionsAccepted = 3;
  Extra.ConnectionsOpen = 1;
  EXPECT_TRUE(
      parseJson(renderStatsResponse("", Service.stats(), Extra)).has_value());
  EXPECT_TRUE(parseJson(renderErrorResponse("", "bad-request", "why"))
                  .has_value());
}

//===----------------------------------------------------------------------===//
// Latency histogram
//===----------------------------------------------------------------------===//

TEST(MetricsTest, SnapshotsAreNeverTornUnderConcurrentLoad) {
  PredictionServiceOptions Options;
  Options.MaxBatch = 4;
  Options.BatchLinger = std::chrono::microseconds(200);
  PredictionService Service(makeNnBundle(), Options);

  // A sampler races the load and asserts the documented snapshot
  // invariants; with torn (per-counter atomic) reads these fail within a
  // handful of samples.
  std::atomic<bool> Done{false};
  std::atomic<int> Violations{0};
  std::thread Sampler([&] {
    while (!Done.load(std::memory_order_acquire)) {
      ServiceStatsSnapshot S = Service.stats();
      if (S.Received != S.Completed + static_cast<uint64_t>(S.QueueDepth) +
                            static_cast<uint64_t>(S.InFlight))
        ++Violations;
      if (S.Completed != S.Ok + S.Malformed + S.DeadlineExceeded)
        ++Violations;
      if (S.LatencySamples != S.Completed)
        ++Violations;
    }
  });

  constexpr int ThreadCount = 6;
  constexpr int PerThread = 50;
  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        PredictRequest Request;
        Request.LoopText = (I % 5 == 0) ? "not a loop" : ValidLoop;
        Service.predict(Request);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  Done.store(true, std::memory_order_release);
  Sampler.join();
  EXPECT_EQ(Violations.load(), 0);

  ServiceStatsSnapshot Final = Service.stats();
  EXPECT_EQ(Final.QueueDepth, 0);
  EXPECT_EQ(Final.InFlight, 0);
  EXPECT_EQ(Final.Received, Final.Completed);
  EXPECT_EQ(Final.Received,
            static_cast<uint64_t>(ThreadCount) * PerThread);
  EXPECT_EQ(Final.LatencySamples, Final.Completed);
  EXPECT_GT(Final.Malformed, 0u);
}

TEST(MetricsTest, HistogramPercentilesAreMonotoneAndBounded) {
  LatencyHistogram Hist;
  EXPECT_EQ(Hist.percentileMicros(0.5), 0);
  for (int I = 1; I <= 1000; ++I)
    Hist.record(static_cast<double>(I));
  EXPECT_EQ(Hist.count(), 1000u);
  double P50 = Hist.percentileMicros(0.50);
  double P95 = Hist.percentileMicros(0.95);
  double P99 = Hist.percentileMicros(0.99);
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P99);
  // Bucket edges are powers of two: the true p50 (500) lands in
  // (256, 512], the tail in (512, 1024].
  EXPECT_EQ(P50, 512);
  EXPECT_EQ(P99, 1024);
  EXPECT_NEAR(Hist.meanMicros(), 500.0, 1.0);
}

//===----------------------------------------------------------------------===//
// Daemon loopback over a real socket
//===----------------------------------------------------------------------===//

namespace {

/// Runs a Server on a fresh socket in a helper thread.
class ServerFixture {
public:
  explicit ServerFixture(ServerOptions Options = {}) {
    serverStopFlag().store(false);
    Options.SocketPath =
        freshDir("daemon") + "/mo-" + std::to_string(::getpid()) + ".sock";
    Path = Options.SocketPath;
    Daemon = std::make_unique<Server>(makeNnBundle(), Options);
    Runner = std::thread([this] { Ok = Daemon->run(&Error); });
    // Wait for the socket to be bound.
    for (int I = 0; I < 500 && !Daemon->listening(); ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  ~ServerFixture() {
    Daemon->requestStop();
    if (Runner.joinable())
      Runner.join();
  }

  std::string Path;
  std::unique_ptr<Server> Daemon;
  std::thread Runner;
  bool Ok = false;
  std::string Error;
};

} // namespace

TEST(ServerTest, ServesPredictHealthAndStatsOverTheSocket) {
  ServerFixture Fixture;
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  ServeClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000, &Error))
      << Error;

  WireRequest Predict;
  Predict.TheOp = WireRequest::Op::Predict;
  Predict.LoopText = ValidLoop;
  std::optional<std::string> Line = Client.request(Predict, &Error);
  ASSERT_TRUE(Line.has_value()) << Error;
  std::optional<JsonValue> Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("status"), "ok");

  WireRequest Health;
  Health.TheOp = WireRequest::Op::Health;
  Line = Client.request(Health, &Error);
  ASSERT_TRUE(Line.has_value()) << Error;
  Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("classifier"), "near-neighbor");

  WireRequest Stats;
  Stats.TheOp = WireRequest::Op::Stats;
  Line = Client.request(Stats, &Error);
  ASSERT_TRUE(Line.has_value()) << Error;
  Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_GE(Doc->getInt("completed", 0), 1);

  // Unparseable request lines get a bad-request response, not a close.
  Line = Client.roundTrip("this is not json", &Error);
  ASSERT_TRUE(Line.has_value()) << Error;
  Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("status"), "bad-request");
}

TEST(ServerTest, ConcurrentClientsGetByteIdenticalResponses) {
  ServerFixture Fixture;
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  WireRequest Predict;
  Predict.TheOp = WireRequest::Op::Predict;
  Predict.LoopText = ValidLoop;
  Predict.WantScores = true;

  std::string Reference;
  {
    ServeClient Client;
    ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
    std::optional<std::string> Line = Client.request(Predict);
    ASSERT_TRUE(Line.has_value());
    Reference = *Line;
  }

  constexpr int ClientCount = 16;
  constexpr int PerClient = 10;
  std::vector<std::thread> Threads;
  std::vector<int> Mismatches(ClientCount, 0);
  for (int C = 0; C < ClientCount; ++C)
    Threads.emplace_back([&, C] {
      ServeClient Client;
      if (!Client.connectWithRetry(Fixture.Path, 2000)) {
        Mismatches[C] = PerClient;
        return;
      }
      for (int I = 0; I < PerClient; ++I) {
        std::optional<std::string> Line = Client.request(Predict);
        if (!Line || *Line != Reference)
          ++Mismatches[C];
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int C = 0; C < ClientCount; ++C)
    EXPECT_EQ(Mismatches[C], 0) << "client " << C;
}

TEST(ServerTest, ShutdownOpDrainsAndStopsTheDaemon) {
  ServerFixture Fixture;
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  ServeClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000, &Error))
      << Error;
  WireRequest Shutdown;
  Shutdown.TheOp = WireRequest::Op::Shutdown;
  std::optional<std::string> Line = Client.request(Shutdown, &Error);
  ASSERT_TRUE(Line.has_value()) << Error;
  std::optional<JsonValue> Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("status"), "ok");
  Client.close();

  if (Fixture.Runner.joinable())
    Fixture.Runner.join();
  EXPECT_TRUE(Fixture.Ok) << Fixture.Error;
  // A drained daemon removes its socket file.
  EXPECT_FALSE(std::filesystem::exists(Fixture.Path));
}

//===----------------------------------------------------------------------===//
// Transport hardening: TCP, framing edges, deadlines
//===----------------------------------------------------------------------===//

namespace {

/// Reads one '\n'-terminated line from a raw socket. False on EOF or
/// error (the server closed the connection).
bool readLineRaw(int Fd, std::string &Out) {
  Out.clear();
  char C;
  while (true) {
    ssize_t N = ::recv(Fd, &C, 1, 0);
    if (N <= 0)
      return false;
    if (C == '\n')
      return true;
    Out.push_back(C);
  }
}

bool sendAll(int Fd, const std::string &Bytes) {
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Sent += static_cast<size_t>(N);
  }
  return true;
}

/// One server-side counter from a fresh stats connection.
int64_t statsCounter(const std::string &SocketPath, const char *Key) {
  ServeClient Probe;
  if (!Probe.connectWithRetry(SocketPath, 2000))
    return -1;
  WireRequest Stats;
  Stats.TheOp = WireRequest::Op::Stats;
  std::optional<std::string> Line = Probe.request(Stats);
  if (!Line)
    return -1;
  std::optional<JsonValue> Doc = parseJson(*Line);
  return Doc ? Doc->getInt(Key, -1) : -1;
}

} // namespace

TEST(TransportTest, TcpListenerServesTheSameProtocolByteForByte) {
  ServerOptions Options;
  Options.TcpPort = 0; // Ephemeral.
  ServerFixture Fixture(Options);
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;
  int Port = Fixture.Daemon->boundTcpPort();
  ASSERT_GT(Port, 0);

  WireRequest Predict;
  Predict.TheOp = WireRequest::Op::Predict;
  Predict.LoopText = ValidLoop;
  Predict.WantScores = true;

  ServeClient UnixClient, TcpClient;
  std::string Error;
  ASSERT_TRUE(UnixClient.connectWithRetry(Fixture.Path, 2000, &Error))
      << Error;
  ASSERT_TRUE(TcpClient.connectWithRetry(
      "127.0.0.1:" + std::to_string(Port), 2000, &Error))
      << Error;

  std::optional<std::string> ViaUnix = UnixClient.request(Predict, &Error);
  std::optional<std::string> ViaTcp = TcpClient.request(Predict, &Error);
  ASSERT_TRUE(ViaUnix.has_value()) << Error;
  ASSERT_TRUE(ViaTcp.has_value()) << Error;
  // The transport must be invisible in the bytes.
  EXPECT_EQ(*ViaUnix, *ViaTcp);
  std::optional<JsonValue> Doc = parseJson(*ViaTcp);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("status"), "ok");
}

TEST(TransportTest, PartialFramesAcrossReadsAndCrlfAreOneRequest) {
  ServerFixture Fixture;
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  ServeClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000, &Error)) << Error;

  WireRequest Health;
  Health.TheOp = WireRequest::Op::Health;
  std::string Line = renderRequestLine(Health);
  std::optional<std::string> Reference = Client.request(Health, &Error);
  ASSERT_TRUE(Reference.has_value()) << Error;

  // Dribble the same request a few bytes per write: the server must
  // reassemble it into exactly one request.
  int Fd = Client.fd();
  std::string Framed = Line + "\n";
  for (size_t I = 0; I < Framed.size(); I += 7) {
    ASSERT_TRUE(sendAll(Fd, Framed.substr(I, 7)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string Out;
  ASSERT_TRUE(readLineRaw(Fd, Out));
  EXPECT_EQ(Out, *Reference);

  // CRLF framing (and a leading blank line) serves the same response as
  // bare LF.
  ASSERT_TRUE(sendAll(Fd, "\r\n" + Line + "\r\n"));
  ASSERT_TRUE(readLineRaw(Fd, Out));
  EXPECT_EQ(Out, *Reference);

  // Two requests in one write are two responses.
  ASSERT_TRUE(sendAll(Fd, Framed + Framed));
  ASSERT_TRUE(readLineRaw(Fd, Out));
  EXPECT_EQ(Out, *Reference);
  ASSERT_TRUE(readLineRaw(Fd, Out));
  EXPECT_EQ(Out, *Reference);
}

TEST(TransportTest, OversizedRequestLineIsRejectedThenClosed) {
  ServerOptions Options;
  Options.MaxRequestBytes = 1024;
  ServerFixture Fixture(Options);
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
  int Fd = Client.fd();
  ASSERT_TRUE(sendAll(Fd, std::string(4096, 'a') + "\n"));

  std::string Out;
  ASSERT_TRUE(readLineRaw(Fd, Out));
  std::optional<JsonValue> Doc = parseJson(Out);
  ASSERT_TRUE(Doc.has_value()) << Out;
  EXPECT_EQ(Doc->getString("status"), "bad-request");
  // The connection does not survive a framing violation.
  EXPECT_FALSE(readLineRaw(Fd, Out));

  EXPECT_GE(statsCounter(Fixture.Path, "oversized_rejected"), 1);
}

TEST(TransportTest, EmbeddedNulIsAFramingViolation) {
  ServerFixture Fixture;
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
  int Fd = Client.fd();
  std::string Evil = "{\"op\":\"health\"}";
  Evil += '\0';
  Evil += "\n";
  ASSERT_TRUE(sendAll(Fd, Evil));

  std::string Out;
  ASSERT_TRUE(readLineRaw(Fd, Out));
  std::optional<JsonValue> Doc = parseJson(Out);
  ASSERT_TRUE(Doc.has_value()) << Out;
  EXPECT_EQ(Doc->getString("status"), "bad-request");
  EXPECT_FALSE(readLineRaw(Fd, Out));

  EXPECT_GE(statsCounter(Fixture.Path, "bad_frames"), 1);
}

TEST(TransportTest, StalledPartialFrameIsClosedAfterReadTimeout) {
  ServerOptions Options;
  Options.ReadTimeout = std::chrono::milliseconds(200);
  ServerFixture Fixture(Options);
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
  int Fd = Client.fd();
  // A frame that never finishes: the read deadline must reclaim the
  // connection (EOF, no response line).
  ASSERT_TRUE(sendAll(Fd, "{\"op\":"));
  auto Start = std::chrono::steady_clock::now();
  std::string Out;
  EXPECT_FALSE(readLineRaw(Fd, Out));
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_LT(Elapsed, std::chrono::seconds(10));

  EXPECT_GE(statsCounter(Fixture.Path, "read_timeouts"), 1);
}

TEST(TransportTest, SlowReaderIsDisconnectedByTheWriteDeadline) {
  ServerOptions Options;
  Options.WriteTimeout = std::chrono::milliseconds(150);
  ServerFixture Fixture(Options);
  ASSERT_TRUE(Fixture.Daemon->listening()) << Fixture.Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
  int Fd = Client.fd();

  // Pipeline requests without ever reading a response until every socket
  // buffer in the loop is full and our own send would block — at that
  // point the server is wedged mid-write on a full buffer and its write
  // deadline must disconnect us.
  std::string Framed = renderRequestLine([] {
    WireRequest Health;
    Health.TheOp = WireRequest::Op::Health;
    return Health;
  }()) + "\n";
  bool WouldBlock = false;
  for (int I = 0; I < 200000 && !WouldBlock; ++I) {
    ssize_t N = ::send(Fd, Framed.data(), Framed.size(),
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        WouldBlock = true;
      else
        break;
    }
  }
  ASSERT_TRUE(WouldBlock);

  // Wait (bounded) for the deadline to fire, then confirm via stats.
  int64_t Timeouts = 0;
  for (int I = 0; I < 200 && Timeouts < 1; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Timeouts = statsCounter(Fixture.Path, "write_timeouts");
  }
  EXPECT_GE(Timeouts, 1);

  // Draining what the server managed to send ends in EOF.
  std::string Out;
  while (readLineRaw(Fd, Out)) {
  }
}

//===----------------------------------------------------------------------===//
// Hot reload
//===----------------------------------------------------------------------===//

TEST(ServerTest, HotReloadSwapsTheBundleWithZeroDroppedResponses) {
  std::string Dir = freshDir("reload");
  std::string Path = Dir + "/live.bundle";
  ModelBundle BundleA = makeNnBundle(80, 7);
  ASSERT_TRUE(saveBundleFile(BundleA, Path));
  std::optional<ModelBundle> Loaded = loadBundleFile(Path);
  ASSERT_TRUE(Loaded.has_value());

  serverStopFlag().store(false);
  ServerOptions Options;
  Options.SocketPath = Dir + "/mo.sock";
  Options.BundlePath = Path;
  Options.ReloadPoll = std::chrono::milliseconds(30);
  Server Daemon(std::move(*Loaded), Options);
  std::string RunError;
  bool RunOk = false;
  std::thread Runner([&] { RunOk = Daemon.run(&RunError); });
  for (int I = 0; I < 500 && !Daemon.listening(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(Daemon.listening()) << RunError;

  std::string ChecksumA = Daemon.bundleChecksum();
  EXPECT_EQ(ChecksumA, bundleChecksumHex(BundleA));

  // Hammer predictions across the swap: every response must be ok — a
  // reload may never drop or error an in-flight request.
  std::atomic<bool> Done{false};
  std::atomic<int> Errors{0};
  std::atomic<uint64_t> Served{0};
  std::vector<std::thread> Clients;
  for (int C = 0; C < 4; ++C)
    Clients.emplace_back([&] {
      ServeClient Client;
      if (!Client.connectWithRetry(Options.SocketPath, 2000)) {
        ++Errors;
        return;
      }
      WireRequest Predict;
      Predict.TheOp = WireRequest::Op::Predict;
      Predict.LoopText = ValidLoop;
      while (!Done.load(std::memory_order_acquire)) {
        std::optional<std::string> Line = Client.request(Predict);
        if (!Line) {
          ++Errors;
          return;
        }
        std::optional<JsonValue> Doc = parseJson(*Line);
        if (!Doc || Doc->getString("status") != "ok") {
          ++Errors;
          return;
        }
        ++Served;
      }
    });

  ModelBundle BundleB = makeNnBundle(120, 99);
  std::string ChecksumB = bundleChecksumHex(BundleB);
  ASSERT_NE(ChecksumA, ChecksumB);
  ASSERT_TRUE(saveBundleFile(BundleB, Path));

  bool Swapped = false;
  for (int I = 0; I < 1000 && !Swapped; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Swapped = Daemon.bundleChecksum() == ChecksumB;
  }
  // Let the hammer observe the post-swap service for a while.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Clients)
    T.join();

  EXPECT_TRUE(Swapped);
  EXPECT_EQ(Errors.load(), 0);
  EXPECT_GT(Served.load(), 0u);
  EXPECT_EQ(Daemon.reloads(), 1u);
  EXPECT_EQ(Daemon.reloadsRejected(), 0u);

  // Health reports the new revision.
  {
    ServeClient Probe;
    ASSERT_TRUE(Probe.connectWithRetry(Options.SocketPath, 2000));
    WireRequest Health;
    Health.TheOp = WireRequest::Op::Health;
    std::optional<std::string> Line = Probe.request(Health);
    ASSERT_TRUE(Line.has_value());
    std::optional<JsonValue> Doc = parseJson(*Line);
    ASSERT_TRUE(Doc.has_value());
    EXPECT_EQ(Doc->getString("bundle_checksum"), ChecksumB);
  }
  EXPECT_GE(statsCounter(Options.SocketPath, "reloads"), 1);

  // A corrupt artifact is rejected; the good model keeps serving.
  {
    std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
    Out << "garbage";
  }
  bool Rejected = false;
  for (int I = 0; I < 1000 && !Rejected; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Rejected = Daemon.reloadsRejected() >= 1;
  }
  EXPECT_TRUE(Rejected);
  EXPECT_EQ(Daemon.bundleChecksum(), ChecksumB);
  EXPECT_EQ(Daemon.reloads(), 1u);
  {
    ServeClient Probe;
    ASSERT_TRUE(Probe.connectWithRetry(Options.SocketPath, 2000));
    WireRequest Predict;
    Predict.TheOp = WireRequest::Op::Predict;
    Predict.LoopText = ValidLoop;
    std::optional<std::string> Line = Probe.request(Predict);
    ASSERT_TRUE(Line.has_value());
    std::optional<JsonValue> Doc = parseJson(*Line);
    ASSERT_TRUE(Doc.has_value());
    EXPECT_EQ(Doc->getString("status"), "ok");
  }

  Daemon.requestStop();
  Runner.join();
  EXPECT_TRUE(RunOk) << RunError;
}
