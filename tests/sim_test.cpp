//===- tests/sim_test.cpp - Unit tests for src/sim ------------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "ir/LoopBuilder.h"
#include "sim/Measurement.h"
#include "sim/Simulator.h"
#include "support/Statistics.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace metaopt;

namespace {

Loop makeDaxpy(int64_t Trip = 1024) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, Trip);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  MemRef X{0, 8, 0, false, 8};
  MemRef Y{1, 8, 0, false, 8};
  RegId Xv = B.load(RegClass::Float, X);
  RegId Yv = B.load(RegClass::Float, Y);
  B.store(B.fma(Alpha, Xv, Yv), Y);
  return B.finalize();
}

Loop makeIir() {
  LoopBuilder B("iir", SourceLanguage::C, 1, 512);
  RegId A = B.liveIn(RegClass::Float, "a");
  RegId Y = B.phi(RegClass::Float, "y");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Next = B.fma(A, Y, X);
  B.store(Next, {1, 8, 0, false, 8});
  B.setPhiRecur(Y, Next);
  return B.finalize();
}

} // namespace

//===----------------------------------------------------------------------===//
// Simulator
//===----------------------------------------------------------------------===//

TEST(SimulatorTest, CyclesArePositiveAndScaleWithTrip) {
  MachineModel M(itanium2Config());
  SimContext Ctx;
  SimResult Short = simulateLoop(makeDaxpy(128), 1, M, Ctx, false);
  SimResult Long = simulateLoop(makeDaxpy(4096), 1, M, Ctx, false);
  EXPECT_GT(Short.Cycles, 0.0);
  // 32x the iterations: roughly 32x the cycles (fixed overheads aside).
  EXPECT_NEAR(Long.Cycles / Short.Cycles, 32.0, 4.0);
}

TEST(SimulatorTest, RejectsOutOfRangeFactorsInAllBuildModes) {
  // Release builds compile asserts out; an out-of-range factor must still
  // be refused rather than handed to the unroller.
  MachineModel M(itanium2Config());
  SimContext Ctx;
  EXPECT_THROW(simulateLoop(makeDaxpy(), 0, M, Ctx, false),
               std::invalid_argument);
  EXPECT_THROW(simulateLoop(makeDaxpy(), MaxUnrollFactor + 1, M, Ctx, false),
               std::invalid_argument);
}

TEST(SimulatorTest, UnrollingHelpsCleanStreamingLoop) {
  MachineModel M(itanium2Config());
  SimContext Ctx; // Generous default context.
  SimResult U1 = simulateLoop(makeDaxpy(), 1, M, Ctx, false);
  SimResult U8 = simulateLoop(makeDaxpy(), 8, M, Ctx, false);
  EXPECT_LT(U8.Cycles, U1.Cycles);
}

TEST(SimulatorTest, TinyIcacheSharePunishesBigFactors) {
  MachineModel M(itanium2Config());
  SimContext Tight;
  Tight.EffectiveIcacheBytes = 128;
  // A fat body: 24 independent fp adds.
  LoopBuilder B("fat", SourceLanguage::C, 1, 512);
  RegId X = B.liveIn(RegClass::Float, "x");
  for (int I = 0; I < 24; ++I)
    B.fadd(X, X);
  Loop L = B.finalize();
  SimResult U1 = simulateLoop(L, 1, M, Tight, false);
  SimResult U8 = simulateLoop(L, 8, M, Tight, false);
  EXPECT_LT(U1.Cycles, U8.Cycles);
}

TEST(SimulatorTest, TightRegisterBudgetCausesSpills) {
  MachineModel M(itanium2Config());
  SimContext Tight;
  Tight.FpRegBudget = 4;
  SimContext Ample;
  Loop L = makeDaxpy();
  SimResult Constrained = simulateLoop(L, 8, M, Tight, false);
  SimResult Free = simulateLoop(L, 8, M, Ample, false);
  EXPECT_GT(Constrained.SpillPairs, Free.SpillPairs);
  EXPECT_GT(Constrained.Cycles, Free.Cycles);
}

TEST(SimulatorTest, RecurrenceBoundLoopSeesNoBigWin) {
  MachineModel M(itanium2Config());
  SimContext Ctx;
  Loop L = makeIir();
  SimResult U1 = simulateLoop(L, 1, M, Ctx, false);
  SimResult U8 = simulateLoop(L, 8, M, Ctx, false);
  // The serial fma chain survives unrolling (the running value is stored,
  // so it cannot be reassociated); gains must be modest.
  EXPECT_GT(U8.Cycles, U1.Cycles * 0.7);
}

TEST(SimulatorTest, EpilogueChargedForNonDivisors) {
  MachineModel M(itanium2Config());
  SimContext Ctx;
  // Identical loops, trips 96 vs 97: u=8 divides 96 but leaves a
  // remainder for 97.
  SimResult Divides = simulateLoop(makeDaxpy(96), 8, M, Ctx, false);
  SimResult Leftover = simulateLoop(makeDaxpy(97), 8, M, Ctx, false);
  EXPECT_GT(Leftover.Cycles, Divides.Cycles);
}

TEST(SimulatorTest, UnknownTripPaysCheckOverhead) {
  MachineModel M(itanium2Config());
  SimContext Ctx;
  Loop Known = makeDaxpy(256);
  LoopBuilder B("daxpy_u", SourceLanguage::C, 1, Loop::UnknownTripCount);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  MemRef X{0, 8, 0, false, 8};
  MemRef Y{1, 8, 0, false, 8};
  RegId Xv = B.load(RegClass::Float, X);
  RegId Yv = B.load(RegClass::Float, Y);
  B.store(B.fma(Alpha, Xv, Yv), Y);
  Loop Unknown = B.finalize();
  Unknown.setRuntimeTripCount(256);
  SimResult K = simulateLoop(Known, 4, M, Ctx, false);
  SimResult U = simulateLoop(Unknown, 4, M, Ctx, false);
  EXPECT_GT(U.Cycles, K.Cycles);
}

TEST(SimulatorTest, SwpPipelinesCleanLoops) {
  MachineModel M(itanium2Config());
  SimContext Ctx;
  Loop L = makeDaxpy();
  SimResult NoSwp = simulateLoop(L, 1, M, Ctx, false);
  SimResult Swp = simulateLoop(L, 1, M, Ctx, true);
  EXPECT_TRUE(Swp.UsedSwp);
  EXPECT_GT(Swp.II, 0);
  // Software pipelining must not lose to the plain schedule here.
  EXPECT_LE(Swp.Cycles, NoSwp.Cycles);
}

TEST(SimulatorTest, SwpFallsBackOnExits) {
  MachineModel M(itanium2Config());
  SimContext Ctx;
  LoopBuilder B("exit", SourceLanguage::C, 1, 512);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.001);
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  SimResult Result = simulateLoop(L, 2, M, Ctx, true);
  EXPECT_FALSE(Result.UsedSwp);
  EXPECT_GT(Result.ScheduleLength, 0u);
}

TEST(SimulatorTest, DeterministicAcrossCalls) {
  MachineModel M(itanium2Config());
  SimContext Ctx;
  Loop L = makeDaxpy();
  SimResult A = simulateLoop(L, 4, M, Ctx, false);
  SimResult B = simulateLoop(L, 4, M, Ctx, false);
  EXPECT_DOUBLE_EQ(A.Cycles, B.Cycles);
}

TEST(SimulatorTest, AlternateMachineChangesCosts) {
  MachineModel It2(itanium2Config());
  MachineModel Alt(altVliwConfig());
  SimContext Ctx;
  Loop L = makeDaxpy();
  SimResult OnIt2 = simulateLoop(L, 4, It2, Ctx, false);
  SimResult OnAlt = simulateLoop(L, 4, Alt, Ctx, false);
  // The narrower machine with the slower cache must be slower.
  EXPECT_GT(OnAlt.Cycles, OnIt2.Cycles);
}

//===----------------------------------------------------------------------===//
// Measurement protocol
//===----------------------------------------------------------------------===//

TEST(MeasurementTest, MedianNearTruth) {
  MeasurementProtocol Protocol;
  Rng Generator(1);
  double True = 1e6;
  double Measured = measureMedian(True, Protocol, Generator);
  EXPECT_NEAR(Measured, True, True * 0.01);
}

TEST(MeasurementTest, MedianSuppressesOutliers) {
  MeasurementProtocol Protocol;
  Protocol.OutlierProb = 0.2;
  Protocol.OutlierScale = 2.0;
  Rng Generator(2);
  double True = 1e6;
  std::vector<double> Trials;
  for (int I = 0; I < Protocol.Trials; ++I)
    Trials.push_back(measureOnce(True, Protocol, Generator));
  Rng Generator2(2);
  double Med = measureMedian(True, Protocol, Generator2);
  EXPECT_LT(std::abs(Med - True), std::abs(maxValue(Trials) - True));
}

TEST(MeasurementTest, InstrumentationOverheadAdded) {
  MeasurementProtocol Protocol;
  Protocol.NoiseStdDev = 0.0;
  Protocol.OutlierProb = 0.0;
  Rng Generator(3);
  EXPECT_DOUBLE_EQ(measureOnce(1000.0, Protocol, Generator),
                   1000.0 + Protocol.InstrumentationCycles);
}

TEST(MeasurementTest, ReliabilityFloor) {
  MeasurementProtocol Protocol;
  EXPECT_FALSE(isReliablyMeasurable(49999.0, Protocol));
  EXPECT_TRUE(isReliablyMeasurable(50000.0, Protocol));
}

TEST(MeasurementTest, EvenTrialCountMatchesMedianOfTheTrials) {
  // An even Trials count exercises median's two-middle-values averaging
  // end to end: measureMedian must return exactly the median of the trial
  // sequence the same seed produces, not just one of the trials.
  MeasurementProtocol Protocol;
  Protocol.Trials = 4;
  double True = 1e6;
  Rng A(11);
  std::vector<double> Trials;
  for (int I = 0; I < Protocol.Trials; ++I)
    Trials.push_back(measureOnce(True, Protocol, A));
  Rng B(11);
  double Med = measureMedian(True, Protocol, B);
  EXPECT_DOUBLE_EQ(Med, median(Trials));
  // Four noisy trials are almost surely distinct, so the averaged median
  // lies strictly inside the sample range.
  EXPECT_GT(Med, minValue(Trials));
  EXPECT_LT(Med, maxValue(Trials));
}

TEST(MeasurementTest, SameSeedReproduces) {
  MeasurementProtocol Protocol;
  Rng A(7), B(7);
  EXPECT_DOUBLE_EQ(measureMedian(12345.0, Protocol, A),
                   measureMedian(12345.0, Protocol, B));
}

TEST(MeasurementTest, NoiseScalesWithRuntime) {
  MeasurementProtocol Protocol;
  Rng Generator(9);
  RunningStats Small, Large;
  for (int I = 0; I < 200; ++I) {
    Small.add(measureOnce(1e3, Protocol, Generator));
    Large.add(measureOnce(1e6, Protocol, Generator));
  }
  // Multiplicative noise: absolute spread grows with the true value.
  EXPECT_GT(Large.stdDev(), Small.stdDev() * 100);
}
