//===- tests/concurrency_test.cpp - Unit tests for src/concurrency -------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Exercises the work-stealing runtime: pool lifecycle, parallelFor and
// parallelMap correctness, nesting, exception propagation, distribution
// under skewed task sizes, TaskGroup fork-join, and — the core guarantee —
// that parallel labeling produces the byte-identical dataset CSV the
// serial run produces (SWP off and on). Runs under METAOPT_SANITIZE=thread
// via `ctest -L concurrency`.
//
//===----------------------------------------------------------------------===//

#include "concurrency/Determinism.h"
#include "concurrency/Parallel.h"
#include "concurrency/ThreadPool.h"
#include "core/driver/LabelCollector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace metaopt;

//===----------------------------------------------------------------------===//
// Pool lifecycle
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, StartAndStop) {
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    EXPECT_EQ(Pool.threadCount(), Threads);
  }
}

TEST(ThreadPoolTest, RepeatedConstructionAndDestruction) {
  // Pools must come up and wind down cleanly even when cycled rapidly,
  // including pools that never ran a task.
  for (int Cycle = 0; Cycle < 20; ++Cycle) {
    ThreadPool Pool(4);
    if (Cycle % 2 == 0) {
      std::atomic<int> Count{0};
      parallelFor(0, 16, [&](size_t) { Count.fetch_add(1); }, &Pool);
      EXPECT_EQ(Count.load(), 16);
    }
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Executors(8);
  parallelFor(0, 8, [&](size_t I) {
    Executors[I] = std::this_thread::get_id();
  }, &Pool);
  for (std::thread::id Id : Executors)
    EXPECT_EQ(Id, Caller);
}

//===----------------------------------------------------------------------===//
// parallelFor / parallelMap
//===----------------------------------------------------------------------===//

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  parallelFor(100, 100 + N, [&](size_t I) {
    ASSERT_GE(I, 100u);
    ASSERT_LT(I, 100 + N);
    Hits[I - 100].fetch_add(1);
  }, &Pool);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool Pool(4);
  int Count = 0;
  parallelFor(5, 5, [&](size_t) { ++Count; }, &Pool);
  EXPECT_EQ(Count, 0);
  parallelFor(5, 6, [&](size_t I) { Count += static_cast<int>(I); }, &Pool);
  EXPECT_EQ(Count, 5);
}

TEST(ParallelMapTest, ResultsAreIndexOrdered) {
  ThreadPool Pool(4);
  std::vector<int> Squares =
      parallelMap<int>(512, [](size_t I) { return static_cast<int>(I * I); },
                       &Pool);
  ASSERT_EQ(Squares.size(), 512u);
  for (size_t I = 0; I < Squares.size(); ++I)
    EXPECT_EQ(Squares[I], static_cast<int>(I * I));
}

TEST(ParallelMapTest, MatchesSerialBitForBit) {
  // The determinism contract end to end: per-task RNG streams derived
  // from (seed, stable index) make the parallel map equal the serial map.
  auto Draw = [](size_t I) {
    Rng Stream = taskRng(0xfeedULL, I);
    double Sum = 0.0;
    for (int K = 0; K < 100; ++K)
      Sum += Stream.nextGaussian();
    return Sum;
  };
  ThreadPool Serial(1), Wide(8);
  std::vector<double> A = parallelMap<double>(200, Draw, &Serial);
  std::vector<double> B = parallelMap<double>(200, Draw, &Wide);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], B[I]) << "index " << I; // Exact, not approximate.
}

TEST(ParallelForTest, NestedParallelFor) {
  ThreadPool Pool(4);
  constexpr size_t Outer = 8, Inner = 64;
  std::vector<std::atomic<int>> Hits(Outer * Inner);
  parallelFor(0, Outer, [&](size_t O) {
    parallelFor(0, Inner, [&](size_t I) {
      Hits[O * Inner + I].fetch_add(1);
    }, &Pool);
  }, &Pool);
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "slot " << I;
}

TEST(ParallelForTest, WorkDistributionUnderSkewedTaskSizes) {
  // One task sleeps for a long block while many short tasks remain; with
  // stealing, other threads must pick up the short tail instead of
  // queuing behind the sleeper, so more than one thread executes tasks
  // and the wall clock stays far below the serial sum.
  ThreadPool Pool(4);
  constexpr size_t N = 64;
  std::mutex IdsMutex;
  std::set<std::thread::id> Ids;
  auto Start = std::chrono::steady_clock::now();
  parallelFor(0, N, [&](size_t I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(I == 0 ? 200 : 5));
    std::lock_guard<std::mutex> Lock(IdsMutex);
    Ids.insert(std::this_thread::get_id());
  }, &Pool);
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_GE(Ids.size(), 2u);
  // Serial would be 200 + 63*5 = 515ms; even heavily loaded CI with 4
  // executors should land far under that.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                .count(),
            450);
}

//===----------------------------------------------------------------------===//
// Exception propagation
//===----------------------------------------------------------------------===//

TEST(ParallelForTest, PropagatesLowestIndexException) {
  ThreadPool Pool(4);
  try {
    parallelFor(0, 256, [&](size_t I) {
      if (I == 31 || I == 200)
        throw std::runtime_error("boom at " + std::to_string(I));
    }, &Pool);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    // The serial loop would have surfaced index 31; parallel must agree.
    EXPECT_STREQ(E.what(), "boom at 31");
  }
}

TEST(ParallelForTest, PoolSurvivesException) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      parallelFor(0, 64, [](size_t I) {
        if (I == 7)
          throw std::logic_error("once");
      }, &Pool),
      std::logic_error);
  // The pool must still be fully usable afterwards.
  std::atomic<int> Count{0};
  parallelFor(0, 64, [&](size_t) { Count.fetch_add(1); }, &Pool);
  EXPECT_EQ(Count.load(), 64);
}

TEST(ParallelForTest, SerialPathThrowsNaturally) {
  ThreadPool Pool(1);
  int Reached = 0;
  EXPECT_THROW(
      parallelFor(0, 10, [&](size_t I) {
        if (I == 3)
          throw std::runtime_error("stop");
        ++Reached;
      }, &Pool),
      std::runtime_error);
  EXPECT_EQ(Reached, 3); // Serial semantics: later indices never run.
}

//===----------------------------------------------------------------------===//
// TaskGroup
//===----------------------------------------------------------------------===//

TEST(TaskGroupTest, SpawnAndWait) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  TaskGroup Group(Pool);
  for (int I = 0; I < 100; ++I)
    Group.spawn([&] { Count.fetch_add(1); });
  Group.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(TaskGroupTest, TasksMaySpawnSiblings) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  TaskGroup Group(Pool);
  for (int I = 0; I < 8; ++I)
    Group.spawn([&Group, &Count] {
      Count.fetch_add(1);
      Group.spawn([&Count] { Count.fetch_add(1); });
    });
  Group.wait();
  EXPECT_EQ(Count.load(), 16);
}

TEST(TaskGroupTest, WaitRethrowsEarliestSpawnedError) {
  ThreadPool Pool(4);
  TaskGroup Group(Pool);
  for (int I = 0; I < 32; ++I)
    Group.spawn([I] {
      if (I == 5 || I == 20)
        throw std::runtime_error("task " + std::to_string(I));
    });
  try {
    Group.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "task 5");
  }
}

TEST(TaskGroupTest, DestructorJoinsWithoutWait) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  {
    TaskGroup Group(Pool);
    for (int I = 0; I < 50; ++I)
      Group.spawn([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        Count.fetch_add(1);
      });
    // No wait(): the destructor must join before Count goes out of scope.
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(TaskGroupTest, SingleThreadRunsAtSpawnPoint) {
  ThreadPool Pool(1);
  TaskGroup Group(Pool);
  int Order = 0;
  Group.spawn([&] { EXPECT_EQ(Order++, 0); });
  EXPECT_EQ(Order, 1); // Already ran, before wait().
  Group.wait();
}

//===----------------------------------------------------------------------===//
// End-to-end determinism: parallel labeling == serial labeling
//===----------------------------------------------------------------------===//

namespace {

/// Small corpus slice: full benchmark diversity, few loops each, so the
/// determinism check stays fast enough for the TSan job.
std::vector<Benchmark> smallCorpus() {
  CorpusOptions Options;
  Options.MinLoopsPerBenchmark = 2;
  Options.MaxLoopsPerBenchmark = 3;
  return buildCorpus(Options);
}

std::string labeledCsv(const std::vector<Benchmark> &Corpus, bool EnableSwp,
                       unsigned Threads) {
  ThreadPool::setGlobalThreads(Threads);
  LabelingOptions Options;
  Options.EnableSwp = EnableSwp;
  size_t TotalLoops = 0;
  Dataset Data = collectLabels(Corpus, Options, &TotalLoops);
  EXPECT_GT(TotalLoops, 0u);
  return Data.toCsv();
}

} // namespace

TEST(DeterminismTest, ParallelLabelingMatchesSerialByteForByte) {
  std::vector<Benchmark> Corpus = smallCorpus();
  for (bool EnableSwp : {false, true}) {
    std::string Serial = labeledCsv(Corpus, EnableSwp, 1);
    std::string Parallel4 = labeledCsv(Corpus, EnableSwp, 4);
    std::string Parallel8 = labeledCsv(Corpus, EnableSwp, 8);
    EXPECT_EQ(Serial, Parallel4) << "SWP=" << EnableSwp;
    EXPECT_EQ(Serial, Parallel8) << "SWP=" << EnableSwp;
    EXPECT_FALSE(Serial.empty());
  }
  ThreadPool::setGlobalThreads(0); // Restore the default pool.
}
