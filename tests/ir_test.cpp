//===- tests/ir_test.cpp - Unit tests for src/ir --------------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "ir/LoopBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

/// y[i] = alpha * x[i] + y[i], the running example everywhere.
Loop makeDaxpy(int64_t Trip = 1024) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, Trip);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  MemRef X{0, 8, 0, false, 8};
  MemRef Y{1, 8, 0, false, 8};
  RegId Xv = B.load(RegClass::Float, X);
  RegId Yv = B.load(RegClass::Float, Y);
  B.store(B.fma(Alpha, Xv, Yv), Y);
  return B.finalize();
}

/// acc += x[i] * y[i] with a loop-carried phi.
Loop makeDot() {
  LoopBuilder B("dot", SourceLanguage::Fortran, 2, 512);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Y = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.setPhiRecur(Acc, B.fma(X, Y, Acc));
  return B.finalize();
}

} // namespace

//===----------------------------------------------------------------------===//
// Opcode traits
//===----------------------------------------------------------------------===//

TEST(OpcodeTest, NamesRoundTrip) {
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    Opcode Parsed;
    ASSERT_TRUE(parseOpcode(opcodeName(Op), Parsed)) << opcodeName(Op);
    EXPECT_EQ(Parsed, Op);
  }
}

TEST(OpcodeTest, UnknownNameRejected) {
  Opcode Op;
  EXPECT_FALSE(parseOpcode("frobnicate", Op));
  EXPECT_FALSE(parseOpcode("", Op));
}

TEST(OpcodeTest, CategoryFlags) {
  EXPECT_TRUE(opcodeInfo(Opcode::Load).IsMemory);
  EXPECT_TRUE(opcodeInfo(Opcode::Store).IsMemory);
  EXPECT_FALSE(opcodeInfo(Opcode::FAdd).IsMemory);
  EXPECT_TRUE(opcodeInfo(Opcode::FMA).IsFloat);
  EXPECT_FALSE(opcodeInfo(Opcode::IAdd).IsFloat);
  EXPECT_TRUE(opcodeInfo(Opcode::ExitIf).IsBranchLike);
  EXPECT_TRUE(opcodeInfo(Opcode::Call).IsBranchLike);
  EXPECT_TRUE(opcodeInfo(Opcode::Copy).IsImplicit);
  EXPECT_TRUE(opcodeInfo(Opcode::BackBr).IsLoopControl);
  EXPECT_FALSE(opcodeInfo(Opcode::Store).HasDest);
  EXPECT_TRUE(opcodeInfo(Opcode::Load).HasDest);
}

TEST(OpcodeTest, SelectOperandClasses) {
  EXPECT_EQ(opcodeOperandClass(Opcode::Select, 0), RegClass::Pred);
  EXPECT_EQ(opcodeOperandClass(Opcode::FAdd, 0), RegClass::Float);
  EXPECT_EQ(opcodeOperandClass(Opcode::IAdd, 1), RegClass::Int);
}

//===----------------------------------------------------------------------===//
// Loop and LoopBuilder
//===----------------------------------------------------------------------===//

TEST(LoopTest, MetadataAccessors) {
  Loop L = makeDaxpy(100);
  EXPECT_EQ(L.name(), "daxpy");
  EXPECT_EQ(L.language(), SourceLanguage::C);
  EXPECT_EQ(L.nestLevel(), 1);
  EXPECT_EQ(L.tripCount(), 100);
  EXPECT_TRUE(L.hasKnownTripCount());
  EXPECT_EQ(L.runtimeTripCount(), 100);
}

TEST(LoopTest, UnknownTripCountUsesRuntimeValue) {
  LoopBuilder B("wild", SourceLanguage::C, 1, Loop::UnknownTripCount);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  L.setRuntimeTripCount(77);
  EXPECT_FALSE(L.hasKnownTripCount());
  EXPECT_EQ(L.runtimeTripCount(), 77);
}

TEST(LoopTest, BuilderProducesCanonicalTail) {
  Loop L = makeDaxpy();
  ASSERT_GE(L.body().size(), 3u);
  size_t N = L.body().size();
  EXPECT_EQ(L.body()[N - 3].Op, Opcode::IvAdd);
  EXPECT_EQ(L.body()[N - 2].Op, Opcode::IvCmp);
  EXPECT_EQ(L.body()[N - 1].Op, Opcode::BackBr);
  EXPECT_EQ(L.bodySizeWithoutControl(), N - 3);
}

TEST(LoopTest, LiveInAndPhiClassification) {
  Loop L = makeDot();
  ASSERT_EQ(L.phis().size(), 1u);
  const PhiNode &Phi = L.phis()[0];
  EXPECT_TRUE(L.isPhiDest(Phi.Dest));
  EXPECT_FALSE(L.isLiveIn(Phi.Dest));
  EXPECT_TRUE(L.isLiveIn(Phi.Init));
  EXPECT_FALSE(L.isLiveIn(Phi.Recur));
}

TEST(LoopTest, RegisterClassesTracked) {
  Loop L = makeDot();
  const PhiNode &Phi = L.phis()[0];
  EXPECT_EQ(L.regClass(Phi.Dest), RegClass::Float);
  // Backedge predicate is the second-to-last instruction's destination.
  size_t N = L.body().size();
  EXPECT_EQ(L.regClass(L.body()[N - 2].Dest), RegClass::Pred);
}

TEST(LoopBuilderTest, PredicatedEmission) {
  LoopBuilder B("pred", SourceLanguage::C, 1, 64);
  RegId T = B.liveIn(RegClass::Float, "t");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Cond = B.fcmp(X, T);
  B.setPredicate(Cond);
  RegId Sum = B.fadd(X, T);
  B.clearPredicate();
  B.store(Sum, {1, 8, 0, false, 8});
  Loop L = B.finalize();
  // The fadd is guarded; the store is not.
  bool FoundGuarded = false;
  for (const Instruction &Instr : L.body()) {
    if (Instr.Op == Opcode::FAdd) {
      EXPECT_EQ(Instr.Pred, Cond);
      FoundGuarded = true;
    }
    if (Instr.isStore()) {
      EXPECT_EQ(Instr.Pred, NoReg);
    }
  }
  EXPECT_TRUE(FoundGuarded);
  EXPECT_TRUE(isWellFormed(L));
}

TEST(LoopBuilderTest, IndirectLoadTakesIndexOperand) {
  LoopBuilder B("gather", SourceLanguage::C, 1, 128);
  RegId Index = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Value = B.load(RegClass::Float, {1, 0, 0, true, 8}, Index);
  B.store(Value, {2, 8, 0, false, 8});
  Loop L = B.finalize();
  EXPECT_TRUE(isWellFormed(L));
  EXPECT_EQ(L.body()[1].Operands.size(), 1u);
  EXPECT_EQ(L.body()[1].Operands[0], Index);
}

//===----------------------------------------------------------------------===//
// Printer / Parser round trip
//===----------------------------------------------------------------------===//

TEST(PrinterTest, ContainsHeaderAndOpcodes) {
  std::string Text = printLoop(makeDaxpy());
  EXPECT_NE(Text.find("loop \"daxpy\""), std::string::npos);
  EXPECT_NE(Text.find("lang=C"), std::string::npos);
  EXPECT_NE(Text.find("trip=1024"), std::string::npos);
  EXPECT_NE(Text.find("fma"), std::string::npos);
  EXPECT_NE(Text.find("back_br"), std::string::npos);
}

TEST(PrinterTest, PhiSyntax) {
  std::string Text = printLoop(makeDot());
  EXPECT_NE(Text.find("phi %f_acc = ["), std::string::npos);
}

TEST(ParserTest, ParsesPrinterOutput) {
  Loop Original = makeDot();
  ParseResult Result = parseLoops(printLoop(Original));
  ASSERT_TRUE(Result.succeeded()) << Result.Error;
  ASSERT_EQ(Result.Loops.size(), 1u);
  const Loop &Parsed = Result.Loops[0];
  EXPECT_EQ(Parsed.name(), Original.name());
  EXPECT_EQ(Parsed.language(), Original.language());
  EXPECT_EQ(Parsed.tripCount(), Original.tripCount());
  EXPECT_EQ(Parsed.body().size(), Original.body().size());
  EXPECT_EQ(Parsed.phis().size(), Original.phis().size());
  EXPECT_TRUE(isWellFormed(Parsed));
}

TEST(ParserTest, PrintParsePrintIsStable) {
  Loop Original = makeDaxpy();
  std::string First = printLoop(Original);
  ParseResult Result = parseLoops(First);
  ASSERT_TRUE(Result.succeeded()) << Result.Error;
  std::string Second = printLoop(Result.Loops[0]);
  EXPECT_EQ(First, Second);
}

TEST(ParserTest, MultipleLoopsAndComments) {
  std::string Text = "# comment only line\n" + printLoop(makeDaxpy()) +
                     "\n# between\n" + printLoop(makeDot());
  ParseResult Result = parseLoops(Text);
  ASSERT_TRUE(Result.succeeded()) << Result.Error;
  EXPECT_EQ(Result.Loops.size(), 2u);
}

TEST(ParserTest, ReportsLineOfError) {
  std::string Text = "loop \"x\" lang=C nest=1 trip=4 rtrip=4 {\n"
                     "  %f_a = bogus_opcode %f_b\n"
                     "}\n";
  ParseResult Result = parseLoops(Text);
  EXPECT_FALSE(Result.succeeded());
  EXPECT_EQ(Result.ErrorLine, 2u);
  EXPECT_NE(Result.Error.find("bogus_opcode"), std::string::npos);
}

TEST(ParserTest, RejectsMalformedHeaders) {
  EXPECT_FALSE(parseLoops("loop daxpy {\n}\n").succeeded());
  EXPECT_FALSE(parseLoops("loop \"x\" lang=Cobol {\n}\n").succeeded());
  EXPECT_FALSE(parseLoops("loop \"x\" nest=abc {\n}\n").succeeded());
}

TEST(ParserTest, RejectsUnterminatedBody) {
  EXPECT_FALSE(
      parseLoops("loop \"x\" lang=C nest=1 trip=4 rtrip=4 {\n").succeeded());
}

TEST(ParserTest, ClassMismatchIsAVerifierError) {
  // The register prefix fixes each name's class, so "%f_a as an iadd
  // operand" parses fine syntactically; the verifier rejects it.
  std::string Text = "loop \"x\" lang=C nest=1 trip=4 rtrip=4 {\n"
                     "  %f_a = fadd %f_b, %f_c\n"
                     "  %i_d = iadd %f_a, %i_e\n"
                     "}\n";
  ParseResult Result = parseLoops(Text);
  ASSERT_TRUE(Result.succeeded()) << Result.Error;
  VerifyOptions Relaxed;
  Relaxed.RequireLoopControl = false;
  EXPECT_FALSE(verifyLoop(Result.Loops[0], Relaxed).empty());
}

TEST(ParserTest, ExitProbabilityValidated) {
  std::string Text = "loop \"x\" lang=C nest=1 trip=4 rtrip=4 {\n"
                     "  exit_if %p_c prob=1.5\n"
                     "}\n";
  EXPECT_FALSE(parseLoops(Text).succeeded());
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(VerifierTest, AcceptsWellFormedLoops) {
  EXPECT_TRUE(verifyLoop(makeDaxpy()).empty());
  EXPECT_TRUE(verifyLoop(makeDot()).empty());
}

TEST(VerifierTest, CatchesUseBeforeDef) {
  Loop L = makeDaxpy();
  // Swap the fma before its load inputs.
  std::swap(L.body()[0], L.body()[2]);
  EXPECT_FALSE(verifyLoop(L).empty());
}

TEST(VerifierTest, CatchesDoubleDefinition) {
  Loop L = makeDaxpy();
  // Make the second load define the same register as the first.
  L.body()[1].Dest = L.body()[0].Dest;
  // Restore single-use of operands by repointing fma's operand.
  EXPECT_FALSE(verifyLoop(L).empty());
}

TEST(VerifierTest, CatchesMissingLoopControl) {
  LoopBuilder B("no_tail", SourceLanguage::C, 1, 8);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  L.body().pop_back(); // Drop BackBr.
  EXPECT_FALSE(verifyLoop(L).empty());
  VerifyOptions Relaxed;
  Relaxed.RequireLoopControl = false;
  // Still broken: a partial tail is never acceptable.
  EXPECT_FALSE(verifyLoop(L, Relaxed).empty());
}

TEST(VerifierTest, RelaxedModeAllowsNoTail) {
  Loop L;
  L.setName("bare");
  RegId A = L.addReg(RegClass::Int, "a");
  RegId B = L.addReg(RegClass::Int, "b");
  Instruction Add;
  Add.Op = Opcode::IAdd;
  Add.Operands = {A, A};
  Add.Dest = B;
  L.addInstruction(Add);
  VerifyOptions Relaxed;
  Relaxed.RequireLoopControl = false;
  EXPECT_TRUE(verifyLoop(L, Relaxed).empty());
  EXPECT_FALSE(verifyLoop(L).empty());
}

TEST(VerifierTest, CatchesWrongOperandClass) {
  Loop L = makeDaxpy();
  // fma's first operand forced to an integer register.
  RegId IntReg = L.addReg(RegClass::Int, "bad");
  for (Instruction &Instr : L.body())
    if (Instr.Op == Opcode::FMA)
      Instr.Operands[0] = IntReg;
  EXPECT_FALSE(verifyLoop(L).empty());
}

TEST(VerifierTest, CatchesPredicatedControl) {
  Loop L = makeDaxpy();
  RegId Pred = L.addReg(RegClass::Pred, "p");
  L.body().back().Pred = Pred; // Predicate the backedge branch.
  EXPECT_FALSE(verifyLoop(L).empty());
}

TEST(VerifierTest, CatchesBadPhiInit) {
  Loop L = makeDot();
  // Point the phi's init at a value computed in the body.
  L.phis()[0].Init = L.phis()[0].Recur;
  EXPECT_FALSE(verifyLoop(L).empty());
}

TEST(VerifierTest, CatchesOutOfRangeRegister) {
  Loop L = makeDaxpy();
  L.body()[0].Dest = 10000;
  EXPECT_FALSE(verifyLoop(L).empty());
}

TEST(VerifierTest, CatchesStoreOperandCount) {
  Loop L = makeDaxpy();
  for (Instruction &Instr : L.body())
    if (Instr.isStore())
      Instr.Operands.clear();
  EXPECT_FALSE(verifyLoop(L).empty());
}
