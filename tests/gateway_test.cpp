//===- tests/gateway_test.cpp - Consistent hashing and the gateway --------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Covers the scale-out tier: the consistent-hash ring (determinism,
// balance, minimal remap on node removal), the canonical loop routing
// key, and a full in-process gateway fronting two TCP workers — byte
// identity against a direct worker connection, failover when a worker
// dies, and the gateway's own health/stats/shutdown surface.
//
//===----------------------------------------------------------------------===//

#include "core/ml/NearNeighbor.h"
#include "gateway/Gateway.h"
#include "gateway/HashRing.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>
#include <unistd.h>

using namespace metaopt;

namespace {

Dataset cleanDataset(size_t N, uint64_t Seed) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextGaussian();
    double F1 = Generator.nextGaussian();
    Ex.Features[0] = F0;
    Ex.Features[1] = F1;
    Ex.Features[2] = Generator.nextGaussian() * 10.0;
    Ex.Label = 1 + (F0 > 0 ? 1 : 0) + (F1 > 0 ? 2 : 0);
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      Ex.CyclesPerFactor[F] = 1000.0 + 10.0 * F;
    Ex.LoopName = "loop" + std::to_string(I);
    Ex.BenchmarkName = "bench" + std::to_string(I % 4);
    Data.add(std::move(Ex));
  }
  return Data;
}

ModelBundle makeNnBundle(size_t N = 80, uint64_t Seed = 7) {
  Dataset Data = cleanDataset(N, Seed);
  FeatureSet Features = {static_cast<FeatureId>(0),
                         static_cast<FeatureId>(1),
                         static_cast<FeatureId>(2)};
  NearNeighborClassifier Nn(Features);
  Nn.train(Data);
  ModelBundle Bundle;
  Bundle.Provenance.ClassifierName = Nn.name();
  Bundle.Provenance.CreatedBy = "gateway_test";
  Bundle.Provenance.TrainingExamples = N;
  Bundle.Features = Features;
  Bundle.ClassifierBlob = Nn.serialize();
  return Bundle;
}

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "/metaopt_gateway_test_" +
                    std::to_string(::getpid()) + "_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

const char *LoopA = R"(loop "g.axpy" lang=C nest=1 trip=1024 rtrip=1024 {
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_ax = fmul %f_x, %f_a
  %f_s = fadd %f_ax, %f_y
  store %f_s, @1[stride=8, offset=0, size=8]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
)";

const char *LoopB = R"(loop "g.scan" lang=C nest=1 trip=-1 rtrip=500 {
  %i_v = load @0[stride=4, offset=0, size=4]
  %p_hit = icmp %i_v, %i_needle
  exit_if %p_hit prob=0.01
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
)";

/// A synthetic key: distinct fingerprints for distinct inputs.
Fingerprint keyOf(uint64_t I) {
  FingerprintHasher H;
  H.str("gateway-test-key");
  H.u64(I);
  return H.digest();
}

} // namespace

//===----------------------------------------------------------------------===//
// HashRing
//===----------------------------------------------------------------------===//

TEST(HashRingTest, RouteIsADeterministicPermutationOfAllNodes) {
  HashRing Ring;
  for (const char *Name : {"w0", "w1", "w2", "w3"})
    Ring.addNode(Name);
  ASSERT_EQ(Ring.nodeCount(), 4u);

  HashRing Same;
  for (const char *Name : {"w0", "w1", "w2", "w3"})
    Same.addNode(Name);

  for (uint64_t I = 0; I < 500; ++I) {
    std::vector<size_t> Order = Ring.route(keyOf(I));
    ASSERT_EQ(Order.size(), 4u);
    std::vector<bool> Seen(4, false);
    for (size_t Node : Order) {
      ASSERT_LT(Node, 4u);
      EXPECT_FALSE(Seen[Node]) << "node repeated in preference order";
      Seen[Node] = true;
    }
    // Same backend list on another gateway instance: same routing.
    EXPECT_EQ(Order, Same.route(keyOf(I)));
  }
}

TEST(HashRingTest, VirtualNodesSpreadLoadRoughlyEvenly) {
  HashRing Ring;
  for (const char *Name : {"w0", "w1", "w2", "w3"})
    Ring.addNode(Name);

  std::map<size_t, unsigned> Hits;
  constexpr unsigned Keys = 4000;
  for (uint64_t I = 0; I < Keys; ++I)
    Hits[Ring.route(keyOf(I))[0]]++;
  ASSERT_EQ(Hits.size(), 4u);
  for (const auto &[Node, Count] : Hits) {
    // Fair share is 25%; 64 vnodes keeps every node within a loose band.
    EXPECT_GT(Count, Keys / 10) << "node " << Node;
    EXPECT_LT(Count, Keys / 2) << "node " << Node;
  }
}

TEST(HashRingTest, RemovingANodeOnlyRemapsItsOwnKeys) {
  HashRing Full;
  for (const char *Name : {"w0", "w1", "w2"})
    Full.addNode(Name);
  HashRing Reduced;
  for (const char *Name : {"w0", "w1"})
    Reduced.addNode(Name);

  unsigned Kept = 0, Remapped = 0;
  for (uint64_t I = 0; I < 2000; ++I) {
    size_t Before = Full.route(keyOf(I))[0];
    size_t After = Reduced.route(keyOf(I))[0];
    if (Before == 2) {
      ++Remapped; // Keys of the removed node must land somewhere else.
      EXPECT_LT(After, 2u);
    } else {
      // Keys of surviving nodes keep their home shard.
      EXPECT_EQ(After, Before);
      ++Kept;
    }
  }
  EXPECT_GT(Kept, 0u);
  EXPECT_GT(Remapped, 0u);
}

TEST(HashRingTest, LoopRoutingKeyIsCanonical) {
  // Formatting-only differences (comments, blank lines) must not change
  // the shard: the key hashes the parsed program's canonical print.
  std::string Reformatted = std::string("# a comment\n\n") + LoopA;
  EXPECT_EQ(fingerprintHex(loopRoutingKey(LoopA)),
            fingerprintHex(loopRoutingKey(Reformatted)));
  EXPECT_NE(fingerprintHex(loopRoutingKey(LoopA)),
            fingerprintHex(loopRoutingKey(LoopB)));
  // Unparseable text still routes deterministically.
  EXPECT_EQ(fingerprintHex(loopRoutingKey("not a loop")),
            fingerprintHex(loopRoutingKey("not a loop")));
}

//===----------------------------------------------------------------------===//
// Gateway against live workers
//===----------------------------------------------------------------------===//

namespace {

/// Two TCP workers plus a gateway fronting them, all in-process.
class GatewayFixture {
public:
  explicit GatewayFixture(GatewayOptions GwOptions = {}) {
    serverStopFlag().store(false);
    Dir = freshDir("gateway");

    for (int W = 0; W < 2; ++W) {
      ServerOptions Options;
      Options.TcpPort = 0; // Ephemeral.
      Workers.push_back(
          std::make_unique<Server>(makeNnBundle(), Options));
      Server *Worker = Workers.back().get();
      WorkerThreads.emplace_back([Worker] { Worker->run(); });
      for (int I = 0; I < 500 && !Worker->listening(); ++I)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      Addresses.push_back("127.0.0.1:" +
                          std::to_string(Worker->boundTcpPort()));
    }

    GwOptions.SocketPath = Dir + "/gw.sock";
    GwOptions.Backends = Addresses;
    GwOptions.HealthInterval = std::chrono::milliseconds(100);
    Path = GwOptions.SocketPath;
    Gate = std::make_unique<Gateway>(std::move(GwOptions));
    GatewayThread = std::thread([this] { Ok = Gate->run(&Error); });
    for (int I = 0; I < 500 && !Gate->listening(); ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  ~GatewayFixture() {
    Gate->requestStop();
    if (GatewayThread.joinable())
      GatewayThread.join();
    for (auto &Worker : Workers)
      Worker->requestStop();
    for (std::thread &T : WorkerThreads)
      if (T.joinable())
        T.join();
  }

  std::string Dir;
  std::string Path;
  std::vector<std::string> Addresses;
  std::vector<std::unique_ptr<Server>> Workers;
  std::vector<std::thread> WorkerThreads;
  std::unique_ptr<Gateway> Gate;
  std::thread GatewayThread;
  bool Ok = false;
  std::string Error;
};

} // namespace

TEST(GatewayTest, ProxiedResponsesAreByteIdenticalToADirectWorker) {
  GatewayFixture Fixture;
  ASSERT_TRUE(Fixture.Gate->listening()) << Fixture.Error;

  std::vector<WireRequest> Requests;
  for (const char *Text : {LoopA, LoopB}) {
    WireRequest Predict;
    Predict.TheOp = WireRequest::Op::Predict;
    Predict.Id = "req";
    Predict.LoopText = Text;
    Predict.WantScores = true;
    Requests.push_back(Predict);
  }

  // Direct single-worker reference: every worker serves the same bundle,
  // so any worker is a valid reference for every request.
  std::vector<std::string> Reference;
  {
    ServeClient Direct;
    ASSERT_TRUE(Direct.connectWithRetry(Fixture.Addresses[0], 2000));
    for (const WireRequest &Request : Requests) {
      std::optional<std::string> Line = Direct.request(Request);
      ASSERT_TRUE(Line.has_value());
      Reference.push_back(*Line);
    }
  }

  ServeClient ViaGateway;
  std::string Error;
  ASSERT_TRUE(ViaGateway.connectWithRetry(Fixture.Path, 2000, &Error))
      << Error;
  for (int Round = 0; Round < 5; ++Round)
    for (size_t I = 0; I < Requests.size(); ++I) {
      std::optional<std::string> Line = ViaGateway.request(Requests[I]);
      ASSERT_TRUE(Line.has_value());
      EXPECT_EQ(*Line, Reference[I]);
    }

  // Sharding is sticky: each distinct loop went to exactly one backend.
  GatewayStatsSnapshot Stats = Fixture.Gate->stats();
  EXPECT_EQ(Stats.ForwardedOk, 10u);
  EXPECT_EQ(Stats.Unavailable, 0u);
  EXPECT_EQ(Stats.Failovers, 0u);
}

TEST(GatewayTest, HealthAggregatesTheFleet) {
  GatewayFixture Fixture;
  ASSERT_TRUE(Fixture.Gate->listening()) << Fixture.Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
  WireRequest Health;
  Health.TheOp = WireRequest::Op::Health;
  std::optional<std::string> Line = Client.request(Health);
  ASSERT_TRUE(Line.has_value());
  std::optional<JsonValue> Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value()) << *Line;
  EXPECT_EQ(Doc->getString("status"), "ok");
  EXPECT_EQ(Doc->getString("role"), "gateway");
  EXPECT_EQ(Doc->getInt("backends_total", 0), 2);
  EXPECT_EQ(Doc->getInt("backends_healthy", 0), 2);
  const JsonValue *Backends = Doc->get("backends");
  ASSERT_NE(Backends, nullptr);
  ASSERT_EQ(Backends->Items.size(), 2u);
  // The initial probe recorded every worker's bundle revision.
  for (const JsonValue &Backend : Backends->Items) {
    EXPECT_TRUE(Backend.getBool("healthy", false));
    EXPECT_FALSE(Backend.getString("bundle_checksum").empty());
  }

  WireRequest Stats;
  Stats.TheOp = WireRequest::Op::Stats;
  Line = Client.request(Stats);
  ASSERT_TRUE(Line.has_value());
  Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value()) << *Line;
  EXPECT_EQ(Doc->getString("role"), "gateway");
  EXPECT_EQ(Doc->getInt("overloaded", -1), 0);
  EXPECT_EQ(Doc->getInt("in_flight", -1), 0);
}

TEST(GatewayTest, FailsOverWhenAWorkerDiesAndReportsDegraded) {
  GatewayFixture Fixture;
  ASSERT_TRUE(Fixture.Gate->listening()) << Fixture.Error;

  // Kill worker 0 (drain, socket gone).
  Fixture.Workers[0]->requestStop();
  Fixture.WorkerThreads[0].join();

  // Every request must still be answered ok by the surviving worker —
  // including the ones whose home shard just died.
  ServeClient Client;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
  for (int I = 0; I < 20; ++I) {
    WireRequest Predict;
    Predict.TheOp = WireRequest::Op::Predict;
    // Distinct loops (varying trip count) spread across both shards.
    std::string Text = LoopA;
    size_t At = Text.find("trip=1024");
    Text.replace(At, 9, "trip=" + std::to_string(64 + I));
    Predict.LoopText = Text;
    std::optional<std::string> Line = Client.request(Predict);
    ASSERT_TRUE(Line.has_value());
    std::optional<JsonValue> Doc = parseJson(*Line);
    ASSERT_TRUE(Doc.has_value());
    EXPECT_EQ(Doc->getString("status"), "ok") << *Line;
  }

  GatewayStatsSnapshot Stats = Fixture.Gate->stats();
  EXPECT_EQ(Stats.Unavailable, 0u);
  EXPECT_EQ(Stats.ForwardedOk, 20u);

  // The health checker marks the dead worker down within its cadence.
  bool Degraded = false;
  ServeClient Probe;
  ASSERT_TRUE(Probe.connectWithRetry(Fixture.Path, 2000));
  for (int I = 0; I < 100 && !Degraded; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    WireRequest Health;
    Health.TheOp = WireRequest::Op::Health;
    std::optional<std::string> Line = Probe.request(Health);
    ASSERT_TRUE(Line.has_value());
    std::optional<JsonValue> Doc = parseJson(*Line);
    ASSERT_TRUE(Doc.has_value());
    Degraded = Doc->getString("status") == "degraded" &&
               Doc->getInt("backends_healthy", 0) == 1;
  }
  EXPECT_TRUE(Degraded);
}

TEST(GatewayTest, ShutdownOpDrainsTheGatewayOnly) {
  GatewayFixture Fixture;
  ASSERT_TRUE(Fixture.Gate->listening()) << Fixture.Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectWithRetry(Fixture.Path, 2000));
  WireRequest Shutdown;
  Shutdown.TheOp = WireRequest::Op::Shutdown;
  std::optional<std::string> Line = Client.request(Shutdown);
  ASSERT_TRUE(Line.has_value());
  std::optional<JsonValue> Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("status"), "ok");
  Client.close();

  if (Fixture.GatewayThread.joinable())
    Fixture.GatewayThread.join();
  EXPECT_TRUE(Fixture.Ok) << Fixture.Error;

  // The workers are untouched: a direct connection still predicts.
  ServeClient Direct;
  ASSERT_TRUE(Direct.connectWithRetry(Fixture.Addresses[1], 2000));
  WireRequest Predict;
  Predict.TheOp = WireRequest::Op::Predict;
  Predict.LoopText = LoopB;
  Line = Direct.request(Predict);
  ASSERT_TRUE(Line.has_value());
  Doc = parseJson(*Line);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->getString("status"), "ok");
}
