//===- tests/analysis_test.cpp - Unit tests for src/analysis --------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "analysis/CriticalPath.h"
#include "analysis/DependenceGraph.h"
#include "analysis/Latency.h"
#include "analysis/Liveness.h"
#include "analysis/Recurrence.h"
#include "ir/LoopBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

bool hasEdge(const DependenceGraph &DG, uint32_t Src, uint32_t Dst,
             DepKind Kind, uint32_t Distance) {
  for (const DepEdge &Edge : DG.edges())
    if (Edge.Src == Src && Edge.Dst == Dst && Edge.Kind == Kind &&
        Edge.Distance == Distance)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Register dependences
//===----------------------------------------------------------------------===//

TEST(DependenceGraphTest, IntraIterationFlow) {
  LoopBuilder B("flow", SourceLanguage::C, 1, 16);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8}); // node 0
  RegId Y = B.fadd(X, X);                                  // node 1
  B.store(Y, {1, 8, 0, false, 8});                         // node 2
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_TRUE(hasEdge(DG, 0, 1, DepKind::Data, 0));
  EXPECT_TRUE(hasEdge(DG, 1, 2, DepKind::Data, 0));
}

TEST(DependenceGraphTest, PhiCreatesCarriedDataEdge) {
  LoopBuilder B("red", SourceLanguage::C, 1, 16);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8}); // node 0
  RegId Next = B.fadd(Acc, X);                             // node 1
  B.setPhiRecur(Acc, Next);
  Loop L = B.finalize();
  DependenceGraph DG(L);
  // fadd (node 1) produces the value its own next-iteration copy reads.
  EXPECT_TRUE(hasEdge(DG, 1, 1, DepKind::Data, 1));
}

TEST(DependenceGraphTest, PredicateIsADependence) {
  LoopBuilder B("guard", SourceLanguage::C, 1, 16);
  RegId T = B.liveIn(RegClass::Float, "t");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8}); // node 0
  RegId C = B.fcmp(X, T);                                  // node 1
  B.setPredicate(C);
  B.store(X, {1, 8, 0, false, 8}); // node 2 (guarded).
  B.clearPredicate();
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_TRUE(hasEdge(DG, 1, 2, DepKind::Data, 0));
}

//===----------------------------------------------------------------------===//
// Memory dependences
//===----------------------------------------------------------------------===//

TEST(DependenceGraphTest, SameAddressStoreLoad) {
  LoopBuilder B("mem", SourceLanguage::C, 1, 16);
  RegId V = B.load(RegClass::Float, {0, 8, 0, false, 8}); // node 0
  B.store(V, {1, 8, 0, false, 8});                         // node 1
  RegId W = B.load(RegClass::Float, {1, 8, 0, false, 8}); // node 2
  B.store(W, {2, 8, 0, false, 8});                         // node 3
  Loop L = B.finalize();
  DependenceGraph DG(L);
  // Store @1 then load @1, same address: intra-iteration dependence.
  EXPECT_TRUE(hasEdge(DG, 1, 2, DepKind::Memory, 0));
  // Distinct base symbols never conflict.
  EXPECT_FALSE(hasEdge(DG, 0, 1, DepKind::Memory, 0));
}

TEST(DependenceGraphTest, CarriedDistanceFromOffsets) {
  // store y[i] (offset 0); load y[i-1] (offset -8): the load at iteration
  // i+1 reads what the store wrote at iteration i -> distance 1.
  LoopBuilder B("iir", SourceLanguage::C, 1, 16);
  RegId Prev = B.load(RegClass::Float, {1, 8, -8, false, 8}); // node 0
  RegId Next = B.fadd(Prev, Prev);                             // node 1
  B.store(Next, {1, 8, 0, false, 8});                          // node 2
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_TRUE(hasEdge(DG, 2, 0, DepKind::Memory, 1));
  EXPECT_EQ(DG.minCarriedMemoryDistance(), 1u);
}

TEST(DependenceGraphTest, LargerCarriedDistance) {
  LoopBuilder B("lag4", SourceLanguage::C, 1, 64);
  RegId Prev = B.load(RegClass::Float, {1, 8, -32, false, 8});
  B.store(B.fadd(Prev, Prev), {1, 8, 0, false, 8});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_EQ(DG.minCarriedMemoryDistance(), 4u);
}

TEST(DependenceGraphTest, InterleavedStreamsDoNotConflict) {
  // Even and odd elements of one array: offsets differ by 8 with stride
  // 16 and size 8; never the same address.
  LoopBuilder B("evenodd", SourceLanguage::C, 1, 64);
  RegId E = B.load(RegClass::Float, {0, 16, 0, false, 8});
  B.store(E, {0, 16, 8, false, 8});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_EQ(DG.numMemoryDeps(), 0u);
}

TEST(DependenceGraphTest, IndirectIsConservative) {
  LoopBuilder B("hist", SourceLanguage::C, 1, 64);
  RegId Index = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Count = B.load(RegClass::Int, {1, 0, 0, true, 8}, Index); // node 1
  RegId One = B.iconst(1);
  RegId Sum = B.iadd(Count, One);
  B.store(Sum, {1, 0, 0, true, 8}, Index); // node 4
  Loop L = B.finalize();
  DependenceGraph DG(L);
  // Conservative: load-store same-iteration ordering and carried reverse.
  EXPECT_TRUE(hasEdge(DG, 1, 4, DepKind::Memory, 0));
  EXPECT_TRUE(hasEdge(DG, 4, 1, DepKind::Memory, 1));
}

TEST(DependenceGraphTest, TwoLoadsNeverConflict) {
  LoopBuilder B("loads", SourceLanguage::C, 1, 64);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId C = B.load(RegClass::Float, {0, 8, -8, false, 8});
  B.store(B.fadd(A, C), {1, 8, 0, false, 8});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_FALSE(hasEdge(DG, 0, 1, DepKind::Memory, 0));
  EXPECT_FALSE(hasEdge(DG, 1, 0, DepKind::Memory, 1));
}

//===----------------------------------------------------------------------===//
// Control dependences
//===----------------------------------------------------------------------===//

TEST(DependenceGraphTest, ExitOrdersSideEffects) {
  LoopBuilder B("exits", SourceLanguage::C, 1, 64);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4}); // node 0
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  RegId C = B.icmp(V, Lim); // node 1
  B.exitIf(C, 0.01);        // node 2
  B.store(V, {1, 4, 0, false, 4}); // node 3
  Loop L = B.finalize();
  DependenceGraph DG(L);
  // The store after the exit must not move above it (not speculatable).
  bool Found = false;
  for (const DepEdge &Edge : DG.edges())
    if (Edge.Src == 2 && Edge.Dst == 3 && Edge.Kind == DepKind::Control &&
        !Edge.Speculatable)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(DependenceGraphTest, PureOpsAfterExitAreSpeculatable) {
  LoopBuilder B("spec", SourceLanguage::C, 1, 64);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.01); // node 2
  RegId W = B.iadd(V, V);          // node 3 (pure).
  B.store(W, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  bool FoundSpeculatable = false;
  for (const DepEdge &Edge : DG.edges())
    if (Edge.Src == 2 && Edge.Dst == 3 && Edge.Kind == DepKind::Control)
      FoundSpeculatable = Edge.Speculatable;
  EXPECT_TRUE(FoundSpeculatable);
}

TEST(DependenceGraphTest, CallSerializesAcrossIterations) {
  LoopBuilder B("call", SourceLanguage::C, 1, 64);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.call({X}); // node 1
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_TRUE(hasEdge(DG, 1, 1, DepKind::Control, 1));
}

//===----------------------------------------------------------------------===//
// Critical path and computations
//===----------------------------------------------------------------------===//

TEST(CriticalPathTest, ChainLatenciesAdd) {
  LoopBuilder B("chain", SourceLanguage::C, 1, 16);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId M = B.fmul(X, X);
  RegId A = B.fadd(M, X);
  B.store(A, {1, 8, 0, false, 8});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  // load(3) -> fmul(4) -> fadd(4) -> store(1): at least 12 cycles.
  int Path = criticalPathLatency(L, DG);
  EXPECT_GE(Path, defaultLatency(Opcode::Load) +
                      defaultLatency(Opcode::FMul) +
                      defaultLatency(Opcode::FAdd));
}

TEST(CriticalPathTest, IndependentStreamsAreParallelComputations) {
  LoopBuilder B("par", SourceLanguage::C, 1, 16);
  for (int Stream = 0; Stream < 3; ++Stream) {
    RegId X = B.load(RegClass::Float,
                     {static_cast<int32_t>(2 * Stream), 8, 0, false, 8});
    B.store(B.fadd(X, X),
            {static_cast<int32_t>(2 * Stream + 1), 8, 0, false, 8});
  }
  Loop L = B.finalize();
  DependenceGraph DG(L);
  ComputationInfo Info = analyzeComputations(L, DG);
  EXPECT_EQ(Info.NumComputations, 3u);
  EXPECT_GT(Info.MaxHeight, 0);
  EXPECT_GT(Info.AvgHeight, 0.0);
}

TEST(CriticalPathTest, FanInCountsDataPredecessors) {
  LoopBuilder B("fan", SourceLanguage::C, 1, 16);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId C = B.load(RegClass::Float, {1, 8, 0, false, 8});
  RegId D = B.load(RegClass::Float, {2, 8, 0, false, 8});
  RegId F = B.fma(A, C, D); // Three data inputs.
  B.store(F, {3, 8, 0, false, 8});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  ComputationInfo Info = analyzeComputations(L, DG);
  EXPECT_GE(Info.MaxFanIn, 3);
}

TEST(CriticalPathTest, MemoryHeightTracksMemoryChains) {
  LoopBuilder B("memchain", SourceLanguage::C, 1, 16);
  RegId V = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(V, {1, 8, 0, false, 8});
  RegId W = B.load(RegClass::Float, {1, 8, 0, false, 8}); // Depends on store.
  B.store(W, {2, 8, 0, false, 8});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  ComputationInfo Info = analyzeComputations(L, DG);
  EXPECT_GT(Info.MaxMemoryHeight, defaultLatency(Opcode::Load));
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(LivenessTest, CountsLiveInsOnce) {
  LoopBuilder B("livein", SourceLanguage::C, 1, 16);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(B.fma(Alpha, X, X), {1, 8, 0, false, 8});
  Loop L = B.finalize();
  LivenessInfo Info = analyzeLiveness(L);
  EXPECT_EQ(Info.NumLiveIn, 1u);
  EXPECT_GE(Info.MaxLiveFloat, 1u);
}

TEST(LivenessTest, PhiRecurLivesAcrossBackedge) {
  LoopBuilder B("red", SourceLanguage::C, 1, 16);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPhiRecur(Acc, B.fadd(Acc, X));
  Loop L = B.finalize();
  LivenessInfo Info = analyzeLiveness(L);
  EXPECT_EQ(Info.NumAcrossBack, 1u);
}

TEST(LivenessTest, MoreConcurrentValuesRaiseMaxLive) {
  auto Build = [](int Streams) {
    LoopBuilder B("width", SourceLanguage::C, 1, 16);
    std::vector<RegId> Loaded;
    for (int S = 0; S < Streams; ++S)
      Loaded.push_back(B.load(RegClass::Float,
                              {static_cast<int32_t>(S), 8, 0, false, 8}));
    // Sum everything at the end so all values stay live.
    RegId Sum = Loaded[0];
    for (int S = 1; S < Streams; ++S)
      Sum = B.fadd(Sum, Loaded[S]);
    B.store(Sum, {100, 8, 0, false, 8});
    return B.finalize();
  };
  LivenessInfo Narrow = analyzeLiveness(Build(2));
  LivenessInfo Wide = analyzeLiveness(Build(8));
  EXPECT_GT(Wide.MaxLiveFloat, Narrow.MaxLiveFloat);
}

TEST(LivenessTest, HonorsCustomOrder) {
  // Ordering all loads first raises peak pressure versus load-use pairs.
  LoopBuilder B("order", SourceLanguage::C, 1, 16);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8}); // 0
  B.store(A, {1, 8, 0, false, 8});                         // 1
  RegId C = B.load(RegClass::Float, {2, 8, 0, false, 8}); // 2
  B.store(C, {3, 8, 0, false, 8});                         // 3
  Loop L = B.finalize();
  size_t N = L.body().size();
  std::vector<uint32_t> Interleaved = {0, 2, 1, 3};
  for (uint32_t I = 4; I < N; ++I)
    Interleaved.push_back(I);
  LivenessInfo Paired = analyzeLiveness(L);
  LivenessInfo Bunched = analyzeLiveness(L, Interleaved);
  EXPECT_GE(Bunched.MaxLiveFloat, Paired.MaxLiveFloat);
}

//===----------------------------------------------------------------------===//
// Recurrence MII
//===----------------------------------------------------------------------===//

TEST(RecurrenceTest, NoRecurrenceGivesOne) {
  LoopBuilder B("stream", SourceLanguage::C, 1, 16);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(X, {1, 8, 0, false, 8});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_DOUBLE_EQ(recurrenceMII(L, DG), 1.0);
}

TEST(RecurrenceTest, AccumulatorBoundByOpLatency) {
  LoopBuilder B("acc", SourceLanguage::C, 1, 16);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPhiRecur(Acc, B.fadd(Acc, X));
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_GE(recurrenceMII(L, DG), double(defaultLatency(Opcode::FAdd)));
}

TEST(RecurrenceTest, LongerChainsRaiseMii) {
  auto Build = [](int ChainLength) {
    LoopBuilder B("chain", SourceLanguage::C, 1, 16);
    RegId Acc = B.phi(RegClass::Float, "acc");
    RegId Value = Acc;
    for (int I = 0; I < ChainLength; ++I)
      Value = B.fadd(Value, Value);
    B.setPhiRecur(Acc, Value);
    return B.finalize();
  };
  Loop Short = Build(1);
  Loop Long = Build(3);
  DependenceGraph DgShort(Short), DgLong(Long);
  EXPECT_GT(recurrenceMII(Long, DgLong), recurrenceMII(Short, DgShort));
}

TEST(RecurrenceTest, MemoryCarriedDistanceDividesLatency) {
  // Distance-4 memory recurrence: latency spread over 4 iterations.
  LoopBuilder B("lag", SourceLanguage::C, 1, 64);
  RegId Prev = B.load(RegClass::Float, {1, 8, -32, false, 8});
  B.store(B.fadd(Prev, Prev), {1, 8, 0, false, 8});
  Loop LagFour = B.finalize();

  LoopBuilder B1("lag1", SourceLanguage::C, 1, 64);
  RegId Prev1 = B1.load(RegClass::Float, {1, 8, -8, false, 8});
  B1.store(B1.fadd(Prev1, Prev1), {1, 8, 0, false, 8});
  Loop LagOne = B1.finalize();

  DependenceGraph Dg4(LagFour), Dg1(LagOne);
  EXPECT_LT(recurrenceMII(LagFour, Dg4), recurrenceMII(LagOne, Dg1));
}

TEST(RecurrenceTest, CustomLatencyFunctionUsed) {
  LoopBuilder B("acc", SourceLanguage::C, 1, 16);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPhiRecur(Acc, B.fadd(Acc, X));
  Loop L = B.finalize();
  DependenceGraph DG(L);
  double Slow = recurrenceMII(L, DG, [](Opcode) { return 10; });
  double Fast = recurrenceMII(L, DG, [](Opcode) { return 1; });
  EXPECT_GT(Slow, Fast);
}
