//===- tests/interp_test.cpp - Reference interpreter unit tests -----------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Hand-computed traces through exec/Interpreter.h — the semantic ground
// truth the differential fuzzer compares transforms against, so these
// tests pin its own behaviour independently: arithmetic, predication,
// phi rotation, memory aliasing and narrowing, boundary trip counts,
// early exits, split-reduction lanes, and a golden digest over a corpus
// sample (the cross-platform determinism canary).
//
//===----------------------------------------------------------------------===//

#include "corpus/BenchmarkSuite.h"
#include "exec/Interpreter.h"
#include "ir/LoopBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace metaopt;

namespace {

ExecValue intVal(int64_t Value) { return execInt(Value); }

/// acc = acc + step, trip iterations, everything pinned via overrides.
TEST(InterpTest, IntAccumulationHandTrace) {
  LoopBuilder B("acc", SourceLanguage::C, 1, 5);
  RegId Acc = B.phi(RegClass::Int, "acc");
  RegId Step = B.liveIn(RegClass::Int, "step");
  RegId Next = B.iadd(Acc, Step);
  B.setPhiRecur(Acc, Next);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(100);
  Opts.LiveInOverrides[Step] = intVal(7);
  ExecResult R = interpretLoop(L, Opts);

  EXPECT_EQ(R.IterationsExecuted, 5);
  EXPECT_FALSE(R.Exited);
  EXPECT_EQ(R.PhiFinal[0].I, 100 + 5 * 7);
}

TEST(InterpTest, WrappingAndDivisionEdgeCases) {
  LoopBuilder B("edges", SourceLanguage::C, 1, 1);
  RegId Min = B.liveIn(RegClass::Int, "min");
  RegId NegOne = B.iconst(-1);
  RegId Zero = B.iconst(0);
  RegId X = B.liveIn(RegClass::Int, "x");
  RegId DivTrap = B.phi(RegClass::Int, "divtrap");
  B.setPhiRecur(DivTrap, B.idiv(Min, NegOne)); // INT_MIN / -1
  RegId RemTrap = B.phi(RegClass::Int, "remtrap");
  B.setPhiRecur(RemTrap, B.irem(X, Zero)); // x % 0
  RegId DivZero = B.phi(RegClass::Int, "divzero");
  B.setPhiRecur(DivZero, B.idiv(X, Zero)); // x / 0
  RegId Wrap = B.phi(RegClass::Int, "wrap");
  B.setPhiRecur(Wrap, B.imul(Min, NegOne)); // -INT_MIN wraps
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  int64_t IntMin = INT64_MIN;
  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(0);
  Opts.LiveInOverrides[L.phis()[1].Init] = intVal(0);
  Opts.LiveInOverrides[L.phis()[2].Init] = intVal(0);
  Opts.LiveInOverrides[L.phis()[3].Init] = intVal(0);
  Opts.LiveInOverrides[Min] = intVal(IntMin);
  Opts.LiveInOverrides[X] = intVal(41);
  ExecResult R = interpretLoop(L, Opts);

  EXPECT_EQ(R.PhiFinal[0].I, IntMin); // INT_MIN / -1 = INT_MIN
  EXPECT_EQ(R.PhiFinal[1].I, 41);     // x % 0 = x
  EXPECT_EQ(R.PhiFinal[2].I, 0);      // x / 0 = 0
  EXPECT_EQ(R.PhiFinal[3].I, IntMin); // -INT_MIN wraps to itself
}

/// A predicated-off instruction writes the class default (0), not the
/// stale previous-iteration value — the property that makes the
/// unroller's register renaming sound.
TEST(InterpTest, PredicatedOffWritesDefault) {
  LoopBuilder B("pred", SourceLanguage::C, 1, 4);
  RegId Acc = B.phi(RegClass::Int, "acc");
  RegId A = B.liveIn(RegClass::Int, "a");
  RegId BV = B.liveIn(RegClass::Int, "b");
  RegId P = B.icmp(A, BV); // a < b
  B.setPredicate(P);
  RegId Guarded = B.iadd(A, BV); // off when a >= b -> writes 0
  B.clearPredicate();
  RegId Next = B.iadd(Acc, Guarded);
  B.setPhiRecur(Acc, Next);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(5);
  Opts.LiveInOverrides[A] = intVal(9);
  Opts.LiveInOverrides[BV] = intVal(3); // 9 < 3 false -> predicate off
  ExecResult Off = interpretLoop(L, Opts);
  EXPECT_EQ(Off.PhiFinal[0].I, 5); // acc += 0 four times

  Opts.LiveInOverrides[BV] = intVal(30); // predicate on
  ExecResult On = interpretLoop(L, Opts);
  EXPECT_EQ(On.PhiFinal[0].I, 5 + 4 * (9 + 30));
}

/// a = [a0, b], b = [b0, t], t = b + s: two-stage rotation delays each
/// value by one iteration through a.
TEST(InterpTest, PhiRotationHandTrace) {
  LoopBuilder B("rot", SourceLanguage::C, 1, 3);
  RegId A = B.phi(RegClass::Int, "a");
  RegId Bv = B.phi(RegClass::Int, "b");
  RegId S = B.liveIn(RegClass::Int, "s");
  RegId T = B.iadd(Bv, S);
  B.setPhiRecur(A, Bv);
  B.setPhiRecur(Bv, T);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(-1);
  Opts.LiveInOverrides[L.phis()[1].Init] = intVal(10);
  Opts.LiveInOverrides[S] = intVal(100);
  ExecResult R = interpretLoop(L, Opts);

  // iter 0: a=-1  b=10  -> a'=10,  b'=110
  // iter 1: a=10  b=110 -> a'=110, b'=210
  // iter 2: a=110 b=210 -> a'=210, b'=310
  EXPECT_EQ(R.PhiFinal[0].I, 210);
  EXPECT_EQ(R.PhiFinal[1].I, 310);
}

/// Rotation reads all recurrences before writing any destination: a
/// swap (a = [.., b], b = [.., a]) must not see half-updated state.
TEST(InterpTest, PhiSwapIsSimultaneous) {
  LoopBuilder B("swap", SourceLanguage::C, 1, 3);
  RegId A = B.phi(RegClass::Int, "a");
  RegId Bv = B.phi(RegClass::Int, "b");
  B.setPhiRecur(A, Bv);
  B.setPhiRecur(Bv, A);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(1);
  Opts.LiveInOverrides[L.phis()[1].Init] = intVal(2);
  ExecResult R = interpretLoop(L, Opts);
  // Three swaps: (1,2) -> (2,1) -> (1,2) -> (2,1).
  EXPECT_EQ(R.PhiFinal[0].I, 2);
  EXPECT_EQ(R.PhiFinal[1].I, 1);
}

/// Store/load composition: an 8-byte store partially clobbered by a
/// 4-byte store composes per byte (little-endian); narrow loads
/// sign-extend.
TEST(InterpTest, MemoryAliasingAndNarrowing) {
  LoopBuilder B("alias", SourceLanguage::C, 1, 1);
  RegId Wide = B.liveIn(RegClass::Int, "wide");
  RegId Narrow = B.liveIn(RegClass::Int, "narrow");
  B.store(Wide, {0, 0, 0, false, 8});
  B.store(Narrow, {0, 0, 4, false, 4}); // clobber upper half
  RegId Composite = B.phi(RegClass::Int, "composite");
  B.setPhiRecur(Composite, B.load(RegClass::Int, {0, 0, 0, false, 8}));
  RegId SignExt = B.phi(RegClass::Int, "signext");
  B.setPhiRecur(SignExt, B.load(RegClass::Int, {0, 0, 4, false, 4}));
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(0);
  Opts.LiveInOverrides[L.phis()[1].Init] = intVal(0);
  Opts.LiveInOverrides[Wide] = intVal(0x1111222233334444LL);
  Opts.LiveInOverrides[Narrow] = intVal(-2); // 0xfffffffe
  ExecResult R = interpretLoop(L, Opts);

  // Bytes 0..3 from the wide store, bytes 4..7 from the narrow one.
  EXPECT_EQ(static_cast<uint64_t>(R.PhiFinal[0].I), 0xfffffffe33334444ULL);
  EXPECT_EQ(R.PhiFinal[1].I, -2); // narrow load sign-extends
}

/// Float narrow round-trip: a 4-byte store truncates to float precision.
TEST(InterpTest, FloatNarrowStoreTruncates) {
  LoopBuilder B("ftrunc", SourceLanguage::C, 1, 1);
  RegId V = B.liveIn(RegClass::Float, "v");
  B.store(V, {0, 0, 0, false, 4});
  RegId Back = B.phi(RegClass::Float, "back");
  B.setPhiRecur(Back, B.load(RegClass::Float, {0, 0, 0, false, 4}));
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  double Value = 1.1; // not exactly float-representable
  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = execFloat(0.0);
  Opts.LiveInOverrides[V] = execFloat(Value);
  ExecResult R = interpretLoop(L, Opts);
  EXPECT_EQ(R.PhiFinal[0].F, static_cast<double>(static_cast<float>(Value)));
  EXPECT_NE(R.PhiFinal[0].F, Value);
}

TEST(InterpTest, BoundaryTripCounts) {
  for (int64_t Trip : {int64_t{0}, int64_t{1}, int64_t{7}}) {
    LoopBuilder B("trip", SourceLanguage::C, 1, Trip);
    RegId Acc = B.phi(RegClass::Int, "acc");
    RegId One = B.iconst(1);
    B.setPhiRecur(Acc, B.iadd(Acc, One));
    Loop L = B.finalize();

    ExecOptions Opts;
    Opts.LiveInOverrides[L.phis()[0].Init] = intVal(0);
    ExecResult R = interpretLoop(L, Opts);
    EXPECT_EQ(R.IterationsExecuted, Trip);
    EXPECT_EQ(R.PhiFinal[0].I, Trip); // init untouched at trip 0
  }
}

/// Early exit fires the first iteration the counter passes the bound;
/// the exiting iteration does not count as executed.
TEST(InterpTest, EarlyExitIterationAndBodyIndex) {
  LoopBuilder B("exit", SourceLanguage::C, 1, 100);
  RegId C = B.phi(RegClass::Int, "c");
  RegId One = B.iconst(1);
  RegId Next = B.iadd(C, One);
  B.setPhiRecur(C, Next);
  RegId Bound = B.liveIn(RegClass::Int, "bound");
  RegId Hit = B.icmp(Bound, Next); // bound < c+1
  B.exitIf(Hit, 0.01);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  ExecOptions Opts;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(0);
  Opts.LiveInOverrides[Bound] = intVal(3);
  ExecResult R = interpretLoop(L, Opts);
  ASSERT_TRUE(R.Exited);
  // c+1 reaches 4 > 3 on the fourth iteration (local index 3).
  EXPECT_EQ(R.ExitIteration, 3);
  EXPECT_EQ(R.ExitBodyIndex, 3); // iconst, iadd, icmp, exit_if
  EXPECT_EQ(R.IterationsExecuted, 3);
}

/// SplitLanes=U carries a splittable reduction as U accumulators:
/// lane k sums the iterations with i mod U == k, lane 0 from the init,
/// others from the identity.
TEST(InterpTest, SplitLanesPartitionIterations) {
  LoopBuilder B("lanes", SourceLanguage::C, 1, 7);
  RegId Acc = B.phi(RegClass::Int, "acc");
  RegId IvReg = B.liveIn(RegClass::Int, "n");
  RegId Next = B.iadd(Acc, IvReg);
  B.setPhiRecur(Acc, Next);
  Loop L = B.finalize();

  ExecOptions Opts;
  Opts.SplitLanes = 3;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(1000);
  Opts.LiveInOverrides[IvReg] = intVal(1);
  ExecResult R = interpretLoop(L, Opts);

  ASSERT_EQ(R.SplitLanes.size(), 1u);
  ASSERT_EQ(R.SplitLanes[0].size(), 3u);
  EXPECT_EQ(R.SplitLanes[0][0].I, 1000 + 3); // iterations 0,3,6
  EXPECT_EQ(R.SplitLanes[0][1].I, 2);        // iterations 1,4
  EXPECT_EQ(R.SplitLanes[0][2].I, 2);        // iterations 2,5
}

/// StartIteration shifts the symbolic addresses: iteration i touches
/// offset Stride * (Start + i).
TEST(InterpTest, StartIterationShiftsAddresses) {
  LoopBuilder B("shift", SourceLanguage::C, 1, 2);
  RegId V = B.liveIn(RegClass::Int, "v");
  B.store(V, {0, 8, 0, false, 8});
  Loop L = B.finalize();

  ExecOptions Opts;
  Opts.StartIteration = 5;
  Opts.LiveInOverrides[V] = intVal(42);
  ExecResult R = interpretLoop(L, Opts);
  auto Stored = R.Memory.storedBytes();
  ASSERT_EQ(Stored.size(), 16u); // two 8-byte elements
  // Iterations 5 and 6 -> byte addresses 40..47 and 48..55.
  EXPECT_EQ(Stored.begin()->first.second, 40);
  EXPECT_EQ(Stored.rbegin()->first.second, 55);
}

/// Same seed, same result — different seed, different live-ins. The
/// digest is a pure function of the observable state.
TEST(InterpTest, SeedDeterminism) {
  LoopBuilder B("det", SourceLanguage::C, 1, 9);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPhiRecur(Acc, B.fadd(Acc, X));
  Loop L = B.finalize();

  ExecOptions Opts;
  Opts.Seed = 123;
  Fingerprint D1 = interpretLoop(L, Opts).digest(L);
  Fingerprint D2 = interpretLoop(L, Opts).digest(L);
  EXPECT_EQ(D1, D2);
  Opts.Seed = 124;
  EXPECT_NE(interpretLoop(L, Opts).digest(L), D1);
}

/// Golden digests over the shipped corpus sample: any change to live-in
/// synthesis, first-touch memory, FP canonicalization, or digest layout
/// shows up here before it silently invalidates fuzz seeds.
TEST(InterpTest, CorpusGoldenDigests) {
  std::vector<Benchmark> Corpus = buildCorpus();
  ASSERT_FALSE(Corpus.empty());
  ASSERT_FALSE(Corpus[0].Loops.empty());

  FingerprintHasher H;
  unsigned Sampled = 0;
  for (const Benchmark &Bench : Corpus) {
    for (const CorpusLoop &CL : Bench.Loops) {
      if (Sampled >= 8)
        break;
      // Cap the interpreted work: corpus runtime trip counts reach the
      // millions, which is the simulator's job, not the interpreter's.
      Loop L = CL.TheLoop;
      if (L.runtimeTripCount() > 64)
        L.hasKnownTripCount() ? L.setTripCount(64)
                              : L.setRuntimeTripCount(64);
      Fingerprint D = interpretLoop(L, {}).digest(L);
      H.u64(D.Lo);
      H.u64(D.Hi);
      ++Sampled;
    }
    if (Sampled >= 8)
      break;
  }
  ASSERT_EQ(Sampled, 8u);
  Fingerprint Combined = H.digest();
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%016llx%016llx",
                static_cast<unsigned long long>(Combined.Hi),
                static_cast<unsigned long long>(Combined.Lo));
  EXPECT_STREQ(Buffer, "2b8ad46d3b9b5049919d28a67576f7aa");
}

} // namespace

TEST(InterpTest, TraceRecordsGuardsAddressesAndIntDests) {
  LoopBuilder B("trace", SourceLanguage::C, 1, 3);
  RegId One = B.iconst(1);
  RegId Two = B.iconst(2);
  RegId Dead = B.icmp(Two, One); // 2 < 1: false every iteration.
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPredicate(Dead);
  B.store(X, {1, 8, 0, false, 8});
  B.clearPredicate();
  Loop L = B.finalize();

  ExecTrace Trace;
  ExecOptions Opts;
  Opts.Trace = &Trace;
  interpretLoop(L, Opts);

  // Every body instruction of every iteration is recorded, in order.
  ASSERT_EQ(Trace.Steps.size(), 3 * L.body().size());
  for (int64_t Iter = 0; Iter < 3; ++Iter) {
    size_t Base = static_cast<size_t>(Iter) * L.body().size();
    const ExecTraceStep &Const = Trace.Steps[Base + 0];
    EXPECT_EQ(Const.Iteration, Iter);
    EXPECT_TRUE(Const.GuardOn);
    EXPECT_TRUE(Const.HasIntDest);
    EXPECT_EQ(Const.IntDest, 1);
    EXPECT_FALSE(Const.IsMemory);

    const ExecTraceStep &Ld = Trace.Steps[Base + 3];
    EXPECT_TRUE(Ld.GuardOn);
    EXPECT_TRUE(Ld.IsMemory);
    EXPECT_EQ(Ld.Address, 8 * Iter); // Offset 0, stride 8.
    EXPECT_FALSE(Ld.HasIntDest);     // Float destination.

    const ExecTraceStep &St = Trace.Steps[Base + 4];
    EXPECT_FALSE(St.GuardOn); // Predicated off every iteration.
    EXPECT_FALSE(St.IsMemory);
  }
}

TEST(InterpTest, TraceStopsAtEarlyExit) {
  LoopBuilder B("traceexit", SourceLanguage::C, 1, 10);
  RegId C = B.phi(RegClass::Int, "c");
  RegId One = B.iconst(1);
  RegId Next = B.iadd(C, One);
  B.setPhiRecur(C, Next);
  RegId Bound = B.liveIn(RegClass::Int, "bound");
  RegId Hit = B.icmp(Bound, Next); // bound < c+1
  B.exitIf(Hit, 0.1);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(X, {1, 8, 0, false, 8});
  Loop L = B.finalize();

  ExecTrace Trace;
  ExecOptions Opts;
  Opts.Trace = &Trace;
  Opts.LiveInOverrides[L.phis()[0].Init] = intVal(0);
  Opts.LiveInOverrides[Bound] = intVal(3);
  ExecResult R = interpretLoop(L, Opts);
  ASSERT_TRUE(R.Exited);
  // The firing ExitIf is the last recorded step; nothing after it ran.
  ASSERT_FALSE(Trace.Steps.empty());
  const ExecTraceStep &Last = Trace.Steps.back();
  EXPECT_EQ(Last.BodyIndex, static_cast<uint32_t>(R.ExitBodyIndex));
  EXPECT_EQ(Last.Iteration, R.ExitIteration);
}
