//===- tests/transform_test.cpp - Unit tests for src/transform ------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "corpus/LoopGenerators.h"
#include "ir/LoopBuilder.h"
#include "ir/Verifier.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

Loop makeDaxpy(int64_t Trip = 1024) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, Trip);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  MemRef X{0, 8, 0, false, 8};
  MemRef Y{1, 8, 0, false, 8};
  RegId Xv = B.load(RegClass::Float, X);
  RegId Yv = B.load(RegClass::Float, Y);
  B.store(B.fma(Alpha, Xv, Yv), Y);
  return B.finalize();
}

Loop makeReduction() {
  LoopBuilder B("dot", SourceLanguage::Fortran, 1, 512);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Y = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.setPhiRecur(Acc, B.fma(X, Y, Acc));
  return B.finalize();
}

/// Running value observed each iteration (prefix-sum store): must NOT be
/// reassociated by the unroller.
Loop makeObservedReduction() {
  LoopBuilder B("prefix", SourceLanguage::C, 1, 256);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Next = B.fadd(Acc, X);
  B.store(Next, {1, 8, 0, false, 8});
  B.setPhiRecur(Acc, Next);
  return B.finalize();
}

unsigned countOpcode(const Loop &L, Opcode Op) {
  unsigned Count = 0;
  for (const Instruction &Instr : L.body())
    Count += Instr.Op == Op;
  return Count;
}

} // namespace

//===----------------------------------------------------------------------===//
// Trip accounting
//===----------------------------------------------------------------------===//

TEST(UnrolledTripInfoTest, ExactDivision) {
  UnrolledTripInfo Info = unrolledTripInfo(1024, 4);
  EXPECT_EQ(Info.MainIterations, 256);
  EXPECT_EQ(Info.EpilogueIterations, 0);
}

TEST(UnrolledTripInfoTest, Remainder) {
  UnrolledTripInfo Info = unrolledTripInfo(100, 8);
  EXPECT_EQ(Info.MainIterations, 12);
  EXPECT_EQ(Info.EpilogueIterations, 4);
}

TEST(UnrolledTripInfoTest, TripSmallerThanFactor) {
  UnrolledTripInfo Info = unrolledTripInfo(3, 8);
  EXPECT_EQ(Info.MainIterations, 0);
  EXPECT_EQ(Info.EpilogueIterations, 3);
}

TEST(UnrolledTripInfoTest, WorkIsConserved) {
  for (int64_t Trip : {1, 7, 63, 64, 65, 1000}) {
    for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
      UnrolledTripInfo Info = unrolledTripInfo(Trip, Factor);
      EXPECT_EQ(Info.MainIterations * Factor + Info.EpilogueIterations,
                Trip);
    }
  }
}

//===----------------------------------------------------------------------===//
// Basic unrolling structure
//===----------------------------------------------------------------------===//

TEST(UnrollerTest, FactorOneIsACopy) {
  Loop L = makeDaxpy();
  Loop U = unrollLoop(L, 1);
  EXPECT_EQ(U.body().size(), L.body().size());
  EXPECT_EQ(U.tripCount(), L.tripCount());
  EXPECT_TRUE(isWellFormed(U));
}

TEST(UnrollerTest, BodyReplicationCount) {
  Loop L = makeDaxpy();
  size_t Payload = L.bodySizeWithoutControl();
  for (unsigned Factor = 2; Factor <= MaxUnrollFactor; ++Factor) {
    Loop U = unrollLoop(L, Factor);
    EXPECT_EQ(U.bodySizeWithoutControl(), Payload * Factor) << Factor;
    // Exactly one loop-control tail survives.
    EXPECT_EQ(countOpcode(U, Opcode::BackBr), 1u);
    EXPECT_EQ(countOpcode(U, Opcode::IvAdd), 1u);
  }
}

TEST(UnrollerTest, TripCountDivided) {
  Loop L = makeDaxpy(1000);
  Loop U = unrollLoop(L, 4);
  EXPECT_EQ(U.tripCount(), 250);
  EXPECT_EQ(U.runtimeTripCount(), 250);
}

TEST(UnrollerTest, UnknownTripStaysUnknown) {
  LoopBuilder B("wild", SourceLanguage::C, 1, Loop::UnknownTripCount);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  L.setRuntimeTripCount(103);
  Loop U = unrollLoop(L, 4);
  EXPECT_FALSE(U.hasKnownTripCount());
  EXPECT_EQ(U.runtimeTripCount(), 25); // floor(103/4).
}

//===----------------------------------------------------------------------===//
// Address rewriting
//===----------------------------------------------------------------------===//

TEST(UnrollerTest, AddressStrideAndOffsets) {
  Loop L = makeDaxpy();
  Loop U = unrollLoop(L, 4);
  // Collect the loads of base symbol 0 in copy order.
  std::vector<MemRef> Refs;
  for (const Instruction &Instr : U.body())
    if (Instr.isLoad() && Instr.Mem.BaseSym == 0)
      Refs.push_back(Instr.Mem);
  ASSERT_EQ(Refs.size(), 4u);
  for (unsigned Copy = 0; Copy < 4; ++Copy) {
    EXPECT_EQ(Refs[Copy].Stride, 32) << "copy " << Copy;
    EXPECT_EQ(Refs[Copy].Offset, 8 * Copy) << "copy " << Copy;
  }
}

TEST(UnrollerTest, AddressesCoverSameLocations) {
  // The union of addresses touched by the unrolled loop's first main
  // iteration must equal those of the first U original iterations:
  // {stride*i + offset : i in [0,U)} == {U*stride*0 + offset + stride*k}.
  Loop L = makeDaxpy();
  unsigned Factor = 8;
  Loop U = unrollLoop(L, Factor);
  std::vector<int64_t> Expected, Actual;
  for (unsigned I = 0; I < Factor; ++I)
    Expected.push_back(8 * I); // Original load @0: stride 8, offset 0.
  for (const Instruction &Instr : U.body())
    if (Instr.isLoad() && Instr.Mem.BaseSym == 0)
      Actual.push_back(Instr.Mem.Offset);
  std::sort(Actual.begin(), Actual.end());
  EXPECT_EQ(Actual, Expected);
}

//===----------------------------------------------------------------------===//
// Phi handling
//===----------------------------------------------------------------------===//

TEST(UnrollerTest, ReductionIsSplitIntoAccumulators) {
  Loop L = makeReduction();
  Loop U = unrollLoop(L, 4);
  // Reassociation: one independent accumulator per copy.
  EXPECT_EQ(U.phis().size(), 4u);
  EXPECT_TRUE(isWellFormed(U));
  // Each phi's recurrence is a distinct fma.
  std::set<RegId> Recurs;
  for (const PhiNode &Phi : U.phis())
    Recurs.insert(Phi.Recur);
  EXPECT_EQ(Recurs.size(), 4u);
}

TEST(UnrollerTest, ObservedReductionIsNotSplit) {
  Loop L = makeObservedReduction();
  Loop U = unrollLoop(L, 4);
  // The running total is stored every iteration: the chain must stay
  // serial, one phi total.
  EXPECT_EQ(U.phis().size(), 1u);
  EXPECT_TRUE(isWellFormed(U));
}

TEST(UnrollerTest, NonAssociativePhiChainsThroughCopies) {
  // y = a * yprev + x is an fma whose *first* operands are not the phi;
  // fma(A, YPrev, X) accumulates into X, not the phi slot, so it must not
  // be split.
  LoopBuilder B("iir", SourceLanguage::C, 1, 256);
  RegId A = B.liveIn(RegClass::Float, "a");
  RegId YPrev = B.phi(RegClass::Float, "yprev");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Y = B.fma(A, YPrev, X);
  B.store(Y, {1, 8, 0, false, 8});
  B.setPhiRecur(YPrev, Y);
  Loop L = B.finalize();
  Loop U = unrollLoop(L, 4);
  EXPECT_EQ(U.phis().size(), 1u);
  EXPECT_TRUE(isWellFormed(U));
}

//===----------------------------------------------------------------------===//
// Exits and predication
//===----------------------------------------------------------------------===//

TEST(UnrollerTest, ExitsAreReplicated) {
  LoopBuilder B("branchy", SourceLanguage::C, 1, 256);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.01);
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  Loop U = unrollLoop(L, 4);
  EXPECT_EQ(countOpcode(U, Opcode::ExitIf), 4u);
  EXPECT_TRUE(isWellFormed(U));
}

TEST(UnrollerTest, PredicatesRenamedPerCopy) {
  LoopBuilder B("pred", SourceLanguage::C, 1, 256);
  RegId T = B.liveIn(RegClass::Float, "t");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId C = B.fcmp(X, T);
  B.setPredicate(C);
  B.store(X, {1, 8, 0, false, 8});
  B.clearPredicate();
  Loop L = B.finalize();
  Loop U = unrollLoop(L, 3);
  // Each copy's store is guarded by its own copy's compare.
  std::set<RegId> Guards;
  for (const Instruction &Instr : U.body())
    if (Instr.isStore())
      Guards.insert(Instr.Pred);
  EXPECT_EQ(Guards.size(), 3u);
  EXPECT_EQ(Guards.count(NoReg), 0u);
  EXPECT_TRUE(isWellFormed(U));
}

//===----------------------------------------------------------------------===//
// Property tests over the corpus generators
//===----------------------------------------------------------------------===//

/// Every generator family x every factor produces a well-formed loop with
/// the right replication arithmetic.
class UnrollAllKinds
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(UnrollAllKinds, WellFormedAndSized) {
  auto [KindIndex, Factor] = GetParam();
  LoopKind Kind = static_cast<LoopKind>(KindIndex);
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    Rng Generator(Seed * 977 + KindIndex);
    LoopGenParams Params;
    Params.Name = std::string(loopKindName(Kind)) + std::to_string(Seed);
    Params.TripCount = 64 + static_cast<int64_t>(Seed) * 13;
    Params.RuntimeTripCount = Params.TripCount;
    Params.SizeScale = 1 + static_cast<int>(Seed % 4);
    Loop L = generateLoop(Kind, Params, Generator);
    ASSERT_TRUE(isWellFormed(L)) << L.name();
    Loop U = unrollLoop(L, Factor);
    std::vector<std::string> Errors = verifyLoop(U);
    ASSERT_TRUE(Errors.empty())
        << "kind " << loopKindName(Kind) << " seed " << Seed << " factor "
        << Factor << ": " << Errors.front();
    EXPECT_EQ(U.bodySizeWithoutControl(),
              L.bodySizeWithoutControl() * Factor);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnrollAllKinds,
    ::testing::Combine(::testing::Range(0, static_cast<int>(NumLoopKinds)),
                       ::testing::Values(1u, 2u, 3u, 4u, 8u)));
