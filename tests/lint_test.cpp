//===- tests/lint_test.cpp - Diagnostics engine tests ---------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Covers the shared diagnostic model, the multi-violation verifier, every
// lint pass (one hand-written bad loop per diagnostic ID), the post-unroll
// invariant checker with its audit hook, and the full-corpus sweep (which
// must be error-free and deterministic across thread counts).
//
//===----------------------------------------------------------------------===//

#include "analysis/lint/Lint.h"
#include "analysis/lint/UnrollInvariants.h"
#include "concurrency/ThreadPool.h"
#include "corpus/CorpusAudit.h"
#include "ir/LoopBuilder.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <set>

using namespace metaopt;

namespace {

Loop parseOne(std::string_view Text) {
  ParseResult Parsed = parseLoops(Text, "test.loop");
  EXPECT_TRUE(Parsed.succeeded()) << Parsed.Error;
  EXPECT_EQ(Parsed.Loops.size(), 1u);
  return Parsed.Loops.at(0);
}

/// Lint options that suppress the verifier stage, so a bad-loop test can
/// assert on the lint IDs alone.
LintOptions lintOnly() {
  LintOptions Options;
  Options.RunVerifier = false;
  return Options;
}

/// True when the report is non-empty and every diagnostic matches \p Id.
bool firesExactly(const DiagnosticReport &Report, std::string_view Id) {
  if (Report.empty())
    return false;
  for (const Diagnostic &D : Report.diagnostics())
    if (!D.hasId(Id))
      return false;
  return true;
}

constexpr const char *Tail = "  %i_iv.next = iv_add %i_iv\n"
                             "  %p_iv.cond = iv_cmp %i_iv.next\n"
                             "  back_br %p_iv.cond\n"
                             "}\n";

//===----------------------------------------------------------------------===//
// Diagnostic model
//===----------------------------------------------------------------------===//

TEST(Diagnostics, HasIdMatchesFullIdAndPrefix) {
  Diagnostic D;
  D.Id = "L001-use-before-def";
  EXPECT_TRUE(D.hasId("L001-use-before-def"));
  EXPECT_TRUE(D.hasId("L001"));
  // Any hyphen-boundary prefix matches, so --passes=L001-use also works.
  EXPECT_TRUE(D.hasId("L001-use"));
  EXPECT_FALSE(D.hasId("L00"));
  EXPECT_FALSE(D.hasId("L002"));
  EXPECT_FALSE(D.hasId("L001-us"));
}

TEST(Diagnostics, RenderingCarriesAnchorAndId) {
  Diagnostic D;
  D.Id = "L003-dead-def";
  D.Sev = Severity::Note;
  D.LoopName = "myloop";
  D.SrcLine = 7;
  D.Message = "value is dead";
  std::string Text = renderDiagnostic(D);
  EXPECT_NE(Text.find("myloop"), std::string::npos);
  EXPECT_NE(Text.find(":7:"), std::string::npos);
  EXPECT_NE(Text.find("note"), std::string::npos);
  EXPECT_NE(Text.find("[L003-dead-def]"), std::string::npos);
}

TEST(Diagnostics, JsonEscapesQuotesAndControlChars) {
  EXPECT_EQ(jsonEscape("a\"b\nc\\"), "a\\\"b\\nc\\\\");
}

TEST(Diagnostics, OriginWrappedJsonIsTheSharedSweepShape) {
  // Golden: every multi-unit sweeper (metaopt-lint, metaopt-import)
  // emits exactly this shape per diagnostic.
  Diagnostic D;
  D.Id = "A002-dead-predicated-store";
  D.Sev = Severity::Warning;
  D.LoopName = "k";
  D.BodyIndex = 3;
  D.Message = "store is provably dead";
  EXPECT_EQ(renderDiagnosticJson(D, "corpus/imported/k.mloop"),
            "{\"origin\":\"corpus/imported/k.mloop\",\"diagnostic\":"
            "{\"id\": \"A002-dead-predicated-store\", "
            "\"severity\": \"warning\", \"loop\": \"k\", \"instr\": 3, "
            "\"message\": \"store is provably dead\"}}");
  EXPECT_EQ(renderDiagnosticJson(D, "quo\"te"),
            "{\"origin\":\"quo\\\"te\",\"diagnostic\":" +
                renderDiagnosticJson(D) + "}");
}

TEST(Diagnostics, ReportCountsBySeverityAndId) {
  DiagnosticReport Report;
  Diagnostic E;
  E.Id = "L001-use-before-def";
  E.Sev = Severity::Error;
  Report.add(E);
  Diagnostic W;
  W.Id = "L007-stride-shape";
  W.Sev = Severity::Warning;
  Report.add(W);
  EXPECT_EQ(Report.size(), 2u);
  EXPECT_EQ(Report.errorCount(), 1u);
  EXPECT_EQ(Report.warningCount(), 1u);
  EXPECT_TRUE(Report.hasErrors());
  EXPECT_EQ(Report.countId("L001"), 1u);
  EXPECT_EQ(Report.countId("L007-stride-shape"), 1u);
  EXPECT_EQ(Report.countId("L002"), 0u);
}

//===----------------------------------------------------------------------===//
// Verifier: all violations in one pass, with context
//===----------------------------------------------------------------------===//

TEST(VerifierDiagnostics, ReportsEveryViolationInOnePass) {
  Loop L("multi", SourceLanguage::C, 1, 64);
  RegId A = L.addReg(RegClass::Float, "a");
  RegId B = L.addReg(RegClass::Float, "b");
  RegId P = L.addReg(RegClass::Pred, "p");

  Instruction Use; // Reads b before its definition below: V012.
  Use.Op = Opcode::FAdd;
  Use.Operands = {A, B};
  Use.Dest = L.addReg(RegClass::Float, "c");
  L.addInstruction(Use);

  Instruction Def;
  Def.Op = Opcode::FMul;
  Def.Operands = {A, A};
  Def.Dest = B;
  L.addInstruction(Def);

  Instruction Exit; // Probability out of range: V016.
  Exit.Op = Opcode::ExitIf;
  Exit.Operands = {P};
  Exit.TakenProb = 3.0;
  L.addInstruction(Exit);

  VerifyOptions Options;
  Options.RequireLoopControl = false;
  DiagnosticReport Report = verifyLoopDiagnostics(L, Options);

  // Both independent violations must be present — the verifier does not
  // stop at the first one.
  EXPECT_GE(Report.countId("V012"), 1u);
  EXPECT_GE(Report.countId("V016"), 1u);
  for (const Diagnostic &D : Report.diagnostics()) {
    EXPECT_EQ(D.LoopName, "multi");
    EXPECT_GE(D.BodyIndex, 0);
    EXPECT_FALSE(D.Context.empty());
  }

  // The legacy string interface renders the same findings.
  std::vector<std::string> Rendered = verifyLoop(L, Options);
  EXPECT_EQ(Rendered.size(), Report.size());
}

TEST(VerifierDiagnostics, OutOfRangeRegisterDoesNotHideLaterFindings) {
  Loop L("oor", SourceLanguage::C, 1, 64);
  RegId A = L.addReg(RegClass::Float, "a");

  Instruction Bad; // Operand id far out of range: V001.
  Bad.Op = Opcode::FAdd;
  Bad.Operands = {A, static_cast<RegId>(12345)};
  Bad.Dest = L.addReg(RegClass::Float, "d");
  L.addInstruction(Bad);

  Instruction Exit; // Still reported despite the earlier wreckage: V016.
  Exit.Op = Opcode::ExitIf;
  Exit.Operands = {L.addReg(RegClass::Pred, "p")};
  Exit.TakenProb = -1.0;
  L.addInstruction(Exit);

  VerifyOptions Options;
  Options.RequireLoopControl = false;
  DiagnosticReport Report = verifyLoopDiagnostics(L, Options);
  EXPECT_GE(Report.countId("V001"), 1u);
  EXPECT_GE(Report.countId("V016"), 1u);
}

//===----------------------------------------------------------------------===//
// Source locations
//===----------------------------------------------------------------------===//

TEST(SourceLocations, ParserThreadsLinesIntoLoopsAndDiagnostics) {
  std::string Text = "loop \"ubd\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %f_y = fmul %f_x, %f_k\n"
                     "  %f_x = load @0[stride=8, offset=0, size=8]\n"
                     "  store %f_y, @1[stride=8, offset=0, size=8]\n";
  Loop L = parseOne(Text + Tail);
  EXPECT_EQ(L.sourceFile(), "test.loop");
  EXPECT_EQ(L.headerLine(), 1u);
  EXPECT_EQ(L.body()[0].SrcLine, 2u);
  EXPECT_EQ(L.body()[1].SrcLine, 3u);

  DiagnosticReport Report = lintLoop(L, lintOnly());
  ASSERT_FALSE(Report.empty());
  // The use-before-def diagnostic points at the fmul on line 2.
  EXPECT_EQ(Report.diagnostics()[0].SrcLine, 2u);
}

TEST(SourceLocations, PhiLinesRecordedAndPropagatedThroughUnroll) {
  std::string Text = "loop \"ddot\" lang=Fortran nest=1 trip=2048 "
                     "rtrip=2048 {\n"
                     "  phi %f_acc = [%f_acc.init, %f_acc.next]\n"
                     "  %f_x = load @0[stride=8, offset=0, size=8]\n"
                     "  %f_acc.next = fma %f_x, %f_x, %f_acc\n";
  Loop L = parseOne(Text + Tail);
  ASSERT_EQ(L.phis().size(), 1u);
  EXPECT_EQ(L.phis()[0].SrcLine, 2u);

  Loop Unrolled = unrollLoop(L, 2);
  ASSERT_FALSE(Unrolled.phis().empty());
  for (const PhiNode &Phi : Unrolled.phis())
    EXPECT_EQ(Phi.SrcLine, 2u);
  EXPECT_EQ(Unrolled.body()[0].SrcLine, 3u);
}

//===----------------------------------------------------------------------===//
// Lint passes: one bad loop per diagnostic ID
//===----------------------------------------------------------------------===//

TEST(LintPasses, RegistryCoversAllIdsInOrder) {
  const std::vector<LintPass> &Passes = lintPasses();
  ASSERT_EQ(Passes.size(), 12u);
  EXPECT_STREQ(Passes.front().Id, diag::LintContextOutOfBounds);
  EXPECT_STREQ(Passes.back().Id, diag::LintDepGraphLegality);
  for (size_t I = 1; I < Passes.size(); ++I)
    EXPECT_LT(std::string(Passes[I - 1].Id), std::string(Passes[I].Id));
}

TEST(LintPasses, L001UseBeforeDef) {
  std::string Text = "loop \"ubd\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %f_y = fmul %f_x, %f_k\n"
                     "  %f_x = load @0[stride=8, offset=0, size=8]\n"
                     "  store %f_y, @1[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_TRUE(firesExactly(Report, "L001")) << Report.renderText();
  EXPECT_TRUE(Report.hasErrors());
  // With the verifier enabled the structural V012 rides along.
  DiagnosticReport Full = lintLoop(parseOne(Text + Tail));
  EXPECT_GE(Full.countId("V012"), 1u);
  EXPECT_GE(Full.countId("L001"), 1u);
}

TEST(LintPasses, L002MaybeUndefUnderPredication) {
  std::string Text = "loop \"guarded\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  (%p_g) %f_t = fadd %f_a, %f_b\n"
                     "  store %f_t, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_TRUE(firesExactly(Report, "L002")) << Report.renderText();
}

TEST(LintPasses, L002SameGuardReadIsSafe) {
  std::string Text = "loop \"guardok\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  (%p_g) %f_t = fadd %f_a, %f_b\n"
                     "  (%p_g) store %f_t, @0[stride=8, offset=0, size=8]\n"
                     "  store %f_a, @1[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_EQ(Report.countId("L002"), 0u) << Report.renderText();
}

TEST(LintPasses, L003DeadDef) {
  std::string Text = "loop \"deadcode\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %f_d = fadd %f_a, %f_b\n"
                     "  store %f_a, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_TRUE(firesExactly(Report, "L003")) << Report.renderText();
  EXPECT_EQ(Report.noteCount(), 1u);
}

TEST(LintPasses, L004ConstantExit) {
  std::string Text = "loop \"coldexit\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  exit_if %p_e prob=0.000000\n"
                     "  store %f_v, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_TRUE(firesExactly(Report, "L004")) << Report.renderText();

  std::string Hot = "loop \"hotexit\" lang=C nest=1 trip=128 rtrip=128 {\n"
                    "  exit_if %p_e prob=1.000000\n"
                    "  store %f_v, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport HotReport = lintLoop(parseOne(Hot + Tail), lintOnly());
  EXPECT_GE(HotReport.countId("L004"), 1u);
  EXPECT_GE(HotReport.warningCount(), 1u);
}

TEST(LintPasses, L005DeadPredicate) {
  std::string Text = "loop \"deadpred\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %p_c = icmp %i_a, %i_a\n"
                     "  (%p_c) store %f_v, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  // The dataflow engine flags the constant guard (L005) and the symbolic
  // analysis independently proves the guarded store dead (A002).
  EXPECT_GE(Report.countId("L005"), 1u) << Report.renderText();
  EXPECT_EQ(Report.countId("A002"), 1u) << Report.renderText();
}

TEST(LintPasses, L005ConstantPropagatesThroughCopies) {
  std::string Text = "loop \"copypred\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %p_c = fcmp %f_a, %f_a\n"
                     "  %p_d = copy %p_c\n"
                     "  (%p_d) store %f_v, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_GE(Report.countId("L005"), 1u) << Report.renderText();
}

TEST(LintPasses, L006MemoryWaw) {
  std::string Text = "loop \"waw\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  store %f_v, @0[stride=8, offset=0, size=8]\n"
                     "  store %f_w, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_TRUE(firesExactly(Report, "L006")) << Report.renderText();
}

TEST(LintPasses, L006StrideZeroStoreSerializes) {
  std::string Text = "loop \"accum\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  store %f_v, @0[stride=0, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_TRUE(firesExactly(Report, "L006")) << Report.renderText();
}

TEST(LintPasses, L007StrideShape) {
  std::string Text = "loop \"strides\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %f_a = load @0[stride=8, offset=0, size=8]\n"
                     "  %f_b = load @0[stride=16, offset=0, size=8]\n"
                     "  %f_s = fadd %f_a, %f_b\n"
                     "  store %f_s, @1[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_TRUE(firesExactly(Report, "L007")) << Report.renderText();
}

TEST(LintPasses, L008DependenceLegality) {
  std::string Text = "loop \"alias\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %f_x = load @0[stride=8, offset=0, size=8]\n"
                     "  %f_y = load @2[stride=8, offset=0, size=8]\n"
                     "  %f_s = fadd %f_x, %f_y\n"
                     "  store %f_s, @1[stride=8, offset=0, size=8]\n";
  Loop L = parseOne(Text + Tail);

  // A graph built for the loop validates cleanly...
  DependenceGraph Graph(L);
  DiagnosticReport Clean;
  checkDependenceLegality(L, Graph, Clean);
  EXPECT_TRUE(Clean.empty()) << Clean.renderText();

  // ...but after retargeting the second load onto the stored array, the
  // stale graph is missing a required memory dependence edge.
  L.body()[1].Mem.BaseSym = 1;
  DiagnosticReport Stale;
  checkDependenceLegality(L, Graph, Stale);
  EXPECT_TRUE(firesExactly(Stale, "L008")) << Stale.renderText();
  EXPECT_TRUE(Stale.hasErrors());
}

//===----------------------------------------------------------------------===//
// A-series: symbolic-analysis-backed passes, one bad loop per ID
//===----------------------------------------------------------------------===//

TEST(LintPasses, A001ContextOutOfBounds) {
  // 128 iterations at stride 8 touch bytes [0, 1024); @0 declares only
  // 512 of them. @1 is declared big enough and must stay silent.
  std::string Text = "loop \"oob\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %f_v = load @0[stride=8, offset=0, size=8]\n"
                     "  store %f_v, @1[stride=8, offset=0, size=8]\n";
  LoopSymbolContext Symbols;
  Symbols.Decls.push_back({0, "a", 512, 0, false});
  Symbols.Decls.push_back({1, "b", 1024, 0, false});
  LintOptions Options = lintOnly();
  Options.Symbols = &Symbols;
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), Options);
  EXPECT_EQ(Report.countId("A001"), 1u) << Report.renderText();
  EXPECT_EQ(Report.diagnostics().front().BodyIndex, 0);

  // Without any declared context the pass is vacuous.
  DiagnosticReport Bare = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_EQ(Bare.countId("A001"), 0u) << Bare.renderText();
}

TEST(LintPasses, A002DeadPredicatedStore) {
  std::string Text = "loop \"deadstore\" lang=C nest=1 trip=64 rtrip=64 {\n"
                     "  %f_v = load @0[stride=8, offset=0, size=8]\n"
                     "  %p_g = fcmp %f_v, %f_v\n"
                     "  (%p_g) store %f_v, @1[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_EQ(Report.countId("A002"), 1u) << Report.renderText();
}

TEST(LintPasses, A003OverflowProneIvArithmetic) {
  // Folding the two constants wraps int64; the wrap must be reported at
  // the iadd that originates it, not at every tainted user.
  std::string Text =
      "loop \"wrap\" lang=C nest=1 trip=64 rtrip=64 {\n"
      "  %i_big = iconst 9223372036854775800\n"
      "  %i_also = iconst 4611686018427387904\n"
      "  %i_sum = iadd %i_big, %i_also\n"
      "  %i_more = iadd %i_sum, %i_also\n"
      "  %f_v = fcvt %i_more\n"
      "  store %f_v, @0[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), lintOnly());
  EXPECT_EQ(Report.countId("A003"), 1u) << Report.renderText();
}

TEST(LintPasses, A004ContradictoryStrideDeclaration) {
  std::string Text = "loop \"badstride\" lang=C nest=1 trip=64 rtrip=64 {\n"
                     "  %f_v = load @0[stride=8, offset=0, size=8]\n"
                     "  store %f_v, @1[stride=8, offset=0, size=8]\n";
  LoopSymbolContext Symbols;
  Symbols.Decls.push_back({0, "a", -1, 16, true});
  Symbols.Decls.push_back({1, "b", -1, 8, true});
  LintOptions Options = lintOnly();
  Options.Symbols = &Symbols;
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), Options);
  EXPECT_EQ(Report.countId("A004"), 1u) << Report.renderText();
}

TEST(LintPasses, ASeriesStaysSilentOnCleanShapes) {
  // The negative side of every A-series pass in one well-declared loop:
  // in-bounds accesses (A001), a runtime-varying guard (A002), small
  // constant arithmetic (A003), and truthful stride declarations (A004).
  std::string Text =
      "loop \"clean\" lang=C nest=1 trip=64 rtrip=64 {\n"
      "  %f_v = load @0[stride=8, offset=0, size=8]\n"
      "  %f_t = load @1[stride=8, offset=0, size=8]\n"
      "  %p_g = fcmp %f_v, %f_t\n"
      "  %i_c = iconst 3\n"
      "  %i_d = iadd %i_c, %i_c\n"
      "  %f_s = fcvt %i_d\n"
      "  %f_r = fadd %f_v, %f_s\n"
      "  (%p_g) store %f_r, @2[stride=8, offset=0, size=8]\n";
  LoopSymbolContext Symbols;
  Symbols.Decls.push_back({0, "a", 512, 8, true});
  Symbols.Decls.push_back({1, "b", 512, 8, true});
  Symbols.Decls.push_back({2, "c", 512, 8, true});
  LintOptions Options = lintOnly();
  Options.Symbols = &Symbols;
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), Options);
  EXPECT_EQ(Report.countId("A001"), 0u) << Report.renderText();
  EXPECT_EQ(Report.countId("A002"), 0u) << Report.renderText();
  EXPECT_EQ(Report.countId("A003"), 0u) << Report.renderText();
  EXPECT_EQ(Report.countId("A004"), 0u) << Report.renderText();
}

TEST(LintPasses, PassFilterRunsOnlySelectedPasses) {
  // This loop triggers both L003 (dead value) and L006 (stride-0 store).
  std::string Text = "loop \"both\" lang=C nest=1 trip=128 rtrip=128 {\n"
                     "  %f_d = fadd %f_a, %f_b\n"
                     "  store %f_v, @0[stride=0, offset=0, size=8]\n";
  LintOptions Options = lintOnly();
  Options.Passes = {"L006"};
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail), Options);
  EXPECT_TRUE(firesExactly(Report, "L006")) << Report.renderText();
  EXPECT_EQ(Report.countId("L003"), 0u);
}

TEST(LintPasses, CleanLoopProducesNoDiagnostics) {
  std::string Text = "loop \"daxpy\" lang=C nest=1 trip=1024 rtrip=1024 {\n"
                     "  %f_x = load @0[stride=8, offset=0, size=8]\n"
                     "  %f_y = load @1[stride=8, offset=0, size=8]\n"
                     "  %f_r = fma %f_alpha, %f_x, %f_y\n"
                     "  store %f_r, @1[stride=8, offset=0, size=8]\n";
  DiagnosticReport Report = lintLoop(parseOne(Text + Tail));
  EXPECT_TRUE(Report.empty()) << Report.renderText();
}

//===----------------------------------------------------------------------===//
// Post-unroll invariant checker
//===----------------------------------------------------------------------===//

Loop makeDaxpy() {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, 1024);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  RegId X = B.load(RegClass::Float, {/*BaseSym=*/0, /*Stride=*/8});
  RegId Y = B.load(RegClass::Float, {/*BaseSym=*/1, /*Stride=*/8});
  RegId R = B.fma(Alpha, X, Y);
  B.store(R, {/*BaseSym=*/1, /*Stride=*/8});
  return B.finalize();
}

Loop makeDot() {
  LoopBuilder B("dot", SourceLanguage::C, 1, 2048);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {/*BaseSym=*/0, /*Stride=*/8});
  RegId Y = B.load(RegClass::Float, {/*BaseSym=*/1, /*Stride=*/8});
  B.setPhiRecur(Acc, B.fma(X, Y, Acc));
  return B.finalize();
}

TEST(UnrollInvariants, CorrectUnrollsPassAllChecks) {
  for (unsigned Factor : {1u, 2u, 4u, 8u}) {
    Loop Daxpy = makeDaxpy();
    DiagnosticReport Report =
        checkUnrollInvariants(Daxpy, unrollLoop(Daxpy, Factor), Factor);
    EXPECT_TRUE(Report.empty()) << "factor " << Factor << ":\n"
                                << Report.renderText();

    Loop Dot = makeDot();
    Report = checkUnrollInvariants(Dot, unrollLoop(Dot, Factor), Factor);
    EXPECT_TRUE(Report.empty()) << "factor " << Factor << ":\n"
                                << Report.renderText();
  }
}

TEST(UnrollInvariants, X001DetectsShapeDamage) {
  Loop L = makeDaxpy();
  Loop U = unrollLoop(L, 4);
  U.body().pop_back(); // Drop the backedge branch.
  DiagnosticReport Report = checkUnrollInvariants(L, U, 4);
  EXPECT_GE(Report.countId("X001"), 1u) << Report.renderText();
}

TEST(UnrollInvariants, X002DetectsRewiredOperands) {
  Loop L = makeDaxpy();
  Loop U = unrollLoop(L, 4);
  // The fma of replica 0 is body index 2; swapping its multiplicands
  // breaks the def-use isomorphism with the original body.
  ASSERT_EQ(U.body()[2].Op, Opcode::FMA);
  std::swap(U.body()[2].Operands[0], U.body()[2].Operands[1]);
  DiagnosticReport Report = checkUnrollInvariants(L, U, 4);
  EXPECT_GE(Report.countId("X002"), 1u) << Report.renderText();
}

TEST(UnrollInvariants, X003DetectsWrongStrideScaling) {
  Loop L = makeDaxpy();
  Loop U = unrollLoop(L, 4);
  U.body()[0].Mem.Stride += 8;
  DiagnosticReport Report = checkUnrollInvariants(L, U, 4);
  EXPECT_GE(Report.countId("X003"), 1u) << Report.renderText();

  Loop U2 = unrollLoop(L, 4);
  U2.body()[0].Mem.Offset += 4;
  Report = checkUnrollInvariants(L, U2, 4);
  EXPECT_GE(Report.countId("X003"), 1u) << Report.renderText();
}

TEST(UnrollInvariants, X004DetectsLostLiveOuts) {
  Loop L = makeDot();
  Loop U = unrollLoop(L, 4);
  // A splittable reduction must survive as one accumulator per replica.
  EXPECT_EQ(U.phis().size(), 4u);
  U.phis().clear();
  DiagnosticReport Report = checkUnrollInvariants(L, U, 4);
  EXPECT_GE(Report.countId("X004"), 1u) << Report.renderText();
}

TEST(UnrollInvariants, X005DetectsTripMiscount) {
  Loop L = makeDaxpy();
  Loop U = unrollLoop(L, 4);
  U.setTripCount(U.tripCount() + 1);
  DiagnosticReport Report = checkUnrollInvariants(L, U, 4);
  EXPECT_GE(Report.countId("X005"), 1u) << Report.renderText();
}

int HookCalls = 0;
void countingHook(const Loop &, const Loop &, unsigned) { ++HookCalls; }

TEST(UnrollInvariants, AuditHookFiresOnEveryUnrollAndGuardRestores) {
  Loop L = makeDaxpy();
  HookCalls = 0;
  UnrollAuditHook Original = setUnrollAuditHook(countingHook);
  unrollLoop(L, 2);
  EXPECT_EQ(HookCalls, 1);
  {
    // The guard swaps in the invariant checker; a correct unroll passes.
    UnrollAuditGuard Guard;
    EXPECT_NO_THROW(unrollLoop(L, 4));
    EXPECT_EQ(HookCalls, 1);
  }
  unrollLoop(L, 2); // Guard restored the counting hook on scope exit.
  EXPECT_EQ(HookCalls, 2);
  setUnrollAuditHook(Original);
}

//===----------------------------------------------------------------------===//
// Full-corpus sweep
//===----------------------------------------------------------------------===//

TEST(CorpusAudit, ShippedCorpusLintsWithoutErrors) {
  CorpusAuditResult Result = auditBenchmarks(buildCorpus());
  EXPECT_GE(Result.LoopsAudited, 2000u);
  EXPECT_EQ(Result.Errors, 0u) << "first finding:\n"
                               << (Result.Findings.empty()
                                       ? std::string()
                                       : Result.Findings[0].Report
                                             .renderText());
  EXPECT_TRUE(Result.clean());
}

TEST(CorpusAudit, SweepIsDeterministicAcrossThreadCounts) {
  std::vector<Benchmark> Corpus = buildCorpus();
  auto Render = [](const CorpusAuditResult &Result) {
    std::string Out;
    for (const AuditedLoop &Audited : Result.Findings) {
      Out += Audited.Benchmark;
      Out += '/';
      Out += Audited.LoopName;
      Out += '\n';
      Out += Audited.Report.renderText();
    }
    return Out;
  };

  ThreadPool::setGlobalThreads(1);
  std::string Serial = Render(auditBenchmarks(Corpus));
  ThreadPool::setGlobalThreads(4);
  std::string Parallel = Render(auditBenchmarks(Corpus));
  ThreadPool::setGlobalThreads(0);

  EXPECT_FALSE(Serial.empty()); // The corpus has warnings/notes.
  EXPECT_EQ(Serial, Parallel);
}

//===----------------------------------------------------------------------===//
// Diagnostic catalog (metaopt-lint --explain)
//===----------------------------------------------------------------------===//

TEST(DiagnosticCatalog, CoversEveryRegisteredLintPass) {
  // Every registered lint pass must have a catalog entry whose display
  // severity includes the severity the pass is registered at.
  for (const LintPass &Pass : lintPasses()) {
    const DiagnosticCatalogEntry *Entry = findDiagnosticEntry(Pass.Id);
    ASSERT_NE(Entry, nullptr) << "no catalog entry for " << Pass.Id;
    EXPECT_STREQ(Entry->Id, Pass.Id) << "prefix lookup hit wrong entry";
    EXPECT_NE(std::string_view(Entry->SevName).find(severityName(Pass.Sev)),
              std::string_view::npos)
        << Pass.Id << ": catalog says '" << Entry->SevName
        << "' but the pass registers at " << severityName(Pass.Sev);
  }
}

TEST(DiagnosticCatalog, CoversVerifierUnrollAndImportIds) {
  const char *Ids[] = {
      diag::RegOutOfRange,       diag::PhiUnsetReg,
      diag::MultipleDef,         diag::PhiClassMismatch,
      diag::PhiInitNotLiveIn,    diag::PhiSelfRecurrence,
      diag::PhiRecurNotComputed, diag::DestArity,
      diag::GuardNotPredicate,   diag::GuardBeforeDef,
      diag::PredicatedControl,   diag::UseBeforeDef,
      diag::OperandCount,        diag::OperandClass,
      diag::MemSize,             diag::ExitProb,
      diag::DestClass,           diag::LoopControl,
      diag::UnrollShape,         diag::UnrollIsomorphism,
      diag::UnrollStrideScaling, diag::UnrollLiveOut,
      diag::UnrollTripAccounting};
  for (const char *Id : Ids) {
    const DiagnosticCatalogEntry *Entry = findDiagnosticEntry(Id);
    ASSERT_NE(Entry, nullptr) << "no catalog entry for " << Id;
    EXPECT_STREQ(Entry->Id, Id);
    EXPECT_STREQ(Entry->SevName, "error");
  }
  // The importer's I-series: I000..I020, all errors.
  for (int N = 0; N <= 20; ++N) {
    char Prefix[5];
    std::snprintf(Prefix, sizeof(Prefix), "I%03d", N);
    const DiagnosticCatalogEntry *Entry = findDiagnosticEntry(Prefix);
    ASSERT_NE(Entry, nullptr) << "no catalog entry for " << Prefix;
    EXPECT_STREQ(Entry->SevName, "error");
  }
}

TEST(DiagnosticCatalog, LookupUsesHyphenBoundaryPrefixes) {
  const DiagnosticCatalogEntry *Full =
      findDiagnosticEntry("L001-use-before-def");
  const DiagnosticCatalogEntry *Short = findDiagnosticEntry("L001");
  const DiagnosticCatalogEntry *Partial = findDiagnosticEntry("L001-use");
  ASSERT_NE(Full, nullptr);
  EXPECT_EQ(Full, Short);
  EXPECT_EQ(Full, Partial);
  EXPECT_EQ(findDiagnosticEntry("L001-us"), nullptr);
  EXPECT_EQ(findDiagnosticEntry("L00"), nullptr);
  EXPECT_EQ(findDiagnosticEntry("Z999"), nullptr);
  EXPECT_EQ(findDiagnosticEntry(""), nullptr);
}

TEST(DiagnosticCatalog, IdsAreUniqueAndWellFormed) {
  std::set<std::string> Seen;
  for (const DiagnosticCatalogEntry &Entry : diagnosticCatalog()) {
    std::string Id = Entry.Id;
    EXPECT_TRUE(Seen.insert(Id).second) << "duplicate catalog id " << Id;
    // "<letter><3 digits>-<slug>" as documented in docs/DIAGNOSTICS.md.
    ASSERT_GE(Id.size(), 6u) << Id;
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(Id[0]))) << Id;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(Id[1]))) << Id;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(Id[2]))) << Id;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(Id[3]))) << Id;
    EXPECT_EQ(Id[4], '-') << Id;
    EXPECT_NE(Entry.Explanation[0], '\0') << Id << " has no explanation";
  }
}

} // namespace
