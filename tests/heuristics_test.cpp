//===- tests/heuristics_test.cpp - Unit tests for src/heuristics ----------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "corpus/LoopGenerators.h"
#include "heuristics/OrcLikeHeuristic.h"
#include "ir/LoopBuilder.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

Loop makeDaxpy(int64_t Trip = 1024) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, Trip);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  MemRef X{0, 8, 0, false, 8};
  MemRef Y{1, 8, 0, false, 8};
  RegId Xv = B.load(RegClass::Float, X);
  RegId Yv = B.load(RegClass::Float, Y);
  B.store(B.fma(Alpha, Xv, Yv), Y);
  return B.finalize();
}

Loop makeCallLoop() {
  LoopBuilder B("call", SourceLanguage::C, 1, 512);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.call({X});
  return B.finalize();
}

Loop makeFatLoop(int Ops) {
  LoopBuilder B("fat", SourceLanguage::C, 1, 512);
  RegId X = B.liveIn(RegClass::Float, "x");
  for (int I = 0; I < Ops; ++I)
    B.fadd(X, X);
  return B.finalize();
}

} // namespace

TEST(FixedFactorTest, AlwaysAnswersItsFactor) {
  FixedFactorHeuristic Two(2);
  EXPECT_EQ(Two.chooseFactor(makeDaxpy()), 2u);
  EXPECT_EQ(Two.chooseFactor(makeCallLoop()), 2u);
  EXPECT_EQ(Two.name(), "fixed-2");
}

TEST(OrcLikeTest, NamesDifferByMode) {
  MachineModel M(itanium2Config());
  EXPECT_EQ(OrcLikeHeuristic(M, false).name(), "orc");
  EXPECT_EQ(OrcLikeHeuristic(M, true).name(), "orc-swp");
}

TEST(OrcLikeTest, NeverUnrollsCalls) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic Orc(M, false);
  EXPECT_EQ(Orc.chooseFactor(makeCallLoop()), 1u);
  OrcLikeHeuristic OrcSwp(M, true);
  EXPECT_EQ(OrcSwp.chooseFactor(makeCallLoop()), 1u);
}

TEST(OrcLikeTest, BigBodiesStayRolled) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic Orc(M, false);
  EXPECT_EQ(Orc.chooseFactor(makeFatLoop(60)), 1u);
}

TEST(OrcLikeTest, SmallBodiesUnrollMore) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic Orc(M, false);
  unsigned SmallBody = Orc.chooseFactor(makeDaxpy());
  unsigned MediumBody = Orc.chooseFactor(makeFatLoop(20));
  EXPECT_GT(SmallBody, MediumBody);
}

TEST(OrcLikeTest, FullyUnrollsTinyTripCounts) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic Orc(M, false);
  EXPECT_EQ(Orc.chooseFactor(makeDaxpy(6)), 6u);
  EXPECT_EQ(Orc.chooseFactor(makeDaxpy(3)), 3u);
}

TEST(OrcLikeTest, NeverExceedsTripCount) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic Orc(M, false);
  EXPECT_LE(Orc.chooseFactor(makeDaxpy(10)), 10u);
}

TEST(OrcLikeTest, ExitLoopsCapLow) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic Orc(M, false);
  LoopBuilder B("branchy", SourceLanguage::C, 1, 512);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.01);
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  EXPECT_LE(Orc.chooseFactor(L), 2u);
}

TEST(OrcLikeTest, PowerOfTwoFactors) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic Orc(M, false);
  Rng Generator(5);
  for (unsigned I = 0; I < NumLoopKinds; ++I) {
    LoopGenParams Params;
    Params.Name = "orc";
    Params.TripCount = 500; // Not a tiny trip: rule 3 does not apply.
    Params.RuntimeTripCount = 500;
    Loop L = generateLoop(static_cast<LoopKind>(I), Params, Generator);
    unsigned Factor = Orc.chooseFactor(L);
    EXPECT_TRUE(Factor == 1 || Factor == 2 || Factor == 4 || Factor == 8)
        << loopKindName(static_cast<LoopKind>(I)) << " got " << Factor;
  }
}

TEST(OrcLikeTest, SwpModeAvoidsRecurrenceBoundLoops) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic OrcSwp(M, true);
  // Tight serial recurrence: unrolling cannot lower II per iteration.
  LoopBuilder B("iir", SourceLanguage::C, 1, 512);
  RegId A = B.liveIn(RegClass::Float, "a");
  RegId Y = B.phi(RegClass::Float, "y");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Next = B.fma(A, Y, X);
  B.store(Next, {1, 8, 0, false, 8});
  B.setPhiRecur(Y, Next);
  Loop L = B.finalize();
  EXPECT_EQ(OrcSwp.chooseFactor(L), 1u);
}

TEST(OrcLikeTest, SwpModeChasesFractionalII) {
  MachineModel M(itanium2Config());
  OrcLikeHeuristic OrcSwp(M, true);
  // daxpy: 3 mem ops -> ResMII 0.75; unrolling by 4 makes the scaled MII
  // integral (3.0) with zero wasted slots, so the heuristic unrolls.
  EXPECT_GT(OrcSwp.chooseFactor(makeDaxpy()), 1u);
}

TEST(OrcLikeTest, AllChoicesInRange) {
  MachineModel M(itanium2Config());
  for (bool Swp : {false, true}) {
    OrcLikeHeuristic Orc(M, Swp);
    Rng Generator(17);
    for (int Trial = 0; Trial < 60; ++Trial) {
      LoopGenParams Params;
      Params.Name = "range";
      Params.TripCount = 1 + static_cast<int64_t>(Trial) * 7;
      Params.RuntimeTripCount = Params.TripCount;
      LoopKind Kind =
          static_cast<LoopKind>(Generator.nextBelow(NumLoopKinds));
      Loop L = generateLoop(Kind, Params, Generator);
      unsigned Factor = Orc.chooseFactor(L);
      EXPECT_GE(Factor, 1u);
      EXPECT_LE(Factor, MaxUnrollFactor);
    }
  }
}
