//===- tests/golden_test.cpp - Canonical-form and negative-parse tests ----===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Pins the canonical textual form printLoop produces — the byte-identity
// anchor the fuzzer's round-trip oracle and the sim-cache's reparse-key
// stability lean on — plus negative Parser/Verifier cases: inputs that
// parse but only the verifier rejects, each checked against its stable
// diagnostic ID.
//
//===----------------------------------------------------------------------===//

#include "ir/LoopBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

std::string verifyFirst(const Loop &L) {
  std::vector<std::string> Errors = verifyLoop(L);
  return Errors.empty() ? std::string() : Errors.front();
}

/// The canonical form of a small predicated reduction, byte for byte.
/// Any printer change lands here first — deliberately, since it also
/// invalidates sim-cache reparse stability and every .loop golden file.
TEST(GoldenTest, PrintLoopCanonicalForm) {
  LoopBuilder B("dot", SourceLanguage::C, 2, 128);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Y = B.load(RegClass::Float, {1, 8, -16, false, 4});
  RegId Gate = B.fcmp(X, Y);
  B.setPredicate(Gate);
  RegId Next = B.fma(X, Y, Acc);
  B.clearPredicate();
  B.setPhiRecur(Acc, Next);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  EXPECT_EQ(printLoop(L),
            "loop \"dot\" lang=C nest=2 trip=128 rtrip=128 {\n"
            "  phi %f_acc = [%f_acc.init, %f_r5]\n"
            "  %f_r2 = load @0[stride=8, offset=0, size=8]\n"
            "  %f_r3 = load @1[stride=8, offset=-16, size=4]\n"
            "  %p_r4 = fcmp %f_r2, %f_r3\n"
            "  (%p_r4) %f_r5 = fma %f_r2, %f_r3, %f_acc\n"
            "  %i_iv.next = iv_add %i_iv\n"
            "  %p_iv.cond = iv_cmp %i_iv.next\n"
            "  back_br %p_iv.cond\n"
            "}\n");
}

/// The unrolled form of a splittable reduction: the loop is renamed
/// "<name>.u2" with the trip divided, every lane's registers get a ".k"
/// suffix, the split accumulator's extra lanes get fresh ".k" inits, and
/// memory rewrites stride and offset. Pinned because the fuzzer's lane
/// mapping and the split-phi override logic depend on exactly this
/// layout.
TEST(GoldenTest, PrintUnrolledSplitReduction) {
  LoopBuilder B("sum", SourceLanguage::C, 1, 8);
  RegId Acc = B.phi(RegClass::Float, "acc");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPhiRecur(Acc, B.fadd(Acc, X));
  Loop L = B.finalize();

  Loop Unrolled = unrollLoop(L, 2);
  ASSERT_TRUE(isWellFormed(Unrolled));
  EXPECT_EQ(printLoop(Unrolled),
            "loop \"sum.u2\" lang=C nest=1 trip=4 rtrip=4 {\n"
            "  phi %f_acc.0 = [%f_acc.init, %f_r3.0]\n"
            "  phi %f_acc.1 = [%f_acc.init.1, %f_r3.1]\n"
            "  %f_r2.0 = load @0[stride=16, offset=0, size=8]\n"
            "  %f_r3.0 = fadd %f_acc.0, %f_r2.0\n"
            "  %f_r2.1 = load @0[stride=16, offset=8, size=8]\n"
            "  %f_r3.1 = fadd %f_acc.1, %f_r2.1\n"
            "  %i_iv.next = iv_add %i_iv\n"
            "  %p_iv.cond = iv_cmp %i_iv.next\n"
            "  back_br %p_iv.cond\n"
            "}\n");
}

/// Reparsing canonical output reproduces it byte for byte, including
/// negative offsets, narrow sizes, indirect refs, and exit
/// probabilities.
TEST(GoldenTest, RoundTripStability) {
  LoopBuilder B("rt", SourceLanguage::Fortran90, 3, Loop::UnknownTripCount);
  B.loop().setRuntimeTripCount(37);
  RegId Idx = B.liveIn(RegClass::Int, "idx");
  RegId V = B.load(RegClass::Float, {2, 0, -4, true, 4}, Idx);
  B.store(V, {3, 8, 12, false, 8});
  RegId C = B.phi(RegClass::Int, "c");
  RegId Next = B.iadd(C, B.iconst(1));
  B.setPhiRecur(C, Next);
  RegId Hit = B.icmp(B.liveIn(RegClass::Int, "bound"), Next);
  B.exitIf(Hit, 0.125);
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  std::string First = printLoop(L);
  ParseResult Parsed = parseLoops(First);
  ASSERT_TRUE(Parsed.Error.empty()) << Parsed.Error;
  ASSERT_EQ(Parsed.Loops.size(), 1u);
  EXPECT_EQ(printLoop(Parsed.Loops[0]), First);
}

//===----------------------------------------------------------------------===//
// Inputs the parser accepts but the verifier rejects — the malformed
// shapes the fuzz harness's front door (parse + verify) must keep out.
//===----------------------------------------------------------------------===//

/// An integer register guarding an instruction fails V009. The parser
/// refuses to even spell this (its own guard-class check), so corrupt a
/// well-formed loop in memory — the shape a buggy transform could
/// produce.
TEST(GoldenTest, VerifierRejectsNonPredicateGuard) {
  LoopBuilder B("bad", SourceLanguage::C, 1, 4);
  RegId A = B.liveIn(RegClass::Int, "a");
  RegId Gate = B.icmp(A, B.iconst(3));
  B.setPredicate(Gate);
  RegId Y = B.iadd(A, A);
  B.clearPredicate();
  B.store(Y, {0, 8, 0, false, 8});
  Loop L = B.finalize();
  ASSERT_TRUE(isWellFormed(L));

  for (Instruction &Instr : L.body())
    if (Instr.Pred == Gate && Instr.Op != Opcode::BackBr)
      Instr.Pred = A;
  EXPECT_NE(verifyFirst(L).find(diag::GuardNotPredicate), std::string::npos);
}

/// A phi whose init is defined in the body: parses, fails V005.
TEST(GoldenTest, VerifierRejectsPhiInitDefinedInBody) {
  ParseResult Parsed = parseLoops(
      "loop \"bad\" lang=C nest=1 trip=4 rtrip=4 {\n"
      "  phi %i_acc = [%i_x, %i_y]\n"
      "  %i_x = iadd %i_a, %i_b\n"
      "  %i_y = iadd %i_acc, %i_x\n"
      "  %i_iv.next = iv_add %i_iv\n"
      "  %p_iv.cond = iv_cmp %i_iv.next\n"
      "  back_br %p_iv.cond\n"
      "}\n");
  ASSERT_TRUE(Parsed.Error.empty()) << Parsed.Error;
  EXPECT_NE(verifyFirst(Parsed.Loops[0]).find(diag::PhiInitNotLiveIn),
            std::string::npos);
}

/// A phi recurring on itself: parses, fails V006.
TEST(GoldenTest, VerifierRejectsPhiSelfRecurrence) {
  ParseResult Parsed = parseLoops(
      "loop \"bad\" lang=C nest=1 trip=4 rtrip=4 {\n"
      "  phi %i_acc = [%i_acc.init, %i_acc]\n"
      "  %i_use = iadd %i_acc, %i_acc\n"
      "  %i_iv.next = iv_add %i_iv\n"
      "  %p_iv.cond = iv_cmp %i_iv.next\n"
      "  back_br %p_iv.cond\n"
      "}\n");
  ASSERT_TRUE(Parsed.Error.empty()) << Parsed.Error;
  EXPECT_NE(verifyFirst(Parsed.Loops[0]).find(diag::PhiSelfRecurrence),
            std::string::npos);
}

/// A predicated backedge branch: parses, fails V011.
TEST(GoldenTest, VerifierRejectsPredicatedControl) {
  ParseResult Parsed = parseLoops(
      "loop \"bad\" lang=C nest=1 trip=4 rtrip=4 {\n"
      "  %p_g = icmp %i_a, %i_b\n"
      "  %i_iv.next = iv_add %i_iv\n"
      "  %p_iv.cond = iv_cmp %i_iv.next\n"
      "  (%p_g) back_br %p_iv.cond\n"
      "}\n");
  ASSERT_TRUE(Parsed.Error.empty()) << Parsed.Error;
  EXPECT_NE(verifyFirst(Parsed.Loops[0]).find(diag::PredicatedControl),
            std::string::npos);
}

/// A loop missing the canonical control tail: parses, fails V018.
TEST(GoldenTest, VerifierRejectsMissingControlTail) {
  ParseResult Parsed = parseLoops(
      "loop \"bad\" lang=C nest=1 trip=4 rtrip=4 {\n"
      "  %i_x = iadd %i_a, %i_b\n"
      "}\n");
  ASSERT_TRUE(Parsed.Error.empty()) << Parsed.Error;
  EXPECT_NE(verifyFirst(Parsed.Loops[0]).find(diag::LoopControl),
            std::string::npos);
}

/// Operand class mismatches: parses, fails V014.
TEST(GoldenTest, VerifierRejectsOperandClassMismatch) {
  ParseResult Parsed = parseLoops(
      "loop \"bad\" lang=C nest=1 trip=4 rtrip=4 {\n"
      "  %f_x = fadd %f_a, %i_b\n"
      "  %i_iv.next = iv_add %i_iv\n"
      "  %p_iv.cond = iv_cmp %i_iv.next\n"
      "  back_br %p_iv.cond\n"
      "}\n");
  ASSERT_TRUE(Parsed.Error.empty()) << Parsed.Error;
  EXPECT_NE(verifyFirst(Parsed.Loops[0]).find(diag::OperandClass),
            std::string::npos);
}

/// Actual syntax errors the parser itself must reject, with its
/// one-error-and-stop contract.
TEST(GoldenTest, ParserRejectsSyntaxErrors) {
  EXPECT_FALSE(parseLoops("loop \"x\" {\n").Error.empty());
  EXPECT_FALSE(parseLoops("loop \"x\" lang=C nest=1 trip=4 rtrip=4 {\n"
                          "  %i_a = bogus_op %i_b\n"
                          "}\n")
                   .Error.empty());
  EXPECT_FALSE(parseLoops("loop \"x\" lang=Elvish nest=1 trip=4 rtrip=4 {\n"
                          "}\n")
                   .Error.empty());
}

} // namespace
