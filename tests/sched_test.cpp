//===- tests/sched_test.cpp - Unit tests for src/sched --------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "corpus/LoopGenerators.h"
#include "ir/LoopBuilder.h"
#include "machine/Machine.h"
#include "sched/ListScheduler.h"
#include "sched/ModuloScheduler.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace metaopt;

namespace {

Loop makeDaxpy(int Streams = 1) {
  LoopBuilder B("daxpy", SourceLanguage::C, 1, 1024);
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  for (int S = 0; S < Streams; ++S) {
    MemRef X{static_cast<int32_t>(2 * S), 8, 0, false, 8};
    MemRef Y{static_cast<int32_t>(2 * S + 1), 8, 0, false, 8};
    RegId Xv = B.load(RegClass::Float, X);
    RegId Yv = B.load(RegClass::Float, Y);
    B.store(B.fma(Alpha, Xv, Yv), Y);
  }
  return B.finalize();
}

/// Checks the fundamental schedule legality properties: every instruction
/// placed once; data/memory dependences separated by at least the
/// scheduler's delay; resources never oversubscribed.
void expectValidSchedule(const Loop &L, const DependenceGraph &DG,
                         const Schedule &Sched, const MachineModel &M) {
  size_t N = L.body().size();
  ASSERT_EQ(Sched.CycleOf.size(), N);
  ASSERT_EQ(Sched.Order.size(), N);

  // Every index appears exactly once in the order.
  std::vector<bool> Seen(N, false);
  for (uint32_t Node : Sched.Order) {
    ASSERT_LT(Node, N);
    EXPECT_FALSE(Seen[Node]);
    Seen[Node] = true;
  }

  // Dependences: producer strictly precedes consumer unless control-kind
  // (same-cycle allowed) or speculatable.
  for (const DepEdge &Edge : DG.edges()) {
    if (Edge.Distance != 0 || Edge.Speculatable)
      continue;
    uint32_t SrcCycle = Sched.CycleOf[Edge.Src];
    uint32_t DstCycle = Sched.CycleOf[Edge.Dst];
    if (Edge.Kind == DepKind::Control)
      EXPECT_LE(SrcCycle, DstCycle);
    else
      EXPECT_LT(SrcCycle, DstCycle)
          << "edge " << Edge.Src << "->" << Edge.Dst;
  }

  // Per-cycle issue width (IvAdd/IvCmp are free; see ListScheduler).
  std::map<uint32_t, int> PerCycle;
  for (uint32_t Node = 0; Node < N; ++Node) {
    Opcode Op = L.body()[Node].Op;
    if (Op == Opcode::IvAdd || Op == Opcode::IvCmp)
      continue;
    ++PerCycle[Sched.CycleOf[Node]];
  }
  for (const auto &[Cycle, Count] : PerCycle)
    EXPECT_LE(Count, M.issueWidth()) << "cycle " << Cycle;

  // Length covers the last issue.
  uint32_t Last = 0;
  for (uint32_t Node = 0; Node < N; ++Node)
    Last = std::max(Last, Sched.CycleOf[Node]);
  EXPECT_EQ(Sched.Length, Last + 1);
}

} // namespace

//===----------------------------------------------------------------------===//
// List scheduler
//===----------------------------------------------------------------------===//

TEST(ListSchedulerTest, ValidScheduleForDaxpy) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy();
  DependenceGraph DG(L);
  Schedule Sched = listSchedule(L, DG, M);
  expectValidSchedule(L, DG, Sched, M);
}

TEST(ListSchedulerTest, BackedgeIssuesLast) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(3);
  DependenceGraph DG(L);
  Schedule Sched = listSchedule(L, DG, M);
  uint32_t BrCycle = Sched.CycleOf[L.body().size() - 1];
  for (size_t Node = 0; Node < L.body().size(); ++Node)
    EXPECT_LE(Sched.CycleOf[Node], BrCycle);
}

TEST(ListSchedulerTest, WiderBodiesScheduleDenser) {
  MachineModel M(itanium2Config());
  // Per-iteration cycles must shrink when the payload is replicated
  // (that is the whole point of unrolling on a wide machine).
  Loop L = makeDaxpy(1);
  DependenceGraph DG1(L);
  Schedule S1 = listSchedule(L, DG1, M);
  Loop U = unrollLoop(L, 8);
  DependenceGraph DG8(U);
  Schedule S8 = listSchedule(U, DG8, M);
  EXPECT_LT(static_cast<double>(S8.Length) / 8.0,
            static_cast<double>(S1.Length));
}

TEST(ListSchedulerTest, ResourceBoundLoopHitsIssueLimit) {
  MachineModel M(itanium2Config());
  // 12 independent fp adds on 2 FP units: at least 6 cycles.
  LoopBuilder B("fp", SourceLanguage::C, 1, 64);
  RegId X = B.liveIn(RegClass::Float, "x");
  for (int I = 0; I < 12; ++I)
    B.fadd(X, X);
  Loop L = B.finalize();
  DependenceGraph DG(L);
  Schedule Sched = listSchedule(L, DG, M);
  EXPECT_GE(Sched.Length, 6u);
}

TEST(ListSchedulerTest, StoreAfterExitNotHoisted) {
  MachineModel M(itanium2Config());
  LoopBuilder B("exit", SourceLanguage::C, 1, 64);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.01);
  B.store(V, {1, 4, 0, false, 4});
  Loop L = B.finalize();
  DependenceGraph DG(L);
  Schedule Sched = listSchedule(L, DG, M);
  uint32_t ExitIdx = 2, StoreIdx = 3;
  ASSERT_EQ(L.body()[ExitIdx].Op, Opcode::ExitIf);
  ASSERT_TRUE(L.body()[StoreIdx].isStore());
  EXPECT_LE(Sched.CycleOf[ExitIdx], Sched.CycleOf[StoreIdx]);
}

/// Property sweep: schedules of every generator family at several factors
/// are valid.
class ScheduleAllKinds : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleAllKinds, ValidAcrossFactors) {
  MachineModel M(itanium2Config());
  LoopKind Kind = static_cast<LoopKind>(GetParam());
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    Rng Generator(Seed * 31 + GetParam());
    LoopGenParams Params;
    Params.Name = "sched";
    Params.TripCount = 128;
    Params.RuntimeTripCount = 128;
    Loop L = generateLoop(Kind, Params, Generator);
    for (unsigned Factor : {1u, 4u, 8u}) {
      Loop U = unrollLoop(L, Factor);
      DependenceGraph DG(U);
      Schedule Sched = listSchedule(U, DG, M);
      expectValidSchedule(U, DG, Sched, M);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleAllKinds,
                         ::testing::Range(0,
                                          static_cast<int>(NumLoopKinds)));

//===----------------------------------------------------------------------===//
// Modulo scheduler
//===----------------------------------------------------------------------===//

TEST(ModuloSchedulerTest, RejectsExitsAndCalls) {
  MachineModel M(itanium2Config());
  LoopBuilder B("exit", SourceLanguage::C, 1, 64);
  RegId V = B.load(RegClass::Int, {0, 4, 0, false, 4});
  RegId Lim = B.liveIn(RegClass::Int, "lim");
  B.exitIf(B.icmp(V, Lim), 0.01);
  Loop L = B.finalize();
  DependenceGraph DG(L);
  EXPECT_FALSE(moduloSchedule(L, DG, M).Pipelined);

  LoopBuilder B2("call", SourceLanguage::C, 1, 64);
  RegId X = B2.load(RegClass::Float, {0, 8, 0, false, 8});
  B2.call({X});
  Loop L2 = B2.finalize();
  DependenceGraph DG2(L2);
  EXPECT_FALSE(moduloSchedule(L2, DG2, M).Pipelined);
}

TEST(ModuloSchedulerTest, IiAtLeastBounds) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(2);
  DependenceGraph DG(L);
  SwpResult Swp = moduloSchedule(L, DG, M);
  ASSERT_TRUE(Swp.Pipelined);
  EXPECT_GE(Swp.II, Swp.ResMII);
  EXPECT_GE(Swp.II + 1e-9, Swp.RecMII);
  EXPECT_GE(Swp.StageCount, 1);
}

TEST(ModuloSchedulerTest, StreamingLoopReachesResourceBound) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(4); // 12 mem ops + 4 fma: mem-bound, 3 cycles.
  DependenceGraph DG(L);
  SwpResult Swp = moduloSchedule(L, DG, M);
  ASSERT_TRUE(Swp.Pipelined);
  EXPECT_EQ(Swp.II, Swp.ResMII);
}

TEST(ModuloSchedulerTest, RecurrenceBoundLoop) {
  MachineModel M(itanium2Config());
  LoopBuilder B("iir", SourceLanguage::C, 1, 256);
  RegId A = B.liveIn(RegClass::Float, "a");
  RegId Y = B.phi(RegClass::Float, "y");
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPhiRecur(Y, B.fma(A, Y, X));
  Loop L = B.finalize();
  DependenceGraph DG(L);
  SwpResult Swp = moduloSchedule(L, DG, M);
  ASSERT_TRUE(Swp.Pipelined);
  // Bound by the fma latency on the y -> y cycle.
  EXPECT_GE(Swp.II, M.latency(Opcode::FMA));
}

TEST(ModuloSchedulerTest, UnrollingEnablesFractionalII) {
  // The paper's SWP story: II(u)/u can beat II(1) when II(1) has
  // fractional slack.
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(1); // 3 mem ops -> ResMII 0.75 -> II=1 at u=1? No:
                          // ceil(0.75)=1, already integral; use 2 streams.
  Loop L2 = makeDaxpy(2); // 6 mem ops -> 1.5 -> II 2 at u=1, 3 at u=2.
  DependenceGraph DG1(L2);
  SwpResult S1 = moduloSchedule(L2, DG1, M);
  Loop U2 = unrollLoop(L2, 2);
  DependenceGraph DG2(U2);
  SwpResult S2 = moduloSchedule(U2, DG2, M);
  ASSERT_TRUE(S1.Pipelined && S2.Pipelined);
  EXPECT_LT(static_cast<double>(S2.II) / 2.0,
            static_cast<double>(S1.II) + 1e-9);
}

TEST(ModuloSchedulerTest, TightRegisterBudgetRaisesIiOrSpills) {
  MachineModel M(itanium2Config());
  Loop U = unrollLoop(makeDaxpy(3), 8);
  DependenceGraph DG(U);
  SwpResult Ample = moduloSchedule(U, DG, M);
  RegBudget Tight{6, 6};
  SwpResult Constrained = moduloSchedule(U, DG, M, Tight);
  ASSERT_TRUE(Ample.Pipelined && Constrained.Pipelined);
  EXPECT_TRUE(Constrained.II > Ample.II ||
              Constrained.SpillsPerIteration > Ample.SpillsPerIteration);
}

TEST(ModuloSchedulerTest, ResourceMiiForLoopCountsPools) {
  MachineModel M(itanium2Config());
  Loop L = makeDaxpy(4);
  // 8 loads + 4 stores on 4 M units -> at least 3.0.
  EXPECT_GE(resourceMIIForLoop(L, M), 3.0);
}
