//===- tests/corpus_test.cpp - Unit tests for src/corpus ------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "corpus/BenchmarkSuite.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

using namespace metaopt;

namespace {

CorpusOptions smallCorpus() {
  CorpusOptions Options;
  Options.MinLoopsPerBenchmark = 4;
  Options.MaxLoopsPerBenchmark = 6;
  return Options;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generators (property tests across seeds)
//===----------------------------------------------------------------------===//

/// Every family produces well-formed loops across many seeds.
class GeneratorWellFormed : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorWellFormed, ManySeeds) {
  LoopKind Kind = static_cast<LoopKind>(GetParam());
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    Rng Generator(Seed * 131071 + GetParam());
    LoopGenParams Params;
    Params.Name = std::string(loopKindName(Kind)) + std::to_string(Seed);
    Params.Lang = Seed % 2 ? SourceLanguage::Fortran : SourceLanguage::C;
    Params.NestLevel = 1 + static_cast<int>(Seed % 4);
    Params.TripCount =
        Seed % 3 == 0 ? Loop::UnknownTripCount
                      : static_cast<int64_t>(16 + Seed % 100);
    Params.RuntimeTripCount = 16 + static_cast<int64_t>(Seed % 100);
    Params.SizeScale = 1 + static_cast<int>(Seed % 6);
    Loop L = generateLoop(Kind, Params, Generator);
    std::vector<std::string> Errors = verifyLoop(L);
    ASSERT_TRUE(Errors.empty())
        << loopKindName(Kind) << " seed " << Seed << ": " << Errors[0];
    EXPECT_GT(L.bodySizeWithoutControl(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorWellFormed,
                         ::testing::Range(0,
                                          static_cast<int>(NumLoopKinds)));

TEST(GeneratorTest, DeterministicForSameSeed) {
  LoopGenParams Params;
  Params.Name = "det";
  Params.TripCount = 64;
  Params.RuntimeTripCount = 64;
  Rng A(42), B(42);
  Loop LoopA = generateLoop(LoopKind::Mixed, Params, A);
  Loop LoopB = generateLoop(LoopKind::Mixed, Params, B);
  EXPECT_EQ(LoopA.body().size(), LoopB.body().size());
  EXPECT_EQ(LoopA.phis().size(), LoopB.phis().size());
  for (size_t I = 0; I < LoopA.body().size(); ++I)
    EXPECT_EQ(LoopA.body()[I].Op, LoopB.body()[I].Op) << I;
}

TEST(GeneratorTest, KindCharacteristics) {
  Rng Generator(1);
  LoopGenParams Params;
  Params.Name = "traits";
  Params.TripCount = 128;
  Params.RuntimeTripCount = 128;

  auto Has = [](const Loop &L, auto Predicate) {
    for (const Instruction &Instr : L.body())
      if (Predicate(Instr))
        return true;
    return false;
  };

  Loop Chase = generateLoop(LoopKind::PointerChase, Params, Generator);
  EXPECT_TRUE(Has(Chase, [](const Instruction &I) {
    return I.isLoad() && I.Mem.Indirect;
  }));
  EXPECT_FALSE(Chase.phis().empty());

  Loop Call = generateLoop(LoopKind::CallBearing, Params, Generator);
  EXPECT_TRUE(Has(Call, [](const Instruction &I) { return I.isCall(); }));

  Loop Branchy = generateLoop(LoopKind::Branchy, Params, Generator);
  EXPECT_TRUE(Has(Branchy, [](const Instruction &I) {
    return I.Op == Opcode::ExitIf;
  }));

  Loop Div = generateLoop(LoopKind::DivHeavy, Params, Generator);
  EXPECT_TRUE(Has(Div, [](const Instruction &I) {
    return I.Op == Opcode::FDiv;
  }));

  Loop Dot = generateLoop(LoopKind::DotReduce, Params, Generator);
  EXPECT_FALSE(Dot.phis().empty());
}

TEST(GeneratorTest, KindNamesAreUniqueAndNonEmpty) {
  std::set<std::string> Names;
  for (unsigned I = 0; I < NumLoopKinds; ++I) {
    std::string Name = loopKindName(static_cast<LoopKind>(I));
    EXPECT_FALSE(Name.empty());
    EXPECT_TRUE(Names.insert(Name).second) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Benchmark suite
//===----------------------------------------------------------------------===//

TEST(BenchmarkSuiteTest, SeventyTwoBenchmarks) {
  std::vector<Benchmark> Corpus = buildCorpus(smallCorpus());
  EXPECT_EQ(Corpus.size(), 72u);
}

TEST(BenchmarkSuiteTest, NamesAreUnique) {
  std::vector<Benchmark> Corpus = buildCorpus(smallCorpus());
  std::set<std::string> Names;
  for (const Benchmark &Bench : Corpus)
    EXPECT_TRUE(Names.insert(Bench.Name).second) << Bench.Name;
}

TEST(BenchmarkSuiteTest, RejectsMalformedLoopCountRange) {
  CorpusOptions Inverted = smallCorpus();
  Inverted.MinLoopsPerBenchmark = 6;
  Inverted.MaxLoopsPerBenchmark = 4;
  EXPECT_THROW(buildCorpus(Inverted), std::invalid_argument);
  CorpusOptions Zero = smallCorpus();
  Zero.MinLoopsPerBenchmark = 0;
  EXPECT_THROW(buildCorpus(Zero), std::invalid_argument);
}

TEST(BenchmarkSuiteTest, LoopNamesAreCorpusUnique) {
  // Loop names key the oracle replay, dataset joins, and per-loop
  // measurement-noise streams; a duplicate anywhere in the corpus would
  // silently alias two loops.
  std::vector<Benchmark> Corpus = buildCorpus(smallCorpus());
  std::vector<std::string> Duplicates = duplicateLoopNames(Corpus);
  EXPECT_TRUE(Duplicates.empty())
      << "first duplicate: " << Duplicates.front();
}

TEST(BenchmarkSuiteTest, DuplicateLoopNamesAreDetected) {
  std::vector<Benchmark> Corpus = buildCorpus(smallCorpus());
  ASSERT_GE(Corpus.size(), 2u);
  ASSERT_FALSE(Corpus[0].Loops.empty());
  ASSERT_FALSE(Corpus[1].Loops.empty());
  // Inject a cross-benchmark collision: benchmark 1's first loop takes
  // benchmark 0's first loop's name.
  std::string Stolen = Corpus[0].Loops.front().TheLoop.name();
  Corpus[1].Loops.front().TheLoop = Corpus[0].Loops.front().TheLoop;
  std::vector<std::string> Duplicates = duplicateLoopNames(Corpus);
  ASSERT_EQ(Duplicates.size(), 1u);
  EXPECT_EQ(Duplicates.front(), Stolen);
}

TEST(BenchmarkSuiteTest, AllLoopsVerify) {
  std::vector<Benchmark> Corpus = buildCorpus(smallCorpus());
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops) {
      std::vector<std::string> Errors = verifyLoop(Entry.TheLoop);
      ASSERT_TRUE(Errors.empty())
          << Entry.TheLoop.name() << ": " << Errors[0];
    }
}

TEST(BenchmarkSuiteTest, LoopCountsWithinBounds) {
  CorpusOptions Options = smallCorpus();
  std::vector<Benchmark> Corpus = buildCorpus(Options);
  for (const Benchmark &Bench : Corpus) {
    EXPECT_GE(Bench.Loops.size(),
              static_cast<size_t>(Options.MinLoopsPerBenchmark));
    EXPECT_LE(Bench.Loops.size(),
              static_cast<size_t>(Options.MaxLoopsPerBenchmark));
  }
}

TEST(BenchmarkSuiteTest, DefaultScaleMatchesPaper) {
  // The paper: "more than 2,500 loops - drawn from 72 benchmarks". The
  // default corpus produces ~3,000 raw loops so the usable set after the
  // paper's filters lands above 2,500.
  std::vector<Benchmark> Corpus = buildCorpus();
  size_t Total = 0;
  for (const Benchmark &Bench : Corpus)
    Total += Bench.Loops.size();
  EXPECT_GT(Total, 2500u);
  EXPECT_LT(Total, 4000u);
}

TEST(BenchmarkSuiteTest, DeterministicAcrossBuilds) {
  std::vector<Benchmark> A = buildCorpus(smallCorpus());
  std::vector<Benchmark> B = buildCorpus(smallCorpus());
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_EQ(A[I].Loops.size(), B[I].Loops.size()) << A[I].Name;
    for (size_t J = 0; J < A[I].Loops.size(); ++J) {
      EXPECT_EQ(A[I].Loops[J].TheLoop.name(),
                B[I].Loops[J].TheLoop.name());
      EXPECT_EQ(A[I].Loops[J].Executions, B[I].Loops[J].Executions);
      EXPECT_EQ(A[I].Loops[J].Ctx.EffectiveIcacheBytes,
                B[I].Loops[J].Ctx.EffectiveIcacheBytes);
    }
  }
}

TEST(BenchmarkSuiteTest, SeedChangesCorpus) {
  CorpusOptions Options = smallCorpus();
  std::vector<Benchmark> A = buildCorpus(Options);
  Options.Seed ^= 0xdeadbeef;
  std::vector<Benchmark> B = buildCorpus(Options);
  // Some benchmark must differ in loop count or first loop shape.
  bool Different = false;
  for (size_t I = 0; I < A.size() && !Different; ++I) {
    if (A[I].Loops.size() != B[I].Loops.size())
      Different = true;
    else if (!A[I].Loops.empty() &&
             A[I].Loops[0].TheLoop.body().size() !=
                 B[I].Loops[0].TheLoop.body().size())
      Different = true;
  }
  EXPECT_TRUE(Different);
}

TEST(BenchmarkSuiteTest, Spec2000ListMatchesPaper) {
  const std::vector<std::string> &Names = spec2000BenchmarkNames();
  EXPECT_EQ(Names.size(), 24u);
  // The paper excludes 252.eon (C++) and 191.fma3d (instrumentation bug).
  for (const std::string &Name : Names) {
    EXPECT_NE(Name, "252.eon");
    EXPECT_NE(Name, "191.fma3d");
  }
  EXPECT_EQ(Names.front(), "164.gzip");
  EXPECT_EQ(Names.back(), "301.apsi");
}

TEST(BenchmarkSuiteTest, SpecFpClassification) {
  EXPECT_TRUE(isSpecFp("171.swim"));
  EXPECT_TRUE(isSpecFp("179.art"));
  EXPECT_FALSE(isSpecFp("164.gzip"));
  EXPECT_FALSE(isSpecFp("181.mcf"));
  EXPECT_FALSE(isSpecFp("not-a-benchmark"));
}

TEST(BenchmarkSuiteTest, ContextsAreSane) {
  std::vector<Benchmark> Corpus = buildCorpus(smallCorpus());
  for (const Benchmark &Bench : Corpus) {
    EXPECT_GE(Bench.NonLoopFraction, 0.0);
    EXPECT_LT(Bench.NonLoopFraction, 1.0);
    for (const CorpusLoop &Entry : Bench.Loops) {
      EXPECT_GE(Entry.Ctx.EffectiveIcacheBytes, 128);
      EXPECT_LE(Entry.Ctx.EffectiveIcacheBytes, 16 * 1024);
      EXPECT_GT(Entry.Ctx.DcacheMissRate, 0.0);
      EXPECT_LT(Entry.Ctx.DcacheMissRate, 0.5);
      EXPECT_GE(Entry.Ctx.IntRegBudget, 8);
      EXPECT_GE(Entry.Ctx.FpRegBudget, 8);
      EXPECT_GE(Entry.Executions, 1);
      EXPECT_GT(Entry.TheLoop.runtimeTripCount(), 0);
    }
  }
}

TEST(BenchmarkSuiteTest, LanguageMixSpansAllThree) {
  std::vector<Benchmark> Corpus = buildCorpus(smallCorpus());
  std::set<SourceLanguage> Langs;
  for (const Benchmark &Bench : Corpus)
    Langs.insert(Bench.Lang);
  EXPECT_EQ(Langs.size(), 3u); // C, Fortran, Fortran90.
}
