//===- tests/memoryopt_test.cpp - Post-unroll memory optimization ---------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Section 3 of the paper credits unrolling with enabling scalar
// replacement and wide-reference merging; these tests pin down the pass
// that models both.
//
//===----------------------------------------------------------------------===//

#include "analysis/symbolic/StrideInterval.h"
#include "corpus/LoopGenerators.h"
#include "ir/LoopBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "transform/MemoryOpt.h"
#include "transform/Unroller.h"

#include <gtest/gtest.h>

using namespace metaopt;

namespace {

unsigned countLoads(const Loop &L) {
  unsigned Count = 0;
  for (const Instruction &Instr : L.body())
    Count += Instr.isLoad();
  return Count;
}

unsigned countPaired(const Loop &L) {
  unsigned Count = 0;
  for (const Instruction &Instr : L.body())
    Count += Instr.isLoad() && Instr.Paired;
  return Count;
}

} // namespace

TEST(MemoryOptTest, ForwardsStoreToLoad) {
  LoopBuilder B("fwd", SourceLanguage::C, 1, 64);
  RegId V = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(V, {1, 8, 0, false, 8});
  RegId W = B.load(RegClass::Float, {1, 8, 0, false, 8}); // Same bytes.
  B.store(W, {2, 8, 0, false, 8});
  Loop L = B.finalize();
  MemoryOptStats Stats = optimizeMemory(L);
  EXPECT_EQ(Stats.ForwardedLoads, 1u);
  EXPECT_EQ(countLoads(L), 1u);
  EXPECT_TRUE(isWellFormed(L));
  // The second store now stores the first load's value directly.
  unsigned Stores = 0;
  for (const Instruction &Instr : L.body())
    if (Instr.isStore()) {
      EXPECT_EQ(Instr.Operands[0], V);
      ++Stores;
    }
  EXPECT_EQ(Stores, 2u);
}

TEST(MemoryOptTest, EliminatesRedundantLoad) {
  LoopBuilder B("rle", SourceLanguage::C, 1, 64);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId C = B.load(RegClass::Float, {0, 8, 0, false, 8}); // Duplicate.
  B.store(B.fadd(A, C), {1, 8, 0, false, 8});
  Loop L = B.finalize();
  MemoryOptStats Stats = optimizeMemory(L);
  EXPECT_EQ(Stats.RedundantLoads, 1u);
  EXPECT_EQ(countLoads(L), 1u);
  EXPECT_TRUE(isWellFormed(L));
}

TEST(MemoryOptTest, InterveningStoreBlocksForwarding) {
  LoopBuilder B("blocked", SourceLanguage::C, 1, 64);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(A, {1, 8, 0, false, 8});
  // A store to the same array at the same address: must kill the entry.
  RegId C = B.load(RegClass::Float, {2, 8, 0, false, 8});
  B.store(C, {1, 8, 0, false, 8});
  RegId D = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.store(D, {3, 8, 0, false, 8});
  Loop L = B.finalize();
  optimizeMemory(L);
  // The final load of @1 must forward from the SECOND store (value C).
  for (const Instruction &Instr : L.body())
    if (Instr.isStore() && Instr.Mem.BaseSym == 3) {
      EXPECT_EQ(Instr.Operands[0], C);
    }
  EXPECT_TRUE(isWellFormed(L));
}

TEST(MemoryOptTest, DifferentOffsetsDoNotForward) {
  LoopBuilder B("offsets", SourceLanguage::C, 1, 64);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(A, {1, 8, 0, false, 8});
  RegId C = B.load(RegClass::Float, {1, 8, 8, false, 8}); // Next element.
  B.store(C, {2, 8, 0, false, 8});
  Loop L = B.finalize();
  MemoryOptStats Stats = optimizeMemory(L);
  EXPECT_EQ(Stats.ForwardedLoads, 0u);
  EXPECT_EQ(countLoads(L), 2u);
}

TEST(MemoryOptTest, CallsKillAvailability) {
  LoopBuilder B("call", SourceLanguage::C, 1, 64);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(A, {1, 8, 0, false, 8});
  B.call({});
  RegId C = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.store(C, {2, 8, 0, false, 8});
  Loop L = B.finalize();
  MemoryOptStats Stats = optimizeMemory(L);
  EXPECT_EQ(Stats.ForwardedLoads, 0u);
}

TEST(MemoryOptTest, IndirectStoresKillTheSymbol) {
  LoopBuilder B("indirect", SourceLanguage::C, 1, 64);
  RegId Index = B.load(RegClass::Int, {3, 4, 0, false, 4});
  RegId A = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.store(A, {1, 0, 0, true, 8}, Index); // May hit any element of @1.
  RegId C = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.store(C, {2, 8, 0, false, 8});
  Loop L = B.finalize();
  MemoryOptStats Stats = optimizeMemory(L);
  EXPECT_EQ(Stats.RedundantLoads, 0u);
  EXPECT_EQ(Stats.ForwardedLoads, 0u);
}

TEST(MemoryOptTest, PredicatedLoadsLeftAlone) {
  LoopBuilder B("pred", SourceLanguage::C, 1, 64);
  RegId T = B.liveIn(RegClass::Float, "t");
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  RegId Cond = B.fcmp(A, T);
  B.setPredicate(Cond);
  RegId C = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.clearPredicate();
  B.store(B.fadd(A, C), {1, 8, 0, false, 8});
  Loop L = B.finalize();
  MemoryOptStats Stats = optimizeMemory(L);
  EXPECT_EQ(Stats.RedundantLoads, 0u); // The guarded load must stay.
  EXPECT_TRUE(isWellFormed(L));
}

TEST(MemoryOptTest, UnrolledStencilDropsOverlappingLoads) {
  // x[i-1], x[i], x[i+1] at factor 2: copy 1's left tap equals copy 0's
  // right tap, so one load per overlap disappears.
  LoopBuilder B("stencil", SourceLanguage::C, 1, 256);
  RegId C0 = B.liveIn(RegClass::Float, "c0");
  RegId Sum = NoReg;
  for (int Tap = -1; Tap <= 1; ++Tap) {
    RegId X = B.load(RegClass::Float,
                     {0, 8, static_cast<int64_t>(Tap) * 8, false, 8});
    Sum = Sum == NoReg ? B.fmul(C0, X) : B.fma(C0, X, Sum);
  }
  B.store(Sum, {1, 8, 0, false, 8});
  Loop L = B.finalize();

  Loop U2 = unrollLoop(L, 2);
  unsigned Before = countLoads(U2);
  MemoryOptStats Stats = optimizeMemory(U2);
  EXPECT_GE(Stats.RedundantLoads, 2u); // Two taps shared between copies.
  EXPECT_LT(countLoads(U2), Before);
  EXPECT_TRUE(isWellFormed(U2));
}

TEST(MemoryOptTest, ForwardingBreaksMemoryCarriedChainInUnrolledBody) {
  // Memory-carried IIR: y[i] = f(y[i-1]). At factor 4, copies 1..3 load
  // what the previous copy just stored: three forwards.
  LoopBuilder B("iir", SourceLanguage::C, 1, 256);
  RegId Prev = B.load(RegClass::Float, {1, 8, -8, false, 8});
  RegId Next = B.fadd(Prev, Prev);
  B.store(Next, {1, 8, 0, false, 8});
  Loop L = B.finalize();
  Loop U4 = unrollLoop(L, 4);
  MemoryOptStats Stats = optimizeMemory(U4);
  EXPECT_EQ(Stats.ForwardedLoads, 3u);
  EXPECT_EQ(countLoads(U4), 1u);
  EXPECT_TRUE(isWellFormed(U4));
}

TEST(MemoryOptTest, PairsAdjacentLoadsAfterUnrolling) {
  // A pure streaming load: unrolling by 4 creates offsets 0,8,16,24 -
  // two wide pairs.
  LoopBuilder B("stream", SourceLanguage::C, 1, 256);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(X, {1, 8, 0, false, 8});
  Loop L = B.finalize();
  Loop U4 = unrollLoop(L, 4);
  MemoryOptStats Stats = optimizeMemory(U4);
  EXPECT_EQ(Stats.PairedLoads, 2u);
  EXPECT_EQ(countPaired(U4), 2u);
  EXPECT_TRUE(isWellFormed(U4));
}

TEST(MemoryOptTest, PairingSkipsWhenStoreIntervenes) {
  LoopBuilder B("storesplit", SourceLanguage::C, 1, 256);
  RegId A = B.load(RegClass::Float, {0, 16, 0, false, 8});
  B.store(A, {0, 16, 4, false, 4}); // Same symbol, between the loads.
  RegId C = B.load(RegClass::Float, {0, 16, 8, false, 8});
  B.store(B.fadd(A, C), {1, 8, 0, false, 8});
  Loop L = B.finalize();
  MemoryOptStats Stats = optimizeMemory(L);
  EXPECT_EQ(Stats.PairedLoads, 0u);
}

TEST(MemoryOptTest, PairedFlagRoundTripsThroughText) {
  LoopBuilder B("stream", SourceLanguage::C, 1, 256);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(X, {1, 8, 0, false, 8});
  Loop L = B.finalize();
  Loop U2 = unrollLoop(L, 2);
  optimizeMemory(U2);
  ASSERT_EQ(countPaired(U2), 1u);
  ParseResult Result = parseLoops(printLoop(U2));
  ASSERT_TRUE(Result.succeeded()) << Result.Error;
  EXPECT_EQ(countPaired(Result.Loops[0]), 1u);
  EXPECT_EQ(printLoop(Result.Loops[0]), printLoop(U2));
}

TEST(MemoryOptTest, IdempotentSecondRun) {
  LoopBuilder B("idem", SourceLanguage::C, 1, 256);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(X, {1, 8, 0, false, 8});
  RegId Y = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.store(Y, {2, 8, 0, false, 8});
  Loop L = B.finalize();
  Loop U = unrollLoop(L, 4);
  optimizeMemory(U);
  std::string After = printLoop(U);
  MemoryOptStats Second = optimizeMemory(U);
  EXPECT_EQ(Second.ForwardedLoads + Second.RedundantLoads +
                Second.PairedLoads,
            0u);
  EXPECT_EQ(printLoop(U), After);
}

/// Property: the pass preserves well-formedness and never grows the body
/// across every generator family and factor.
class MemoryOptAllKinds : public ::testing::TestWithParam<int> {};

TEST_P(MemoryOptAllKinds, PreservesWellFormedness) {
  LoopKind Kind = static_cast<LoopKind>(GetParam());
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    Rng Generator(Seed * 43 + GetParam());
    LoopGenParams Params;
    Params.Name = "memopt";
    Params.TripCount = 128;
    Params.RuntimeTripCount = 128;
    Params.SizeScale = 1 + static_cast<int>(Seed % 5);
    Loop L = generateLoop(Kind, Params, Generator);
    for (unsigned Factor : {1u, 2u, 8u}) {
      Loop U = unrollLoop(L, Factor);
      size_t Before = U.body().size();
      optimizeMemory(U);
      std::vector<std::string> Errors = verifyLoop(U);
      ASSERT_TRUE(Errors.empty())
          << loopKindName(Kind) << " seed " << Seed << " factor " << Factor
          << ": " << Errors[0];
      EXPECT_LE(U.body().size(), Before);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MemoryOptAllKinds,
                         ::testing::Range(0,
                                          static_cast<int>(NumLoopKinds)));

//===----------------------------------------------------------------------===//
// Symbolic refinement (analysis/symbolic consumed via the optional arg)
//===----------------------------------------------------------------------===//

TEST(MemoryOptSymbolicTest, AlwaysTrueGuardForwardsPredicatedStore) {
  LoopBuilder B("symfwd", SourceLanguage::C, 1, 64);
  RegId One = B.iconst(1);
  RegId Two = B.iconst(2);
  RegId P = B.icmp(One, Two); // 1 < 2: provably true every iteration.
  RegId V = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPredicate(P);
  B.store(V, {1, 8, 0, false, 8});
  B.clearPredicate();
  RegId W = B.load(RegClass::Float, {1, 8, 0, false, 8});
  B.store(W, {2, 8, 0, false, 8});
  Loop L = B.finalize();

  Loop Plain = L;
  MemoryOptStats Conservative = optimizeMemory(Plain);
  EXPECT_EQ(Conservative.ForwardedLoads, 0u);
  EXPECT_EQ(Conservative.PromotedGuards, 0u);

  SymbolicAnalysis SA(L);
  MemoryOptStats Stats = optimizeMemory(L, &SA);
  EXPECT_EQ(Stats.ForwardedLoads, 1u);
  EXPECT_GE(Stats.PromotedGuards, 1u);
  EXPECT_EQ(countLoads(L), 1u);
  EXPECT_TRUE(isWellFormed(L));
}

TEST(MemoryOptSymbolicTest, DisjointStoreKeepsAvailabilityAlive) {
  LoopBuilder B("symdisj", SourceLanguage::C, 1, 100);
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  // Same symbol, different stride: the conservative overlap check cannot
  // rule out a crossing, but the prover bounds the address gap at
  // 1024 + 8i >= 8 bytes over the whole iteration space.
  B.store(A, {0, 16, 1024, false, 8});
  RegId C = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(C, {1, 8, 0, false, 8});
  Loop L = B.finalize();

  Loop Plain = L;
  MemoryOptStats Conservative = optimizeMemory(Plain);
  EXPECT_EQ(Conservative.RedundantLoads, 0u);

  SymbolicAnalysis SA(L);
  MemoryOptStats Stats = optimizeMemory(L, &SA);
  EXPECT_EQ(Stats.RedundantLoads, 1u);
  EXPECT_GE(Stats.DisjointnessWins, 1u);
  EXPECT_EQ(countLoads(L), 1u);
  EXPECT_TRUE(isWellFormed(L));
}

TEST(MemoryOptSymbolicTest, ProvablyDeadStoreInvalidatesNothing) {
  LoopBuilder B("symdead", SourceLanguage::C, 1, 64);
  RegId One = B.iconst(1);
  RegId Two = B.iconst(2);
  RegId P = B.icmp(Two, One); // 2 < 1: provably false every iteration.
  RegId A = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.setPredicate(P);
  B.store(A, {0, 8, 0, false, 8}); // Dead; must not kill A's availability.
  B.clearPredicate();
  RegId C = B.load(RegClass::Float, {0, 8, 0, false, 8});
  B.store(C, {1, 8, 0, false, 8});
  Loop L = B.finalize();

  Loop Plain = L;
  MemoryOptStats Conservative = optimizeMemory(Plain);
  EXPECT_EQ(Conservative.RedundantLoads, 0u);

  SymbolicAnalysis SA(L);
  MemoryOptStats Stats = optimizeMemory(L, &SA);
  EXPECT_EQ(Stats.RedundantLoads, 1u);
  EXPECT_EQ(Stats.DeadStoresIgnored, 1u);
  EXPECT_TRUE(isWellFormed(L));
}

TEST(MemoryOptSymbolicTest, DisjointInterveningStoreAllowsPairing) {
  LoopBuilder B("sympair", SourceLanguage::C, 1, 100);
  RegId X = B.load(RegClass::Float, {0, 8, 0, false, 8});
  // A same-symbol store between the two pairable loads conservatively
  // blocks the pair; the prover certifies it writes 4096 + 0*i bytes
  // away from both halves.
  B.store(X, {0, 8, 4096, false, 8});
  RegId Y = B.load(RegClass::Float, {0, 8, 8, false, 8});
  RegId S = B.fadd(X, Y);
  B.store(S, {1, 8, 0, false, 8});
  Loop L = B.finalize();

  Loop Plain = L;
  MemoryOptStats Conservative = optimizeMemory(Plain);
  EXPECT_EQ(Conservative.PairedLoads, 0u);

  SymbolicAnalysis SA(L);
  MemoryOptStats Stats = optimizeMemory(L, &SA);
  EXPECT_EQ(Stats.PairedLoads, 1u);
  EXPECT_GE(Stats.DisjointnessWins, 1u);
  EXPECT_TRUE(isWellFormed(L));
}

/// Property: across every generator family, the refined pass is at least
/// as effective as the conservative one and still preserves
/// well-formedness (the memory-opt fuzz oracle separately checks semantic
/// equivalence against the interpreter).
TEST(MemoryOptSymbolicTest, RefinementNeverLosesToConservative) {
  for (int Kind = 0; Kind < static_cast<int>(NumLoopKinds); ++Kind) {
    for (uint64_t Seed = 0; Seed < 10; ++Seed) {
      Rng Generator(Seed * 97 + Kind);
      LoopGenParams Params;
      Params.Name = "symopt";
      Params.TripCount = 128;
      Params.RuntimeTripCount = 128;
      Loop L = generateLoop(static_cast<LoopKind>(Kind), Params, Generator);
      Loop U = unrollLoop(L, 4);
      Loop Refined = U;
      MemoryOptStats Plain = optimizeMemory(U);
      SymbolicAnalysis SA(Refined);
      MemoryOptStats Sym = optimizeMemory(Refined, &SA);
      EXPECT_GE(Sym.ForwardedLoads + Sym.RedundantLoads,
                Plain.ForwardedLoads + Plain.RedundantLoads);
      EXPECT_TRUE(isWellFormed(Refined));
    }
  }
}
