//===- tests/ml_extensions_test.cpp - Tests for the ML extensions ---------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Covers the extensions the paper sketches: the decision-tree comparator,
// kernel ridge regression (Section 8's future work), approximate near
// neighbors via LSH (Section 5.1's scalability claim), and the confidence
// triage tool (Section 5.1's outlier-inspection idea).
//
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "core/driver/OutlierTriage.h"
#include "core/ml/DecisionTree.h"
#include "core/ml/Forest.h"
#include "core/ml/Lsh.h"
#include "core/ml/Mlp.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/Regression.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace metaopt;

namespace {

/// Same synthetic dataset family as ml_test: label = 1 + (f0>0) + 2*(f1>0).
Dataset cleanDataset(size_t N, uint64_t Seed, double LabelNoise = 0.0) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextGaussian();
    double F1 = Generator.nextGaussian();
    Ex.Features[0] = F0;
    Ex.Features[1] = F1;
    Ex.Features[2] = Generator.nextGaussian() * 10.0;
    Ex.Features[3] = Generator.nextGaussian() * 0.1;
    unsigned Label = 1 + (F0 > 0 ? 1 : 0) + (F1 > 0 ? 2 : 0);
    if (Generator.nextBool(LabelNoise))
      Label = 1 + static_cast<unsigned>(Generator.nextBelow(4));
    Ex.Label = Label;
    for (unsigned F = 0; F < MaxUnrollFactor; ++F)
      Ex.CyclesPerFactor[F] =
          1000.0 + 100.0 * std::abs(static_cast<int>(F + 1) -
                                    static_cast<int>(Label));
    Ex.LoopName = "loop" + std::to_string(I);
    Ex.BenchmarkName = "bench" + std::to_string(I % 5);
    Data.add(std::move(Ex));
  }
  return Data;
}

/// A regression-flavored dataset: the *value* of the label grows linearly
/// with f0, so a regressor can interpolate and extrapolate.
Dataset linearDataset(size_t N, uint64_t Seed) {
  Rng Generator(Seed);
  Dataset Data;
  for (size_t I = 0; I < N; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextDoubleInRange(-1.0, 1.0);
    Ex.Features[0] = F0;
    Ex.Features[1] = Generator.nextGaussian() * 0.01;
    // Factor rises smoothly from 2 to 7 across f0's range.
    Ex.Label = static_cast<unsigned>(
        std::clamp<long>(std::lround(4.5 + 2.5 * F0), 1, 8));
    Ex.CyclesPerFactor.fill(1000.0);
    Ex.LoopName = "lin" + std::to_string(I);
    Ex.BenchmarkName = "linbench";
    Data.add(std::move(Ex));
  }
  return Data;
}

FeatureSet firstTwoFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1)};
}

FeatureSet firstFourFeatures() {
  return {static_cast<FeatureId>(0), static_cast<FeatureId>(1),
          static_cast<FeatureId>(2), static_cast<FeatureId>(3)};
}

} // namespace

//===----------------------------------------------------------------------===//
// Decision tree
//===----------------------------------------------------------------------===//

TEST(DecisionTreeTest, LearnsCleanRule) {
  Dataset Train = cleanDataset(400, 50);
  Dataset Test = cleanDataset(150, 51);
  DecisionTreeClassifier Tree(firstTwoFeatures());
  Tree.train(Train);
  EXPECT_GT(Tree.accuracyOn(Test), 0.9);
  EXPECT_GT(Tree.numNodes(), 3u); // Must actually have split.
}

TEST(DecisionTreeTest, IgnoresDistractors) {
  Dataset Train = cleanDataset(400, 52);
  Dataset Test = cleanDataset(150, 53);
  DecisionTreeClassifier Tree(firstFourFeatures());
  Tree.train(Train);
  EXPECT_GT(Tree.accuracyOn(Test), 0.85);
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  Dataset Train = cleanDataset(500, 54, /*LabelNoise=*/0.3);
  DecisionTreeOptions Options;
  Options.MaxDepth = 3;
  DecisionTreeClassifier Tree(firstTwoFeatures(), Options);
  Tree.train(Train);
  EXPECT_LE(Tree.depth(), 3u);
}

TEST(DecisionTreeTest, PureDataMakesOneLeaf) {
  Dataset Data;
  Rng Generator(55);
  for (int I = 0; I < 40; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    Ex.Features[0] = Generator.nextGaussian();
    Ex.Label = 5;
    Ex.CyclesPerFactor.fill(1.0);
    Ex.LoopName = "pure" + std::to_string(I);
    Data.add(Ex);
  }
  DecisionTreeClassifier Tree(firstTwoFeatures());
  Tree.train(Data);
  EXPECT_EQ(Tree.numNodes(), 1u);
  EXPECT_EQ(Tree.predict(Data[0].Features), 5u);
}

TEST(DecisionTreeTest, MinLeafSizeStopsGrowth) {
  Dataset Train = cleanDataset(60, 56, 0.2);
  DecisionTreeOptions Small;
  Small.MinLeafSize = 1;
  DecisionTreeOptions Large;
  Large.MinLeafSize = 25;
  DecisionTreeClassifier Fine(firstTwoFeatures(), Small);
  DecisionTreeClassifier Coarse(firstTwoFeatures(), Large);
  Fine.train(Train);
  Coarse.train(Train);
  EXPECT_GT(Fine.numNodes(), Coarse.numNodes());
}

//===----------------------------------------------------------------------===//
// Random forest
//===----------------------------------------------------------------------===//

TEST(RandomForestTest, LearnsCleanRule) {
  Dataset Train = cleanDataset(400, 90);
  Dataset Test = cleanDataset(150, 91);
  RandomForestClassifier Forest(firstTwoFeatures());
  Forest.train(Train);
  EXPECT_GT(Forest.accuracyOn(Test), 0.9);
  EXPECT_EQ(Forest.numTrees(), RandomForestOptions().NumTrees);
}

TEST(RandomForestTest, BeatsASingleTreeOnNoisyData) {
  // Bagging's raison d'être: averaging over bootstrap resamples smooths
  // out label noise a single greedy tree overfits to.
  Dataset Train = cleanDataset(400, 92, /*LabelNoise=*/0.35);
  Dataset Test = cleanDataset(200, 93);
  DecisionTreeOptions Deep;
  Deep.MaxDepth = 12;
  Deep.MinLeafSize = 1;
  Deep.PurityThreshold = 1.0;
  DecisionTreeClassifier Tree(firstTwoFeatures(), Deep);
  RandomForestOptions Options;
  Options.Tree = Deep;
  RandomForestClassifier Forest(firstTwoFeatures(), Options);
  Tree.train(Train);
  Forest.train(Train);
  EXPECT_GE(Forest.accuracyOn(Test) + 1e-9, Tree.accuracyOn(Test));
}

TEST(RandomForestTest, ScoresAreVoteFractions) {
  Dataset Train = cleanDataset(300, 94);
  Dataset Queries = cleanDataset(30, 95);
  RandomForestClassifier Forest(firstTwoFeatures());
  Forest.train(Train);
  for (const Example &Ex : Queries.examples()) {
    auto Scores = Forest.scores(Ex.Features);
    double Sum = 0.0;
    for (double Score : Scores) {
      EXPECT_GE(Score, 0.0);
      Sum += Score;
    }
    EXPECT_NEAR(Sum, 1.0, 1e-12);
    // Each entry is a multiple of 1/NumTrees.
    for (double Score : Scores) {
      double Scaled = Score * Forest.numTrees();
      EXPECT_NEAR(Scaled, std::round(Scaled), 1e-9);
    }
  }
}

TEST(RandomForestTest, FeatureFractionOneUsesAllFeatures) {
  Dataset Train = cleanDataset(200, 96);
  RandomForestOptions Options;
  Options.FeatureFraction = 1.0;
  Options.NumTrees = 4;
  RandomForestClassifier Forest(firstTwoFeatures(), Options);
  Forest.train(Train);
  // With the full feature set and a strong rule, the forest must be
  // essentially as accurate as a single full tree.
  EXPECT_GT(Forest.accuracyOn(Train), 0.9);
}

//===----------------------------------------------------------------------===//
// Thread-count byte identity (the model-zoo determinism contract)
//===----------------------------------------------------------------------===//

TEST(ModelZooDeterminismTest, ForestBytesIdenticalAtOneVsManyThreads) {
  Dataset Train = cleanDataset(300, 97, /*LabelNoise=*/0.1);
  auto trainSerialized = [&](unsigned Threads) {
    ThreadPool::setGlobalThreads(Threads);
    RandomForestClassifier Forest(firstFourFeatures());
    Forest.train(Train);
    return Forest.serialize();
  };
  std::string OneThread = trainSerialized(1);
  std::string FourThreads = trainSerialized(4);
  ThreadPool::setGlobalThreads(0); // Restore the default pool.
  EXPECT_EQ(OneThread, FourThreads);
}

TEST(ModelZooDeterminismTest, MlpBytesIdenticalAtOneVsManyThreads) {
  Dataset Train = cleanDataset(300, 98, /*LabelNoise=*/0.1);
  auto trainSerialized = [&](unsigned Threads) {
    ThreadPool::setGlobalThreads(Threads);
    MlpClassifier Mlp(firstFourFeatures());
    Mlp.train(Train);
    return Mlp.serialize();
  };
  std::string OneThread = trainSerialized(1);
  std::string FourThreads = trainSerialized(4);
  ThreadPool::setGlobalThreads(0); // Restore the default pool.
  EXPECT_EQ(OneThread, FourThreads);
}

//===----------------------------------------------------------------------===//
// Kernel ridge regression
//===----------------------------------------------------------------------===//

TEST(RegressionTest, InterpolatesLinearTrend) {
  Dataset Train = linearDataset(300, 60);
  KrrUnrollRegressor Krr(firstTwoFeatures());
  Krr.train(Train);
  // Mid-range query: factor should be near 4.5.
  FeatureVector Query = {};
  Query[0] = 0.0;
  double Value = Krr.predictValue(Query);
  EXPECT_NEAR(Value, 4.5, 0.8);
  unsigned Rounded = Krr.predict(Query);
  EXPECT_GE(Rounded, 4u);
  EXPECT_LE(Rounded, 5u);
}

TEST(RegressionTest, PredictionsOrderedAlongTrend) {
  Dataset Train = linearDataset(300, 61);
  KrrUnrollRegressor Krr(firstTwoFeatures());
  Krr.train(Train);
  FeatureVector Low = {}, High = {};
  Low[0] = -0.9;
  High[0] = 0.9;
  EXPECT_LT(Krr.predictValue(Low), Krr.predictValue(High));
}

TEST(RegressionTest, PredictClampedToFactorRange) {
  Dataset Train = linearDataset(300, 62);
  KrrUnrollRegressor Krr(firstTwoFeatures());
  Krr.train(Train);
  FeatureVector Extreme = {};
  Extreme[0] = 5.0; // Far outside the training range.
  unsigned Factor = Krr.predict(Extreme);
  EXPECT_GE(Factor, 1u);
  EXPECT_LE(Factor, MaxUnrollFactor);
}

TEST(RegressionTest, RawValueCanLeaveLabelRange) {
  // The capability Section 8 wants: with a steep trend and an
  // extrapolating query, the raw value escapes [1, 8].
  Dataset Data;
  Rng Generator(63);
  for (int I = 0; I < 200; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    double F0 = Generator.nextDoubleInRange(0.8, 1.0);
    Ex.Features[0] = F0;
    Ex.Label = 8;
    Ex.CyclesPerFactor.fill(1.0);
    Ex.LoopName = "edge" + std::to_string(I);
    Data.add(Ex);
  }
  // A second cluster at low factors to give the trend slope.
  for (int I = 0; I < 200; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    Ex.Features[0] = Generator.nextDoubleInRange(-1.0, -0.8);
    Ex.Label = 1;
    Ex.CyclesPerFactor.fill(1.0);
    Ex.LoopName = "low" + std::to_string(I);
    Data.add(Ex);
  }
  KrrOptions Options;
  Options.Gamma = 100.0;
  KrrUnrollRegressor Krr(firstTwoFeatures(), Options);
  Krr.train(Data);
  FeatureVector Beyond = {};
  Beyond[0] = 1.15; // Further than any training point.
  // The raw value may exceed 8 (no hard requirement on magnitude, but it
  // must at least reach the top cluster's value).
  EXPECT_GT(Krr.predictValue(Beyond), 7.0);
  EXPECT_EQ(Krr.predict(Beyond), 8u);
}

TEST(RegressionTest, LooValuesCloseToTargetsOnCleanData) {
  Dataset Train = linearDataset(200, 64);
  KrrUnrollRegressor Krr(firstTwoFeatures());
  Krr.train(Train);
  std::vector<double> Loo = Krr.looValues();
  ASSERT_EQ(Loo.size(), Train.size());
  double ErrorSum = 0.0;
  for (size_t I = 0; I < Train.size(); ++I)
    ErrorSum += std::abs(Loo[I] - Train[I].Label);
  EXPECT_LT(ErrorSum / Train.size(), 0.75);
}

//===----------------------------------------------------------------------===//
// LSH near neighbors
//===----------------------------------------------------------------------===//

TEST(LshTest, MatchesExactNnOnCleanData) {
  Dataset Train = cleanDataset(600, 70);
  Dataset Test = cleanDataset(200, 71);
  NearNeighborClassifier Exact(firstTwoFeatures(), 0.3);
  LshNearNeighborClassifier Approx(firstTwoFeatures());
  Exact.train(Train);
  Approx.train(Train);
  size_t Agree = 0;
  for (const Example &Ex : Test.examples())
    Agree += Exact.predict(Ex.Features) == Approx.predict(Ex.Features);
  EXPECT_GT(static_cast<double>(Agree) / Test.size(), 0.9);
}

TEST(LshTest, ScansFarFewerCandidates) {
  Dataset Train = cleanDataset(2000, 72);
  LshNearNeighborClassifier Approx(firstFourFeatures());
  Approx.train(Train);
  size_t Total = 0;
  Dataset Queries = cleanDataset(50, 73);
  for (const Example &Ex : Queries.examples()) {
    Approx.predict(Ex.Features);
    Total += Approx.lastCandidateCount();
  }
  double MeanCandidates = static_cast<double>(Total) / Queries.size();
  // The sublinear claim: way below the database size on average.
  EXPECT_LT(MeanCandidates, 0.5 * Approx.databaseSize());
}

TEST(LshTest, FallsBackWhenBucketsEmpty) {
  // One-point database: any query must still answer via the fallback.
  Dataset Tiny = cleanDataset(1, 74);
  LshNearNeighborClassifier Approx(firstTwoFeatures());
  Approx.train(Tiny);
  FeatureVector Far = {};
  Far[0] = 100.0;
  Far[1] = -100.0;
  EXPECT_EQ(Approx.predict(Far), Tiny[0].Label);
}

TEST(LshTest, DeterministicForFixedSeed) {
  Dataset Train = cleanDataset(300, 75);
  LshNearNeighborClassifier A(firstTwoFeatures());
  LshNearNeighborClassifier B(firstTwoFeatures());
  A.train(Train);
  B.train(Train);
  Dataset Queries = cleanDataset(50, 76);
  for (const Example &Ex : Queries.examples())
    EXPECT_EQ(A.predict(Ex.Features), B.predict(Ex.Features));
}

TEST(LshTest, MoreTablesImproveAgreementWithExact) {
  Dataset Train = cleanDataset(800, 77, /*LabelNoise=*/0.1);
  Dataset Test = cleanDataset(300, 78, 0.1);
  NearNeighborClassifier Exact(firstFourFeatures(), 0.3);
  Exact.train(Train);
  auto Agreement = [&](unsigned Tables) {
    LshOptions Options;
    Options.NumTables = Tables;
    LshNearNeighborClassifier Approx(firstFourFeatures(), Options);
    Approx.train(Train);
    size_t Agree = 0;
    for (const Example &Ex : Test.examples())
      Agree += Exact.predict(Ex.Features) == Approx.predict(Ex.Features);
    return static_cast<double>(Agree) / Test.size();
  };
  EXPECT_GE(Agreement(12) + 0.02, Agreement(1));
}

//===----------------------------------------------------------------------===//
// Outlier triage
//===----------------------------------------------------------------------===//

TEST(OutlierTriageTest, CleanDataHasFewOutliers) {
  Dataset Data = cleanDataset(400, 80);
  TriageReport Report = triageOutliers(Data, firstTwoFeatures());
  EXPECT_LT(static_cast<double>(Report.Outliers.size()) /
                Report.TotalExamples,
            0.25);
  EXPECT_GT(Report.ConfidentAccuracy, 0.9);
}

TEST(OutlierTriageTest, NoisyExamplesGetFlagged) {
  // Plant contradictory twins: identical features, conflicting labels.
  Dataset Data = cleanDataset(300, 81);
  Rng Generator(82);
  for (int I = 0; I < 30; ++I) {
    Example Ex;
    Ex.Features.fill(0.0);
    Ex.Features[0] = 0.001 * Generator.nextGaussian();
    Ex.Features[1] = 0.001 * Generator.nextGaussian();
    Ex.Label = 1 + static_cast<unsigned>(Generator.nextBelow(8));
    Ex.CyclesPerFactor.fill(1000.0);
    Ex.LoopName = "conflicted" + std::to_string(I);
    Ex.BenchmarkName = "noisy";
    Data.add(Ex);
  }
  TriageReport Report = triageOutliers(Data, firstTwoFeatures());
  // A good share of the planted conflicts must be flagged.
  size_t FlaggedConflicts = 0;
  for (const OutlierRecord &Record : Report.Outliers)
    FlaggedConflicts += Record.BenchmarkName == "noisy";
  EXPECT_GT(FlaggedConflicts, 10u);
  // And flagged examples must predict worse than confident ones.
  EXPECT_GT(Report.ConfidentAccuracy, Report.OutlierAccuracy);
}

TEST(OutlierTriageTest, SortedByConfidence) {
  Dataset Data = cleanDataset(300, 83, /*LabelNoise=*/0.25);
  TriageReport Report = triageOutliers(Data, firstTwoFeatures());
  for (size_t I = 1; I < Report.Outliers.size(); ++I)
    EXPECT_LE(Report.Outliers[I - 1].Confidence,
              Report.Outliers[I].Confidence + 1e-12);
}

TEST(OutlierTriageTest, ThresholdControlsVolume) {
  Dataset Data = cleanDataset(300, 84, 0.2);
  TriageOptions Strict;
  Strict.ConfidenceThreshold = 0.9;
  TriageOptions Lenient;
  Lenient.ConfidenceThreshold = 0.2;
  TriageReport Many = triageOutliers(Data, firstTwoFeatures(), Strict);
  TriageReport Few = triageOutliers(Data, firstTwoFeatures(), Lenient);
  EXPECT_GE(Many.Outliers.size(), Few.Outliers.size());
}

TEST(OutlierTriageTest, RecordsCarryCostInformation) {
  Dataset Data = cleanDataset(200, 85, 0.3);
  TriageReport Report = triageOutliers(Data, firstTwoFeatures());
  for (const OutlierRecord &Record : Report.Outliers) {
    EXPECT_GE(Record.MispredictCost, 1.0 - 1e-12);
    EXPECT_GE(Record.Label, 1u);
    EXPECT_LE(Record.Label, MaxUnrollFactor);
    EXPECT_FALSE(Record.LoopName.empty());
  }
}
