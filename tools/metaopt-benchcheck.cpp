//===- tools/metaopt-benchcheck.cpp - Bench-row validator -----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates a bench trajectory file (newline-delimited flat JSON rows,
/// e.g. the repo-root BENCH_pipeline.json rewritten by
/// bench/microbench_pipeline) for the CI bench-smoke job (docs/PERF.md):
///
///  * every row must parse as a flat JSON object and carry the required
///    keys for its experiment;
///  * every identity flag present must be true — any boolean key whose
///    name contains "match" (csv_matches_serial, matches_reference,
///    findings_match_serial, ...) is a correctness contract, not a
///    metric;
///  * every floor row in the --floor file must match at least one bench
///    row and that row must meet the floor.
///
/// A floor file is the same flat-JSON-rows format. In a floor row, a
/// key named `min_<metric>` asserts `row.<metric> >= value` and a key
/// named `max_<metric>` asserts `row.<metric> <= value` on the matched
/// row; every other key is an exact-match selector. So
///
///   {"experiment": "labeling", "mode": "production", "threads": 4,
///    "min_speedup_vs_serial": 1.50}
///
/// fails the run unless a production labeling row at 4 threads exists
/// with speedup_vs_serial >= 1.5 (bench/perf_floor.json is the floor
/// the CI bench-smoke job enforces; bench/serve_floor.json gates the
/// serving soak, e.g. {"experiment": "serve_soak", "max_errors": 0}).
/// Exit status: 0 clean, 1 any validation failure.
///
/// Usage:
///   metaopt-benchcheck --floor=bench/perf_floor.json BENCH_pipeline.json
///
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

/// One flat JSON scalar: string, number, boolean, or null (the
/// generalization bench serializes the missing LOOCV side of its
/// calibration rows as null).
struct Value {
  enum Kind { Str, Num, Bool, Null } K = Str;
  std::string S;
  double N = 0.0;
  bool B = false;

  std::string describe() const {
    switch (K) {
    case Str:
      return "\"" + S + "\"";
    case Num:
      return std::to_string(N);
    case Bool:
      return B ? "true" : "false";
    case Null:
      return "null";
    }
    return "?";
  }
};

using Row = std::map<std::string, Value>;

/// Parses one flat JSON object ({"key": scalar, ...}); no nesting, no
/// arrays, no escape sequences beyond \" — exactly what the benches
/// emit. Returns false with \p Error set on malformed input.
bool parseRow(const std::string &Line, Row &Out, std::string &Error) {
  size_t I = 0;
  auto SkipWs = [&] {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
  };
  auto Fail = [&](const std::string &Why) {
    Error = Why + " at byte " + std::to_string(I);
    return false;
  };
  SkipWs();
  if (I >= Line.size() || Line[I] != '{')
    return Fail("expected '{'");
  ++I;
  SkipWs();
  if (I < Line.size() && Line[I] == '}')
    return true; // Empty object.
  for (;;) {
    SkipWs();
    if (I >= Line.size() || Line[I] != '"')
      return Fail("expected key string");
    ++I;
    std::string Key;
    while (I < Line.size() && Line[I] != '"')
      Key += Line[I++];
    if (I >= Line.size())
      return Fail("unterminated key");
    ++I;
    SkipWs();
    if (I >= Line.size() || Line[I] != ':')
      return Fail("expected ':'");
    ++I;
    SkipWs();
    Value V;
    if (I < Line.size() && Line[I] == '"') {
      ++I;
      V.K = Value::Str;
      while (I < Line.size() && Line[I] != '"') {
        if (Line[I] == '\\' && I + 1 < Line.size())
          ++I;
        V.S += Line[I++];
      }
      if (I >= Line.size())
        return Fail("unterminated string");
      ++I;
    } else if (Line.compare(I, 4, "true") == 0) {
      V.K = Value::Bool;
      V.B = true;
      I += 4;
    } else if (Line.compare(I, 5, "false") == 0) {
      V.K = Value::Bool;
      V.B = false;
      I += 5;
    } else if (Line.compare(I, 4, "null") == 0) {
      V.K = Value::Null;
      I += 4;
    } else {
      const char *Begin = Line.c_str() + I;
      char *End = nullptr;
      V.K = Value::Num;
      V.N = std::strtod(Begin, &End);
      if (End == Begin)
        return Fail("expected value");
      I += static_cast<size_t>(End - Begin);
    }
    Out.emplace(Key, V);
    SkipWs();
    if (I < Line.size() && Line[I] == ',') {
      ++I;
      continue;
    }
    if (I < Line.size() && Line[I] == '}')
      return true;
    return Fail("expected ',' or '}'");
  }
}

bool readRows(const std::string &Path, std::vector<Row> &Out,
              unsigned &Failures) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "metaopt-benchcheck: cannot open %s\n",
                 Path.c_str());
    return false;
  }
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    Row R;
    std::string Error;
    if (!parseRow(Line, R, Error)) {
      std::fprintf(stderr, "%s:%u: malformed row: %s\n", Path.c_str(),
                   LineNo, Error.c_str());
      ++Failures;
      continue;
    }
    Out.push_back(std::move(R));
  }
  return true;
}

/// Required keys per experiment, mirroring what microbench_pipeline
/// emits. A missing "experiment" key or an unlisted experiment fails:
/// new experiments must be registered here so CI keeps validating them.
const std::map<std::string, std::vector<std::string>> &requiredKeys() {
  static const std::map<std::string, std::vector<std::string>> Schema = {
      {"labeling",
       {"corpus", "swp", "mode", "threads", "hw_threads", "loops",
        "usable", "seconds", "speedup_vs_serial", "csv_matches_serial",
        "cache_hits", "cache_misses", "cache_inserts"}},
      {"labeling_prune",
       {"corpus", "swp", "pruned", "loops", "classes", "sims_run",
        "sims_pruned", "pruning_rate", "seconds", "speedup_vs_unpruned",
        "csv_matches_unpruned"}},
      {"labeling_cache",
       {"phase", "seconds", "speedup_vs_cold", "cache_hits",
        "cache_misses", "cache_inserts", "cache_entries",
        "persistent_loaded", "csv_matches_uncached"}},
      {"serve_soak",
       {"mode", "duration_s", "clients", "completed", "errors",
        "reconnects", "expected_closes", "oversized_rejects",
        "bundle_swaps", "throughput_rps", "p50_ms", "p99_ms", "p999_ms",
        "matches_reference"}},
      {"lint_sweep",
       {"threads", "loops", "errors", "warnings", "notes", "seconds",
        "speedup_vs_serial", "findings_match_serial"}},
      {"classifier_microbench",
       {"benchmark", "iterations", "real_ns", "cpu_ns"}},
      {"generalization",
       {"classifier", "loocv_accuracy", "imported_accuracy",
        "imported_top2", "imported_mean_cost", "imported_speedup", "gap",
        "imported_fingerprint"}},
      {"generalization_corpus",
       {"synthetic_loops", "imported_loops", "imported_pass_filters",
        "imported_fingerprint"}},
  };
  return Schema;
}

bool valuesMatch(const Value &A, const Value &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Value::Str:
    return A.S == B.S;
  case Value::Num:
    return A.N == B.N;
  case Value::Bool:
    return A.B == B.B;
  case Value::Null:
    return true;
  }
  return false;
}

std::string describeRow(const Row &R) {
  std::string Text = "{";
  for (const auto &[Key, V] : R) {
    if (Text.size() > 1)
      Text += ", ";
    Text += Key + ": " + V.describe();
    if (Text.size() > 120) {
      Text += ", ...";
      break;
    }
  }
  return Text + "}";
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-benchcheck",
                "Validates newline-delimited flat-JSON bench rows "
                "(BENCH_*.json):\nschema per experiment, byte-identity "
                "flags, and perf floors (docs/PERF.md).");
  Cli.option("floor", "file", "flat-JSON floor rows to enforce");
  Cli.positionalHelp("<bench.json>", "bench trajectory file to validate");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;
  if (Cli.positional().size() != 1) {
    std::fprintf(stderr, "metaopt-benchcheck: expected one bench file\n%s",
                 Cli.usage().c_str());
    return 2;
  }

  unsigned Failures = 0;
  std::vector<Row> Rows;
  if (!readRows(Cli.positional().front(), Rows, Failures))
    return 1;
  if (Rows.empty()) {
    std::fprintf(stderr, "metaopt-benchcheck: no bench rows found\n");
    return 1;
  }

  // Schema: every row names a known experiment and carries its keys.
  for (const Row &R : Rows) {
    auto Exp = R.find("experiment");
    if (Exp == R.end() || Exp->second.K != Value::Str) {
      std::fprintf(stderr, "row missing \"experiment\": %s\n",
                   describeRow(R).c_str());
      ++Failures;
      continue;
    }
    auto Schema = requiredKeys().find(Exp->second.S);
    if (Schema == requiredKeys().end()) {
      std::fprintf(stderr,
                   "unknown experiment \"%s\" (register its required keys "
                   "in metaopt-benchcheck)\n",
                   Exp->second.S.c_str());
      ++Failures;
      continue;
    }
    for (const std::string &Key : Schema->second)
      if (!R.count(Key)) {
        std::fprintf(stderr, "%s row missing \"%s\": %s\n",
                     Exp->second.S.c_str(), Key.c_str(),
                     describeRow(R).c_str());
        ++Failures;
      }
    // Identity flags are contracts: false is always a failure. The
    // csv_matches_* family must additionally be boolean; any other key
    // naming a match is only held to the contract when it is one.
    for (const auto &[Key, V] : R) {
      bool Contract =
          Key.rfind("csv_matches_", 0) == 0 ||
          (Key.find("match") != std::string::npos && V.K == Value::Bool);
      if (Contract && (V.K != Value::Bool || !V.B)) {
        std::fprintf(stderr, "identity contract broken (%s): %s\n",
                     Key.c_str(), describeRow(R).c_str());
        ++Failures;
      }
    }
  }

  // Floors: each floor row must match a bench row meeting every min_*
  // floor and max_* ceiling; the remaining keys are exact-match
  // selectors.
  if (Cli.has("floor")) {
    std::vector<Row> Floors;
    if (!readRows(Cli.getString("floor"), Floors, Failures))
      return 1;
    for (const Row &Floor : Floors) {
      bool Matched = false;
      for (const Row &R : Rows) {
        bool Selected = true;
        for (const auto &[Key, V] : Floor) {
          if (Key.rfind("min_", 0) == 0 || Key.rfind("max_", 0) == 0)
            continue;
          auto It = R.find(Key);
          if (It == R.end() || !valuesMatch(It->second, V)) {
            Selected = false;
            break;
          }
        }
        if (!Selected)
          continue;
        Matched = true;
        for (const auto &[Key, V] : Floor) {
          bool IsMin = Key.rfind("min_", 0) == 0;
          bool IsMax = Key.rfind("max_", 0) == 0;
          if (!IsMin && !IsMax)
            continue;
          std::string Metric = Key.substr(4);
          auto It = R.find(Metric);
          if (It == R.end() || It->second.K != Value::Num) {
            std::fprintf(stderr, "floor metric \"%s\" absent: %s\n",
                         Metric.c_str(), describeRow(R).c_str());
            ++Failures;
          } else if (IsMin && It->second.N < V.N) {
            std::fprintf(stderr,
                         "floor violated: %s = %.3f < %.3f in %s\n",
                         Metric.c_str(), It->second.N, V.N,
                         describeRow(R).c_str());
            ++Failures;
          } else if (IsMax && It->second.N > V.N) {
            std::fprintf(stderr,
                         "ceiling violated: %s = %.3f > %.3f in %s\n",
                         Metric.c_str(), It->second.N, V.N,
                         describeRow(R).c_str());
            ++Failures;
          }
        }
      }
      if (!Matched) {
        std::fprintf(stderr, "no bench row matches floor selector %s\n",
                     describeRow(Floor).c_str());
        ++Failures;
      }
    }
  }

  if (Failures) {
    std::fprintf(stderr, "metaopt-benchcheck: %u failure(s) over %zu rows\n",
                 Failures, Rows.size());
    return 1;
  }
  std::printf("metaopt-benchcheck: %zu rows clean\n", Rows.size());
  return 0;
}
