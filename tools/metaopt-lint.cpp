//===- tools/metaopt-lint.cpp - IR diagnostics driver ---------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metaopt-lint command-line tool: runs the lint engine over textual
/// loop files or the built-in benchmark corpus, sweeping loops in parallel
/// on the work-stealing runtime. stdout carries only diagnostics and the
/// summary, assembled by stable loop index, so the output is byte-identical
/// at --threads=1 and --threads=N; timing goes to stderr. Exit status: 0
/// when no error-severity diagnostics were produced, 1 when some were, 2
/// on usage or input errors.
///
//===----------------------------------------------------------------------===//

#include "concurrency/Parallel.h"
#include "corpus/CorpusAudit.h"
#include "import/Import.h"
#include "ir/Diagnostics.h"
#include "ir/Parser.h"
#include "support/CommandLine.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

struct ToolOptions {
  bool Corpus = false;
  bool Json = false;
  LintOptions Lint;
  std::vector<std::string> Files;
};

void listPasses() {
  for (const LintPass &Pass : lintPasses())
    std::cout << Pass.Id << "  (" << severityName(Pass.Sev) << ")  "
              << Pass.Summary << "\n";
}

/// Splits "L001,L007" into its comma-separated pieces.
std::vector<std::string> splitList(const std::string &Value) {
  std::vector<std::string> Parts;
  std::string Piece;
  std::istringstream Stream(Value);
  while (std::getline(Stream, Piece, ','))
    if (!Piece.empty())
      Parts.push_back(Piece);
  return Parts;
}

/// One lintable unit with its provenance for report headers and, for
/// imported loops, the declared symbol context the A-series passes check.
struct Unit {
  std::string Origin; ///< File name or benchmark name.
  Loop TheLoop;
  LoopSymbolContext Symbols;
};

int lintUnits(const std::vector<Unit> &Units, const ToolOptions &Options) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<DiagnosticReport> Reports = parallelMap<DiagnosticReport>(
      Units.size(),
      [&](size_t I) {
        LintOptions Lint = Options.Lint;
        Lint.Symbols = &Units[I].Symbols;
        return lintLoop(Units[I].TheLoop, Lint);
      });
  auto End = std::chrono::steady_clock::now();

  size_t Errors = 0, Warnings = 0, Notes = 0;
  for (size_t I = 0; I < Units.size(); ++I) {
    const DiagnosticReport &Report = Reports[I];
    Errors += Report.errorCount();
    Warnings += Report.warningCount();
    Notes += Report.noteCount();
    if (Report.empty())
      continue;
    if (Options.Json) {
      for (const Diagnostic &D : Report.diagnostics())
        std::cout << renderDiagnosticJson(D, Units[I].Origin) << "\n";
    } else {
      std::cout << "# " << Units[I].Origin << " / "
                << Units[I].TheLoop.name() << "\n"
                << Report.renderText();
    }
  }

  if (Options.Json)
    std::cout << "{\"summary\":{\"loops\":" << Units.size()
              << ",\"errors\":" << Errors << ",\"warnings\":" << Warnings
              << ",\"notes\":" << Notes << "}}\n";
  else
    std::cout << "metaopt-lint: " << Units.size() << " loops, " << Errors
              << " errors, " << Warnings << " warnings, " << Notes
              << " notes\n";

  double Ms = std::chrono::duration<double, std::milli>(End - Start).count();
  std::cerr << "metaopt-lint: swept " << Units.size() << " loops in " << Ms
            << " ms on " << ThreadPool::global().threadCount()
            << " threads\n";
  return Errors != 0 ? 1 : 0;
}

int runCorpus(const ToolOptions &Options) {
  std::vector<Benchmark> Corpus = buildCorpus();
  std::vector<Unit> Units;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops)
      Units.push_back({Bench.Name, Entry.TheLoop, {}});
  return lintUnits(Units, Options);
}

/// True for files in the mloop interchange format (docs/IMPORT.md),
/// which go through the src/import front door instead of the parser.
bool isMloopFile(const std::string &File) {
  return File.size() >= 6 && File.rfind(".mloop") == File.size() - 6;
}

int runFiles(const ToolOptions &Options) {
  std::vector<Unit> Units;
  for (const std::string &File : Options.Files) {
    if (isMloopFile(File)) {
      ImportResult Imported = importFile(File);
      if (!Imported.succeeded()) {
        std::cerr << Imported.Report.renderText();
        std::cerr << "metaopt-lint: import of '" << File << "' failed\n";
        return 2;
      }
      for (ImportedLoop &L : Imported.Loops)
        Units.push_back({File, std::move(L.TheLoop), std::move(L.Symbols)});
      continue;
    }
    std::ifstream In(File);
    if (!In) {
      std::cerr << "metaopt-lint: cannot open '" << File << "'\n";
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    ParseResult Parsed = parseLoops(Buffer.str(), File);
    if (!Parsed.succeeded()) {
      std::cerr << File << ":" << Parsed.ErrorLine
                << ": error: " << Parsed.Error << "\n";
      return 2;
    }
    for (Loop &L : Parsed.Loops)
      Units.push_back({File, std::move(L), {}});
  }
  return lintUnits(Units, Options);
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-lint",
                "Lints textual loop files (see docs/LOOP_FORMAT.md) or "
                "the built-in\nbenchmark corpus with the diagnostics "
                "engine (docs/DIAGNOSTICS.md).");
  Cli.flag("corpus", "sweep every loop of the built-in corpus");
  Cli.flag("json", "emit JSON lines instead of text");
  Cli.option("passes", "ids",
             "run only the listed passes (comma-separated IDs or "
             "prefixes, e.g. L001,L007)");
  Cli.flag("no-verifier", "omit verifier (V###) diagnostics from reports");
  Cli.option("threads", "n",
             "worker threads (default: METAOPT_THREADS, else hardware "
             "concurrency)");
  Cli.flag("list-passes", "print the pass registry and exit");
  Cli.option("explain", "id",
             "print the catalog entry for a diagnostic ID (any family: "
             "V/L/A/X/I) and exit");
  Cli.positionalHelp("[<file.loop|file.mloop> ...]",
                     "loop files to lint (.mloop files are imported "
                     "first, see docs/IMPORT.md)");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  if (Cli.has("list-passes")) {
    listPasses();
    return 0;
  }

  if (Cli.has("explain")) {
    std::string Id = Cli.getString("explain");
    const DiagnosticCatalogEntry *Entry = findDiagnosticEntry(Id);
    if (!Entry) {
      std::cerr << "metaopt-lint: unknown diagnostic id '" << Id
                << "' (see docs/DIAGNOSTICS.md for the catalog)\n";
      return 2;
    }
    std::cout << Entry->Id << " (" << Entry->SevName << ")\n"
              << Entry->Explanation << "\n";
    return 0;
  }

  ToolOptions Options;
  Options.Corpus = Cli.has("corpus");
  Options.Json = Cli.has("json");
  Options.Lint.RunVerifier = !Cli.has("no-verifier");
  Options.Files = Cli.positional();
  if (Cli.has("passes")) {
    Options.Lint.Passes = splitList(Cli.getString("passes"));
    if (Options.Lint.Passes.empty()) {
      std::cerr << "metaopt-lint: --passes requires at least one id\n";
      return 2;
    }
  }
  if (Cli.has("threads")) {
    int64_t Threads = Cli.getInt("threads", 0);
    if (Threads < 1) {
      std::cerr << "metaopt-lint: --threads requires a positive integer\n";
      return 2;
    }
    ThreadPool::setGlobalThreads(static_cast<unsigned>(Threads));
  }

  if (Options.Corpus && !Options.Files.empty()) {
    std::cerr << "metaopt-lint: --corpus and input files are exclusive\n";
    return 2;
  }
  if (!Options.Corpus && Options.Files.empty()) {
    std::cerr << "metaopt-lint: no input (pass loop files or --corpus)\n"
              << Cli.usage();
    return 2;
  }
  return Options.Corpus ? runCorpus(Options) : runFiles(Options);
}
