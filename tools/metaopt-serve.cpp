//===- tools/metaopt-serve.cpp - Batched prediction daemon ----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving daemon: loads a model bundle published by metaopt-train,
/// binds a unix-domain socket and/or a TCP port, and answers
/// line-delimited JSON predict / health / stats requests (docs/SERVING.md)
/// with request batching on the work-stealing pool. With --reload-poll-ms
/// it watches the bundle file and hot-swaps a changed model with zero
/// downtime. SIGTERM and SIGINT trigger a graceful drain: stop accepting,
/// answer everything in flight, then exit 0.
///
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "serve/Server.h"
#include "support/CommandLine.h"

#include <csignal>
#include <cstdio>

using namespace metaopt;

namespace {

void onStopSignal(int) { serverStopFlag().store(true); }

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-serve",
                "Serves unroll-factor predictions from a trained model "
                "bundle over a\nunix-domain socket speaking "
                "line-delimited JSON (docs/SERVING.md).");
  Cli.option("bundle", "bundle.bin",
             "model bundle to serve (required; see metaopt-train)");
  Cli.option("socket", "path",
             "unix-domain socket path to listen on");
  Cli.option("tcp-port", "port",
             "TCP port to listen on (0 = ephemeral; default: off)");
  Cli.option("tcp-host", "host",
             "TCP bind address (default: 127.0.0.1)");
  Cli.option("reload-poll-ms", "ms",
             "watch the bundle file and hot-reload on change, polling "
             "every ms (0 = off; default: 0)");
  Cli.option("max-request-bytes", "n",
             "reject request lines longer than n bytes "
             "(default: 1048576)");
  Cli.option("read-timeout-ms", "ms",
             "close a connection stalled mid-frame after ms "
             "(0 = never; default: 0)");
  Cli.option("write-timeout-ms", "ms",
             "close a connection that will not read its responses "
             "after ms (default: 5000)");
  Cli.option("batch-max", "n", "max requests per batch (default: 16)");
  Cli.option("queue-max", "n",
             "admission-queue capacity; beyond it requests are refused "
             "with status overloaded (default: 1024)");
  Cli.option("linger-us", "us",
             "how long a batch waits for stragglers (default: 200)");
  Cli.option("drain-ms", "ms",
             "shutdown grace for open connections (default: 5000)");
  Cli.option("threads", "n",
             "prediction worker threads (default: METAOPT_THREADS, else "
             "hardware concurrency)");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  std::string BundlePath = Cli.getString("bundle");
  std::string SocketPath = Cli.getString("socket");
  int64_t TcpPort = Cli.has("tcp-port") ? Cli.getInt("tcp-port", -1) : -1;
  if (BundlePath.empty() || (SocketPath.empty() && TcpPort < 0)) {
    std::fprintf(stderr,
                 "metaopt-serve: --bundle and a listener (--socket "
                 "and/or --tcp-port) are required\n%s",
                 Cli.usage().c_str());
    return 2;
  }
  int64_t BatchMax = Cli.getInt("batch-max", 16);
  int64_t QueueMax = Cli.getInt("queue-max", 1024);
  int64_t LingerUs = Cli.getInt("linger-us", 200);
  int64_t DrainMs = Cli.getInt("drain-ms", 5000);
  int64_t ReloadPollMs = Cli.getInt("reload-poll-ms", 0);
  int64_t MaxRequestBytes = Cli.getInt("max-request-bytes", 1 << 20);
  int64_t ReadTimeoutMs = Cli.getInt("read-timeout-ms", 0);
  int64_t WriteTimeoutMs = Cli.getInt("write-timeout-ms", 5000);
  if (BatchMax < 1 || QueueMax < 1 || LingerUs < 0 || DrainMs < 0 ||
      ReloadPollMs < 0 || MaxRequestBytes < 1 || ReadTimeoutMs < 0 ||
      WriteTimeoutMs < 0 || TcpPort > 65535) {
    std::fprintf(stderr, "metaopt-serve: bad tuning option\n");
    return 2;
  }
  if (Cli.has("threads")) {
    int64_t Threads = Cli.getInt("threads", 0);
    if (Threads < 1) {
      std::fprintf(stderr,
                   "metaopt-serve: --threads requires a positive integer\n");
      return 2;
    }
    ThreadPool::setGlobalThreads(static_cast<unsigned>(Threads));
  }

  std::string Error;
  std::optional<ModelBundle> Bundle = loadBundleFile(BundlePath, &Error);
  if (!Bundle) {
    std::fprintf(stderr, "metaopt-serve: rejecting bundle '%s': %s\n",
                 BundlePath.c_str(), Error.c_str());
    return 1;
  }

  ServerOptions Options;
  Options.SocketPath = SocketPath;
  Options.TcpHost = Cli.getString("tcp-host", "127.0.0.1");
  Options.TcpPort = static_cast<int>(TcpPort);
  Options.Service.MaxBatch = static_cast<size_t>(BatchMax);
  Options.Service.MaxQueue = static_cast<size_t>(QueueMax);
  Options.Service.BatchLinger = std::chrono::microseconds(LingerUs);
  Options.DrainTimeout = std::chrono::milliseconds(DrainMs);
  Options.MaxRequestBytes = static_cast<size_t>(MaxRequestBytes);
  Options.ReadTimeout = std::chrono::milliseconds(ReadTimeoutMs);
  Options.WriteTimeout = std::chrono::milliseconds(WriteTimeoutMs);
  if (ReloadPollMs > 0) {
    Options.BundlePath = BundlePath;
    Options.ReloadPoll = std::chrono::milliseconds(ReloadPollMs);
  }

  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    Server Daemon(std::move(*Bundle), Options);
    BundleProvenance Prov = Daemon.provenance();
    std::string Where = SocketPath;
    if (TcpPort >= 0) {
      // The ephemeral port is only known once run() binds; scripts that
      // need a predictable port pass one explicitly.
      std::string Tcp = Options.TcpHost + ":" +
                        (TcpPort > 0 ? std::to_string(TcpPort)
                                     : std::string("<ephemeral>"));
      Where = Where.empty() ? Tcp : Where + " and " + Tcp;
    }
    std::fprintf(stderr,
                 "metaopt-serve: serving %s model (%llu training "
                 "examples) on %s\n",
                 Prov.ClassifierName.c_str(),
                 static_cast<unsigned long long>(Prov.TrainingExamples),
                 Where.c_str());
    if (!Daemon.run(&Error)) {
      std::fprintf(stderr, "metaopt-serve: %s\n", Error.c_str());
      return 1;
    }
    ServiceStatsSnapshot Stats = Daemon.stats();
    std::fprintf(stderr,
                 "metaopt-serve: drained cleanly (%llu connections, %llu "
                 "requests, %llu batches)\n",
                 static_cast<unsigned long long>(
                     Daemon.connectionsAccepted()),
                 static_cast<unsigned long long>(Stats.Completed),
                 static_cast<unsigned long long>(Stats.Batches));
  } catch (const std::exception &Ex) {
    std::fprintf(stderr, "metaopt-serve: %s\n", Ex.what());
    return 1;
  }
  return 0;
}
