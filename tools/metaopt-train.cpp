//===- tools/metaopt-train.cpp - Train and publish model bundles ----------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The training half of the serving story (docs/SERVING.md): runs the
/// standard pipeline (corpus -> labeling -> training -> cross-validation)
/// and publishes the result as a model bundle (serve/ModelBundle.h) that
/// metaopt-serve loads in a fresh process. Also doubles as the bundle
/// inspector: --inspect validates a bundle file and prints its
/// provenance, exit 0 when a serving daemon would accept it.
///
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "core/driver/Pipeline.h"
#include "core/ml/CrossValidation.h"
#include "core/ml/DecisionTree.h"
#include "core/ml/Forest.h"
#include "core/ml/Lsh.h"
#include "core/ml/Mlp.h"
#include "core/ml/Regression.h"
#include "serve/ModelBundle.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <memory>

using namespace metaopt;

namespace {

int inspectBundle(const std::string &Path) {
  ModelBundleInfo Info = inspectBundleFile(Path);
  if (!Info.Valid) {
    std::printf("%s: REJECTED: %s\n", Path.c_str(), Info.Error.c_str());
    return 1;
  }
  const BundleProvenance &Prov = Info.Provenance;
  std::printf("%s: ok (format v%llu)\n", Path.c_str(),
              static_cast<unsigned long long>(Info.Version));
  std::printf("  classifier          %s (%zu-byte blob)\n",
              Prov.ClassifierName.c_str(), Info.ClassifierBytes);
  std::printf("  created by          %s\n", Prov.CreatedBy.c_str());
  std::printf("  machine             %s, swp=%s\n",
              Prov.MachineName.c_str(), Prov.EnableSwp ? "on" : "off");
  std::printf("  features            %zu selected\n", Info.FeatureCount);
  std::printf("  corpus              seed %llu, fingerprint %s\n",
              static_cast<unsigned long long>(Prov.CorpusSeed),
              Prov.CorpusFingerprint.c_str());
  std::printf("  training examples   %llu\n",
              static_cast<unsigned long long>(Prov.TrainingExamples));
  if (Prov.CvAccuracy >= 0)
    std::printf("  cv accuracy         %.1f%% (%s)\n",
                100.0 * Prov.CvAccuracy, Prov.CvMethod.c_str());
  else
    std::printf("  cv accuracy         not measured\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-train",
                "Trains an unroll-factor classifier on the built-in "
                "corpus and publishes\nit as a model bundle for "
                "metaopt-serve (docs/SERVING.md).");
  Cli.option("out", "bundle.bin", "where to publish the bundle (required)");
  Cli.option("classifier",
             "nn|svm|decision-tree|lsh-nn|krr-regression|mlp|random-forest",
             "classifier to train (default: nn, the near-neighbor model)");
  Cli.flag("swp", "label with software pipelining enabled (Figure 5)");
  Cli.option("features", "paper|full",
             "feature subset (default: paper, the reduced Section 6 set)");
  Cli.option("cv", "loocv|none",
             "cross-validation recorded in the provenance (default: "
             "loocv)");
  Cli.option("corpus-min", "n",
             "min loops per benchmark (default: 6; the full corpus uses "
             "30)");
  Cli.option("corpus-max", "n",
             "max loops per benchmark (default: 10; the full corpus uses "
             "55)");
  Cli.option("cache-dir", "dir",
             "cache labeled datasets under <dir> (default: no caching)");
  Cli.option("threads", "n",
             "worker threads (default: METAOPT_THREADS, else hardware "
             "concurrency)");
  Cli.flag("inspect", "validate and describe an existing bundle file");
  Cli.positionalHelp("[<bundle.bin>]", "bundle file to --inspect");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  if (Cli.has("inspect")) {
    if (Cli.positional().empty()) {
      std::fprintf(stderr,
                   "metaopt-train: --inspect requires a bundle file\n");
      return 2;
    }
    return inspectBundle(Cli.positional().front());
  }

  std::string OutPath = Cli.getString("out");
  if (OutPath.empty()) {
    std::fprintf(stderr, "metaopt-train: --out=<bundle.bin> is required\n%s",
                 Cli.usage().c_str());
    return 2;
  }
  std::string ClassifierName = Cli.getString("classifier", "nn");
  if (ClassifierName != "nn" && ClassifierName != "svm" &&
      ClassifierName != "decision-tree" && ClassifierName != "lsh-nn" &&
      ClassifierName != "krr-regression" && ClassifierName != "mlp" &&
      ClassifierName != "random-forest") {
    std::fprintf(stderr,
                 "metaopt-train: --classifier must be one of nn, svm, "
                 "decision-tree, lsh-nn, krr-regression, mlp, "
                 "random-forest\n");
    return 2;
  }
  std::string FeaturesName = Cli.getString("features", "paper");
  if (FeaturesName != "paper" && FeaturesName != "full") {
    std::fprintf(stderr,
                 "metaopt-train: --features must be 'paper' or 'full'\n");
    return 2;
  }
  std::string CvName = Cli.getString("cv", "loocv");
  if (CvName != "loocv" && CvName != "none") {
    std::fprintf(stderr, "metaopt-train: --cv must be 'loocv' or 'none'\n");
    return 2;
  }
  if (Cli.has("threads")) {
    int64_t Threads = Cli.getInt("threads", 0);
    if (Threads < 1) {
      std::fprintf(stderr,
                   "metaopt-train: --threads requires a positive integer\n");
      return 2;
    }
    ThreadPool::setGlobalThreads(static_cast<unsigned>(Threads));
  }
  bool EnableSwp = Cli.has("swp");

  PipelineOptions Options;
  Options.Corpus.MinLoopsPerBenchmark =
      static_cast<int>(Cli.getInt("corpus-min", 6));
  Options.Corpus.MaxLoopsPerBenchmark =
      static_cast<int>(Cli.getInt("corpus-max", 10));
  if (Options.Corpus.MinLoopsPerBenchmark < 1 ||
      Options.Corpus.MaxLoopsPerBenchmark <
          Options.Corpus.MinLoopsPerBenchmark) {
    std::fprintf(stderr, "metaopt-train: bad --corpus-min/--corpus-max\n");
    return 2;
  }
  Options.CacheDir = Cli.getString("cache-dir", "");

  Pipeline Pipe(Options);
  std::fprintf(stderr, "metaopt-train: labeling the corpus (swp=%s)...\n",
               EnableSwp ? "on" : "off");
  const Dataset &Train = Pipe.dataset(EnableSwp);
  if (Train.size() == 0) {
    std::fprintf(stderr, "metaopt-train: the labeled dataset is empty\n");
    return 1;
  }
  std::fprintf(stderr, "metaopt-train: %zu labeled loops\n", Train.size());

  FeatureSet Features = FeaturesName == "full" ? fullFeatureSet()
                                               : paperReducedFeatureSet();

  ModelBundle Bundle;
  std::unique_ptr<Classifier> Trained;
  if (ClassifierName == "svm") {
    auto Svm = std::make_unique<SvmClassifier>(Features);
    Svm->train(Train);
    if (CvName == "loocv") {
      Bundle.Provenance.CvAccuracy =
          predictionAccuracy(Train, loocvPredictions(*Svm, Train));
      Bundle.Provenance.CvMethod = "loocv";
    }
    Trained = std::move(Svm);
  } else if (ClassifierName == "nn") {
    auto Nn = std::make_unique<NearNeighborClassifier>(Features);
    Nn->train(Train);
    if (CvName == "loocv") {
      Bundle.Provenance.CvAccuracy =
          predictionAccuracy(Train, loocvPredictions(*Nn, Train));
      Bundle.Provenance.CvMethod = "loocv";
    }
    Trained = std::move(Nn);
  } else {
    // The remaining classifiers have no closed-form LOOCV shortcut;
    // bruteForceLoocv retrains once per example on the thread pool.
    ClassifierFactory Factory =
        [&](const FeatureSet &Subset) -> std::unique_ptr<Classifier> {
      if (ClassifierName == "decision-tree")
        return std::make_unique<DecisionTreeClassifier>(Subset);
      if (ClassifierName == "lsh-nn")
        return std::make_unique<LshNearNeighborClassifier>(Subset);
      if (ClassifierName == "mlp")
        return std::make_unique<MlpClassifier>(Subset);
      if (ClassifierName == "random-forest")
        return std::make_unique<RandomForestClassifier>(Subset);
      return std::make_unique<KrrUnrollRegressor>(Subset);
    };
    Trained = Factory(Features);
    Trained->train(Train);
    if (CvName == "loocv") {
      Bundle.Provenance.CvAccuracy = predictionAccuracy(
          Train, bruteForceLoocv(Factory, Features, Train));
      Bundle.Provenance.CvMethod = "loocv";
    }
  }
  if (CvName == "none")
    Bundle.Provenance.CvMethod = "none";

  Bundle.Provenance.ClassifierName = Trained->name();
  Bundle.Provenance.CreatedBy =
      std::string("metaopt-train ") + metaoptVersion();
  Bundle.Provenance.MachineName = Pipe.options().Machine.Name;
  Bundle.Provenance.EnableSwp = EnableSwp;
  Bundle.Provenance.CorpusSeed = Pipe.options().Corpus.Seed;
  Bundle.Provenance.CorpusFingerprint =
      fingerprintHex(corpusFingerprint(Pipe.corpus()));
  Bundle.Provenance.TrainingExamples = Train.size();
  Bundle.Features = Features;
  Bundle.ClassifierBlob = Trained->serialize();

  std::string Error;
  if (!saveBundleFile(Bundle, OutPath, &Error)) {
    std::fprintf(stderr, "metaopt-train: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr, "metaopt-train: published %s\n", OutPath.c_str());
  return inspectBundle(OutPath) == 0 ? 0 : 1;
}
