//===- tools/metaopt-simcache.cpp - Cache file inspector ------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates and describes persistent simulation-cache files
/// (cache/SimCache.h): magic, version, entry count, and payload checksum.
/// Exit status 0 means the file would be accepted by a warm-starting
/// process, 1 that it would be rejected (with the reason printed) — handy
/// when debugging why a run started cold.
///
/// Usage:
///   metaopt-simcache <file.bin>        inspect one cache file
///   metaopt-simcache --dir=<dir>       inspect <dir>/sim_cache.bin
///
//===----------------------------------------------------------------------===//

#include "cache/SimCache.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace metaopt;

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-simcache",
                "Validates and describes persistent simulation-cache "
                "files\n(cache/SimCache.h): magic, version, entry count, "
                "payload checksum.");
  Cli.option("dir", "cache-dir", "inspect <cache-dir>/sim_cache.bin");
  Cli.positionalHelp("[<file.bin>]", "cache file to inspect");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  std::string Path;
  if (Cli.has("dir")) {
    SimCacheConfig Config;
    Config.PersistentDir = Cli.getString("dir");
    Config.Enabled = false; // Only borrow persistentPath(); do not load.
    Path = SimCache(Config).persistentPath();
  } else if (!Cli.positional().empty()) {
    Path = Cli.positional().front();
  } else {
    std::fprintf(stderr, "metaopt-simcache: no input\n%s",
                 Cli.usage().c_str());
    return 2;
  }

  SimCacheFileInfo Info = inspectSimCacheFile(Path);
  if (!Info.Valid) {
    std::printf("%s: REJECTED: %s\n", Path.c_str(), Info.Error.c_str());
    return 1;
  }
  std::printf("%s: ok (format v%llu, %llu entries)\n", Path.c_str(),
              static_cast<unsigned long long>(Info.Version),
              static_cast<unsigned long long>(Info.Entries));
  return 0;
}
