//===- tools/metaopt-fuzz.cpp - Differential fuzzing driver ---------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a differential fuzzing campaign (fuzz/Fuzzer.h): generate random
/// verifier-clean loops, check every oracle against the reference
/// interpreter and the standalone schedule validators, shrink failures,
/// and write minimized `.loop` reproducers. Output is byte-identical for
/// a given --seed at any --threads value, so a CI failure reproduces
/// locally by copying the command line. Exit status is 0 when every case
/// passed, 1 when any oracle fired, 2 on usage errors.
///
/// Usage:
///   metaopt-fuzz --seed=1 --iterations=500            campaign
///   metaopt-fuzz --seed=1 --iterations=500 --out-dir=D  + write repros
///   metaopt-fuzz --replay seeds/*.loop                 recheck repros
///
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "fuzz/Fuzzer.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace metaopt;

namespace {

int replay(const CliParser &Cli) {
  if (Cli.positional().empty()) {
    std::fprintf(stderr, "metaopt-fuzz: --replay needs .loop files\n");
    return 2;
  }
  OracleOptions Oracle;
  Oracle.Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  bool AnyFailed = false;
  for (const std::string &Path : Cli.positional()) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "metaopt-fuzz: cannot read %s\n", Path.c_str());
      return 2;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    std::vector<OracleFailure> Failures =
        replayLoops(Buffer.str(), Path, Oracle);
    if (Failures.empty()) {
      std::printf("PASS %s\n", Path.c_str());
      continue;
    }
    AnyFailed = true;
    for (const OracleFailure &Failure : Failures)
      std::printf("FAIL %s [%s] %s\n", Path.c_str(),
                  Failure.Oracle.c_str(), Failure.Detail.c_str());
  }
  return AnyFailed ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-fuzz",
                "Differential fuzzing of the transformation stack: random "
                "loops are\nchecked against the reference interpreter, the "
                "schedule validators,\nthe simulation cache, and the model "
                "bundle codec; failures shrink\nto minimized .loop "
                "reproducers.");
  Cli.option("seed", "N", "campaign master seed (default 1)");
  Cli.option("iterations", "N", "loops to generate (default 500)");
  Cli.option("threads", "N", "worker threads (default: hardware)");
  Cli.option("out-dir", "dir", "write minimized reproducers here");
  Cli.option("max-fragments", "N", "fragments per generated loop");
  Cli.flag("no-shrink", "report unminimized failing loops");
  Cli.flag("replay", "treat positionals as .loop files to recheck");
  Cli.positionalHelp("[<file.loop>...]", "reproducers for --replay");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  if (Cli.has("threads"))
    ThreadPool::setGlobalThreads(
        static_cast<unsigned>(Cli.getInt("threads", 0)));

  if (Cli.has("replay"))
    return replay(Cli);

  FuzzCampaignOptions Options;
  Options.Seed = static_cast<uint64_t>(Cli.getInt("seed", 1));
  Options.Iterations = static_cast<uint64_t>(Cli.getInt("iterations", 500));
  Options.Shrink = !Cli.has("no-shrink");
  if (Cli.has("max-fragments"))
    Options.Gen.MaxFragments =
        static_cast<unsigned>(Cli.getInt("max-fragments", 5));

  FuzzCampaignResult Result = runFuzzCampaign(Options);
  std::fputs(Result.Log.c_str(), stdout);

  if (!Result.Reports.empty() && Cli.has("out-dir")) {
    std::filesystem::path Dir(Cli.getString("out-dir"));
    std::error_code Ec;
    std::filesystem::create_directories(Dir, Ec);
    for (const FuzzCaseReport &Report : Result.Reports) {
      std::filesystem::path File =
          Dir / reproFileName(Options.Seed, Report);
      std::ofstream Out(File);
      Out << "# minimized by metaopt-fuzz --seed=" << Options.Seed
          << " (case " << Report.Index << ")\n";
      for (const std::string &Oracle : Report.MinimizedOracles)
        Out << "# still fails: " << Oracle << "\n";
      Out << Report.MinimizedText;
      std::printf("wrote %s\n", File.string().c_str());
    }
  }
  return Result.CasesFailed == 0 ? 0 : 1;
}
