//===- tools/metaopt-import.cpp - mloop ingestion driver ------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metaopt-import command-line tool: ingests one or more .mloop files
/// (docs/IMPORT.md) through the src/import front door and reports what
/// was accepted. By default the lowered loops are printed in canonical
/// .loop form on stdout (docs/LOOP_FORMAT.md), so the tool doubles as an
/// mloop → .loop converter:
///
///   metaopt-import kernel.mloop > kernel.loop
///   metaopt-import --json --summary corpus/imported/*.mloop
///
/// Exit status: 0 when every file imported without errors, 1 when any
/// diagnostics of error severity were produced, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "import/Import.h"
#include "ir/Printer.h"
#include "support/CommandLine.h"

#include <iostream>
#include <string>
#include <vector>

using namespace metaopt;

namespace {

struct FileOutcome {
  std::string File;
  ImportResult Result;
};

void reportText(const FileOutcome &Outcome) {
  const ImportResult &Result = Outcome.Result;
  if (!Result.Report.empty())
    std::cerr << Result.Report.renderText();
  std::cerr << "metaopt-import: " << Outcome.File << ": "
            << Result.Loops.size() << "/" << Result.ParsedLoops
            << " loops accepted, " << Result.Report.errorCount()
            << " errors\n";
}

void reportJson(const FileOutcome &Outcome) {
  const ImportResult &Result = Outcome.Result;
  for (const Diagnostic &D : Result.Report.diagnostics())
    std::cout << renderDiagnosticJson(D, Outcome.File) << "\n";
  std::cout << "{\"file\":\"" << jsonEscape(Outcome.File)
            << "\",\"parsed\":" << Result.ParsedLoops
            << ",\"accepted\":" << Result.Loops.size()
            << ",\"errors\":" << Result.Report.errorCount() << "}\n";
}

/// Renders one accepted loop with its provenance as a comment header.
void printAccepted(const ImportedLoop &L) {
  if (!L.Prov.empty()) {
    std::cout << "# imported from";
    if (!L.Prov.SourceFile.empty()) {
      std::cout << " " << L.Prov.SourceFile;
      if (L.Prov.SourceLine != 0)
        std::cout << ":" << L.Prov.SourceLine;
    }
    if (!L.Prov.Function.empty())
      std::cout << " function " << L.Prov.Function;
    if (!L.Prov.Extractor.empty())
      std::cout << " via " << L.Prov.Extractor;
    std::cout << "\n";
  }
  std::cout << printLoop(L.TheLoop);
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-import",
                "Imports mloop interchange files (docs/IMPORT.md) into "
                "the canonical\nloop IR, printing accepted loops in "
                ".loop form (docs/LOOP_FORMAT.md).");
  Cli.flag("strict", "reject a whole file on any error (default)");
  Cli.flag("lenient",
           "keep clean loops from files with per-loop errors");
  Cli.flag("json", "emit JSON report lines instead of text");
  Cli.flag("summary", "suppress lowered-loop output, report only");
  Cli.positionalHelp("<file.mloop> ...", "mloop files to import");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  if (Cli.has("strict") && Cli.has("lenient")) {
    std::cerr << "metaopt-import: --strict and --lenient are exclusive\n";
    return 2;
  }
  if (Cli.positional().empty()) {
    std::cerr << "metaopt-import: no input files\n" << Cli.usage();
    return 2;
  }

  ImportOptions Options;
  Options.Lenient = Cli.has("lenient");
  bool Json = Cli.has("json");
  bool Summary = Cli.has("summary");

  bool AnyErrors = false;
  for (const std::string &File : Cli.positional()) {
    FileOutcome Outcome{File, importFile(File, Options)};
    AnyErrors |= !Outcome.Result.succeeded();
    if (Json)
      reportJson(Outcome);
    else
      reportText(Outcome);
    if (!Summary && !Json)
      for (const ImportedLoop &L : Outcome.Result.Loops)
        printAccepted(L);
  }
  return AnyErrors ? 1 : 0;
}
