//===- tools/metaopt-gateway.cpp - Sharded prediction gateway -------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scale-out front door for metaopt serving (docs/SERVING.md): speaks
/// the same line-delimited JSON protocol as metaopt-serve, but instead of
/// predicting itself it shards predict requests across N worker daemons by
/// consistent hashing on the canonical loop fingerprint, fails over to the
/// next replica when a worker dies, health-checks the fleet in the
/// background, and refuses work beyond --max-inflight with status
/// "overloaded". SIGTERM / SIGINT drain gracefully, answering everything
/// already accepted.
///
//===----------------------------------------------------------------------===//

#include "gateway/Gateway.h"
#include "support/CommandLine.h"

#include <csignal>
#include <cstdio>

using namespace metaopt;

namespace {

void onStopSignal(int) { serverStopFlag().store(true); }

std::vector<std::string> splitCsv(const std::string &Text) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t Comma = Text.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Text.size();
    std::string Part = Text.substr(Start, Comma - Start);
    if (!Part.empty())
      Parts.push_back(Part);
    Start = Comma + 1;
  }
  return Parts;
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-gateway",
                "Fronts N metaopt-serve workers behind one endpoint, "
                "sharding predict\nrequests by consistent hashing on the "
                "loop fingerprint (docs/SERVING.md).");
  Cli.option("backends", "addr,addr,...",
             "comma-separated worker addresses: unix socket paths or "
             "host:port (required)");
  Cli.option("socket", "path", "unix-domain socket path to listen on");
  Cli.option("tcp-port", "port",
             "TCP port to listen on (0 = ephemeral; default: off)");
  Cli.option("tcp-host", "host", "TCP bind address (default: 127.0.0.1)");
  Cli.option("vnodes", "n",
             "virtual ring points per backend (default: 64)");
  Cli.option("health-interval-ms", "ms",
             "background health-probe cadence (default: 1000)");
  Cli.option("backend-timeout-ms", "ms",
             "per-request I/O bound against one backend (default: 5000)");
  Cli.option("max-inflight", "n",
             "admission limit on concurrently proxied predicts; beyond "
             "it requests are refused with status overloaded "
             "(default: 256)");
  Cli.option("max-request-bytes", "n",
             "reject request lines longer than n bytes "
             "(default: 1048576)");
  Cli.option("read-timeout-ms", "ms",
             "close a connection stalled mid-frame after ms "
             "(0 = never; default: 0)");
  Cli.option("write-timeout-ms", "ms",
             "close a connection that will not read its responses "
             "after ms (default: 5000)");
  Cli.option("drain-ms", "ms",
             "shutdown grace for open connections (default: 5000)");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  std::vector<std::string> Backends =
      splitCsv(Cli.getString("backends"));
  std::string SocketPath = Cli.getString("socket");
  int64_t TcpPort = Cli.has("tcp-port") ? Cli.getInt("tcp-port", -1) : -1;
  if (Backends.empty() || (SocketPath.empty() && TcpPort < 0)) {
    std::fprintf(stderr,
                 "metaopt-gateway: --backends and a listener (--socket "
                 "and/or --tcp-port) are required\n%s",
                 Cli.usage().c_str());
    return 2;
  }

  int64_t Vnodes = Cli.getInt("vnodes", 64);
  int64_t HealthMs = Cli.getInt("health-interval-ms", 1000);
  int64_t BackendTimeoutMs = Cli.getInt("backend-timeout-ms", 5000);
  int64_t MaxInFlight = Cli.getInt("max-inflight", 256);
  int64_t MaxRequestBytes = Cli.getInt("max-request-bytes", 1 << 20);
  int64_t ReadTimeoutMs = Cli.getInt("read-timeout-ms", 0);
  int64_t WriteTimeoutMs = Cli.getInt("write-timeout-ms", 5000);
  int64_t DrainMs = Cli.getInt("drain-ms", 5000);
  if (Vnodes < 1 || HealthMs < 1 || BackendTimeoutMs < 0 ||
      MaxInFlight < 1 || MaxRequestBytes < 1 || ReadTimeoutMs < 0 ||
      WriteTimeoutMs < 0 || DrainMs < 0 || TcpPort > 65535) {
    std::fprintf(stderr, "metaopt-gateway: bad tuning option\n");
    return 2;
  }

  GatewayOptions Options;
  Options.SocketPath = SocketPath;
  Options.TcpHost = Cli.getString("tcp-host", "127.0.0.1");
  Options.TcpPort = static_cast<int>(TcpPort);
  Options.Backends = Backends;
  Options.VirtualNodes = static_cast<unsigned>(Vnodes);
  Options.HealthInterval = std::chrono::milliseconds(HealthMs);
  Options.BackendIoTimeout = std::chrono::milliseconds(BackendTimeoutMs);
  Options.MaxInFlight = static_cast<size_t>(MaxInFlight);
  Options.MaxRequestBytes = static_cast<size_t>(MaxRequestBytes);
  Options.ReadTimeout = std::chrono::milliseconds(ReadTimeoutMs);
  Options.WriteTimeout = std::chrono::milliseconds(WriteTimeoutMs);
  Options.DrainTimeout = std::chrono::milliseconds(DrainMs);

  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::string Where = SocketPath;
  if (TcpPort >= 0) {
    std::string Tcp = Options.TcpHost + ":" +
                      (TcpPort > 0 ? std::to_string(TcpPort)
                                   : std::string("<ephemeral>"));
    Where = Where.empty() ? Tcp : Where + " and " + Tcp;
  }
  std::fprintf(stderr,
               "metaopt-gateway: fronting %zu backends on %s\n",
               Backends.size(), Where.c_str());

  std::string Error;
  Gateway Gate(Options);
  if (!Gate.run(&Error)) {
    std::fprintf(stderr, "metaopt-gateway: %s\n", Error.c_str());
    return 1;
  }
  GatewayStatsSnapshot Stats = Gate.stats();
  std::fprintf(stderr,
               "metaopt-gateway: drained cleanly (%llu predicts, %llu "
               "forwarded, %llu failovers, %llu unavailable)\n",
               static_cast<unsigned long long>(Stats.Predicts),
               static_cast<unsigned long long>(Stats.ForwardedOk),
               static_cast<unsigned long long>(Stats.Failovers),
               static_cast<unsigned long long>(Stats.Unavailable));
  return 0;
}
