//===- tools/metaopt-predict.cpp - Serving protocol client ----------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line client for metaopt-serve: sends loop files for
/// prediction (one predict request per file), or a health / stats /
/// shutdown request, over the daemon's unix socket or TCP endpoint
/// (a worker or a gateway — the protocol is identical). --json prints the
/// daemon's response lines verbatim (the smoke test diffs these across
/// concurrent clients); the default rendering is human-readable.
/// Exit status: 0 on an ok response, 1 when the daemon rejected the
/// request or is unreachable, 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace metaopt;

namespace {

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

/// Renders one predict response for humans. Returns the process exit
/// status for this response.
int printPredictResponse(const std::string &File, const JsonValue &Doc) {
  std::string Status = Doc.getString("status");
  if (Status != "ok") {
    std::printf("%s: %s: %s\n", File.c_str(), Status.c_str(),
                Doc.getString("error").c_str());
    return 1;
  }
  const JsonValue *Loops = Doc.get("loops");
  if (!Loops || !Loops->isArray())
    return 1;
  for (const JsonValue &Loop : Loops->Items) {
    std::printf("%s: loop \"%s\": u=%lld\n", File.c_str(),
                Loop.getString("name").c_str(),
                static_cast<long long>(Loop.getInt("factor", 0)));
    const JsonValue *Scores = Loop.get("scores");
    if (Scores && Scores->isArray()) {
      std::printf("  scores:");
      for (size_t F = 0; F < Scores->Items.size(); ++F)
        std::printf(" %zu:%.3f", F + 1, Scores->Items[F].Number);
      std::printf("\n");
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliParser Cli("metaopt-predict",
                "Queries a running metaopt-serve daemon: predicts unroll "
                "factors for\nloop files, or sends a health / stats / "
                "shutdown request.");
  Cli.option("socket", "addr",
             "daemon address: unix socket path or host:port "
             "(worker or gateway; required)");
  Cli.flag("scores", "request per-factor scores with each prediction");
  Cli.option("deadline-ms", "ms", "per-request deadline (default: none)");
  Cli.option("connect-timeout-ms", "ms",
             "how long to wait for the daemon socket (default: 2000)");
  Cli.flag("json", "print the daemon's response lines verbatim");
  Cli.flag("health", "send a health request instead of predictions");
  Cli.flag("stats", "send a stats request instead of predictions");
  Cli.flag("shutdown", "ask the daemon to drain and exit");
  Cli.positionalHelp("[<file.loop> ...]",
                     "loop files to predict (one request per file)");
  if (std::optional<int> Exit = Cli.parse(Argc, Argv))
    return *Exit;

  std::string SocketPath = Cli.getString("socket");
  if (SocketPath.empty()) {
    std::fprintf(stderr, "metaopt-predict: --socket is required\n%s",
                 Cli.usage().c_str());
    return 2;
  }
  int64_t DeadlineMs = Cli.getInt("deadline-ms", 0);
  if (DeadlineMs < 0) {
    std::fprintf(stderr,
                 "metaopt-predict: --deadline-ms must be non-negative\n");
    return 2;
  }
  bool Json = Cli.has("json");
  int Admin = (Cli.has("health") ? 1 : 0) + (Cli.has("stats") ? 1 : 0) +
              (Cli.has("shutdown") ? 1 : 0);
  if (Admin > 1) {
    std::fprintf(stderr, "metaopt-predict: --health, --stats, and "
                         "--shutdown are exclusive\n");
    return 2;
  }
  if (Admin == 0 && Cli.positional().empty()) {
    std::fprintf(stderr, "metaopt-predict: no input (pass loop files or "
                         "--health/--stats/--shutdown)\n%s",
                 Cli.usage().c_str());
    return 2;
  }

  ServeClient Client;
  std::string Error;
  int TimeoutMs =
      static_cast<int>(Cli.getInt("connect-timeout-ms", 2000));
  if (!Client.connectWithRetry(SocketPath, TimeoutMs, &Error)) {
    std::fprintf(stderr, "metaopt-predict: %s\n", Error.c_str());
    return 1;
  }

  if (Admin == 1) {
    WireRequest Request;
    Request.TheOp = Cli.has("health") ? WireRequest::Op::Health
                    : Cli.has("stats") ? WireRequest::Op::Stats
                                       : WireRequest::Op::Shutdown;
    std::optional<std::string> Line = Client.request(Request, &Error);
    if (!Line) {
      std::fprintf(stderr, "metaopt-predict: %s\n", Error.c_str());
      return 1;
    }
    std::printf("%s\n", Line->c_str());
    std::optional<JsonValue> Doc = parseJson(*Line);
    return Doc && Doc->getString("status") == "ok" ? 0 : 1;
  }

  int Exit = 0;
  for (const std::string &File : Cli.positional()) {
    std::string Source;
    if (!readWholeFile(File, Source)) {
      std::fprintf(stderr, "metaopt-predict: cannot open '%s'\n",
                   File.c_str());
      return 1;
    }
    WireRequest Request;
    Request.TheOp = WireRequest::Op::Predict;
    Request.LoopText = Source;
    Request.WantScores = Cli.has("scores");
    Request.DeadlineMs = DeadlineMs;
    std::optional<std::string> Line = Client.request(Request, &Error);
    if (!Line) {
      std::fprintf(stderr, "metaopt-predict: %s\n", Error.c_str());
      return 1;
    }
    if (Json) {
      std::printf("%s\n", Line->c_str());
      std::optional<JsonValue> Doc = parseJson(*Line);
      if (!Doc || Doc->getString("status") != "ok")
        Exit = 1;
      continue;
    }
    std::optional<JsonValue> Doc = parseJson(*Line);
    if (!Doc || !Doc->isObject()) {
      std::fprintf(stderr,
                   "metaopt-predict: unparseable response from daemon\n");
      return 1;
    }
    if (printPredictResponse(File, *Doc) != 0)
      Exit = 1;
  }
  return Exit;
}
